//! # hypoquery
//!
//! A production-quality Rust implementation of **Griffin & Hull, "A
//! Framework for Implementing Hypothetical Queries" (SIGMOD 1997)**.
//!
//! Hypothetical queries ask *what a query would return if an update had
//! been applied*, without applying it:
//!
//! ```text
//! Q when {U}
//! ```
//!
//! This crate is the facade over the workspace:
//!
//! * [`storage`] — relations, tuples, catalogs, database states;
//! * [`algebra`] — the HQL abstract syntax (RA + `when`, updates,
//!   hypothetical-state expressions, explicit substitutions), scoping and
//!   typing;
//! * [`core`] — the paper's substitution calculus (`sub`, `#`, `slice`,
//!   `red`), the EQUIV_when rewrite system (Figure 1), and the
//!   ENF/mod-ENF normal forms;
//! * [`eval`] — the direct semantics plus Algorithms HQL-1/2/3
//!   (xsub-values, collapsed trees, Heraclitus-style delta values and
//!   `join-when`);
//! * [`opt`] — the conventional RA optimizer, cost model, and the
//!   lazy↔eager strategy planner;
//! * [`parser`] — the SQL-flavoured surface language;
//! * [`engine`] — the `Database` facade, what-if branch trees, integrity
//!   constraints, and §6 extensions.
//!
//! ## Quickstart
//!
//! ```
//! use hypoquery::{Database, Strategy};
//! use hypoquery::storage::tuple;
//!
//! let mut db = Database::new();
//! db.define("emp", 2).unwrap();               // (id, salary)
//! db.load("emp", [tuple![1, 100], tuple![2, 200]]).unwrap();
//!
//! // What would the high earners be if row (3, 300) were inserted?
//! let out = db
//!     .query("select #1 >= 200 (emp) when {insert into emp (row(3, 300))}")
//!     .unwrap();
//! assert_eq!(out.len(), 2);
//!
//! // The real state is untouched:
//! assert_eq!(db.query("emp").unwrap().len(), 2);
//!
//! // Force a specific strategy from the paper's spectrum:
//! let lazy = db
//!     .query_with("emp when {delete from emp (emp)}", Strategy::Lazy)
//!     .unwrap();
//! assert!(lazy.is_empty());
//! ```

pub use hypoquery_algebra as algebra;
pub use hypoquery_core as core;
pub use hypoquery_engine as engine;
pub use hypoquery_eval as eval;
pub use hypoquery_opt as opt;
pub use hypoquery_parser as parser;
pub use hypoquery_storage as storage;

pub use hypoquery_engine::{
    Database, EngineError, PreparedState, Strategy, TempTables, Transaction, WhatIfTree,
};
pub use hypoquery_storage::{Catalog, DatabaseState, Relation, Tuple, Value};
