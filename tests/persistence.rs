//! Dump/load round-trip on random database states.

use proptest::prelude::*;

use hypoquery::storage::{dump_state, load_state};
use hypoquery_testkit::{arb_db, Universe};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dump_load_roundtrip(db in arb_db(&Universe::standard(), 8)) {
        let text = dump_state(&db);
        let back = load_state(&text).unwrap();
        prop_assert_eq!(back, db);
    }
}
