//! Cross-crate end-to-end scenarios: parser → typing → rewriting →
//! planner → engines, mixing the engine's features (branches, constraints,
//! temps, aggregation) the way a downstream application would.

use proptest::prelude::*;

use hypoquery::storage::tuple;
use hypoquery::{Database, EngineError, Strategy, TempTables, WhatIfTree};
use hypoquery_testkit::{arb_db, arb_query, Universe};

/// A small order-management schema used by several scenarios.
fn shop() -> Database {
    let mut db = Database::new();
    db.define("products", 2).unwrap(); // (product, price)
    db.define("orders", 2).unwrap(); // (order, product)
    db.define("vip", 1).unwrap(); // (order)
    db.load(
        "products",
        [tuple![1, 10], tuple![2, 25], tuple![3, 40], tuple![4, 55]],
    )
    .unwrap();
    db.load(
        "orders",
        [
            tuple![100, 1],
            tuple![100, 3],
            tuple![101, 2],
            tuple![102, 4],
        ],
    )
    .unwrap();
    db.load("vip", [tuple![101]]).unwrap();
    db
}

#[test]
fn full_scenario_pricing_whatif() {
    let mut db = shop();
    // Constraint: no product may cost more than 100.
    db.add_constraint("price_cap", "select #1 > 100 (products)")
        .unwrap();

    // Branches: two catalog-trimming proposals.
    let mut tree = WhatIfTree::new();
    tree.branch(
        &db,
        "drop_cheap",
        None,
        "delete from products (select #1 < 20 (products))",
    )
    .unwrap();
    tree.branch(
        &db,
        "premium_only",
        Some("drop_cheap"),
        "delete from products (select #1 < 50 (products))",
    )
    .unwrap();

    // Which order lines become unfulfillable (reference a dropped
    // product)?
    let dangling = "project 0, 1 (orders) except \
                    project 0, 1 (orders join products on #1 = #2)";
    assert!(db.query(dangling).unwrap().is_empty());
    let at_cheap = tree
        .query_at(&db, "drop_cheap", dangling, Strategy::Auto)
        .unwrap();
    assert_eq!(at_cheap.len(), 1); // order 100 references product 1
    let at_premium = tree
        .query_at(&db, "premium_only", dangling, Strategy::Auto)
        .unwrap();
    assert_eq!(at_premium.len(), 3);

    // All strategies agree at every branch.
    for s in [
        Strategy::Lazy,
        Strategy::Hql1,
        Strategy::Hql2,
        Strategy::Delta,
    ] {
        assert_eq!(
            tree.query_at(&db, "premium_only", dangling, s).unwrap(),
            at_premium,
            "strategy {s}"
        );
    }

    // Committing the milder branch keeps the constraint satisfied.
    tree.clone_commit(&mut db, "drop_cheap");
    assert_eq!(db.query("products").unwrap().len(), 3);
}

// Helper because `commit` consumes the tree; keeps the test tidy.
trait CloneCommit {
    fn clone_commit(&self, db: &mut Database, branch: &str);
}
impl CloneCommit for WhatIfTree {
    fn clone_commit(&self, db: &mut Database, branch: &str) {
        self.clone().commit(db, branch).unwrap();
    }
}

#[test]
fn aggregation_distributes_through_when() {
    let db = shop();
    // Average-ish analytics under a hypothetical restock: count and sum of
    // prices, per first digit bucket — under an insert.
    let q = "aggregate [; count, sum 1, min 1, max 1] (products) \
             when {insert into products (row(5, 70))}";
    let out = db.query(q).unwrap();
    assert!(out.contains(&tuple![5, 200, 10, 70]));
    // Same through every strategy.
    for s in [
        Strategy::Lazy,
        Strategy::Hql1,
        Strategy::Hql2,
        Strategy::Delta,
    ] {
        assert_eq!(db.query_with(q, s).unwrap(), out);
    }
    // Grouped.
    let q = "aggregate [1; count] (orders) when {delete from orders (row(100, 1))}";
    let grouped = db.query(q).unwrap();
    assert_eq!(grouped.len(), 3);
}

#[test]
fn temps_compose_with_hypotheticals() {
    let db = shop();
    let mut temps = TempTables::new();
    // vip is both a base table and (re)definable as a temp view.
    temps
        .define(
            &db,
            "vip",
            "project 0 (orders join products on #1 = #2 and #3 >= 40)",
        )
        .unwrap();
    // Querying the temp under a hypothetical price change: product 3 drops
    // below 40, order 100 leaves the view; 102 stays.
    let out = temps
        .query(
            &db,
            "vip when {delete from products (row(3, 40)); \
                       insert into products (row(3, 30))}",
            Strategy::Auto,
        )
        .unwrap();
    assert_eq!(out.len(), 1);
    assert!(out.contains(&tuple![102]));
}

#[test]
fn constraint_violations_identify_all_constraints_in_order() {
    let mut db = shop();
    db.add_constraint("a_cap", "select #1 > 50 (products)")
        .unwrap();
    // Already-violating state is possible (constraints only guard
    // updates); a no-op-ish update now trips the earliest constraint.
    let err = db
        .execute_update("insert into products (row(9, 60))")
        .unwrap_err();
    assert!(matches!(err, EngineError::ConstraintViolation { .. }));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Engine Auto agrees with every fixed strategy on random queries
    /// over random states (the public-API version of the eval-level
    /// all-strategies-agree invariant).
    #[test]
    fn engine_strategies_agree(
        q in arb_query(&Universe::standard(), 2, 3),
        state in arb_db(&Universe::standard(), 5),
    ) {
        let mut db = Database::with_catalog(state.catalog().clone());
        for (name, rel) in state.iter() {
            db.load(name.as_str(), rel.iter().cloned()).unwrap();
        }
        let auto = db.execute(&q, Strategy::Auto).unwrap();
        for s in [Strategy::Lazy, Strategy::Hql1, Strategy::Hql2] {
            prop_assert_eq!(&auto, &db.execute(&q, s).unwrap(), "strategy {}", s);
        }
        // Delta when a mod-ENF form exists.
        if hypoquery::core::to_mod_enf(&q).is_ok() {
            prop_assert_eq!(&auto, &db.execute(&q, Strategy::Delta).unwrap());
        }
    }
}
