//! The paper's worked examples, end to end: surface syntax → typing →
//! rewriting → planning → every evaluation strategy, on real data.

use hypoquery::algebra::{CmpOp, Predicate, Query};
use hypoquery::core::{fully_lazy, lazy_state, red_state, RewriteTrace, Rule};
use hypoquery::opt::optimize;
use hypoquery::parser::parse_state_expr;
use hypoquery::storage::tuple;
use hypoquery::{Database, Strategy};

/// R and S as in Example 2.1(b): same arity; S has A-values spanning the
/// 30/60 thresholds.
fn example_db() -> Database {
    let mut db = Database::new();
    db.define("R", 2).unwrap();
    db.define("S", 2).unwrap();
    db.load("R", [tuple![61, 0], tuple![10, 0]]).unwrap();
    db.load(
        "S",
        [
            tuple![10, 1],
            tuple![35, 2],
            tuple![45, 3],
            tuple![61, 4],
            tuple![75, 5],
        ],
    )
    .unwrap();
    db
}

/// Example 2.1(b): query (1) —
///
/// ```text
/// [ ((R ⋈ S) when {ins(R, σ_{A>30}(S))})
///   − ((R ⋈ S) when {ins(R, σ_{A>30}(S))}) ]   (same η₁ = η₂ here: the
/// when {del(S, σ_{A<60}(S))}                     difference of equal
///                                                branches is ∅)
/// ```
///
/// The paper's full query uses two *different* inner updates that reduce
/// to the same pure query; we check both readings.
#[test]
fn example_2_1b_lazy_proves_emptiness_without_data() {
    let db = example_db();
    // The two branches as the paper derives them: both reduce to
    // (R ∪ σ_{A≥60}(S)) ⋈ σ_{A≥60}(S).
    let branch = "(R join S on #0 = #2) when {insert into R (select #0 > 30 (S))}";
    let q_src =
        format!("(({branch}) except ({branch})) when {{delete from S (select #0 < 60 (S))}}");

    // Lazy reduction + RA optimization proves emptiness *syntactically*.
    let q = db.prepare(&q_src).unwrap();
    let reduced = fully_lazy(&q, &mut RewriteTrace::new());
    let (optimized, _) = optimize(&reduced, db.catalog());
    assert_eq!(optimized, Query::empty(4), "lazy rewriting must reach ∅");

    // And of course every strategy returns the empty relation on data.
    for s in [
        Strategy::Auto,
        Strategy::Lazy,
        Strategy::Hql1,
        Strategy::Hql2,
        Strategy::Delta,
    ] {
        assert!(db.query_with(&q_src, s).unwrap().is_empty(), "strategy {s}");
    }
}

/// The sanity check the paper states alongside query (1): *without* the
/// outer `del`, the single branch is non-empty (σ_{30<A≤…}(S) ⋈ S joins).
#[test]
fn example_2_1b_without_outer_update_is_nonempty() {
    let db = example_db();
    let q = "(R join S on #0 = #2) when {insert into R (select #0 > 30 (S))}";
    let out = db.query(q).unwrap();
    assert!(!out.is_empty());
    // With the outer delete, the branch shrinks to the A≥60 fragment.
    let q = format!("({q}) when {{delete from S (select #0 < 60 (S))}}");
    let narrowed = db.query(&q).unwrap();
    assert!(!narrowed.is_empty());
    assert!(narrowed.len() < out.len());
}

/// Example 2.2(a): the composition
/// `{del(S, σ_{A<60}(S))} # {ins(R, σ_{A>30}(S))}`
/// reduces + simplifies to the paper's final substitution
/// `{σ_{A≥60}(S)/S, (R ∪ σ_{A≥60}(S))/R}`.
#[test]
fn example_2_2a_composed_substitution_matches_paper() {
    let db = example_db();
    let eta = parse_state_expr(
        "{delete from S (select #0 < 60 (S))} # {insert into R (select #0 > 30 (S))}",
    )
    .unwrap();
    let rho = red_state(&eta).unwrap();
    // Optimize each binding.
    let s_binding = optimize(rho.get(&"S".into()).unwrap(), db.catalog()).0;
    let r_binding = optimize(rho.get(&"R".into()).unwrap(), db.catalog()).0;
    let sigma_ge60 = Query::base("S").select(Predicate::col_cmp(0, CmpOp::Ge, 60));
    assert_eq!(s_binding, sigma_ge60);
    assert_eq!(r_binding, Query::base("R").union(sigma_ge60.clone()));

    // "This substitution remains valid even if the underlying database
    // state is changed": apply it to many different queries/states and
    // compare against nested whens.
    let nested = "(R union S) when {insert into R (select #0 > 30 (S))} \
                  when {delete from S (select #0 < 60 (S))}";
    let composed = Query::base("R").union(Query::base("S")).when(eta.clone());
    assert_eq!(
        db.query(nested).unwrap(),
        db.execute(&composed, Strategy::Auto).unwrap()
    );
}

/// Example 2.3: binding removal. The update touches R, S and T, but a
/// query reading only R ∪ T never pays for the S slice.
#[test]
fn example_2_3_binding_removal() {
    let mut db = example_db();
    db.define("T", 2).unwrap();
    let q = db
        .prepare(
            "(R union T) when {insert into R (select #0 > 1 (S)); \
                               delete from S (select #0 < 5 (R)); \
                               insert into T (project 0, 1 (R))}",
        )
        .unwrap();
    let mut trace = RewriteTrace::new();
    let reduced = fully_lazy(&q, &mut trace);
    assert_eq!(trace.count(Rule::DropUnusedBinding), 1);
    assert!(!reduced.to_string().contains("< 5"), "S slice must be gone");
    // All strategies agree on the value.
    let expected = db
        .query_with(
            "(R union T) when {insert into R (select #0 > 1 (S)); \
                           delete from S (select #0 < 5 (R)); \
                           insert into T (project 0, 1 (R))}",
            Strategy::Hql1,
        )
        .unwrap();
    assert_eq!(
        hypoquery::eval::eval_pure(&reduced, db.state()).unwrap(),
        expected
    );
}

/// Example 2.2(b)-style reuse: one composed substitution answers a family
/// of queries against the same hypothetical state.
#[test]
fn example_2_2b_family_of_queries() {
    let db = example_db();
    let eta = parse_state_expr(
        "{delete from S (select #0 < 60 (S))} # {insert into R (select #0 > 30 (S))}",
    )
    .unwrap();
    let rho = lazy_state(&eta, &mut RewriteTrace::new());
    for family_member in [
        Query::base("R"),
        Query::base("S"),
        Query::base("R").join(Query::base("S"), Predicate::col_col(0, CmpOp::Eq, 2)),
        Query::base("R").diff(Query::base("S")),
    ] {
        // Reuse ρ: sub into each family member...
        let via_subst = hypoquery::core::sub_query(&family_member, &rho).unwrap();
        let lhs = hypoquery::eval::eval_pure(&via_subst, db.state()).unwrap();
        // ...must equal evaluating the nested hypothetical directly.
        let rhs = db
            .execute(&family_member.when(eta.clone()), Strategy::Hql2)
            .unwrap();
        assert_eq!(lhs, rhs);
    }
}

/// The Example 2.1(a) stack discipline: nested whens with an *alternative*
/// branch pair under a shared prefix — both orderings of evaluation agree
/// with the direct semantics (exercised through the engine's branches).
#[test]
fn example_2_1_tree_of_alternatives() {
    let db = example_db();
    let mut tree = hypoquery::WhatIfTree::new();
    tree.branch(&db, "eta3", None, "delete from S (select #0 < 60 (S))")
        .unwrap();
    tree.branch(
        &db,
        "eta1",
        Some("eta3"),
        "insert into R (select #0 > 30 (S))",
    )
    .unwrap();
    tree.branch(
        &db,
        "eta2",
        Some("eta3"),
        "insert into R (select #0 > 40 (S))",
    )
    .unwrap();
    let q = "R join S on #0 = #2";
    let d12 = tree
        .diff_between(&db, "eta1", "eta2", q, Strategy::Auto)
        .unwrap();
    // A>30 vs A>40 under "only A≥60 survives in S": identical inserts, so
    // the difference is empty — the same collapse as Example 2.1(b).
    assert!(d12.is_empty());
    // But against a cut at 70 the branches differ.
    let mut tree2 = hypoquery::WhatIfTree::new();
    tree2
        .branch(&db, "eta3", None, "delete from S (select #0 < 60 (S))")
        .unwrap();
    tree2
        .branch(
            &db,
            "eta1",
            Some("eta3"),
            "insert into R (select #0 > 30 (S))",
        )
        .unwrap();
    tree2
        .branch(
            &db,
            "eta2",
            Some("eta3"),
            "insert into R (select #0 > 70 (S))",
        )
        .unwrap();
    let d = tree2
        .diff_between(&db, "eta1", "eta2", q, Strategy::Auto)
        .unwrap();
    assert!(!d.is_empty());
}

/// Example 3.1 through the parser: sub(Q, ρ) via an explicit-substitution
/// `when`.
#[test]
fn example_3_1_surface_syntax() {
    let mut db = example_db();
    db.define("V", 1).unwrap();
    db.load("V", [tuple![7]]).unwrap();
    // Q = π₂(R × S) ∪ V  with  ρ = {(S − R)/R, σ_{#0>30}(R)/S}.
    let q = "(project 2 (R times S) union V) \
             when {S except R / R, select #0 > 30 (R) / S}";
    let out = db.query(q).unwrap();
    // Oracle: build the substituted query manually.
    let oracle = "project 2 ((S except R) times select #0 > 30 (R)) union V";
    assert_eq!(out, db.query(oracle).unwrap());
}
