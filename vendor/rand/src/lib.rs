//! Minimal offline shim for the `rand` 0.9 API surface used by this
//! workspace: `StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::random_range` over integer ranges.
//!
//! The generator is SplitMix64 — deterministic and statistically fine for
//! synthetic benchmark workloads; not cryptographic.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Construct from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by an [`Rng`].
pub trait SampleRange<T> {
    /// Sample one value from `self` using `rng`.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Object-safe core of a generator.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random-value methods (subset of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    /// A uniform sample from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// A uniform `bool`.
    fn random_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

// Rejection-free (slightly biased by < 2^-32, irrelevant here) range
// sampling via 128-bit multiply, for each integer type we need.
macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample(self, rng: &mut dyn RngCore) -> $ty {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + r) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample(self, rng: &mut dyn RngCore) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + r) as $ty
            }
        }
    )*};
}

impl_sample_range!(i64, u64, i32, u32, usize, isize);

/// Standard-rng shims.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: i64 = a.random_range(0..100);
            assert_eq!(x, b.random_range(0..100));
            assert!((0..100).contains(&x));
        }
    }

    #[test]
    fn inclusive_ranges_hit_endpoints() {
        let mut r = StdRng::seed_from_u64(7);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v: usize = r.random_range(0..=2);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
