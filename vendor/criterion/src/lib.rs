//! Minimal offline shim for the `criterion` API surface used by this
//! workspace's benches: `Criterion`, `benchmark_group` (with
//! `sample_size` / `measurement_time` / `bench_function` /
//! `bench_with_input`), `Bencher::iter`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: per sample, a batch of iterations sized to ~1/10 of
//! the per-benchmark time budget is timed and divided by the batch size;
//! the min / median / mean over samples are reported. Honors
//! `BENCH_JSON=<path>` by appending one JSON object per benchmark.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one parameterized benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` display form, as in real criterion.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id with no parameter part.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Times closures handed to it by benchmark bodies.
pub struct Bencher {
    samples: Vec<f64>,
    budget: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, collecting per-iteration samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm up and estimate a single-iteration cost.
        let warm = Instant::now();
        black_box(routine());
        let mut per_iter = warm.elapsed().max(Duration::from_nanos(1));
        let sample_budget = self.budget.as_secs_f64() / self.sample_size as f64;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let batch = (sample_budget / per_iter.as_secs_f64()).clamp(1.0, 1e7) as u64;
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            per_iter = Duration::from_secs_f64((elapsed.as_secs_f64() / batch as f64).max(1e-9));
            self.samples
                .push(elapsed.as_secs_f64() * 1e9 / batch as f64);
        }
    }
}

/// A named set of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into().0;
        let mut b = Bencher {
            samples: Vec::new(),
            budget: self.measurement_time,
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.criterion.report(&self.name, &id, &b.samples);
        self
    }

    /// Run one benchmark taking a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (reporting already happened per benchmark).
    pub fn finish(&mut self) {}
}

/// Anything usable as a benchmark id (`&str` or [`BenchmarkId`]).
pub struct BenchId(String);

impl From<&str> for BenchId {
    fn from(s: &str) -> Self {
        BenchId(s.to_string())
    }
}

impl From<String> for BenchId {
    fn from(s: String) -> Self {
        BenchId(s)
    }
}

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> Self {
        BenchId(id.id)
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    json_path: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            json_path: std::env::var("BENCH_JSON").ok(),
        }
    }
}

impl Criterion {
    /// Accepted for CLI compatibility; the shim has no CLI options.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Run one stand-alone benchmark with default settings.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut g = BenchmarkGroup {
            criterion: self,
            name: String::new(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        };
        g.bench_function(id, f);
        self
    }

    fn report(&mut self, group: &str, id: &str, samples: &[f64]) {
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let (min, median, mean) = if sorted.is_empty() {
            (0.0, 0.0, 0.0)
        } else {
            (
                sorted[0],
                sorted[sorted.len() / 2],
                sorted.iter().sum::<f64>() / sorted.len() as f64,
            )
        };
        let full = if group.is_empty() {
            id.to_string()
        } else {
            format!("{group}/{id}")
        };
        println!(
            "{full:<60} min {:>12} median {:>12} mean {:>12}",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean)
        );
        if let Some(path) = &self.json_path {
            if let Ok(mut fh) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(
                    fh,
                    "{{\"bench\":\"{full}\",\"min_ns\":{min:.1},\"median_ns\":{median:.1},\"mean_ns\":{mean:.1},\"samples\":{}}}",
                    sorted.len()
                );
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
