//! The `Strategy` trait and combinators for the proptest shim.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use crate::collection::SizeRange;
use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no shrinking: `generate` produces a
/// value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Generate a value, then build and sample a second strategy from it.
    fn prop_flat_map<O: Strategy, F: Fn(Self::Value) -> O>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    /// Keep only values satisfying `f` (re-sampling up to a retry cap).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            source: self,
            whence,
            f,
        }
    }

    /// Type-erase into a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe generation, used behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BoxedStrategy")
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Copy, Debug)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;
    fn generate(&self, rng: &mut TestRng) -> O::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Copy, Debug)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?}: 1000 consecutive rejections", self.whence);
    }
}

/// Weighted choice between same-valued strategies.
#[derive(Clone)]
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: Debug> Union<T> {
    /// Equal-weight choice between `strategies`.
    pub fn new(strategies: impl IntoIterator<Item = BoxedStrategy<T>>) -> Self {
        Union::new_weighted(strategies.into_iter().map(|s| (1, s)).collect())
    }

    /// Weighted choice; weights need not be normalized.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "Union requires at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "Union requires a positive total weight");
        Union { arms, total }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = ((rng.next_u64() as u128 * self.total as u128) >> 64) as u64;
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        self.arms.last().expect("non-empty").1.generate(rng)
    }
}

/// See [`crate::collection::vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.lo + rng.below(self.size.hi - self.size.lo + 1);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `Vec` of strategies generates element-wise: one value per entry.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                rng.in_range(self.start as i128, self.end as i128 - 1) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.in_range(*self.start() as i128, *self.end() as i128) as $ty
            }
        }
    )*};
}

impl_range_strategy!(i64, u64, i32, u32, u8, usize, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = (3i64..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let w = (1u64..=4).generate(&mut rng);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn union_respects_zero_weight_arms() {
        let mut rng = TestRng::new(2);
        let u = Union::new_weighted(vec![(0u32, Just(1i64).boxed()), (5u32, Just(2i64).boxed())]);
        for _ in 0..100 {
            assert_eq!(u.generate(&mut rng), 2);
        }
    }

    #[test]
    fn vec_and_map_compose() {
        let mut rng = TestRng::new(3);
        let s = crate::collection::vec((0usize..5).prop_map(|x| x * 2), 2..=4);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
            assert!(v.iter().all(|x| x % 2 == 0 && *x < 10));
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(x in 0i64..10, flip in any::<bool>()) {
            prop_assume!(x != 3);
            prop_assert!(x < 10);
            prop_assert_ne!(x, 3);
            if flip {
                prop_assert_eq!(x.abs(), x);
            }
        }
    }
}
