//! Minimal offline shim for the `proptest` 1.x API surface used by this
//! workspace.
//!
//! Random-input property testing with strategy combinators: `Strategy`,
//! `BoxedStrategy`, `Just`, integer ranges, tuples, `Union`,
//! `collection::vec`, `sample::select`, `any::<bool>()`, and the
//! `proptest!` / `prop_oneof!` / `prop_assert*!` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics immediately with the `Debug`
//!   rendering of every generated input.
//! * Case count comes from `ProptestConfig::with_cases` (default 64) or
//!   the `PROPTEST_CASES` environment variable, which overrides both.
//! * Seeding is deterministic per test (FNV of the test's module path),
//!   perturbed by `PROPTEST_SEED` if set.

pub mod strategy;

pub mod test_runner;

/// Strategies for collections.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// Number-of-elements range for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub lo: usize,
        /// Maximum length (inclusive).
        pub hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S>
    where
        S::Value: Debug,
    {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Strategies that sample from explicit collections of values.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;

    /// Strategy yielding a uniformly chosen element of a `Vec`.
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniformly select one of `options` (must be non-empty).
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy for `Self`.
        type Strategy: Strategy<Value = Self>;
        /// Build the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Canonical strategy for `bool`.
    #[derive(Clone, Copy, Debug)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    macro_rules! arbitrary_int {
        ($($ty:ty => $name:ident),*) => {$(
            /// Canonical full-range strategy for the integer type.
            #[derive(Clone, Copy, Debug)]
            pub struct $name;
            impl Strategy for $name {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
            impl Arbitrary for $ty {
                type Strategy = $name;
                fn arbitrary() -> $name { $name }
            }
        )*};
    }

    arbitrary_int!(u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64,
                   i8 => AnyI8, i16 => AnyI16, i32 => AnyI32, i64 => AnyI64,
                   usize => AnyUsize, isize => AnyIsize);
}

/// The customary glob import.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Module-path mirror (`prop::collection::vec`, `prop::sample::select`,
    /// `prop::strategy::Union`, …), as in real proptest's prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Weighted / unweighted choice between heterogeneous strategies.
///
/// ```ignore
/// prop_oneof![a, b, c]
/// prop_oneof![3 => a, 1 => b]
/// ```
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($arm))),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($arm))),+
        ])
    };
}

/// Assert inside a `proptest!` body; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)*), l, r),
            ));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discard the current case (does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0i64..10, v in arb_thing()) { prop_assert!(x < 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{($cfg) $($rest)*}
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{($crate::test_runner::Config::default()) $($rest)*}
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::Config = $cfg;
            let cases = config.effective_cases();
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut executed: u32 = 0;
            let mut rejected: u32 = 0;
            // Build each strategy once; generate per case.
            $(let __strategy_of = &($strat);
              let $arg = __strategy_of; )*
            while executed < cases {
                $(let $arg = $arg.generate(&mut rng);)*
                let __inputs = {
                    #[allow(unused_mut)]
                    let mut s = String::new();
                    $(s.push_str(&format!("  {} = {:?}\n", stringify!($arg), &$arg));)*
                    s
                };
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    Ok(()) => executed += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {
                        rejected += 1;
                        if rejected > cases * 16 + 1024 {
                            panic!(
                                "proptest '{}': too many prop_assume! rejections \
                                 ({} rejected, {} executed)",
                                stringify!($name), rejected, executed
                            );
                        }
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed at case {}:\n{}\ninputs:\n{}",
                            stringify!($name), executed, msg, __inputs
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!{($cfg) $($rest)*}
    };
}
