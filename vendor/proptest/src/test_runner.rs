//! Deterministic RNG and per-test configuration for the proptest shim.

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another case.
    Reject,
    /// `prop_assert*!` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection (alias matching real proptest's constructor).
    pub fn reject(_msg: impl Into<String>) -> Self {
        TestCaseError::Reject
    }
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of successful cases required.
    pub cases: u32,
}

impl Config {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }

    /// The case count, overridable via the `PROPTEST_CASES` env var.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// SplitMix64 test RNG, seeded deterministically per test.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG with an explicit seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Deterministic RNG for the named test: FNV-1a of the name, xored
    /// with `PROPTEST_SEED` when set (for re-running with fresh cases).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        if let Ok(v) = std::env::var("PROPTEST_SEED") {
            if let Ok(s) = v.parse::<u64>() {
                h ^= s;
            }
        }
        TestRng::new(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform `i128` in `[lo, hi]`.
    pub fn in_range(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128 + 1;
        lo + ((self.next_u64() as u128 % span) as i128)
    }
}
