//! `hypoquery-cli` — the interactive HQL shell.
//!
//! ```text
//! hypoquery-cli [--addr HOST:PORT] [--local]
//! ```
//!
//! Connects to a running `hypoquery-serve` (default `127.0.0.1:7877`).
//! With `--local`, or when no explicit `--addr` was given and nothing is
//! listening, it drives an in-process session instead — same commands,
//! private database.
//!
//! Reads commands from stdin; set `HQL_INTERACTIVE=1` for a `hql>`
//! prompt. Try `help` once inside.

use std::io;
use std::process::ExitCode;

use hypoquery_client::repl::{Backend, Repl};
use hypoquery_server::proto::DEFAULT_PORT;

fn main() -> ExitCode {
    let mut addr: Option<String> = None;
    let mut local = false;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => match args.next() {
                Some(v) => addr = Some(v),
                None => {
                    eprintln!("--addr needs a value");
                    return ExitCode::from(2);
                }
            },
            "--local" => local = true,
            "--help" | "-h" => {
                println!("usage: hypoquery-cli [--addr HOST:PORT] [--local]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other:?}");
                eprintln!("usage: hypoquery-cli [--addr HOST:PORT] [--local]");
                return ExitCode::from(2);
            }
        }
    }

    let backend = if local {
        println!("hypoquery shell (in-process) — `help` for commands");
        Backend::local()
    } else if let Some(addr) = addr {
        // Explicit address: failing to reach it is an error, not a
        // silent fallback.
        match Backend::connect(&addr) {
            Ok(b) => {
                println!("connected to {addr} — `help` for commands");
                b
            }
            Err(e) => {
                eprintln!("cannot connect to {addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let default = format!("127.0.0.1:{DEFAULT_PORT}");
        let (b, remote) = Backend::connect_or_local(&default);
        if remote {
            println!("connected to {default} — `help` for commands");
        } else {
            println!("no server at {default}; in-process session — `help` for commands");
        }
        b
    };

    let prompt = std::env::var("HQL_INTERACTIVE").is_ok();
    let stdin = io::stdin();
    let mut input = stdin.lock();
    let mut output = io::stdout();
    match Repl::new(backend).run(&mut input, &mut output, prompt) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("i/o error: {e}");
            ExitCode::FAILURE
        }
    }
}
