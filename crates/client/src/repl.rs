//! The interactive HQL shell shared by `hypoquery-cli` and
//! `examples/repl.rs`.
//!
//! One command language, two backends: [`Backend::Remote`] speaks the
//! wire protocol to a running `hypoquery-serve`, while
//! [`Backend::Local`] drives an in-process [`Session`] — the exact same
//! verb dispatch the server uses — so scripts behave identically whether
//! or not a server is running. `Backend::connect_or_local` picks
//! whichever is available.
//!
//! ```text
//! define inv item,qty
//! load inv (1, 10) (2, 20)
//! query select qty >= 20 (inv)
//! branch cut delete from inv (select qty < 15 (inv))
//! switch cut
//! table inv
//! switch -
//! save /tmp/inv.dump
//! quit
//! ```

use std::io::{self, BufRead, Write};
use std::net::ToSocketAddrs;

use hypoquery_engine::Database;
use hypoquery_server::proto::{Reply, Request, Verb};
use hypoquery_server::session::{Control, Session};

use crate::{Client, ClientError};

/// Where REPL commands are executed.
pub enum Backend {
    /// A wire-protocol connection to `hypoquery-serve`.
    Remote(Box<Client>),
    /// An in-process session over a private [`Database`].
    Local(Box<Session>),
}

impl Backend {
    /// An in-process backend over a fresh, empty database.
    pub fn local() -> Backend {
        Backend::Local(Box::new(Session::new(Database::new())))
    }

    /// A remote backend.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Backend, ClientError> {
        Ok(Backend::Remote(Box::new(Client::connect(addr)?)))
    }

    /// Try the server first; fall back to an in-process session when
    /// nothing is listening. Returns the backend and whether it is
    /// remote.
    pub fn connect_or_local(addr: impl ToSocketAddrs) -> (Backend, bool) {
        match Backend::connect(addr) {
            Ok(b) => (b, true),
            Err(_) => (Backend::local(), false),
        }
    }

    /// True when commands travel over TCP.
    pub fn is_remote(&self) -> bool {
        matches!(self, Backend::Remote(_))
    }

    /// Execute one request. `Ok((reply, quit))`: `quit` is set when the
    /// backend considers the session over (`BYE`, `SHUTDOWN`).
    fn send(&mut self, req: &Request) -> Result<(Reply, bool), String> {
        match self {
            Backend::Remote(c) => {
                let quit = matches!(req.verb, Verb::Bye | Verb::Shutdown);
                match c.request(req) {
                    Ok(r) => Ok((r, quit)),
                    Err(ClientError::Server(e)) => Err(e.to_string()),
                    Err(e) => Err(e.to_string()),
                }
            }
            Backend::Local(s) => {
                let (reply, ctl) = s.handle(req);
                match reply {
                    Reply::Err(e) => Err(e.to_string()),
                    r => Ok((r, ctl != Control::Continue)),
                }
            }
        }
    }
}

const HELP: &str = "\
commands (case-insensitive; most mirror wire verbs):
  define <name> <arity | attr,attr,...>   declare a relation
  load <name> (v, ...) (v, ...)           insert literal rows
  query <hql>                             run HQL (honors the current branch)
  table <hql>                             same, rendered with column headers
  update <hql update>                     real at root; auto-branch on a branch
  explain [analyze] <hql>                 show the chosen plan/strategy;
                                          `analyze` runs it and reports
                                          per-operator rows and time
  constraint <name> <violation query>     register an integrity constraint
  branch <name> [from <parent>] <update>  create a what-if branch
  switch <branch | ->                     enter a branch (`-` = root)
  drop <branch>                           remove a branch and its descendants
  branches                                list branches (* marks current)
  prepare <name> {<updates>}              materialize a hypothetical state
  exec <name> <query>                     query a prepared state
  strategy <auto|lazy|hql1|hql2|delta>    set the evaluation strategy
  index <relation> <column>               declare a secondary index
  unindex <relation> <column>             drop a secondary index
  schema | dump | stats | ping            introspection
  save <file> / open <file>               dump to / restore from a file
  help / quit";

/// The interactive command loop: one [`Backend`], line-at-a-time.
pub struct Repl {
    backend: Backend,
}

impl Repl {
    /// Wrap a backend.
    pub fn new(backend: Backend) -> Repl {
        Repl { backend }
    }

    /// The backend (tests).
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// Evaluate one command line. `Ok(None)` means quit; `Ok(Some(s))`
    /// is output to print (possibly empty); `Err` is a user-facing error
    /// message.
    pub fn eval(&mut self, line: &str) -> Result<Option<String>, String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with("--") {
            return Ok(Some(String::new()));
        }
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        match cmd.to_ascii_lowercase().as_str() {
            "help" | "?" => return Ok(Some(HELP.to_string())),
            "quit" | "exit" => {
                if self.backend.is_remote() {
                    let _ = self.backend.send(&Request::new(Verb::Bye, "", ""));
                }
                return Ok(None);
            }
            "save" => {
                if rest.is_empty() {
                    return Err("usage: save <file>".into());
                }
                let (reply, _) = self.backend.send(&Request::new(Verb::Dump, "", ""))?;
                let text = match reply {
                    Reply::Text(t) => t,
                    other => return Err(format!("expected a dump, got {other:?}")),
                };
                std::fs::write(rest, text).map_err(|e| e.to_string())?;
                return Ok(Some(format!("saved to {rest}")));
            }
            "open" => {
                if rest.is_empty() {
                    return Err("usage: open <file>".into());
                }
                let text = std::fs::read_to_string(rest).map_err(|e| e.to_string())?;
                let (_, _) = self.backend.send(&Request::new(Verb::Restore, "", text))?;
                return Ok(Some(format!("loaded {rest}")));
            }
            "branch" => {
                // `branch <name> [from <parent>] <update>` — split the
                // update off onto the request body.
                let mut words = rest.splitn(2, char::is_whitespace);
                let name = words.next().unwrap_or("");
                let tail = words.next().unwrap_or("").trim();
                if name.is_empty() || tail.is_empty() {
                    return Err("usage: branch <name> [from <parent>] <update>".into());
                }
                let (args, update) = match tail.split_once(char::is_whitespace) {
                    Some((w, r)) if w.eq_ignore_ascii_case("from") => {
                        match r.trim().split_once(char::is_whitespace) {
                            Some((parent, u)) => {
                                (format!("{name} FROM {parent}"), u.trim().to_string())
                            }
                            None => {
                                return Err("usage: branch <name> from <parent> <update>".into())
                            }
                        }
                    }
                    _ => (name.to_string(), tail.to_string()),
                };
                let (reply, _) = self
                    .backend
                    .send(&Request::new(Verb::Branch, args, update))?;
                return Ok(Some(render(reply)));
            }
            "prepare" => {
                // `prepare <name> {<updates>}` — state expression on the
                // body line.
                let (name, expr) = rest
                    .split_once(char::is_whitespace)
                    .ok_or("usage: prepare <name> {<updates>}")?;
                let (reply, _) =
                    self.backend
                        .send(&Request::new(Verb::Prepare, name.trim(), expr.trim()))?;
                return Ok(Some(render(reply)));
            }
            _ => {}
        }
        let verb =
            Verb::parse(cmd).ok_or_else(|| format!("unknown command {cmd:?} (try `help`)"))?;
        let (reply, quit) = self.backend.send(&Request::new(verb, rest, ""))?;
        if quit {
            return Ok(None);
        }
        Ok(Some(render(reply)))
    }

    /// Drive the loop over a reader/writer pair. `prompt` prints `hql> `
    /// before each line (interactive use).
    pub fn run(
        &mut self,
        input: &mut impl BufRead,
        output: &mut impl Write,
        prompt: bool,
    ) -> io::Result<()> {
        let mut line = String::new();
        loop {
            if prompt {
                write!(output, "hql> ")?;
                output.flush()?;
            }
            line.clear();
            if input.read_line(&mut line)? == 0 {
                return Ok(());
            }
            match self.eval(&line) {
                Ok(None) => return Ok(()),
                Ok(Some(msg)) => {
                    if !msg.is_empty() {
                        writeln!(output, "{msg}")?;
                    }
                }
                Err(e) => writeln!(output, "error: {e}")?,
            }
        }
    }
}

fn render(reply: Reply) -> String {
    match reply {
        Reply::Ok(note) if note.is_empty() => "ok".to_string(),
        Reply::Ok(note) => note,
        Reply::Rows(rel) => format!("{rel}  ({} row(s))", rel.len()),
        Reply::Text(t) => t,
        Reply::Err(e) => format!("error: {e}"), // unreachable via send()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(r: &mut Repl, line: &str) -> String {
        match r.eval(line) {
            Ok(Some(s)) => s,
            other => panic!("{line}: expected output, got {other:?}"),
        }
    }

    #[test]
    fn scripted_local_session() {
        let mut r = Repl::new(Backend::local());
        assert!(!r.backend().is_remote());
        eval(&mut r, "define inv item,qty");
        assert_eq!(eval(&mut r, "load inv (1, 10) (2, 20) (3, 30)"), "loaded 3");
        assert!(eval(&mut r, "query select qty >= 20 (inv)").contains("(2 row(s))"));
        eval(&mut r, "branch cut delete from inv (select qty < 15 (inv))");
        eval(
            &mut r,
            "branch deeper from cut delete from inv (select qty > 25 (inv))",
        );
        eval(&mut r, "switch deeper");
        assert!(eval(&mut r, "query inv").contains("(1 row(s))"));
        let table = eval(&mut r, "table inv");
        assert!(table.starts_with("item  qty"), "{table}");
        eval(&mut r, "switch -");
        assert!(eval(&mut r, "query inv").contains("(3 row(s))"));
        assert!(eval(&mut r, "branches").contains("cut"));
        assert_eq!(eval(&mut r, "drop cut"), "dropped 2");
        eval(&mut r, "prepare fam {insert into inv (row(9, 90))}");
        assert!(eval(&mut r, "exec fam inv").contains("(4 row(s))"));
        eval(&mut r, "strategy lazy");
        assert!(eval(&mut r, "explain inv when {delete from inv (inv)}").contains("strategy:"));
        let analyzed = eval(&mut r, "explain analyze inv when {delete from inv (inv)}");
        assert!(analyzed.contains("physical plan (analyzed):"), "{analyzed}");
        assert!(analyzed.contains("rows in="), "{analyzed}");
        assert!(eval(&mut r, "-- comment").is_empty());
        assert!(eval(&mut r, "help").contains("branch"));
        assert!(r.eval("nonsense").is_err());
        assert!(r.eval("quit").unwrap().is_none());
    }

    #[test]
    fn save_and_open_roundtrip() {
        let path =
            std::env::temp_dir().join(format!("hypoquery-repl-test-{}.dump", std::process::id()));
        let path = path.to_str().unwrap().to_string();
        let mut r = Repl::new(Backend::local());
        eval(&mut r, "define inv 2");
        eval(&mut r, "load inv (1, 10) (2, 20)");
        eval(&mut r, &format!("save {path}"));
        eval(&mut r, "update delete from inv (inv)");
        assert!(eval(&mut r, "query inv").contains("(0 row(s))"));
        eval(&mut r, &format!("open {path}"));
        assert!(eval(&mut r, "query inv").contains("(2 row(s))"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn errors_are_messages_not_panics() {
        let mut r = Repl::new(Backend::local());
        assert!(r.eval("query select (").is_err());
        assert!(r.eval("branch").is_err());
        assert!(r.eval("save").is_err());
        assert!(r.eval("open /no/such/file/anywhere").is_err());
        // STATS is server-scoped; the local backend says so.
        assert!(r.eval("stats").unwrap_err().contains("server"));
    }
}
