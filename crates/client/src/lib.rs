//! # hypoquery-client
//!
//! A blocking client for the HQL wire protocol (`hypoquery_server::proto`):
//! connect, speak verbs, get typed results back — relations arrive as
//! real [`Relation`] values, errors as the server's structured
//! [`WireError`] replies. The [`repl`] module holds the interactive
//! command loop shared by the `hypoquery-cli` binary and the
//! `examples/repl.rs` example.
//!
//! ```no_run
//! use hypoquery_client::Client;
//!
//! let mut c = Client::connect("127.0.0.1:7877").unwrap();
//! c.define_named("inv", &["item", "qty"]).unwrap();
//! c.raw_line("LOAD inv (1, 10) (2, 20)").unwrap();
//! let rows = c.query("select qty >= 20 (inv)").unwrap();
//! assert_eq!(rows.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod repl;

use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use hypoquery_server::proto::{
    read_frame, write_frame, ErrCode, Reply, Request, Verb, WireError, HELLO_PREFIX,
};
use hypoquery_storage::{encode_tuple, Relation, Tuple};

/// Anything that can go wrong on the client side.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, timeout, disconnect).
    Io(io::Error),
    /// The server answered with a structured error reply.
    Server(WireError),
    /// The server's bytes didn't parse as the protocol (version skew,
    /// not a hypoquery server, truncation).
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The structured server error, if that's what this is.
    pub fn server_error(&self) -> Option<&WireError> {
        match self {
            ClientError::Server(e) => Some(e),
            _ => None,
        }
    }

    /// The server error code, if this is a server error.
    pub fn code(&self) -> Option<ErrCode> {
        self.server_error().map(|e| e.code)
    }
}

/// A connected session. One TCP connection = one server-side session
/// (its own CoW snapshot, branches, prepared states).
pub struct Client {
    stream: TcpStream,
    /// The request-size limit the server advertised in its greeting.
    server_max: u32,
}

impl Client {
    /// Connect with default timeouts (5 s on connect/read/write).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Client::connect_with(addr, Duration::from_secs(5))
    }

    /// Connect with an explicit timeout applied to connect, reads, and
    /// writes.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> Result<Client, ClientError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::Protocol("unresolvable address".into()))?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true).ok();
        let mut client = Client {
            stream,
            server_max: u32::MAX,
        };
        // The server leads with a greeting frame.
        let hello = client.read_reply_payload()?;
        let hello = String::from_utf8_lossy(&hello);
        let max = hello
            .strip_prefix(HELLO_PREFIX)
            .and_then(|rest| rest.trim().parse::<u32>().ok())
            .ok_or_else(|| ClientError::Protocol(format!("unexpected greeting {hello:?}")))?;
        client.server_max = max;
        Ok(client)
    }

    /// The server's advertised request-size limit, bytes.
    pub fn server_max_request_bytes(&self) -> u32 {
        self.server_max
    }

    fn read_reply_payload(&mut self) -> Result<Vec<u8>, ClientError> {
        match read_frame(&mut self.stream, u32::MAX) {
            Ok(Some(p)) => Ok(p),
            Ok(None) => Err(ClientError::Protocol("server closed the connection".into())),
            Err(e) => Err(ClientError::Protocol(e.to_string())),
        }
    }

    /// Send one request and decode the reply. `Reply::Err` is folded
    /// into `ClientError::Server` so happy paths stay `?`-friendly.
    pub fn request(&mut self, req: &Request) -> Result<Reply, ClientError> {
        let payload = req.encode();
        if payload.len() as u64 > u64::from(self.server_max) {
            return Err(ClientError::Server(WireError {
                code: ErrCode::TooLarge,
                message: format!(
                    "request of {} bytes exceeds the server's {}-byte limit",
                    payload.len(),
                    self.server_max
                ),
            }));
        }
        write_frame(&mut self.stream, payload.as_bytes())?;
        let reply = self.read_reply_payload()?;
        match Reply::decode(&reply) {
            Ok(Reply::Err(e)) => Err(ClientError::Server(e)),
            Ok(r) => Ok(r),
            Err(e) => Err(ClientError::Protocol(e.to_string())),
        }
    }

    /// Send a raw command line (first word = verb), e.g. from a REPL.
    pub fn raw_line(&mut self, line: &str) -> Result<Reply, ClientError> {
        self.raw(line, "")
    }

    /// Send a raw command line plus body.
    pub fn raw(&mut self, line: &str, body: &str) -> Result<Reply, ClientError> {
        let req = Request::decode(
            if body.is_empty() {
                line.to_string()
            } else {
                format!("{line}\n{body}")
            }
            .as_bytes(),
        )
        .map_err(ClientError::Server)?;
        self.request(&req)
    }

    fn expect_rows(reply: Reply) -> Result<Relation, ClientError> {
        match reply {
            Reply::Rows(rel) => Ok(rel),
            other => Err(ClientError::Protocol(format!(
                "expected ROWS, got {other:?}"
            ))),
        }
    }

    fn expect_text(reply: Reply) -> Result<String, ClientError> {
        match reply {
            Reply::Text(t) => Ok(t),
            other => Err(ClientError::Protocol(format!(
                "expected TEXT, got {other:?}"
            ))),
        }
    }

    // -- typed verbs ---------------------------------------------------

    /// `PING`.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.request(&Request::new(Verb::Ping, "", "")).map(|_| ())
    }

    /// `QUERY`: run HQL in the session's current branch context.
    pub fn query(&mut self, src: &str) -> Result<Relation, ClientError> {
        self.request(&Request::new(Verb::Query, src, ""))
            .and_then(Self::expect_rows)
    }

    /// `UPDATE`: real at the root, hypothetical (auto-branch) on a branch.
    pub fn update(&mut self, src: &str) -> Result<(), ClientError> {
        self.request(&Request::new(Verb::Update, src, ""))
            .map(|_| ())
    }

    /// `EXPLAIN`.
    pub fn explain(&mut self, src: &str) -> Result<String, ClientError> {
        self.request(&Request::new(Verb::Explain, src, ""))
            .and_then(Self::expect_text)
    }

    /// `DEFINE` with positional columns.
    pub fn define(&mut self, name: &str, arity: usize) -> Result<(), ClientError> {
        self.request(&Request::new(Verb::Define, format!("{name} {arity}"), ""))
            .map(|_| ())
    }

    /// `DEFINE` with named columns.
    pub fn define_named(&mut self, name: &str, attrs: &[&str]) -> Result<(), ClientError> {
        self.request(&Request::new(
            Verb::Define,
            format!("{name} {}", attrs.join(",")),
            "",
        ))
        .map(|_| ())
    }

    /// `LOAD`: bulk rows via the body (dump row format — lossless for
    /// strings with tabs/newlines).
    pub fn load(&mut self, name: &str, rows: &[Tuple]) -> Result<(), ClientError> {
        let body: Vec<String> = rows.iter().map(encode_tuple).collect();
        self.request(&Request::new(Verb::Load, name, body.join("\n")))
            .map(|_| ())
    }

    /// `BRANCH name [FROM parent]` with the update in the body. Parent
    /// `None` means the session's current branch (root if none).
    pub fn branch(
        &mut self,
        name: &str,
        parent: Option<&str>,
        update: &str,
    ) -> Result<(), ClientError> {
        let args = match parent {
            None => name.to_string(),
            Some(p) => format!("{name} FROM {p}"),
        };
        self.request(&Request::new(Verb::Branch, args, update))
            .map(|_| ())
    }

    /// `SWITCH` to a branch; `None` returns to the root (real state).
    pub fn switch(&mut self, branch: Option<&str>) -> Result<(), ClientError> {
        self.request(&Request::new(Verb::Switch, branch.unwrap_or("-"), ""))
            .map(|_| ())
    }

    /// `DROP` a branch and its descendants; returns how many were
    /// removed.
    pub fn drop_branch(&mut self, name: &str) -> Result<usize, ClientError> {
        let reply = self.request(&Request::new(Verb::Drop, name, ""))?;
        match reply {
            Reply::Ok(note) => Ok(note
                .strip_prefix("dropped ")
                .and_then(|n| n.parse().ok())
                .unwrap_or(0)),
            other => Err(ClientError::Protocol(format!("expected OK, got {other:?}"))),
        }
    }

    /// `BRANCHES`: `(name, parent)` pairs, name order; parent `None` =
    /// rooted at the real state.
    pub fn branches(&mut self) -> Result<Vec<(String, Option<String>)>, ClientError> {
        let text = self
            .request(&Request::new(Verb::Branches, "", ""))
            .and_then(Self::expect_text)?;
        Ok(text
            .lines()
            .filter(|l| l.len() > 1)
            .map(|l| {
                let l = &l[1..]; // strip the current-branch marker column
                match l.split_once('\t') {
                    Some((n, "-")) => (n.to_string(), None),
                    Some((n, p)) => (n.to_string(), Some(p.to_string())),
                    None => (l.to_string(), None),
                }
            })
            .collect())
    }

    /// `PREPARE name` with a state expression body (server materializes
    /// eagerly).
    pub fn prepare(&mut self, name: &str, state_expr: &str) -> Result<(), ClientError> {
        self.request(&Request::new(Verb::Prepare, name, state_expr))
            .map(|_| ())
    }

    /// `EXEC name query`: query a prepared state.
    pub fn exec(&mut self, name: &str, query: &str) -> Result<Relation, ClientError> {
        self.request(&Request::new(Verb::Exec, format!("{name} {query}"), ""))
            .and_then(Self::expect_rows)
    }

    /// `STRATEGY`: set the session's evaluation strategy
    /// (`auto`/`lazy`/`hql1`/`hql2`/`delta`).
    pub fn strategy(&mut self, s: &str) -> Result<(), ClientError> {
        self.request(&Request::new(Verb::Strategy, s, ""))
            .map(|_| ())
    }

    /// `SCHEMA` as rendered text (`name/arity [attrs]` lines).
    pub fn schema(&mut self) -> Result<String, ClientError> {
        self.request(&Request::new(Verb::Schema, "", ""))
            .and_then(Self::expect_text)
    }

    /// `DUMP`: the session database in `hypoquery_storage::dump` format.
    pub fn dump(&mut self) -> Result<String, ClientError> {
        self.request(&Request::new(Verb::Dump, "", ""))
            .and_then(Self::expect_text)
    }

    /// `INDEX relation col`: declare a secondary index on a column
    /// (position, or attribute name for named schemas). Returns the
    /// server's note (mentions when the declaration already existed).
    pub fn create_index(&mut self, relation: &str, col: &str) -> Result<String, ClientError> {
        match self.request(&Request::new(Verb::Index, format!("{relation} {col}"), ""))? {
            Reply::Ok(note) => Ok(note),
            other => Err(ClientError::Protocol(format!("expected OK, got {other:?}"))),
        }
    }

    /// `UNINDEX relation col`: drop a secondary-index declaration.
    pub fn drop_index(&mut self, relation: &str, col: &str) -> Result<String, ClientError> {
        match self.request(&Request::new(
            Verb::Unindex,
            format!("{relation} {col}"),
            "",
        ))? {
            Reply::Ok(note) => Ok(note),
            other => Err(ClientError::Protocol(format!("expected OK, got {other:?}"))),
        }
    }

    /// `STATS` as rendered text.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        self.request(&Request::new(Verb::Stats, "", ""))
            .and_then(Self::expect_text)
    }

    /// `STATS` parsed into `key → value`.
    pub fn stats_map(&mut self) -> Result<std::collections::BTreeMap<String, u64>, ClientError> {
        Ok(self
            .stats()?
            .lines()
            .filter_map(|l| {
                let (k, v) = l.split_once(' ')?;
                Some((k.to_string(), v.parse().ok()?))
            })
            .collect())
    }

    /// `BYE`: end the session politely.
    pub fn bye(mut self) -> Result<(), ClientError> {
        self.request(&Request::new(Verb::Bye, "", "")).map(|_| ())
    }

    /// `SHUTDOWN`: ask the server to stop (gracefully).
    pub fn shutdown(mut self) -> Result<(), ClientError> {
        self.request(&Request::new(Verb::Shutdown, "", ""))
            .map(|_| ())
    }
}
