//! Emit HQL expressions back into parseable surface syntax.
//!
//! `Display` on the AST types uses the paper's mathematical notation
//! (σ, π, ⋈, ∪, …); this module emits the ASCII surface grammar instead,
//! with the invariant — property-tested in `tests/roundtrip.rs` — that
//! `parse_query(unparse_query(q)) == q` for every well-formed query whose
//! relation names are not keywords.

use std::fmt::Write;

use hypoquery_storage::Value;

use hypoquery_algebra::{AggExpr, CmpOp, Predicate, Query, ScalarExpr, StateExpr, Update};

/// Render a query in surface syntax.
pub fn unparse_query(q: &Query) -> String {
    let mut out = String::new();
    query(q, &mut out);
    out
}

/// Render an update in surface syntax.
pub fn unparse_update(u: &Update) -> String {
    let mut out = String::new();
    update(u, &mut out);
    out
}

/// Render a hypothetical-state expression in surface syntax.
pub fn unparse_state_expr(eta: &StateExpr) -> String {
    let mut out = String::new();
    state(eta, &mut out);
    out
}

/// Render a predicate in surface syntax.
pub fn unparse_predicate(p: &Predicate) -> String {
    let mut out = String::new();
    pred(p, &mut out);
    out
}

fn query(q: &Query, out: &mut String) {
    match q {
        Query::Base(name) => {
            let _ = write!(out, "{name}");
        }
        Query::Singleton(t) => {
            out.push_str("row(");
            for (i, v) in t.fields().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                value(v, out);
            }
            out.push(')');
        }
        Query::Empty { arity } => {
            let _ = write!(out, "empty({arity})");
        }
        Query::Select(inner, p) => {
            out.push_str("select ");
            pred(p, out);
            out.push_str(" (");
            query(inner, out);
            out.push(')');
        }
        Query::Project(inner, cols) => {
            out.push_str("project ");
            for (i, c) in cols.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{c}");
            }
            if !cols.is_empty() {
                out.push(' ');
            }
            out.push('(');
            query(inner, out);
            out.push(')');
        }
        Query::Union(a, b) => binary(a, "union", b, out),
        Query::Intersect(a, b) => binary(a, "intersect", b, out),
        Query::Diff(a, b) => binary(a, "except", b, out),
        Query::Product(a, b) => binary(a, "times", b, out),
        Query::Join(a, b, p) => {
            out.push('(');
            paren_query(a, out);
            out.push_str(" join ");
            paren_query(b, out);
            out.push_str(" on ");
            pred(p, out);
            out.push(')');
        }
        Query::When(body, eta) => {
            out.push('(');
            paren_query(body, out);
            out.push_str(" when ");
            state(eta, out);
            out.push(')');
        }
        Query::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            out.push_str("aggregate [");
            for (i, c) in group_by.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{c}");
            }
            out.push_str("; ");
            for (i, a) in aggs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                match a {
                    AggExpr::Count => out.push_str("count"),
                    AggExpr::Sum(c) => {
                        let _ = write!(out, "sum {c}");
                    }
                    AggExpr::Min(c) => {
                        let _ = write!(out, "min {c}");
                    }
                    AggExpr::Max(c) => {
                        let _ = write!(out, "max {c}");
                    }
                }
            }
            out.push_str("] (");
            query(input, out);
            out.push(')');
        }
    }
}

fn binary(a: &Query, op: &str, b: &Query, out: &mut String) {
    out.push('(');
    paren_query(a, out);
    let _ = write!(out, " {op} ");
    paren_query(b, out);
    out.push(')');
}

/// Operands of binary operators and `when` bodies are emitted
/// parenthesized unless they are leaf factors, so precedence never
/// matters.
fn paren_query(q: &Query, out: &mut String) {
    match q {
        Query::Base(_)
        | Query::Singleton(_)
        | Query::Empty { .. }
        | Query::Select(_, _)
        | Query::Project(_, _)
        | Query::Aggregate { .. } => query(q, out),
        _ => {
            query(q, out);
        }
    }
}

fn state(eta: &StateExpr, out: &mut String) {
    match eta {
        StateExpr::Update(u) => {
            out.push('{');
            update(u, out);
            out.push('}');
        }
        StateExpr::Subst(eps) => {
            out.push('{');
            for (i, (name, q)) in eps.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                paren_binding(q, out);
                let _ = write!(out, " / {name}");
            }
            out.push('}');
        }
        StateExpr::Compose(a, b) => {
            out.push('(');
            state(a, out);
            out.push_str(" # ");
            state(b, out);
            out.push(')');
        }
    }
}

/// A substitution binding's query must not swallow the following `/`;
/// wrapping in parentheses keeps the grammar unambiguous.
fn paren_binding(q: &Query, out: &mut String) {
    out.push('(');
    query(q, out);
    out.push(')');
}

fn update(u: &Update, out: &mut String) {
    match u {
        Update::Insert(r, q) => {
            let _ = write!(out, "insert into {r} (");
            query(q, out);
            out.push(')');
        }
        Update::Delete(r, q) => {
            let _ = write!(out, "delete from {r} (");
            query(q, out);
            out.push(')');
        }
        Update::Seq(a, b) => {
            // `;` parses left-associatively; parenthesize a right-nested
            // sequence so the tree structure round-trips exactly.
            update(a, out);
            out.push_str("; ");
            if matches!(**b, Update::Seq(_, _)) {
                out.push('(');
                update(b, out);
                out.push(')');
            } else {
                update(b, out);
            }
        }
        Update::Cond {
            guard,
            then_u,
            else_u,
        } => {
            out.push_str("if ");
            query(guard, out);
            out.push_str(" then ");
            update(then_u, out);
            out.push_str(" else ");
            update(else_u, out);
            out.push_str(" end");
        }
    }
}

fn pred(p: &Predicate, out: &mut String) {
    match p {
        Predicate::True => out.push_str("true"),
        Predicate::False => out.push_str("false"),
        Predicate::Cmp(a, op, b) => {
            scalar(a, out);
            let opstr = match op {
                CmpOp::Eq => "=",
                CmpOp::Ne => "<>",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            let _ = write!(out, " {opstr} ");
            scalar(b, out);
        }
        Predicate::And(a, b) => {
            out.push('(');
            pred(a, out);
            out.push_str(" and ");
            pred(b, out);
            out.push(')');
        }
        Predicate::Or(a, b) => {
            out.push('(');
            pred(a, out);
            out.push_str(" or ");
            pred(b, out);
            out.push(')');
        }
        Predicate::Not(a) => {
            out.push_str("not (");
            pred(a, out);
            out.push(')');
        }
    }
}

fn scalar(s: &ScalarExpr, out: &mut String) {
    match s {
        ScalarExpr::Col(i) => {
            let _ = write!(out, "#{i}");
        }
        ScalarExpr::Const(v) => value(v, out),
    }
}

fn value(v: &Value, out: &mut String) {
    match v {
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    other => out.push(other),
                }
            }
            out.push('"');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_query, parse_state_expr, parse_update};
    use hypoquery_storage::tuple;

    #[test]
    fn simple_roundtrips() {
        let cases = [
            Query::base("R"),
            Query::singleton(tuple![1, "a", true]),
            Query::empty(3),
            Query::base("R").select(Predicate::col_cmp(0, CmpOp::Ge, 60)),
            Query::base("R").project([1, 0]),
            Query::base("R").project(Vec::<usize>::new()),
            Query::base("R")
                .union(Query::base("S"))
                .diff(Query::base("T")),
            Query::base("R").join(Query::base("S"), Predicate::col_col(0, CmpOp::Eq, 2)),
            Query::base("R").aggregate([0], [AggExpr::Count, AggExpr::Sum(1)]),
        ];
        for q in cases {
            let src = unparse_query(&q);
            let back = parse_query(&src).unwrap_or_else(|e| panic!("{src}: {e}"));
            assert_eq!(back, q, "source: {src}");
        }
    }

    #[test]
    fn hypothetical_roundtrips() {
        let eta = StateExpr::update(
            Update::insert("R", Query::base("S")).then(Update::delete("S", Query::base("S"))),
        );
        let q = Query::base("R").when(eta.clone()).when(StateExpr::subst(
            hypoquery_algebra::ExplicitSubst::single(
                "S",
                Query::base("R").select(Predicate::col_cmp(1, CmpOp::Lt, 5)),
            ),
        ));
        let src = unparse_query(&q);
        assert_eq!(parse_query(&src).unwrap(), q, "source: {src}");

        let comp = eta.clone().compose(eta);
        let src = unparse_state_expr(&comp);
        assert_eq!(parse_state_expr(&src).unwrap(), comp, "source: {src}");
    }

    #[test]
    fn update_roundtrips() {
        let u = Update::cond(
            Query::base("V"),
            Update::insert("R", Query::base("S")).then(Update::insert("T", Query::base("R"))),
            Update::delete("R", Query::base("R")),
        );
        let src = unparse_update(&u);
        assert_eq!(parse_update(&src).unwrap(), u, "source: {src}");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let q = Query::singleton(tuple![r#"a"b\c"#]);
        let src = unparse_query(&q);
        assert_eq!(parse_query(&src).unwrap(), q, "source: {src}");
    }
}
