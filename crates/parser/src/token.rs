//! Lexer for the HQL surface language.

use std::fmt;

/// A token with its byte offset in the source (for error messages).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Byte offset where the token starts.
    pub offset: usize,
}

/// Token kinds of the surface language.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// Identifier (relation name or keyword — keywords are recognized by
    /// the parser, so they can also appear as context-free identifiers).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// String literal (double-quoted, `\"` and `\\` escapes).
    Str(String),
    /// `#` (column reference prefix).
    Hash,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::Hash => write!(f, "`#`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::Ne => write!(f, "`<>`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A lexing error: an unexpected character or unterminated string.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LexError {
    /// Byte offset of the problem.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a source string. `--` starts a comment to end of line.
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '-' if bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) => {
                // Negative integer literal.
                i += 1;
                let ds = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let v: i64 = src[ds..i].parse().map_err(|_| LexError {
                    offset: start,
                    message: "integer literal out of range".into(),
                })?;
                out.push(Token {
                    kind: TokenKind::Int(-v),
                    offset: start,
                });
            }
            '0'..='9' => {
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let v: i64 = src[start..i].parse().map_err(|_| LexError {
                    offset: start,
                    message: "integer literal out of range".into(),
                })?;
                out.push(Token {
                    kind: TokenKind::Int(v),
                    offset: start,
                });
            }
            '"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(LexError {
                                offset: start,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            match bytes.get(i + 1) {
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                _ => {
                                    return Err(LexError {
                                        offset: i,
                                        message: "bad escape in string literal".into(),
                                    })
                                }
                            }
                            i += 2;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Ident(src[start..i].to_string()),
                    offset: start,
                });
            }
            '#' => {
                out.push(Token {
                    kind: TokenKind::Hash,
                    offset: start,
                });
                i += 1;
            }
            '(' => {
                out.push(Token {
                    kind: TokenKind::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                out.push(Token {
                    kind: TokenKind::RParen,
                    offset: start,
                });
                i += 1;
            }
            '{' => {
                out.push(Token {
                    kind: TokenKind::LBrace,
                    offset: start,
                });
                i += 1;
            }
            '}' => {
                out.push(Token {
                    kind: TokenKind::RBrace,
                    offset: start,
                });
                i += 1;
            }
            '[' => {
                out.push(Token {
                    kind: TokenKind::LBracket,
                    offset: start,
                });
                i += 1;
            }
            ']' => {
                out.push(Token {
                    kind: TokenKind::RBracket,
                    offset: start,
                });
                i += 1;
            }
            ',' => {
                out.push(Token {
                    kind: TokenKind::Comma,
                    offset: start,
                });
                i += 1;
            }
            ';' => {
                out.push(Token {
                    kind: TokenKind::Semi,
                    offset: start,
                });
                i += 1;
            }
            '/' => {
                out.push(Token {
                    kind: TokenKind::Slash,
                    offset: start,
                });
                i += 1;
            }
            '=' => {
                out.push(Token {
                    kind: TokenKind::Eq,
                    offset: start,
                });
                i += 1;
            }
            '<' => match bytes.get(i + 1) {
                Some(b'>') => {
                    out.push(Token {
                        kind: TokenKind::Ne,
                        offset: start,
                    });
                    i += 2;
                }
                Some(b'=') => {
                    out.push(Token {
                        kind: TokenKind::Le,
                        offset: start,
                    });
                    i += 2;
                }
                _ => {
                    out.push(Token {
                        kind: TokenKind::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            },
            '>' => match bytes.get(i + 1) {
                Some(b'=') => {
                    out.push(Token {
                        kind: TokenKind::Ge,
                        offset: start,
                    });
                    i += 2;
                }
                _ => {
                    out.push(Token {
                        kind: TokenKind::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            },
            other => {
                return Err(LexError {
                    offset: start,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        offset: src.len(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("select #0 >= 60 (S)"),
            vec![
                TokenKind::Ident("select".into()),
                TokenKind::Hash,
                TokenKind::Int(0),
                TokenKind::Ge,
                TokenKind::Int(60),
                TokenKind::LParen,
                TokenKind::Ident("S".into()),
                TokenKind::RParen,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("= <> < <= > >="),
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(
            kinds(r#""hello" "a\"b" "c\\d""#),
            vec![
                TokenKind::Str("hello".into()),
                TokenKind::Str("a\"b".into()),
                TokenKind::Str("c\\d".into()),
                TokenKind::Eof
            ]
        );
        assert!(tokenize("\"oops").is_err());
        assert!(tokenize(r#""bad \x""#).is_err());
    }

    #[test]
    fn negative_ints_and_comments() {
        assert_eq!(
            kinds("-5 7 -- a comment\n 9"),
            vec![
                TokenKind::Int(-5),
                TokenKind::Int(7),
                TokenKind::Int(9),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn braces_and_update_syntax() {
        assert_eq!(
            kinds("{insert into R (S); delete from S (S)}").len(),
            // { insert into R ( S ) ; delete from S ( S ) } eof
            16
        );
    }

    #[test]
    fn rejects_unknown_characters() {
        let e = tokenize("R $ S").unwrap_err();
        assert!(e.to_string().contains("unexpected character"));
        assert_eq!(e.offset, 2);
    }

    #[test]
    fn offsets_are_recorded() {
        let toks = tokenize("ab cd").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 3);
    }
}
