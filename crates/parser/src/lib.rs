//! # hypoquery-parser
//!
//! A hand-written lexer and recursive-descent parser for the HQL surface
//! language — queries, updates, hypothetical-state expressions, explicit
//! substitutions and compositions — standing in for the paper's
//! SQL-mimicking update syntax. See [`parser`] for the grammar.

#![warn(missing_docs)]

pub mod parser;
pub mod token;
pub mod unparse;

pub use parser::{
    is_keyword, parse_predicate, parse_query, parse_query_named, parse_state_expr,
    parse_state_expr_named, parse_update, parse_update_named, ParseError,
};
pub use token::{tokenize, LexError, Token, TokenKind};
pub use unparse::{unparse_predicate, unparse_query, unparse_state_expr, unparse_update};
