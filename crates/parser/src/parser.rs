//! Recursive-descent parser for the HQL surface language.
//!
//! Grammar (keywords lowercase; columns are positional `#N`):
//!
//! ```text
//! query   := set ('when' state)*                      -- when binds loosest
//! set     := term (('union'|'except'|'intersect') term)*
//! term    := factor ('times' factor | 'join' factor 'on' pred)*
//! factor  := 'select' pred '(' query ')'
//!          | 'project' [INT (',' INT)*] '(' query ')'
//!          | 'aggregate' '[' cols ';' aggs ']' '(' query ')'
//!          | 'row' '(' lit (',' lit)* ')'
//!          | 'empty' '(' INT ')'
//!          | NAME
//!          | '(' query ')'
//! state   := sprim ('#' sprim)*                       -- composition
//! sprim   := '{' update '}' | '{' [binding (',' binding)*] '}'
//!          | '(' state ')'
//! binding := query '/' NAME
//! update  := atomic (';' atomic)*
//! atomic  := 'insert' 'into' NAME query | '(' update ')'
//!          | 'delete' 'from' NAME query
//!          | 'if' query 'then' update 'else' update 'end'
//! pred    := conjunctions/disjunctions of `scalar op scalar`,
//!            'true', 'false', 'not', parentheses
//! scalar  := '#' INT | INT | STRING
//! lit     := INT | STRING | 'true' | 'false'
//! ```
//!
//! Examples:
//!
//! ```text
//! (R join S on #0 = #2) when {insert into R (select #0 > 30 (S))}
//! Q when {select #0 >= 60 (S) / S} # {insert into R (S)}
//! ```

use std::fmt;

use hypoquery_storage::{Catalog, Tuple, Value};

use hypoquery_algebra::{
    AggExpr, CmpOp, ExplicitSubst, Predicate, Query, ScalarExpr, StateExpr, Update,
};

use crate::token::{tokenize, Token, TokenKind};

/// A parse error with source offset.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Byte offset of the offending token.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

const KEYWORDS: &[&str] = &[
    "select",
    "project",
    "aggregate",
    "row",
    "empty",
    "when",
    "union",
    "except",
    "intersect",
    "times",
    "join",
    "on",
    "insert",
    "into",
    "delete",
    "from",
    "if",
    "then",
    "else",
    "end",
    "and",
    "or",
    "not",
    "true",
    "false",
    "count",
    "sum",
    "min",
    "max",
];

/// A column reference before name resolution.
enum PreCol {
    Pos(usize),
    Named(String, usize),
}

/// An aggregate before column resolution.
enum PreAgg {
    Count,
    Sum(PreCol),
    Min(PreCol),
    Max(PreCol),
}

/// A scalar term before name resolution.
enum PreScalar {
    Col(PreCol),
    Const(Value),
}

/// A predicate before name resolution.
enum PrePred {
    True,
    False,
    Cmp(PreScalar, CmpOp, PreScalar),
    And(Box<PrePred>, Box<PrePred>),
    Or(Box<PrePred>, Box<PrePred>),
    Not(Box<PrePred>),
}

struct Parser<'c> {
    toks: Vec<Token>,
    pos: usize,
    /// Schema used to resolve named columns (`salary >= 200`). `None`
    /// restricts predicates/projections to positional `#N` references.
    catalog: Option<&'c Catalog>,
}

impl<'c> Parser<'c> {
    fn new(src: &str, catalog: Option<&'c Catalog>) -> Result<Parser<'c>, ParseError> {
        let toks = tokenize(src).map_err(|e| ParseError {
            offset: e.offset,
            message: e.message,
        })?;
        Ok(Parser {
            toks,
            pos: 0,
            catalog,
        })
    }

    fn peek(&self) -> &Token {
        &self.toks[self.pos]
    }

    fn advance(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            offset: self.peek().offset,
            message: message.into(),
        })
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        if &self.peek().kind == kind {
            self.advance();
            Ok(())
        } else {
            self.error(format!("expected {kind}, found {}", self.peek().kind))
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            self.error(format!(
                "expected keyword `{kw}`, found {}",
                self.peek().kind
            ))
        }
    }

    fn expect_name(&mut self) -> Result<String, ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(s) if !KEYWORDS.contains(&s.as_str()) => {
                let s = s.clone();
                self.advance();
                Ok(s)
            }
            TokenKind::Ident(s) => {
                self.error(format!("`{s}` is a keyword and cannot name a relation"))
            }
            other => self.error(format!("expected relation name, found {other}")),
        }
    }

    fn expect_int(&mut self) -> Result<i64, ParseError> {
        match self.peek().kind {
            TokenKind::Int(v) => {
                self.advance();
                Ok(v)
            }
            _ => self.error(format!("expected integer, found {}", self.peek().kind)),
        }
    }

    fn expect_usize(&mut self) -> Result<usize, ParseError> {
        let v = self.expect_int()?;
        usize::try_from(v).map_err(|_| ParseError {
            offset: self.toks[self.pos.saturating_sub(1)].offset,
            message: format!("expected non-negative column index, found {v}"),
        })
    }

    // -- queries -----------------------------------------------------------

    fn query(&mut self) -> Result<Query, ParseError> {
        let mut q = self.set_expr()?;
        while self.eat_keyword("when") {
            let eta = self.state_expr()?;
            q = q.when(eta);
        }
        Ok(q)
    }

    fn set_expr(&mut self) -> Result<Query, ParseError> {
        let mut q = self.term()?;
        loop {
            if self.eat_keyword("union") {
                q = q.union(self.term()?);
            } else if self.eat_keyword("except") {
                q = q.diff(self.term()?);
            } else if self.eat_keyword("intersect") {
                q = q.intersect(self.term()?);
            } else {
                return Ok(q);
            }
        }
    }

    fn term(&mut self) -> Result<Query, ParseError> {
        let mut q = self.factor()?;
        loop {
            if self.eat_keyword("times") {
                q = q.product(self.factor()?);
            } else if self.eat_keyword("join") {
                let rhs = self.factor()?;
                self.expect_keyword("on")?;
                let p = self.pre_predicate()?;
                let joined = q.clone().product(rhs.clone());
                let p = self.resolve_pred(p, &joined)?;
                q = q.join(rhs, p);
            } else {
                return Ok(q);
            }
        }
    }

    fn factor(&mut self) -> Result<Query, ParseError> {
        if self.eat_keyword("select") {
            let p = self.pre_predicate()?;
            self.expect(&TokenKind::LParen)?;
            let q = self.query()?;
            self.expect(&TokenKind::RParen)?;
            let p = self.resolve_pred(p, &q)?;
            return Ok(q.select(p));
        }
        if self.eat_keyword("project") {
            let mut cols = Vec::new();
            if self.at_pre_col() {
                cols.push(self.pre_col()?);
                while self.peek().kind == TokenKind::Comma {
                    self.advance();
                    cols.push(self.pre_col()?);
                }
            }
            self.expect(&TokenKind::LParen)?;
            let q = self.query()?;
            self.expect(&TokenKind::RParen)?;
            let cols = self.resolve_cols(cols, &q)?;
            return Ok(q.project(cols));
        }
        if self.eat_keyword("aggregate") {
            self.expect(&TokenKind::LBracket)?;
            let mut cols = Vec::new();
            while self.at_pre_col() {
                cols.push(self.pre_col()?);
                if self.peek().kind == TokenKind::Comma {
                    self.advance();
                }
            }
            self.expect(&TokenKind::Semi)?;
            let mut aggs = vec![self.pre_agg()?];
            while self.peek().kind == TokenKind::Comma {
                self.advance();
                aggs.push(self.pre_agg()?);
            }
            self.expect(&TokenKind::RBracket)?;
            self.expect(&TokenKind::LParen)?;
            let q = self.query()?;
            self.expect(&TokenKind::RParen)?;
            let cols = self.resolve_cols(cols, &q)?;
            let aggs = aggs
                .into_iter()
                .map(|a| self.resolve_agg(a, &q))
                .collect::<Result<Vec<_>, _>>()?;
            return Ok(q.aggregate(cols, aggs));
        }
        if self.eat_keyword("row") {
            self.expect(&TokenKind::LParen)?;
            let mut vals = vec![self.literal()?];
            while self.peek().kind == TokenKind::Comma {
                self.advance();
                vals.push(self.literal()?);
            }
            self.expect(&TokenKind::RParen)?;
            return Ok(Query::singleton(Tuple::new(vals)));
        }
        if self.eat_keyword("empty") {
            self.expect(&TokenKind::LParen)?;
            let arity = self.expect_usize()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(Query::empty(arity));
        }
        if self.peek().kind == TokenKind::LParen {
            self.advance();
            let q = self.query()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(q);
        }
        let name = self.expect_name()?;
        Ok(Query::base(name))
    }

    fn pre_agg(&mut self) -> Result<PreAgg, ParseError> {
        if self.eat_keyword("count") {
            return Ok(PreAgg::Count);
        }
        if self.eat_keyword("sum") {
            return Ok(PreAgg::Sum(self.pre_col()?));
        }
        if self.eat_keyword("min") {
            return Ok(PreAgg::Min(self.pre_col()?));
        }
        if self.eat_keyword("max") {
            return Ok(PreAgg::Max(self.pre_col()?));
        }
        self.error(format!(
            "expected aggregate (count/sum/min/max), found {}",
            self.peek().kind
        ))
    }

    // -- named-column machinery --------------------------------------------

    fn at_pre_col(&self) -> bool {
        match &self.peek().kind {
            TokenKind::Int(_) => true,
            TokenKind::Ident(s) => !KEYWORDS.contains(&s.as_str()),
            _ => false,
        }
    }

    /// A column reference: a position or an attribute name.
    fn pre_col(&mut self) -> Result<PreCol, ParseError> {
        match &self.peek().kind {
            TokenKind::Int(_) => Ok(PreCol::Pos(self.expect_usize()?)),
            TokenKind::Ident(s) if !KEYWORDS.contains(&s.as_str()) => {
                let name = s.clone();
                let offset = self.peek().offset;
                self.advance();
                Ok(PreCol::Named(name, offset))
            }
            other => self.error(format!("expected column (position or name), found {other}")),
        }
    }

    /// Inferred output attribute names of `q`, when a catalog is present.
    fn attrs_for(&self, q: &Query) -> Option<Vec<Option<String>>> {
        let catalog = self.catalog?;
        hypoquery_algebra::attrs_of(q, catalog).ok()
    }

    fn resolve_col(&self, col: PreCol, q: &Query) -> Result<usize, ParseError> {
        match col {
            PreCol::Pos(i) => Ok(i),
            PreCol::Named(name, offset) => {
                let attrs = self.attrs_for(q).ok_or(ParseError {
                    offset,
                    message: format!(
                        "named column `{name}` requires a schema with attribute names"
                    ),
                })?;
                hypoquery_algebra::position_of(&attrs, &name).ok_or(ParseError {
                    offset,
                    message: format!("no column named `{name}` in this input"),
                })
            }
        }
    }

    fn resolve_cols(&self, cols: Vec<PreCol>, q: &Query) -> Result<Vec<usize>, ParseError> {
        cols.into_iter().map(|c| self.resolve_col(c, q)).collect()
    }

    fn resolve_agg(&self, agg: PreAgg, q: &Query) -> Result<AggExpr, ParseError> {
        Ok(match agg {
            PreAgg::Count => AggExpr::Count,
            PreAgg::Sum(c) => AggExpr::Sum(self.resolve_col(c, q)?),
            PreAgg::Min(c) => AggExpr::Min(self.resolve_col(c, q)?),
            PreAgg::Max(c) => AggExpr::Max(self.resolve_col(c, q)?),
        })
    }

    fn resolve_pred(&self, p: PrePred, q: &Query) -> Result<Predicate, ParseError> {
        Ok(match p {
            PrePred::True => Predicate::True,
            PrePred::False => Predicate::False,
            PrePred::Cmp(a, op, b) => {
                Predicate::Cmp(self.resolve_scalar(a, q)?, op, self.resolve_scalar(b, q)?)
            }
            PrePred::And(a, b) => self.resolve_pred(*a, q)?.and(self.resolve_pred(*b, q)?),
            PrePred::Or(a, b) => self.resolve_pred(*a, q)?.or(self.resolve_pred(*b, q)?),
            PrePred::Not(a) => self.resolve_pred(*a, q)?.not(),
        })
    }

    fn resolve_scalar(&self, s: PreScalar, q: &Query) -> Result<ScalarExpr, ParseError> {
        Ok(match s {
            PreScalar::Col(c) => ScalarExpr::Col(self.resolve_col(c, q)?),
            PreScalar::Const(v) => ScalarExpr::Const(v),
        })
    }

    fn literal(&mut self) -> Result<Value, ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Int(v) => {
                self.advance();
                Ok(Value::int(v))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Value::str(s))
            }
            TokenKind::Ident(ref s) if s == "true" => {
                self.advance();
                Ok(Value::bool(true))
            }
            TokenKind::Ident(ref s) if s == "false" => {
                self.advance();
                Ok(Value::bool(false))
            }
            other => self.error(format!("expected literal, found {other}")),
        }
    }

    // -- state expressions ---------------------------------------------------

    fn state_expr(&mut self) -> Result<StateExpr, ParseError> {
        let mut eta = self.state_primary()?;
        while self.peek().kind == TokenKind::Hash {
            self.advance();
            eta = eta.compose(self.state_primary()?);
        }
        Ok(eta)
    }

    fn state_primary(&mut self) -> Result<StateExpr, ParseError> {
        if self.peek().kind == TokenKind::LParen {
            self.advance();
            let eta = self.state_expr()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(eta);
        }
        self.expect(&TokenKind::LBrace)?;
        // Empty substitution.
        if self.peek().kind == TokenKind::RBrace {
            self.advance();
            return Ok(StateExpr::subst(ExplicitSubst::empty()));
        }
        // Update?
        if self.at_keyword("insert") || self.at_keyword("delete") || self.at_keyword("if") {
            let u = self.update()?;
            self.expect(&TokenKind::RBrace)?;
            return Ok(StateExpr::update(u));
        }
        // Explicit substitution: binding (',' binding)*.
        let mut subst = ExplicitSubst::empty();
        loop {
            let q = self.query()?;
            self.expect(&TokenKind::Slash)?;
            let name = self.expect_name()?;
            subst.bind(name, q);
            if self.peek().kind == TokenKind::Comma {
                self.advance();
            } else {
                break;
            }
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(StateExpr::subst(subst))
    }

    // -- updates -------------------------------------------------------------

    fn update(&mut self) -> Result<Update, ParseError> {
        let mut u = self.atomic_update()?;
        while self.peek().kind == TokenKind::Semi {
            self.advance();
            u = u.then(self.atomic_update()?);
        }
        Ok(u)
    }

    fn atomic_update(&mut self) -> Result<Update, ParseError> {
        if self.peek().kind == TokenKind::LParen {
            self.advance();
            let u = self.update()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(u);
        }
        if self.eat_keyword("insert") {
            self.expect_keyword("into")?;
            let name = self.expect_name()?;
            let q = self.factor()?;
            return Ok(Update::insert(name, q));
        }
        if self.eat_keyword("delete") {
            self.expect_keyword("from")?;
            let name = self.expect_name()?;
            let q = self.factor()?;
            return Ok(Update::delete(name, q));
        }
        if self.eat_keyword("if") {
            let guard = self.query()?;
            self.expect_keyword("then")?;
            let then_u = self.update()?;
            self.expect_keyword("else")?;
            let else_u = self.update()?;
            self.expect_keyword("end")?;
            return Ok(Update::cond(guard, then_u, else_u));
        }
        self.error(format!(
            "expected update (insert/delete/if), found {}",
            self.peek().kind
        ))
    }

    // -- predicates ------------------------------------------------------------

    fn pre_predicate(&mut self) -> Result<PrePred, ParseError> {
        let mut p = self.pre_and()?;
        while self.eat_keyword("or") {
            p = PrePred::Or(Box::new(p), Box::new(self.pre_and()?));
        }
        Ok(p)
    }

    fn pre_and(&mut self) -> Result<PrePred, ParseError> {
        let mut p = self.pre_unary()?;
        while self.eat_keyword("and") {
            p = PrePred::And(Box::new(p), Box::new(self.pre_unary()?));
        }
        Ok(p)
    }

    fn pre_unary(&mut self) -> Result<PrePred, ParseError> {
        if self.eat_keyword("not") {
            return Ok(PrePred::Not(Box::new(self.pre_unary()?)));
        }
        if self.eat_keyword("true") {
            return Ok(PrePred::True);
        }
        if self.eat_keyword("false") {
            return Ok(PrePred::False);
        }
        if self.peek().kind == TokenKind::LParen {
            self.advance();
            let p = self.pre_predicate()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(p);
        }
        let a = self.pre_scalar()?;
        let op = self.cmp_op()?;
        let b = self.pre_scalar()?;
        Ok(PrePred::Cmp(a, op, b))
    }

    fn pre_scalar(&mut self) -> Result<PreScalar, ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Hash => {
                self.advance();
                Ok(PreScalar::Col(PreCol::Pos(self.expect_usize()?)))
            }
            TokenKind::Int(v) => {
                self.advance();
                Ok(PreScalar::Const(Value::int(v)))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(PreScalar::Const(Value::str(s)))
            }
            TokenKind::Ident(ref name) if !KEYWORDS.contains(&name.as_str()) => {
                let name = name.clone();
                let offset = self.peek().offset;
                self.advance();
                Ok(PreScalar::Col(PreCol::Named(name, offset)))
            }
            other => self.error(format!(
                "expected scalar (#N, column name, integer, string), found {other}"
            )),
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        let op = match self.peek().kind {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            _ => {
                return self.error(format!(
                    "expected comparison operator, found {}",
                    self.peek().kind
                ))
            }
        };
        self.advance();
        Ok(op)
    }

    fn finish<T>(&mut self, value: T) -> Result<T, ParseError> {
        if self.peek().kind == TokenKind::Eof {
            Ok(value)
        } else {
            self.error(format!("unexpected trailing input: {}", self.peek().kind))
        }
    }
}

/// Parse a complete query (positional column references only).
pub fn parse_query(src: &str) -> Result<Query, ParseError> {
    let mut p = Parser::new(src, None)?;
    let q = p.query()?;
    p.finish(q)
}

/// Parse a complete query, resolving named column references
/// (`salary >= 200`) against the catalog's attribute names.
pub fn parse_query_named(src: &str, catalog: &Catalog) -> Result<Query, ParseError> {
    let mut p = Parser::new(src, Some(catalog))?;
    let q = p.query()?;
    p.finish(q)
}

/// Parse a complete update expression (positional columns only).
pub fn parse_update(src: &str) -> Result<Update, ParseError> {
    let mut p = Parser::new(src, None)?;
    let u = p.update()?;
    p.finish(u)
}

/// Parse a complete update expression with named-column resolution.
pub fn parse_update_named(src: &str, catalog: &Catalog) -> Result<Update, ParseError> {
    let mut p = Parser::new(src, Some(catalog))?;
    let u = p.update()?;
    p.finish(u)
}

/// Parse a complete hypothetical-state expression.
pub fn parse_state_expr(src: &str) -> Result<StateExpr, ParseError> {
    let mut p = Parser::new(src, None)?;
    let eta = p.state_expr()?;
    p.finish(eta)
}

/// Parse a complete hypothetical-state expression with named-column
/// resolution.
pub fn parse_state_expr_named(src: &str, catalog: &Catalog) -> Result<StateExpr, ParseError> {
    let mut p = Parser::new(src, Some(catalog))?;
    let eta = p.state_expr()?;
    p.finish(eta)
}

/// Parse a complete predicate (positional columns only — there is no
/// input schema to resolve names against).
pub fn parse_predicate(src: &str) -> Result<Predicate, ParseError> {
    let mut p = Parser::new(src, None)?;
    let pred = p.pre_predicate()?;
    let pred = p.resolve_pred(pred, &Query::empty(0))?;
    p.finish(pred)
}

/// Check whether `name` is reserved as a keyword in the surface language.
pub fn is_keyword(name: &str) -> bool {
    KEYWORDS.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_query_2_1b() {
        // ((R ⋈ S) when {ins(R, σ_{#0>30}(S))}) when {del(S, σ_{#0<60}(S))}
        let q = parse_query(
            "(R join S on #0 = #2) \
             when {insert into R (select #0 > 30 (S))} \
             when {delete from S (select #0 < 60 (S))}",
        )
        .unwrap();
        let expected = Query::base("R")
            .join(Query::base("S"), Predicate::col_col(0, CmpOp::Eq, 2))
            .when(StateExpr::update(Update::insert(
                "R",
                Query::base("S").select(Predicate::col_cmp(0, CmpOp::Gt, 30)),
            )))
            .when(StateExpr::update(Update::delete(
                "S",
                Query::base("S").select(Predicate::col_cmp(0, CmpOp::Lt, 60)),
            )));
        assert_eq!(q, expected);
    }

    #[test]
    fn set_operators_left_assoc() {
        let q = parse_query("R union S except T intersect R").unwrap();
        assert_eq!(
            q,
            Query::base("R")
                .union(Query::base("S"))
                .diff(Query::base("T"))
                .intersect(Query::base("R"))
        );
    }

    #[test]
    fn explicit_substitutions_and_composition() {
        let eta = parse_state_expr("{S / R, select #0 = 1 (R) / S} # {insert into T (R)}").unwrap();
        match eta {
            StateExpr::Compose(a, b) => {
                let eps = a.as_subst().unwrap();
                assert_eq!(eps.len(), 2);
                assert_eq!(eps.get(&"R".into()), Some(&Query::base("S")));
                assert!(matches!(*b, StateExpr::Update(_)));
            }
            other => panic!("expected composition, got {other}"),
        }
    }

    #[test]
    fn empty_substitution_parses() {
        assert_eq!(
            parse_state_expr("{}").unwrap(),
            StateExpr::subst(ExplicitSubst::empty())
        );
    }

    #[test]
    fn rows_empties_projections_aggregates() {
        let q = parse_query("project 1, 0 (row(1, \"x\") union empty(2))").unwrap();
        assert_eq!(
            q,
            Query::singleton(hypoquery_storage::tuple![1, "x"])
                .union(Query::empty(2))
                .project([1usize, 0])
        );
        let q = parse_query("aggregate [0; count, sum 1] (R)").unwrap();
        assert_eq!(
            q,
            Query::base("R").aggregate([0], [AggExpr::Count, AggExpr::Sum(1)])
        );
        // Global aggregate: empty group-by list.
        let q = parse_query("aggregate [; count] (R)").unwrap();
        assert_eq!(
            q,
            Query::base("R").aggregate(Vec::<usize>::new(), [AggExpr::Count])
        );
    }

    #[test]
    fn conditional_updates() {
        let u =
            parse_update("if select #0 = 1 (V) then insert into R (S) else delete from R (S) end")
                .unwrap();
        assert!(matches!(u, Update::Cond { .. }));
        // Sequencing.
        let u = parse_update("insert into R (S); delete from S (S); insert into T (R)").unwrap();
        assert_eq!(u.flatten().len(), 3);
    }

    #[test]
    fn predicates_full_grammar() {
        let p = parse_predicate("not (#0 < 3 and #1 <> \"a\") or true").unwrap();
        assert_eq!(
            p,
            Predicate::col_cmp(0, CmpOp::Lt, 3)
                .and(Predicate::Cmp(
                    ScalarExpr::Col(1),
                    CmpOp::Ne,
                    ScalarExpr::Const(Value::str("a"))
                ))
                .not()
                .or(Predicate::True)
        );
    }

    #[test]
    fn errors_have_positions_and_messages() {
        let e = parse_query("select #0 > (S)").unwrap_err();
        assert!(e.to_string().contains("expected scalar"), "{e}");
        let e = parse_query("R union").unwrap_err();
        assert!(e.offset > 0);
        let e = parse_query("R S").unwrap_err();
        assert!(e.to_string().contains("trailing"), "{e}");
        let e = parse_query("select true (S").unwrap_err();
        assert!(e.to_string().contains("expected `)`"), "{e}");
    }

    #[test]
    fn keywords_cannot_name_relations() {
        let e = parse_query("union").unwrap_err();
        assert!(e.to_string().contains("keyword"), "{e}");
        let e = parse_state_expr("{R / when}").unwrap_err();
        assert!(e.to_string().contains("keyword"), "{e}");
        assert!(is_keyword("when"));
        assert!(!is_keyword("R"));
    }

    #[test]
    fn when_binds_loosest() {
        let q = parse_query("R union S when {insert into R (S)}").unwrap();
        match q {
            Query::When(body, _) => {
                assert_eq!(*body, Query::base("R").union(Query::base("S")));
            }
            other => panic!("expected when at root, got {other}"),
        }
    }

    #[test]
    fn parenthesized_state_composition_after_when() {
        let q = parse_query("R when ({insert into R (S)} # {delete from R (S)})").unwrap();
        match q {
            Query::When(_, eta) => assert!(matches!(*eta, StateExpr::Compose(_, _))),
            other => panic!("expected when, got {other}"),
        }
    }

    #[test]
    fn display_roundtrip_via_parser_syntax() {
        // Not full display-parse roundtrip (Display uses math glyphs), but
        // the parser accepts what our docs advertise.
        for src in [
            "R",
            "row(1, 2)",
            "empty(0)",
            "select #0 >= 60 (S)",
            "project 0 (R times V)",
            "R join S on #0 = #2 and #1 > 5",
            "R when {}",
            "(R except S) when {S / R}",
        ] {
            parse_query(src).unwrap_or_else(|e| panic!("{src}: {e}"));
        }
    }
}

#[cfg(test)]
mod named_tests {
    use super::*;
    use hypoquery_storage::RelSchema;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.declare("emp", RelSchema::named(["id", "salary"]))
            .unwrap();
        c.declare("dept", RelSchema::named(["emp_id", "dept_id"]))
            .unwrap();
        c.declare_arity("anon", 2).unwrap();
        c
    }

    #[test]
    fn named_select_resolves() {
        let c = catalog();
        let q = parse_query_named("select salary >= 200 (emp)", &c).unwrap();
        assert_eq!(
            q,
            Query::base("emp").select(Predicate::col_cmp(1, CmpOp::Ge, 200))
        );
        // Mixed named and positional.
        let q = parse_query_named("select salary >= 200 and #0 < 5 (emp)", &c).unwrap();
        assert_eq!(
            q,
            Query::base("emp").select(
                Predicate::col_cmp(1, CmpOp::Ge, 200).and(Predicate::col_cmp(0, CmpOp::Lt, 5))
            )
        );
    }

    #[test]
    fn named_join_resolves_across_sides() {
        let c = catalog();
        let q = parse_query_named("emp join dept on id = emp_id", &c).unwrap();
        assert_eq!(
            q,
            Query::base("emp").join(Query::base("dept"), Predicate::col_col(0, CmpOp::Eq, 2))
        );
    }

    #[test]
    fn named_project_and_aggregate() {
        let c = catalog();
        let q = parse_query_named("project salary, id (emp)", &c).unwrap();
        assert_eq!(q, Query::base("emp").project([1usize, 0]));
        let q = parse_query_named("aggregate [id; count, sum salary] (emp)", &c).unwrap();
        assert_eq!(
            q,
            Query::base("emp").aggregate([0], [AggExpr::Count, AggExpr::Sum(1)])
        );
    }

    #[test]
    fn names_flow_through_operators() {
        let c = catalog();
        // After projecting salary first, `salary` is column 0.
        let q = parse_query_named("select salary > 10 (project salary (emp))", &c).unwrap();
        assert_eq!(
            q,
            Query::base("emp")
                .project([1usize])
                .select(Predicate::col_cmp(0, CmpOp::Gt, 10))
        );
        // Names survive a `when`.
        let q =
            parse_query_named("select salary > 10 (emp when {insert into emp (emp)})", &c).unwrap();
        assert!(matches!(q, Query::Select(_, _)));
    }

    #[test]
    fn named_update_queries() {
        let c = catalog();
        let u = parse_update_named("delete from emp (select salary < 100 (emp))", &c).unwrap();
        assert_eq!(
            u,
            Update::delete(
                "emp",
                Query::base("emp").select(Predicate::col_cmp(1, CmpOp::Lt, 100))
            )
        );
    }

    #[test]
    fn unknown_and_unresolvable_names_error() {
        let c = catalog();
        let e = parse_query_named("select wages > 10 (emp)", &c).unwrap_err();
        assert!(e.to_string().contains("no column named `wages`"), "{e}");
        // Anonymous schema: names cannot resolve.
        let e = parse_query_named("select wages > 10 (anon)", &c).unwrap_err();
        assert!(e.to_string().contains("no column named"), "{e}");
        // No catalog at all: clear error.
        let e = parse_query("select salary > 10 (emp)").unwrap_err();
        assert!(e.to_string().contains("requires a schema"), "{e}");
    }

    #[test]
    fn join_name_collision_takes_first() {
        let mut c = catalog();
        c.declare("emp2", RelSchema::named(["id", "bonus"]))
            .unwrap();
        // Both sides have `id`; the first occurrence (left side, col 0)
        // wins — document-by-test.
        let q = parse_query_named("emp join emp2 on id = bonus", &c).unwrap();
        assert_eq!(
            q,
            Query::base("emp").join(Query::base("emp2"), Predicate::col_col(0, CmpOp::Eq, 3))
        );
    }
}
