//! Parse/print round-trip: `parse(unparse(x)) == x` on random well-formed
//! queries, updates and state expressions.

use proptest::prelude::*;

use hypoquery_parser::{parse_query, parse_state_expr, parse_update};
use hypoquery_parser::{unparse_query, unparse_state_expr, unparse_update};
use hypoquery_testkit::{arb_query, arb_state_expr, arb_update, Universe};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn query_roundtrip(q in arb_query(&Universe::standard(), 2, 4)) {
        let src = unparse_query(&q);
        let back = parse_query(&src)
            .unwrap_or_else(|e| panic!("unparse produced unparseable source:\n{src}\n{e}"));
        prop_assert_eq!(back, q, "source: {}", src);
    }

    #[test]
    fn unary_query_roundtrip(q in arb_query(&Universe::standard(), 1, 4)) {
        let src = unparse_query(&q);
        prop_assert_eq!(parse_query(&src).unwrap(), q, "source: {}", src);
    }

    #[test]
    fn update_roundtrip(u in arb_update(&Universe::standard(), 3)) {
        let src = unparse_update(&u);
        prop_assert_eq!(parse_update(&src).unwrap(), u, "source: {}", src);
    }

    #[test]
    fn state_expr_roundtrip(eta in arb_state_expr(&Universe::standard(), 3)) {
        let src = unparse_state_expr(&eta);
        prop_assert_eq!(parse_state_expr(&src).unwrap(), eta, "source: {}", src);
    }
}
