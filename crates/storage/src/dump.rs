//! Plain-text persistence for database states.
//!
//! A deliberately simple, dependency-free line format (the workspace's
//! sanctioned crates do not include a serialization framework):
//!
//! ```text
//! # hypoquery dump v1
//! relation emp 2 id,salary
//! 1\t100
//! 2\t"ann \"the boss\""
//! relation tags 1
//! true
//! ```
//!
//! One `relation <name> <arity> [attrs]` header per relation (attrs
//! comma-separated, omitted for positional schemas), followed by one row
//! per line with tab-separated values: bare integers, `true`/`false`
//! booleans, and double-quoted strings with `\"`/`\\`/`\t`/`\n` escapes.

use std::fmt;

use crate::database::DatabaseState;
use crate::schema::{Catalog, RelSchema};
use crate::tuple::Tuple;
use crate::value::Value;

/// Errors raised while loading a dump.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DumpError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for DumpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dump error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DumpError {}

fn encode_value(v: &Value, out: &mut String) {
    match v {
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\t' => out.push_str("\\t"),
                    '\n' => out.push_str("\\n"),
                    other => out.push(other),
                }
            }
            out.push('"');
        }
    }
}

fn decode_value(field: &str, line: usize) -> Result<Value, DumpError> {
    let field = field.trim();
    if field == "true" {
        return Ok(Value::bool(true));
    }
    if field == "false" {
        return Ok(Value::bool(false));
    }
    if let Ok(i) = field.parse::<i64>() {
        return Ok(Value::int(i));
    }
    if field.starts_with('"') && field.ends_with('"') && field.len() >= 2 {
        let inner = &field[1..field.len() - 1];
        let mut s = String::new();
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('t') => s.push('\t'),
                    Some('n') => s.push('\n'),
                    other => {
                        return Err(DumpError {
                            line,
                            message: format!("bad escape \\{other:?} in string"),
                        })
                    }
                }
            } else {
                s.push(c);
            }
        }
        return Ok(Value::str(s));
    }
    Err(DumpError {
        line,
        message: format!("unparseable value {field:?}"),
    })
}

/// Encode one tuple as a dump/wire row line: tab-separated values (bare
/// integers, `true`/`false`, double-quoted escaped strings), or the
/// literal `()` for the 0-ary tuple. The inverse of [`decode_tuple`].
pub fn encode_tuple(t: &Tuple) -> String {
    if t.arity() == 0 {
        return "()".to_string();
    }
    let mut row = String::new();
    for (i, v) in t.fields().iter().enumerate() {
        if i > 0 {
            row.push('\t');
        }
        encode_value(v, &mut row);
    }
    row
}

/// Decode a row line produced by [`encode_tuple`]. `line_no` only labels
/// errors (pass 0 when there is no meaningful line number).
pub fn decode_tuple(line: &str, line_no: usize) -> Result<Tuple, DumpError> {
    let line = line.trim_end();
    if line == "()" {
        return Ok(Tuple::empty());
    }
    let values: Result<Vec<Value>, DumpError> =
        line.split('\t').map(|f| decode_value(f, line_no)).collect();
    Ok(Tuple::new(values?))
}

/// Serialize a state (catalog + data) to the text format.
pub fn dump_state(db: &DatabaseState) -> String {
    let mut out = String::from("# hypoquery dump v1\n");
    for (name, schema) in db.catalog().iter() {
        out.push_str("relation ");
        out.push_str(name.as_str());
        out.push(' ');
        out.push_str(&schema.arity.to_string());
        if let Some(attrs) = &schema.attrs {
            out.push(' ');
            out.push_str(&attrs.join(","));
        }
        out.push('\n');
        if let Ok(rel) = db.get(name) {
            for t in rel.iter() {
                // Note the 0-ary tuple encodes as `()`, not a blank line
                // (which the loader skips).
                out.push_str(&encode_tuple(t));
                out.push('\n');
            }
        }
    }
    out
}

/// Load a state from the text format.
pub fn load_state(src: &str) -> Result<DatabaseState, DumpError> {
    let mut catalog = Catalog::new();
    // First pass: headers build the catalog.
    for (i, line) in src.lines().enumerate() {
        let line_no = i + 1;
        let line = line.trim_end();
        if let Some(rest) = line.strip_prefix("relation ") {
            let mut parts = rest.splitn(3, ' ');
            let name = parts.next().filter(|s| !s.is_empty()).ok_or(DumpError {
                line: line_no,
                message: "relation header missing name".into(),
            })?;
            let arity: usize = parts.next().and_then(|s| s.parse().ok()).ok_or(DumpError {
                line: line_no,
                message: "relation header missing arity".into(),
            })?;
            let schema = match parts.next() {
                Some(attrs) if !attrs.trim().is_empty() => {
                    let attrs: Vec<String> =
                        attrs.split(',').map(|a| a.trim().to_string()).collect();
                    if attrs.len() != arity {
                        return Err(DumpError {
                            line: line_no,
                            message: format!("{} attribute names for arity {arity}", attrs.len()),
                        });
                    }
                    RelSchema::named(attrs)
                }
                _ => RelSchema::positional(arity),
            };
            catalog.declare(name, schema).map_err(|e| DumpError {
                line: line_no,
                message: e.to_string(),
            })?;
        }
    }
    // Second pass: rows.
    let mut db = DatabaseState::new(catalog);
    let mut current: Option<(String, usize)> = None;
    for (i, line) in src.lines().enumerate() {
        let line_no = i + 1;
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("relation ") {
            let mut parts = rest.splitn(3, ' ');
            let name = parts.next().unwrap_or_default().to_string();
            let arity: usize = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
            current = Some((name, arity));
            continue;
        }
        let (name, arity) = current.clone().ok_or(DumpError {
            line: line_no,
            message: "row before any relation header".into(),
        })?;
        let t = decode_tuple(line, line_no)?;
        if t.arity() != arity {
            return Err(DumpError {
                line: line_no,
                message: format!("expected {arity} fields, found {}", t.arity()),
            });
        }
        db.insert_row(name.as_str(), t).map_err(|e| DumpError {
            line: line_no,
            message: e.to_string(),
        })?;
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn sample() -> DatabaseState {
        let mut cat = Catalog::new();
        cat.declare("emp", RelSchema::named(["id", "name"]))
            .unwrap();
        cat.declare_arity("flags", 1).unwrap();
        cat.declare_arity("unit", 0).unwrap();
        let mut db = DatabaseState::new(cat);
        db.insert_row("emp", tuple![1, "ann \"the boss\""]).unwrap();
        db.insert_row("emp", tuple![2, "bob\ttabbed\nline"])
            .unwrap();
        db.insert_row("flags", tuple![true]).unwrap();
        db.insert_row("unit", Tuple::empty()).unwrap();
        db
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let db = sample();
        let text = dump_state(&db);
        let back = load_state(&text).unwrap();
        assert_eq!(back, db);
        // Named attrs survive.
        assert_eq!(
            back.catalog().schema(&"emp".into()).unwrap().attrs,
            Some(vec!["id".to_string(), "name".to_string()])
        );
    }

    #[test]
    fn empty_relations_roundtrip() {
        let mut cat = Catalog::new();
        cat.declare_arity("lonely", 3).unwrap();
        let db = DatabaseState::new(cat);
        let back = load_state(&dump_state(&db)).unwrap();
        assert_eq!(back, db);
        assert_eq!(back.catalog().arity(&"lonely".into()).unwrap(), 3);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = load_state("1\t2\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("before any relation header"));

        let e = load_state("relation R 2\n1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("expected 2 fields"));

        let e = load_state("relation R 2 a,b,c\n").unwrap_err();
        assert!(e.message.contains("attribute names"));

        let e = load_state("relation R two\n").unwrap_err();
        assert!(e.message.contains("missing arity"));

        let e = load_state("relation R 1\nwhat\n").unwrap_err();
        assert!(e.message.contains("unparseable"));
    }

    #[test]
    fn tuple_codec_roundtrips() {
        for t in [
            Tuple::empty(),
            tuple![1, -2, 3],
            tuple!["plain", "tab\there", "quote\"backslash\\", "nl\nend"],
            tuple![true, false, 0],
        ] {
            let line = encode_tuple(&t);
            assert!(!line.contains('\n'), "{line:?}");
            assert_eq!(decode_tuple(&line, 7).unwrap(), t, "{line:?}");
        }
        assert_eq!(decode_tuple("nope", 7).unwrap_err().line, 7);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\nrelation R 1\n# comment inside\n5\n\n";
        let db = load_state(text).unwrap();
        assert_eq!(db.get(&"R".into()).unwrap().len(), 1);
    }
}
