//! Storage-layer errors.

use std::fmt;

use crate::schema::RelName;

/// Errors raised by the storage layer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StorageError {
    /// A tuple's arity did not match the relation's arity.
    ArityMismatch {
        /// What was being done when the mismatch was found.
        context: &'static str,
        /// Arity expected by the target.
        expected: usize,
        /// Arity actually supplied.
        found: usize,
    },
    /// A relation name is not declared in the catalog.
    UnknownRelation(RelName),
    /// A relation name was declared twice with conflicting schemas.
    DuplicateRelation(RelName),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ArityMismatch {
                context,
                expected,
                found,
            } => {
                write!(
                    f,
                    "arity mismatch in {context}: expected {expected}, found {found}"
                )
            }
            StorageError::UnknownRelation(name) => {
                write!(f, "unknown relation {name}")
            }
            StorageError::DuplicateRelation(name) => {
                write!(f, "relation {name} declared more than once")
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = StorageError::ArityMismatch {
            context: "insert",
            expected: 2,
            found: 3,
        };
        assert_eq!(
            e.to_string(),
            "arity mismatch in insert: expected 2, found 3"
        );
        assert_eq!(
            StorageError::UnknownRelation(RelName::new("R")).to_string(),
            "unknown relation R"
        );
        assert_eq!(
            StorageError::DuplicateRelation(RelName::new("R")).to_string(),
            "relation R declared more than once"
        );
    }
}
