//! Relations: finite sets of same-arity tuples.
//!
//! Set semantics, as in the paper. Backed by a `BTreeSet` so iteration is
//! deterministic and already sorted — the sort-merge `join_when` operator in
//! `hypoquery-eval` exploits this.
//!
//! Tuple storage is `Arc`-shared and copy-on-write: `clone()` is a pointer
//! bump, and the first mutation of a shared relation clones the underlying
//! set (`Arc::make_mut`). This is what makes hypothetical snapshots cheap —
//! the k states of a what-if tree or a prepared family all share the
//! untouched base relations physically.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use crate::error::StorageError;
use crate::tuple::Tuple;
use crate::value::Value;

/// A relation: a set of tuples sharing one arity.
///
/// Cloning is O(1) (shared storage); mutating a clone copies the tuple set
/// first (copy-on-write), so clones are fully isolated from each other.
#[derive(Clone, Eq, Debug)]
pub struct Relation {
    arity: usize,
    tuples: Arc<BTreeSet<Tuple>>,
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity
            && (Arc::ptr_eq(&self.tuples, &other.tuples) || self.tuples == other.tuples)
    }
}

impl Relation {
    /// The empty relation of the given arity.
    pub fn empty(arity: usize) -> Self {
        Relation {
            arity,
            tuples: Arc::new(BTreeSet::new()),
        }
    }

    /// Whether `self` and `other` physically share one tuple store.
    ///
    /// `true` implies equality; the converse need not hold. This is the
    /// observable half of the copy-on-write contract: snapshots that have
    /// not diverged share storage, and tests assert on it.
    pub fn ptr_eq(&self, other: &Relation) -> bool {
        self.arity == other.arity && Arc::ptr_eq(&self.tuples, &other.tuples)
    }

    /// The shared tuple storage itself. Crate-internal: the index cache
    /// keys cached indexes on this `Arc`'s address and validates entries
    /// against it with a `Weak`.
    pub(crate) fn storage_arc(&self) -> &Arc<BTreeSet<Tuple>> {
        &self.tuples
    }

    fn from_set(arity: usize, tuples: BTreeSet<Tuple>) -> Self {
        Relation {
            arity,
            tuples: Arc::new(tuples),
        }
    }

    /// Build a relation from rows, checking that every row has `arity`.
    pub fn from_rows(
        arity: usize,
        rows: impl IntoIterator<Item = Tuple>,
    ) -> Result<Self, StorageError> {
        let mut tuples = BTreeSet::new();
        for row in rows {
            if row.arity() != arity {
                return Err(StorageError::ArityMismatch {
                    context: "relation insert",
                    expected: arity,
                    found: row.arity(),
                });
            }
            tuples.insert(row);
        }
        Ok(Relation::from_set(arity, tuples))
    }

    /// Wrap an already-built tuple set, checking that every row has
    /// `arity`. Unlike per-row [`Relation::insert`], this performs no
    /// membership pre-checks and no copy-on-write bookkeeping — it is the
    /// bulk constructor for operators that accumulate a result set and
    /// seal it once.
    pub fn from_tuple_set(arity: usize, tuples: BTreeSet<Tuple>) -> Result<Self, StorageError> {
        if let Some(t) = tuples.iter().find(|t| t.arity() != arity) {
            return Err(StorageError::ArityMismatch {
                context: "relation from set",
                expected: arity,
                found: t.arity(),
            });
        }
        Ok(Relation::from_set(arity, tuples))
    }

    /// Build a single-tuple relation (the paper's `{t}`).
    pub fn singleton(t: Tuple) -> Self {
        let arity = t.arity();
        let mut tuples = BTreeSet::new();
        tuples.insert(t);
        Relation::from_set(arity, tuples)
    }

    /// This relation's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Whether `t` is a member.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Insert a tuple; errors if its arity differs. Returns whether the
    /// tuple was newly inserted.
    pub fn insert(&mut self, t: Tuple) -> Result<bool, StorageError> {
        if t.arity() != self.arity {
            return Err(StorageError::ArityMismatch {
                context: "relation insert",
                expected: self.arity,
                found: t.arity(),
            });
        }
        if self.tuples.contains(&t) {
            // Duplicate insert: never un-share the storage for a no-op.
            return Ok(false);
        }
        Ok(Arc::make_mut(&mut self.tuples).insert(t))
    }

    /// Remove a tuple; returns whether it was present.
    ///
    /// Copy-on-write note: a removal that misses still un-shares the
    /// storage only when the tuple is present — we check membership first
    /// so no-op removes never force a copy of a shared set.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        if !self.tuples.contains(t) {
            return false;
        }
        Arc::make_mut(&mut self.tuples).remove(t)
    }

    /// Iterate tuples in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter()
    }

    /// Set union. Errors on arity mismatch.
    ///
    /// When one operand is empty (or both share storage) the other is
    /// returned as a shared-storage clone — no tuples are copied.
    pub fn union(&self, other: &Relation) -> Result<Relation, StorageError> {
        self.check_same_arity(other, "union")?;
        if other.is_empty() || Arc::ptr_eq(&self.tuples, &other.tuples) {
            return Ok(self.clone());
        }
        if self.is_empty() {
            return Ok(other.clone());
        }
        let out: BTreeSet<Tuple> = self.tuples.union(&other.tuples).cloned().collect();
        // other ⊆ self (or vice versa): the union *is* one operand — hand
        // its storage back shared instead of keeping the fresh copy.
        if out.len() == self.tuples.len() {
            return Ok(self.clone());
        }
        if out.len() == other.tuples.len() {
            return Ok(other.clone());
        }
        Ok(Relation::from_set(self.arity, out))
    }

    /// Set intersection. Errors on arity mismatch.
    pub fn intersect(&self, other: &Relation) -> Result<Relation, StorageError> {
        self.check_same_arity(other, "intersection")?;
        if Arc::ptr_eq(&self.tuples, &other.tuples) {
            return Ok(self.clone());
        }
        let out: BTreeSet<Tuple> = self.tuples.intersection(&other.tuples).cloned().collect();
        if out.len() == self.tuples.len() {
            return Ok(self.clone());
        }
        if out.len() == other.tuples.len() {
            return Ok(other.clone());
        }
        Ok(Relation::from_set(self.arity, out))
    }

    /// Set difference (`self − other`). Errors on arity mismatch.
    ///
    /// Subtracting nothing returns `self` as a shared-storage clone.
    pub fn difference(&self, other: &Relation) -> Result<Relation, StorageError> {
        self.check_same_arity(other, "difference")?;
        if other.is_empty() {
            return Ok(self.clone());
        }
        if Arc::ptr_eq(&self.tuples, &other.tuples) {
            return Ok(Relation::empty(self.arity));
        }
        let out: BTreeSet<Tuple> = self.tuples.difference(&other.tuples).cloned().collect();
        // Disjoint subtrahend: nothing was removed — keep shared storage.
        if out.len() == self.tuples.len() {
            return Ok(self.clone());
        }
        Ok(Relation::from_set(self.arity, out))
    }

    /// Cartesian product: arity is the sum of operand arities.
    pub fn product(&self, other: &Relation) -> Relation {
        let mut tuples = BTreeSet::new();
        for a in self.tuples.iter() {
            for b in other.tuples.iter() {
                tuples.insert(a.concat(b));
            }
        }
        Relation::from_set(self.arity + other.arity, tuples)
    }

    /// Select: keep tuples satisfying `pred`.
    pub fn select(&self, mut pred: impl FnMut(&Tuple) -> bool) -> Relation {
        Relation::from_set(
            self.arity,
            self.tuples
                .iter()
                .filter(|t| pred(t))
                .cloned()
                .collect::<BTreeSet<_>>(),
        )
    }

    /// Project onto column positions. Errors if any position is out of range.
    pub fn project(&self, cols: &[usize]) -> Result<Relation, StorageError> {
        if let Some(&bad) = cols.iter().find(|&&c| c >= self.arity) {
            return Err(StorageError::ArityMismatch {
                context: "projection column out of range",
                expected: self.arity,
                found: bad,
            });
        }
        Ok(Relation::from_set(
            cols.len(),
            self.tuples.iter().map(|t| t.project(cols)).collect(),
        ))
    }

    fn check_same_arity(
        &self,
        other: &Relation,
        context: &'static str,
    ) -> Result<(), StorageError> {
        if self.arity != other.arity {
            return Err(StorageError::ArityMismatch {
                context,
                expected: self.arity,
                found: other.arity,
            });
        }
        Ok(())
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.tuples.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Tuple> for Relation {
    /// Collect tuples into a relation, inferring arity from the first tuple.
    ///
    /// Contract: **every tuple must have the same arity as the first**. An
    /// empty iterator yields the 0-ary empty relation. A mismatched tuple
    /// panics in debug builds (it would otherwise corrupt set cardinality
    /// silently); in release builds mismatches are skipped for
    /// backward-compatible behavior. Use [`Relation::from_rows`] when
    /// mismatches should surface as recoverable errors.
    fn from_iter<T: IntoIterator<Item = Tuple>>(iter: T) -> Self {
        let mut it = iter.into_iter();
        match it.next() {
            None => Relation::empty(0),
            Some(first) => {
                let arity = first.arity();
                let mut rel = Relation::singleton(first);
                for t in it {
                    debug_assert_eq!(
                        t.arity(),
                        arity,
                        "FromIterator<Tuple> for Relation: tuple arity {} \
                         disagrees with inferred arity {}",
                        t.arity(),
                        arity,
                    );
                    let _ = rel.insert(t);
                }
                rel
            }
        }
    }
}

/// Build an integer unary/short relation quickly in tests and examples:
/// rows given as arrays of `Into<Value>`.
pub fn rel_of<const N: usize>(rows: impl IntoIterator<Item = [Value; N]>) -> Relation {
    let tuples = rows.into_iter().map(Tuple::new);
    Relation::from_rows(N, tuples).expect("fixed-size rows have uniform arity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn r(rows: &[[i64; 2]]) -> Relation {
        Relation::from_rows(2, rows.iter().map(|&[a, b]| tuple![a, b])).unwrap()
    }

    #[test]
    fn insert_dedups_and_checks_arity() {
        let mut rel = Relation::empty(2);
        assert!(rel.insert(tuple![1, 2]).unwrap());
        assert!(!rel.insert(tuple![1, 2]).unwrap());
        assert_eq!(rel.len(), 1);
        assert!(rel.insert(tuple![1]).is_err());
    }

    #[test]
    fn set_operations() {
        let a = r(&[[1, 1], [2, 2], [3, 3]]);
        let b = r(&[[2, 2], [4, 4]]);
        assert_eq!(a.union(&b).unwrap().len(), 4);
        assert_eq!(a.intersect(&b).unwrap(), r(&[[2, 2]]));
        assert_eq!(a.difference(&b).unwrap(), r(&[[1, 1], [3, 3]]));
    }

    #[test]
    fn set_operations_arity_mismatch() {
        let a = Relation::empty(2);
        let b = Relation::empty(3);
        assert!(a.union(&b).is_err());
        assert!(a.intersect(&b).is_err());
        assert!(a.difference(&b).is_err());
    }

    #[test]
    fn product_concatenates() {
        let a = Relation::from_rows(1, [tuple![1], tuple![2]]).unwrap();
        let b = Relation::from_rows(1, [tuple![10]]).unwrap();
        let p = a.product(&b);
        assert_eq!(p.arity(), 2);
        assert_eq!(p, r(&[[1, 10], [2, 10]]));
    }

    #[test]
    fn product_with_empty_is_empty() {
        let a = r(&[[1, 1]]);
        let e = Relation::empty(1);
        assert!(a.product(&e).is_empty());
        assert_eq!(a.product(&e).arity(), 3);
    }

    #[test]
    fn select_filters() {
        let a = r(&[[1, 10], [2, 20], [3, 30]]);
        let out = a.select(|t| t[1].as_int().unwrap() >= 20);
        assert_eq!(out, r(&[[2, 20], [3, 30]]));
    }

    #[test]
    fn project_dedups() {
        let a = r(&[[1, 10], [1, 20]]);
        let out = a.project(&[0]).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.arity(), 1);
        assert!(a.project(&[5]).is_err());
    }

    #[test]
    fn singleton_and_membership() {
        let s = Relation::singleton(tuple![7, 8]);
        assert_eq!(s.len(), 1);
        assert!(s.contains(&tuple![7, 8]));
        assert!(!s.contains(&tuple![8, 7]));
    }

    #[test]
    fn display_is_sorted() {
        let a = r(&[[2, 2], [1, 1]]);
        assert_eq!(a.to_string(), "{(1, 1), (2, 2)}");
    }

    #[test]
    fn rel_of_helper() {
        let a = rel_of([[Value::int(1), Value::int(2)]]);
        assert_eq!(a.arity(), 2);
        assert_eq!(a.len(), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "disagrees with inferred arity")]
    fn from_iter_panics_on_arity_mismatch_in_debug() {
        let _: Relation = [tuple![1, 2], tuple![3]].into_iter().collect();
    }

    #[test]
    fn clone_shares_storage_until_write() {
        let a = r(&[[1, 1], [2, 2]]);
        let mut b = a.clone();
        assert!(a.ptr_eq(&b), "clone must share storage");
        assert!(b.insert(tuple![3, 3]).unwrap());
        assert!(!a.ptr_eq(&b), "first write must un-share");
        assert_eq!(a.len(), 2, "original must be isolated from the write");
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn noop_mutations_keep_sharing() {
        let a = r(&[[1, 1]]);
        let mut b = a.clone();
        assert!(!b.insert(tuple![1, 1]).unwrap(), "duplicate insert");
        assert!(!b.remove(&tuple![9, 9]), "missing remove");
        assert!(a.ptr_eq(&b), "no-op mutations must not copy the set");
    }

    #[test]
    fn empty_operand_set_ops_share_storage() {
        let a = r(&[[1, 1], [2, 2]]);
        let e = Relation::empty(2);
        assert!(a.union(&e).unwrap().ptr_eq(&a));
        assert!(e.union(&a).unwrap().ptr_eq(&a));
        assert!(a.difference(&e).unwrap().ptr_eq(&a));
        assert!(a.intersect(&a.clone()).unwrap().ptr_eq(&a));
        assert!(a.difference(&a.clone()).unwrap().is_empty());
    }
}
