//! # hypoquery-storage
//!
//! Relational storage substrate for the `hypoquery` reproduction of
//! Griffin & Hull, *A Framework for Implementing Hypothetical Queries*
//! (SIGMOD 1997).
//!
//! Provides the objects §3.1 of the paper quantifies over:
//!
//! * [`Value`] / [`Tuple`] — scalar domains and fixed-arity rows;
//! * [`Relation`] — finite sets of same-arity tuples with the standard set
//!   operations (set semantics, deterministic sorted iteration);
//! * [`Catalog`] — a database schema Σ: relation names with fixed arities;
//! * [`DatabaseState`] — a state `DB : Σ → R`, with the functional update
//!   `DB[R ← V]` used throughout the paper's semantics.

#![warn(missing_docs)]

pub mod bag;
pub mod database;
pub mod dump;
pub mod error;
pub mod index;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod value;

pub use bag::BagRelation;
pub use database::DatabaseState;
pub use dump::{decode_tuple, dump_state, encode_tuple, load_state, DumpError};
pub use error::StorageError;
pub use index::{
    distinct_count, index_counters, lookup_index, lookup_or_build_index, ColumnIndex, IndexCounters,
};
pub use relation::Relation;
pub use schema::{Catalog, RelName, RelSchema};
pub use tuple::Tuple;
pub use value::{Value, ValueType};
