//! Tuples: fixed-arity sequences of [`Value`]s.

use std::fmt;
use std::ops::Index;
use std::sync::Arc;

use crate::value::Value;

/// An immutable tuple of scalar values.
///
/// Backed by `Arc<[Value]>` so that cloning a tuple — which the set-algebraic
/// operators do for every row they move between relations — is a reference
/// count bump, never a payload copy.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple {
    fields: Arc<[Value]>,
}

impl Tuple {
    /// Build a tuple from an iterator of values.
    pub fn new(fields: impl IntoIterator<Item = Value>) -> Self {
        Tuple {
            fields: fields.into_iter().collect(),
        }
    }

    /// The empty (0-ary) tuple.
    pub fn empty() -> Self {
        Tuple::new([])
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Field at position `i`, if in range.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.fields.get(i)
    }

    /// All fields as a slice.
    pub fn fields(&self) -> &[Value] {
        &self.fields
    }

    /// Concatenate two tuples (used by cartesian product and join).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        Tuple {
            fields: self
                .fields
                .iter()
                .chain(other.fields.iter())
                .cloned()
                .collect(),
        }
    }

    /// Project this tuple onto the given column positions.
    ///
    /// Positions may repeat or reorder columns. Panics if a position is out
    /// of range — callers are expected to have arity-checked the projection
    /// list (the `hypoquery-algebra` typing pass guarantees this).
    pub fn project(&self, cols: &[usize]) -> Tuple {
        Tuple {
            fields: cols.iter().map(|&c| self.fields[c].clone()).collect(),
        }
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.fields[i]
    }
}

impl<V: Into<Value>> FromIterator<V> for Tuple {
    fn from_iter<T: IntoIterator<Item = V>>(iter: T) -> Self {
        Tuple::new(iter.into_iter().map(Into::into))
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Convenience macro for building tuples from literals:
/// `tuple![1, "a", true]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new([$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_and_indexing() {
        let t = tuple![1, "a", true];
        assert_eq!(t.arity(), 3);
        assert_eq!(t[0], Value::int(1));
        assert_eq!(t[1], Value::str("a"));
        assert_eq!(t.get(3), None);
    }

    #[test]
    fn concat_appends_fields() {
        let t = tuple![1, 2].concat(&tuple![3]);
        assert_eq!(t, tuple![1, 2, 3]);
    }

    #[test]
    fn project_reorders_and_duplicates() {
        let t = tuple![10, 20, 30];
        assert_eq!(t.project(&[2, 0, 0]), tuple![30, 10, 10]);
        assert_eq!(t.project(&[]), Tuple::empty());
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(tuple![1, 2] < tuple![1, 3]);
        assert!(tuple![1] < tuple![1, 0]);
        assert!(tuple![0, 9] < tuple![1, 0]);
    }

    #[test]
    fn display_form() {
        assert_eq!(tuple![1, "x"].to_string(), "(1, \"x\")");
        assert_eq!(Tuple::empty().to_string(), "()");
    }

    #[test]
    fn from_iterator_of_convertibles() {
        let t: Tuple = [1i64, 2, 3].into_iter().collect();
        assert_eq!(t, tuple![1, 2, 3]);
    }
}
