//! Database states: total functions from relation names to relations.
//!
//! §3.1: "A (database) state is a function DB mapping every relation name
//! S ∈ Σ to a relation DB(S) of the appropriate arity." Undeclared names are
//! errors; declared names with no stored rows read as the empty relation of
//! the catalog arity.
//!
//! States are persistent snapshots: both the catalog and the binding map
//! are `Arc`-shared, so `clone()` is two pointer bumps and the first write
//! to a cloned state copies only the *map* (each entry an O(1)
//! shared-storage [`Relation`] clone) — never the tuples of untouched
//! relations. This is the storage half of the multi-scenario executor:
//! k hypothetical branches over an n-tuple base share the base physically.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use crate::error::StorageError;
use crate::relation::Relation;
use crate::schema::{Catalog, RelName};
use crate::tuple::Tuple;

/// A database state over a fixed [`Catalog`].
///
/// Cloning is O(1); mutating a clone copies the binding map on first write
/// (O(#relations) pointer bumps), leaving all untouched relations
/// physically shared with the original.
#[derive(Clone, Debug)]
pub struct DatabaseState {
    catalog: Arc<Catalog>,
    rels: Arc<BTreeMap<RelName, Relation>>,
    /// Declared secondary indexes: relation → indexed columns. Physical
    /// metadata only — excluded from `PartialEq`, which compares the
    /// logical state function the paper quantifies over.
    indexes: Arc<BTreeMap<RelName, BTreeSet<usize>>>,
}

impl PartialEq for DatabaseState {
    fn eq(&self, other: &Self) -> bool {
        self.catalog == other.catalog && self.rels == other.rels
    }
}

impl Eq for DatabaseState {}

impl DatabaseState {
    /// The state mapping every declared relation to the empty relation.
    pub fn new(catalog: Catalog) -> Self {
        DatabaseState {
            catalog: Arc::new(catalog),
            rels: Arc::new(BTreeMap::new()),
            indexes: Arc::new(BTreeMap::new()),
        }
    }

    /// The schema this state is over.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Whether `self` and `other` physically share their entire binding
    /// map (implies equality of the stored bindings). Diagnostic/test hook
    /// for the copy-on-write contract.
    pub fn shares_storage_with(&self, other: &DatabaseState) -> bool {
        Arc::ptr_eq(&self.rels, &other.rels)
    }

    /// Read `DB(R)`. Errors if `R` is not declared.
    pub fn get(&self, name: &RelName) -> Result<Relation, StorageError> {
        let arity = self.catalog.arity(name)?;
        Ok(self
            .rels
            .get(name)
            .cloned()
            .unwrap_or_else(|| Relation::empty(arity)))
    }

    /// Borrowing read of `DB(R)` when rows exist; `None` either means empty
    /// or undeclared — use [`DatabaseState::get`] to distinguish.
    pub fn get_ref(&self, name: &RelName) -> Option<&Relation> {
        self.rels.get(name)
    }

    /// The functional update `DB[R ← V]` (§3.1): a new state identical to
    /// this one except that `R` maps to `value`.
    pub fn with_binding(
        &self,
        name: impl Into<RelName>,
        value: Relation,
    ) -> Result<DatabaseState, StorageError> {
        let name = name.into();
        let arity = self.catalog.arity(&name)?;
        if value.arity() != arity {
            return Err(StorageError::ArityMismatch {
                context: "state binding",
                expected: arity,
                found: value.arity(),
            });
        }
        let mut next = self.clone();
        if value.is_empty() {
            // Canonical form: a state is a *function*; an explicitly
            // stored empty relation and an absent one are the same state,
            // and PartialEq should agree. Only un-share the map if there
            // is actually an entry to drop.
            if next.rels.contains_key(&name) {
                Arc::make_mut(&mut next.rels).remove(&name);
            }
        } else {
            Arc::make_mut(&mut next.rels).insert(name, value);
        }
        Ok(next)
    }

    /// In-place variant of [`DatabaseState::with_binding`].
    pub fn set(&mut self, name: impl Into<RelName>, value: Relation) -> Result<(), StorageError> {
        let name = name.into();
        let arity = self.catalog.arity(&name)?;
        if value.arity() != arity {
            return Err(StorageError::ArityMismatch {
                context: "state binding",
                expected: arity,
                found: value.arity(),
            });
        }
        if value.is_empty() {
            if self.rels.contains_key(&name) {
                Arc::make_mut(&mut self.rels).remove(&name);
            }
        } else {
            Arc::make_mut(&mut self.rels).insert(name, value);
        }
        Ok(())
    }

    /// Insert one tuple into `R` (load helper for tests/examples/benches).
    pub fn insert_row(&mut self, name: impl Into<RelName>, row: Tuple) -> Result<(), StorageError> {
        let name = name.into();
        let arity = self.catalog.arity(&name)?;
        let rel = Arc::make_mut(&mut self.rels)
            .entry(name)
            .or_insert_with(|| Relation::empty(arity));
        rel.insert(row)?;
        Ok(())
    }

    /// Bulk-load rows into `R`.
    pub fn insert_rows(
        &mut self,
        name: impl Into<RelName> + Clone,
        rows: impl IntoIterator<Item = Tuple>,
    ) -> Result<(), StorageError> {
        let name = name.into();
        for row in rows {
            self.insert_row(name.clone(), row)?;
        }
        Ok(())
    }

    /// Declare a hash index on column `col` of `name`. Errors if `name`
    /// is undeclared or `col` is out of range for its arity. Returns
    /// whether the declaration is new.
    ///
    /// Declarations are *intent*, not data structures: the index itself is
    /// built lazily on first probe and cached on the relation's shared
    /// storage pointer (see [`crate::index`]), so CoW snapshots made after
    /// this call inherit the declaration by pointer bump and share the
    /// built index for free.
    pub fn declare_index(
        &mut self,
        name: impl Into<RelName>,
        col: usize,
    ) -> Result<bool, StorageError> {
        let name = name.into();
        let arity = self.catalog.arity(&name)?;
        if col >= arity {
            return Err(StorageError::ArityMismatch {
                context: "index column out of range",
                expected: arity,
                found: col,
            });
        }
        Ok(Arc::make_mut(&mut self.indexes)
            .entry(name)
            .or_default()
            .insert(col))
    }

    /// Drop the index declaration on `(name, col)`. Returns whether it
    /// existed. The cached index (if built) dies with its storage; this
    /// only stops future probes from consulting it.
    pub fn undeclare_index(&mut self, name: &RelName, col: usize) -> bool {
        if !self.has_index(name, col) {
            // No-op: never un-share the registry map for nothing.
            return false;
        }
        let map = Arc::make_mut(&mut self.indexes);
        let Some(cols) = map.get_mut(name) else {
            return false;
        };
        let removed = cols.remove(&col);
        if cols.is_empty() {
            map.remove(name);
        }
        removed
    }

    /// Whether an index is declared on column `col` of `name`.
    pub fn has_index(&self, name: &RelName, col: usize) -> bool {
        self.indexes
            .get(name)
            .is_some_and(|cols| cols.contains(&col))
    }

    /// The columns of `name` with a declared index, sorted (empty when
    /// none).
    pub fn indexed_columns(&self, name: &RelName) -> Vec<usize> {
        self.indexes
            .get(name)
            .map(|cols| cols.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Iterate every index declaration as a `(relation, column)` pair.
    pub fn index_decls(&self) -> impl Iterator<Item = (&RelName, usize)> {
        self.indexes
            .iter()
            .flat_map(|(name, cols)| cols.iter().map(move |&c| (name, c)))
    }

    /// Total number of stored tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.rels.values().map(Relation::len).sum()
    }

    /// Iterate over (name, relation) pairs that have stored rows.
    pub fn iter(&self) -> impl Iterator<Item = (&RelName, &Relation)> {
        self.rels.iter()
    }
}

impl fmt::Display for DatabaseState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, schema) in self.catalog.iter() {
            let rel = self
                .rels
                .get(name)
                .cloned()
                .unwrap_or_else(|| Relation::empty(schema.arity));
            writeln!(f, "{name}/{} = {rel}", schema.arity)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn cat() -> Catalog {
        let mut c = Catalog::new();
        c.declare_arity("R", 2).unwrap();
        c.declare_arity("S", 1).unwrap();
        c
    }

    #[test]
    fn fresh_state_reads_empty() {
        let db = DatabaseState::new(cat());
        let r = db.get(&"R".into()).unwrap();
        assert!(r.is_empty());
        assert_eq!(r.arity(), 2);
        assert!(db.get(&"Z".into()).is_err());
    }

    #[test]
    fn with_binding_is_functional() {
        let db = DatabaseState::new(cat());
        let v = Relation::from_rows(2, [tuple![1, 2]]).unwrap();
        let db2 = db.with_binding("R", v.clone()).unwrap();
        assert!(db.get(&"R".into()).unwrap().is_empty());
        assert_eq!(db2.get(&"R".into()).unwrap(), v);
        // Other names unchanged.
        assert!(db2.get(&"S".into()).unwrap().is_empty());
    }

    #[test]
    fn binding_checks_arity_and_declaration() {
        let db = DatabaseState::new(cat());
        assert!(db.with_binding("R", Relation::empty(3)).is_err());
        assert!(db.with_binding("Z", Relation::empty(1)).is_err());
    }

    #[test]
    fn insert_rows_accumulates() {
        let mut db = DatabaseState::new(cat());
        db.insert_rows("S", [tuple![1], tuple![2], tuple![1]])
            .unwrap();
        assert_eq!(db.get(&"S".into()).unwrap().len(), 2);
        assert_eq!(db.total_tuples(), 2);
        assert!(db.insert_row("S", tuple![1, 2]).is_err());
    }

    #[test]
    fn clone_is_shared_until_write() {
        let mut db = DatabaseState::new(cat());
        db.insert_rows("S", [tuple![1], tuple![2]]).unwrap();
        db.insert_row("R", tuple![1, 2]).unwrap();

        let snap = db.clone();
        assert!(snap.shares_storage_with(&db), "clone must share the map");

        // Writing one relation in the clone un-shares the *map* but every
        // untouched relation must still share tuple storage with the base.
        let mut branch = db.clone();
        branch.insert_row("S", tuple![3]).unwrap();
        assert!(!branch.shares_storage_with(&db));
        let base_r = db.get_ref(&"R".into()).unwrap();
        let branch_r = branch.get_ref(&"R".into()).unwrap();
        assert!(
            base_r.ptr_eq(branch_r),
            "untouched relation must not be deep-copied by a state write"
        );
        // And the touched one diverged without disturbing the base.
        assert_eq!(db.get(&"S".into()).unwrap().len(), 2);
        assert_eq!(branch.get(&"S".into()).unwrap().len(), 3);
    }

    #[test]
    fn with_binding_shares_untouched_relations() {
        let mut db = DatabaseState::new(cat());
        db.insert_rows("S", [tuple![1]]).unwrap();
        db.insert_row("R", tuple![1, 2]).unwrap();
        let v = Relation::from_rows(1, [tuple![9]]).unwrap();
        let db2 = db.with_binding("S", v).unwrap();
        assert!(db
            .get_ref(&"R".into())
            .unwrap()
            .ptr_eq(db2.get_ref(&"R".into()).unwrap()));
    }

    #[test]
    fn noop_empty_binding_keeps_sharing() {
        let db = DatabaseState::new(cat());
        let db2 = db.with_binding("R", Relation::empty(2)).unwrap();
        assert!(
            db2.shares_storage_with(&db),
            "removing an absent entry is a no-op"
        );
    }

    #[test]
    fn index_declarations_validate_and_inherit() {
        let mut db = DatabaseState::new(cat());
        assert!(db.declare_index("R", 1).unwrap());
        assert!(!db.declare_index("R", 1).unwrap(), "re-declare is a no-op");
        assert!(db.declare_index("R", 2).is_err(), "column out of range");
        assert!(db.declare_index("Z", 0).is_err(), "unknown relation");
        assert!(db.has_index(&"R".into(), 1));
        assert_eq!(db.indexed_columns(&"R".into()), vec![1]);
        assert_eq!(db.indexed_columns(&"S".into()), Vec::<usize>::new());

        // CoW snapshots inherit declarations.
        let snap = db.clone();
        assert!(snap.has_index(&"R".into(), 1));
        assert_eq!(snap.index_decls().count(), 1);

        assert!(db.undeclare_index(&"R".into(), 1));
        assert!(!db.undeclare_index(&"R".into(), 1));
        assert!(!db.has_index(&"R".into(), 1));
        // The snapshot's registry is isolated from the drop.
        assert!(snap.has_index(&"R".into(), 1));
    }

    #[test]
    fn index_declarations_do_not_affect_state_equality() {
        let mut a = DatabaseState::new(cat());
        let b = a.clone();
        a.declare_index("R", 0).unwrap();
        assert_eq!(a, b, "indexes are physical metadata, not state");
    }

    #[test]
    fn display_lists_catalog_order() {
        let mut db = DatabaseState::new(cat());
        db.insert_row("S", tuple![5]).unwrap();
        let s = db.to_string();
        assert!(s.contains("R/2 = {}"));
        assert!(s.contains("S/1 = {(5)}"));
    }
}
