//! Relation names and database schemas (the paper's Σ).
//!
//! A database schema is "a collection of relation names Σ = {S₁, …, Sₙ},
//! each of a fixed arity" (§3.1). [`Catalog`] is exactly that, with optional
//! attribute names carried along for friendlier surface syntax and output.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::error::StorageError;

/// An interned relation name.
///
/// Cheap to clone (an `Arc<str>`), totally ordered so it can key `BTreeMap`s
/// deterministically.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelName(Arc<str>);

impl RelName {
    /// Create a relation name.
    pub fn new(name: impl AsRef<str>) -> Self {
        RelName(Arc::from(name.as_ref()))
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for RelName {
    fn from(s: &str) -> Self {
        RelName::new(s)
    }
}

impl From<String> for RelName {
    fn from(s: String) -> Self {
        RelName::new(s)
    }
}

impl fmt::Display for RelName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for RelName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Schema of a single relation: its arity, plus optional attribute names.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RelSchema {
    /// Number of columns.
    pub arity: usize,
    /// Optional attribute names, one per column, used by the parser and
    /// pretty-printers. `None` means columns are addressed by position only
    /// (the paper's formal convention).
    pub attrs: Option<Vec<String>>,
}

impl RelSchema {
    /// Positional schema of the given arity.
    pub fn positional(arity: usize) -> Self {
        RelSchema { arity, attrs: None }
    }

    /// Named schema; arity is the number of attribute names.
    pub fn named(attrs: impl IntoIterator<Item = impl Into<String>>) -> Self {
        let attrs: Vec<String> = attrs.into_iter().map(Into::into).collect();
        RelSchema {
            arity: attrs.len(),
            attrs: Some(attrs),
        }
    }

    /// Resolve an attribute name to its column position.
    pub fn position_of(&self, attr: &str) -> Option<usize> {
        self.attrs.as_ref()?.iter().position(|a| a == attr)
    }
}

/// A database schema Σ: a fixed, finite map from relation names to schemas.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Catalog {
    rels: BTreeMap<RelName, RelSchema>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Declare a relation. Redeclaring with an identical schema is a no-op;
    /// redeclaring with a different schema is an error.
    pub fn declare(
        &mut self,
        name: impl Into<RelName>,
        schema: RelSchema,
    ) -> Result<(), StorageError> {
        let name = name.into();
        match self.rels.get(&name) {
            Some(existing) if *existing != schema => Err(StorageError::DuplicateRelation(name)),
            _ => {
                self.rels.insert(name, schema);
                Ok(())
            }
        }
    }

    /// Convenience: declare a positional relation of the given arity.
    pub fn declare_arity(
        &mut self,
        name: impl Into<RelName>,
        arity: usize,
    ) -> Result<(), StorageError> {
        self.declare(name, RelSchema::positional(arity))
    }

    /// Schema of `name`, if declared.
    pub fn schema(&self, name: &RelName) -> Option<&RelSchema> {
        self.rels.get(name)
    }

    /// Arity of `name`, or an error if undeclared.
    pub fn arity(&self, name: &RelName) -> Result<usize, StorageError> {
        self.rels
            .get(name)
            .map(|s| s.arity)
            .ok_or_else(|| StorageError::UnknownRelation(name.clone()))
    }

    /// Whether `name` is declared.
    pub fn contains(&self, name: &RelName) -> bool {
        self.rels.contains_key(name)
    }

    /// Iterate over declared relations in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&RelName, &RelSchema)> {
        self.rels.iter()
    }

    /// Number of declared relations.
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// Whether no relations are declared.
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_lookup() {
        let mut cat = Catalog::new();
        cat.declare_arity("R", 2).unwrap();
        cat.declare("S", RelSchema::named(["a", "b", "c"])).unwrap();
        assert_eq!(cat.arity(&"R".into()).unwrap(), 2);
        assert_eq!(cat.arity(&"S".into()).unwrap(), 3);
        assert!(cat.contains(&"R".into()));
        assert!(!cat.contains(&"T".into()));
        assert_eq!(cat.len(), 2);
    }

    #[test]
    fn redeclare_same_schema_ok_different_errors() {
        let mut cat = Catalog::new();
        cat.declare_arity("R", 2).unwrap();
        cat.declare_arity("R", 2).unwrap();
        assert_eq!(
            cat.declare_arity("R", 3),
            Err(StorageError::DuplicateRelation("R".into()))
        );
    }

    #[test]
    fn unknown_relation_errors() {
        let cat = Catalog::new();
        assert_eq!(
            cat.arity(&"Z".into()),
            Err(StorageError::UnknownRelation("Z".into()))
        );
    }

    #[test]
    fn named_schema_positions() {
        let s = RelSchema::named(["id", "amount"]);
        assert_eq!(s.arity, 2);
        assert_eq!(s.position_of("amount"), Some(1));
        assert_eq!(s.position_of("missing"), None);
        assert_eq!(RelSchema::positional(2).position_of("x"), None);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut cat = Catalog::new();
        cat.declare_arity("B", 1).unwrap();
        cat.declare_arity("A", 1).unwrap();
        let names: Vec<_> = cat.iter().map(|(n, _)| n.as_str().to_string()).collect();
        assert_eq!(names, ["A", "B"]);
    }
}
