//! Per-column hash indexes that ride the copy-on-write storage design.
//!
//! An index maps a key — the tuple's values at a fixed column list — to
//! the tuples carrying that key. Indexes are cached *globally, keyed on
//! the relation's physical storage pointer* (the address of its
//! `Arc<BTreeSet<Tuple>>`): every CoW snapshot that still physically
//! shares a base relation ([`Relation::ptr_eq`]) resolves to the same
//! cached index for free, and any mutation — which un-shares the storage
//! via `Arc::make_mut` — naturally invalidates by changing the pointer.
//!
//! Each cache entry holds a [`Weak`] to the indexed storage, so a slot is
//! valid only while the original allocation is alive: a dead `Weak`, or an
//! address reused by a newer allocation, fails validation and the index is
//! rebuilt. Hit/miss/build counters are process-global atomics, surfaced
//! by the server's `STATS` verb and the E11 bench.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::Value;

/// A hash index over one relation: key = the tuple's values at `cols`.
///
/// Immutable once built; shared behind an `Arc` by every snapshot whose
/// relation still points at the indexed storage.
#[derive(Debug)]
pub struct ColumnIndex {
    cols: Vec<usize>,
    map: HashMap<Vec<Value>, Vec<Tuple>>,
}

impl ColumnIndex {
    /// Build an index over `rel` keyed on `cols`.
    ///
    /// Every column must be in range for the relation's arity (callers
    /// validate against the catalog; this is a hard invariant).
    pub fn build(rel: &Relation, cols: &[usize]) -> ColumnIndex {
        debug_assert!(cols.iter().all(|&c| c < rel.arity()));
        let mut map: HashMap<Vec<Value>, Vec<Tuple>> = HashMap::new();
        for t in rel.iter() {
            let key: Vec<Value> = cols.iter().map(|&c| t[c].clone()).collect();
            map.entry(key).or_default().push(t.clone());
        }
        ColumnIndex {
            cols: cols.to_vec(),
            map,
        }
    }

    /// The column list this index is keyed on.
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// The tuples whose key columns equal `key` (empty when absent).
    pub fn probe(&self, key: &[Value]) -> &[Tuple] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys in the indexed relation.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

/// Snapshot of the process-wide index counters (monotone since start).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexCounters {
    /// Probes answered by a cached index.
    pub hits: u64,
    /// Build requests that found no valid cached index.
    pub misses: u64,
    /// Indexes physically built (every build is also a miss).
    pub builds: u64,
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static BUILDS: AtomicU64 = AtomicU64::new(0);

/// Read the process-wide index counters.
pub fn index_counters() -> IndexCounters {
    IndexCounters {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        builds: BUILDS.load(Ordering::Relaxed),
    }
}

struct CacheEntry {
    storage: Weak<BTreeSet<Tuple>>,
    index: Arc<ColumnIndex>,
}

type CacheMap = HashMap<(usize, Vec<usize>), CacheEntry>;

fn cache() -> &'static Mutex<CacheMap> {
    static CACHE: OnceLock<Mutex<CacheMap>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn cache_key(rel: &Relation, cols: &[usize]) -> (usize, Vec<usize>) {
    (Arc::as_ptr(rel.storage_arc()) as usize, cols.to_vec())
}

/// Drop entries whose indexed storage has died. Called opportunistically
/// on insert so churny workloads (many short-lived snapshots) cannot grow
/// the cache without bound.
fn sweep_if_bloated(map: &mut CacheMap) {
    const SWEEP_AT: usize = 256;
    if map.len() >= SWEEP_AT {
        map.retain(|_, e| e.storage.strong_count() > 0);
    }
}

/// The cached index over `rel` keyed on `cols`, if one was already built
/// for this exact physical storage. Never builds. `None` is *not* counted
/// as a miss: callers that fall back to a scan were never obliged to
/// index.
pub fn lookup_index(rel: &Relation, cols: &[usize]) -> Option<Arc<ColumnIndex>> {
    let key = cache_key(rel, cols);
    let guard = cache().lock().unwrap();
    let entry = guard.get(&key)?;
    // Validate against address reuse: the entry only counts if the weak
    // still upgrades to *this* relation's storage.
    let alive = entry
        .storage
        .upgrade()
        .is_some_and(|s| Arc::ptr_eq(&s, rel.storage_arc()));
    if alive {
        HITS.fetch_add(1, Ordering::Relaxed);
        Some(Arc::clone(&entry.index))
    } else {
        None
    }
}

/// The index over `rel` keyed on `cols`, building and caching it on first
/// use. A cached answer counts as a hit; building counts as one miss and
/// one build.
pub fn lookup_or_build_index(rel: &Relation, cols: &[usize]) -> Arc<ColumnIndex> {
    if let Some(idx) = lookup_index(rel, cols) {
        return idx;
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let idx = Arc::new(ColumnIndex::build(rel, cols));
    BUILDS.fetch_add(1, Ordering::Relaxed);
    let key = cache_key(rel, cols);
    let mut guard = cache().lock().unwrap();
    sweep_if_bloated(&mut guard);
    guard.insert(
        key,
        CacheEntry {
            storage: Arc::downgrade(rel.storage_arc()),
            index: Arc::clone(&idx),
        },
    );
    idx
}

type DistinctMap = HashMap<(usize, usize), (Weak<BTreeSet<Tuple>>, usize)>;

fn distinct_memo() -> &'static Mutex<DistinctMap> {
    static MEMO: OnceLock<Mutex<DistinctMap>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Number of distinct values in column `col` of `rel`, memoized on the
/// relation's physical storage so repeated planning over an unmutated
/// relation never rescans. Does not touch the index cache or its counters
/// (planning probes must not read as query probes in `STATS`).
pub fn distinct_count(rel: &Relation, col: usize) -> usize {
    debug_assert!(col < rel.arity());
    let key = (Arc::as_ptr(rel.storage_arc()) as usize, col);
    {
        let guard = distinct_memo().lock().unwrap();
        if let Some((weak, n)) = guard.get(&key) {
            let alive = weak
                .upgrade()
                .is_some_and(|s| Arc::ptr_eq(&s, rel.storage_arc()));
            if alive {
                return *n;
            }
        }
    }
    let n = {
        let mut seen: BTreeSet<&Value> = BTreeSet::new();
        for t in rel.iter() {
            seen.insert(&t[col]);
        }
        seen.len()
    };
    let mut guard = distinct_memo().lock().unwrap();
    const SWEEP_AT: usize = 1024;
    if guard.len() >= SWEEP_AT {
        guard.retain(|_, (weak, _)| weak.strong_count() > 0);
    }
    guard.insert(key, (Arc::downgrade(rel.storage_arc()), n));
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::rel_of;
    use crate::tuple;

    fn r3() -> Relation {
        rel_of([
            [Value::int(1), Value::int(10)],
            [Value::int(2), Value::int(20)],
            [Value::int(2), Value::int(21)],
        ])
    }

    #[test]
    fn build_and_probe() {
        let rel = r3();
        let idx = ColumnIndex::build(&rel, &[0]);
        assert_eq!(idx.probe(&[Value::int(2)]).len(), 2);
        assert_eq!(idx.probe(&[Value::int(1)]).len(), 1);
        assert_eq!(idx.probe(&[Value::int(9)]).len(), 0);
        assert_eq!(idx.distinct_keys(), 2);
        assert_eq!(idx.cols(), &[0]);
    }

    #[test]
    fn multi_column_keys() {
        let rel = r3();
        let idx = ColumnIndex::build(&rel, &[0, 1]);
        assert_eq!(idx.probe(&[Value::int(2), Value::int(20)]).len(), 1);
        assert_eq!(idx.distinct_keys(), 3);
    }

    #[test]
    fn cache_shares_across_cow_clones() {
        let rel = r3();
        let snap = rel.clone();
        let a = lookup_or_build_index(&rel, &[0]);
        let b = lookup_or_build_index(&snap, &[0]);
        assert!(
            Arc::ptr_eq(&a, &b),
            "storage-sharing snapshots must share one index"
        );
    }

    #[test]
    fn mutation_invalidates_by_pointer_change() {
        let mut rel = r3();
        let _ = lookup_or_build_index(&rel, &[0]);
        rel.insert(tuple![7, 70]).unwrap();
        assert!(
            lookup_index(&rel, &[0]).is_none(),
            "un-shared storage must not see the stale index"
        );
        let fresh = lookup_or_build_index(&rel, &[0]);
        assert_eq!(fresh.probe(&[Value::int(7)]).len(), 1);
    }

    #[test]
    fn counters_are_monotone_and_builds_are_misses() {
        let rel = r3();
        let before = index_counters();
        let _ = lookup_or_build_index(&rel, &[1]);
        let _ = lookup_or_build_index(&rel, &[1]);
        let after = index_counters();
        assert!(after.builds > before.builds);
        assert!(after.misses > before.misses);
        assert!(after.hits > before.hits);
    }

    #[test]
    fn distinct_count_is_memoized_and_correct() {
        let rel = r3();
        assert_eq!(distinct_count(&rel, 0), 2);
        assert_eq!(distinct_count(&rel, 1), 3);
        // Memoized answer agrees with a recount.
        assert_eq!(distinct_count(&rel, 0), 2);
    }
}
