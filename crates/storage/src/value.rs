//! Scalar values stored in relation fields.
//!
//! The paper works over abstract relations; the concrete domains we provide
//! are 64-bit integers, strings, and booleans. All three are totally ordered
//! and hashable, which the sort-merge operators in `hypoquery-eval` and the
//! `BTreeSet`-backed relations rely on.

use std::fmt;
use std::sync::Arc;

/// A scalar value in a tuple field.
///
/// Values are immutable. `Str` uses `Arc<str>` so that cloning tuples (which
/// happens constantly when moving tuples between relation sets) never copies
/// string payloads.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// UTF-8 string (shared, immutable).
    Str(Arc<str>),
    /// Boolean.
    Bool(bool),
}

/// The type of a [`Value`]; used for schema/arity-level sanity checks and
/// error messages.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ValueType {
    /// 64-bit signed integer.
    Int,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

impl Value {
    /// Construct an integer value.
    pub fn int(v: i64) -> Self {
        Value::Int(v)
    }

    /// Construct a string value.
    pub fn str(v: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(v.as_ref()))
    }

    /// Construct a boolean value.
    pub fn bool(v: bool) -> Self {
        Value::Bool(v)
    }

    /// The runtime type of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Int(_) => ValueType::Int,
            Value::Str(_) => ValueType::Str,
            Value::Bool(_) => ValueType::Bool,
        }
    }

    /// Return the integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Return the string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Return the boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v:?}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Int => write!(f, "int"),
            ValueType::Str => write!(f, "str"),
            ValueType::Bool => write!(f, "bool"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ordering_is_numeric() {
        assert!(Value::int(-3) < Value::int(2));
        assert!(Value::int(2) < Value::int(10));
    }

    #[test]
    fn values_of_different_types_have_total_order() {
        // The derived order is by variant then payload; all we need is that
        // it is total and consistent.
        let mut vs = vec![
            Value::str("b"),
            Value::int(1),
            Value::bool(true),
            Value::str("a"),
        ];
        vs.sort();
        let mut again = vs.clone();
        again.sort();
        assert_eq!(vs, again);
    }

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::int(7).as_int(), Some(7));
        assert_eq!(Value::int(7).as_str(), None);
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::bool(true).as_bool(), Some(true));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::int(42).to_string(), "42");
        assert_eq!(Value::str("hi").to_string(), "\"hi\"");
        assert_eq!(Value::bool(false).to_string(), "false");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(5i64), Value::int(5));
        assert_eq!(Value::from(5i32), Value::int(5));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from(true), Value::bool(true));
    }

    #[test]
    fn value_type_reporting() {
        assert_eq!(Value::int(0).value_type(), ValueType::Int);
        assert_eq!(Value::str("").value_type(), ValueType::Str);
        assert_eq!(Value::bool(true).value_type(), ValueType::Bool);
        assert_eq!(ValueType::Int.to_string(), "int");
    }

    #[test]
    fn string_clone_shares_payload() {
        let a = Value::str("shared");
        let b = a.clone();
        match (&a, &b) {
            (Value::Str(x), Value::Str(y)) => assert!(Arc::ptr_eq(x, y)),
            _ => unreachable!(),
        }
    }
}
