//! Bag (multiset) relations — the §6 extension's data model.
//!
//! §6: "the framework extends to query languages that include bags and
//! aggregation." A [`BagRelation`] maps tuples to multiplicities; the
//! operators follow the standard bag semantics:
//!
//! * union is additive (`m₁ + m₂`),
//! * difference is monus (`max(m₁ − m₂, 0)`),
//! * intersection is `min(m₁, m₂)`,
//! * product multiplies multiplicities,
//! * projection does **not** deduplicate.
//!
//! The substitution calculus (`sub`, `slice`, `red`) is purely syntactic,
//! so it transfers to bag semantics unchanged — which
//! `hypoquery-eval::bag` property-tests. The set-semantics RA *optimizer*
//! does NOT transfer (e.g. `X ∪ X ≡ X` fails in bags) and is never
//! applied on the bag path.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::error::StorageError;
use crate::relation::Relation;
use crate::tuple::Tuple;

/// A multiset of same-arity tuples.
///
/// Like [`Relation`], multiplicity storage is `Arc`-shared copy-on-write:
/// clones are O(1) and the first mutation of a shared bag copies the map.
#[derive(Clone, Eq, Debug)]
pub struct BagRelation {
    arity: usize,
    tuples: Arc<BTreeMap<Tuple, u64>>,
}

impl PartialEq for BagRelation {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity
            && (Arc::ptr_eq(&self.tuples, &other.tuples) || self.tuples == other.tuples)
    }
}

impl BagRelation {
    /// The empty bag of the given arity.
    pub fn empty(arity: usize) -> Self {
        BagRelation {
            arity,
            tuples: Arc::new(BTreeMap::new()),
        }
    }

    /// Whether `self` and `other` physically share one multiplicity map.
    pub fn ptr_eq(&self, other: &BagRelation) -> bool {
        self.arity == other.arity && Arc::ptr_eq(&self.tuples, &other.tuples)
    }

    fn from_map(arity: usize, tuples: BTreeMap<Tuple, u64>) -> Self {
        BagRelation {
            arity,
            tuples: Arc::new(tuples),
        }
    }

    /// A single tuple with multiplicity 1.
    pub fn singleton(t: Tuple) -> Self {
        let arity = t.arity();
        let mut tuples = BTreeMap::new();
        tuples.insert(t, 1);
        BagRelation::from_map(arity, tuples)
    }

    /// Convert a set relation into a bag (all multiplicities 1).
    pub fn from_set(rel: &Relation) -> Self {
        BagRelation::from_map(rel.arity(), rel.iter().map(|t| (t.clone(), 1)).collect())
    }

    /// The supporting set (distinct tuples).
    pub fn to_set(&self) -> Relation {
        let mut out = Relation::empty(self.arity);
        for t in self.tuples.keys() {
            let _ = out.insert(t.clone());
        }
        out
    }

    /// This bag's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Total multiplicity (bag cardinality).
    pub fn len(&self) -> u64 {
        self.tuples.values().sum()
    }

    /// Number of distinct tuples.
    pub fn distinct_len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the bag has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Multiplicity of `t` (0 if absent).
    pub fn multiplicity(&self, t: &Tuple) -> u64 {
        self.tuples.get(t).copied().unwrap_or(0)
    }

    /// Add `count` copies of `t`.
    pub fn insert(&mut self, t: Tuple, count: u64) -> Result<(), StorageError> {
        if t.arity() != self.arity {
            return Err(StorageError::ArityMismatch {
                context: "bag insert",
                expected: self.arity,
                found: t.arity(),
            });
        }
        if count > 0 {
            *Arc::make_mut(&mut self.tuples).entry(t).or_insert(0) += count;
        }
        Ok(())
    }

    /// Iterate distinct tuples with multiplicities.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, u64)> {
        self.tuples.iter().map(|(t, m)| (t, *m))
    }

    fn check_same_arity(
        &self,
        other: &BagRelation,
        context: &'static str,
    ) -> Result<(), StorageError> {
        if self.arity != other.arity {
            return Err(StorageError::ArityMismatch {
                context,
                expected: self.arity,
                found: other.arity,
            });
        }
        Ok(())
    }

    /// Additive bag union.
    ///
    /// Union with an empty bag returns the other operand as a
    /// shared-storage clone.
    pub fn union(&self, other: &BagRelation) -> Result<BagRelation, StorageError> {
        self.check_same_arity(other, "bag union")?;
        if other.is_empty() {
            return Ok(self.clone());
        }
        if self.is_empty() {
            return Ok(other.clone());
        }
        let mut tuples = (*self.tuples).clone();
        for (t, m) in other.tuples.iter() {
            *tuples.entry(t.clone()).or_insert(0) += m;
        }
        Ok(BagRelation::from_map(self.arity, tuples))
    }

    /// Bag difference (monus).
    pub fn difference(&self, other: &BagRelation) -> Result<BagRelation, StorageError> {
        self.check_same_arity(other, "bag difference")?;
        if other.is_empty() {
            return Ok(self.clone());
        }
        let mut tuples = BTreeMap::new();
        for (t, m) in self.tuples.iter() {
            let rem = m.saturating_sub(other.multiplicity(t));
            if rem > 0 {
                tuples.insert(t.clone(), rem);
            }
        }
        Ok(BagRelation::from_map(self.arity, tuples))
    }

    /// Bag intersection (min of multiplicities).
    pub fn intersect(&self, other: &BagRelation) -> Result<BagRelation, StorageError> {
        self.check_same_arity(other, "bag intersection")?;
        if Arc::ptr_eq(&self.tuples, &other.tuples) {
            return Ok(self.clone());
        }
        let mut tuples = BTreeMap::new();
        for (t, m) in self.tuples.iter() {
            let k = (*m).min(other.multiplicity(t));
            if k > 0 {
                tuples.insert(t.clone(), k);
            }
        }
        Ok(BagRelation::from_map(self.arity, tuples))
    }

    /// Bag cartesian product (multiplicities multiply).
    pub fn product(&self, other: &BagRelation) -> BagRelation {
        let mut tuples = BTreeMap::new();
        for (a, m) in self.tuples.iter() {
            for (b, n) in other.tuples.iter() {
                tuples.insert(a.concat(b), m * n);
            }
        }
        BagRelation::from_map(self.arity + other.arity, tuples)
    }

    /// Selection (keeps multiplicities).
    pub fn select(&self, mut pred: impl FnMut(&Tuple) -> bool) -> BagRelation {
        BagRelation::from_map(
            self.arity,
            self.tuples
                .iter()
                .filter(|(t, _)| pred(t))
                .map(|(t, m)| (t.clone(), *m))
                .collect(),
        )
    }

    /// Projection **without** deduplication: multiplicities of colliding
    /// projected tuples add up.
    pub fn project(&self, cols: &[usize]) -> Result<BagRelation, StorageError> {
        if let Some(&bad) = cols.iter().find(|&&c| c >= self.arity) {
            return Err(StorageError::ArityMismatch {
                context: "bag projection column out of range",
                expected: self.arity,
                found: bad,
            });
        }
        let mut tuples: BTreeMap<Tuple, u64> = BTreeMap::new();
        for (t, m) in self.tuples.iter() {
            *tuples.entry(t.project(cols)).or_insert(0) += m;
        }
        Ok(BagRelation::from_map(cols.len(), tuples))
    }
}

impl fmt::Display for BagRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{|")?;
        for (i, (t, m)) in self.tuples.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if *m == 1 {
                write!(f, "{t}")?;
            } else {
                write!(f, "{t}×{m}")?;
            }
        }
        write!(f, "|}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn bag(rows: &[(i64, u64)]) -> BagRelation {
        let mut b = BagRelation::empty(1);
        for &(v, m) in rows {
            b.insert(tuple![v], m).unwrap();
        }
        b
    }

    #[test]
    fn union_is_additive() {
        let a = bag(&[(1, 2), (2, 1)]);
        let b = bag(&[(1, 3), (3, 1)]);
        let u = a.union(&b).unwrap();
        assert_eq!(u.multiplicity(&tuple![1]), 5);
        assert_eq!(u.multiplicity(&tuple![2]), 1);
        assert_eq!(u.multiplicity(&tuple![3]), 1);
        assert_eq!(u.len(), 7);
    }

    #[test]
    fn difference_is_monus() {
        let a = bag(&[(1, 3), (2, 1)]);
        let b = bag(&[(1, 5), (2, 1)]);
        let d = a.difference(&b).unwrap();
        assert!(d.is_empty());
        let d = b.difference(&a).unwrap();
        assert_eq!(d.multiplicity(&tuple![1]), 2);
        assert_eq!(d.multiplicity(&tuple![2]), 0);
    }

    #[test]
    fn intersection_is_min() {
        let a = bag(&[(1, 3), (2, 2)]);
        let b = bag(&[(1, 1), (3, 9)]);
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.multiplicity(&tuple![1]), 1);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn product_multiplies() {
        let a = bag(&[(1, 2)]);
        let b = bag(&[(9, 3)]);
        let p = a.product(&b);
        assert_eq!(p.multiplicity(&tuple![1, 9]), 6);
        assert_eq!(p.arity(), 2);
    }

    #[test]
    fn project_accumulates() {
        let mut b = BagRelation::empty(2);
        b.insert(tuple![1, 10], 2).unwrap();
        b.insert(tuple![1, 20], 3).unwrap();
        let p = b.project(&[0]).unwrap();
        assert_eq!(p.multiplicity(&tuple![1]), 5);
        assert!(b.project(&[7]).is_err());
    }

    #[test]
    fn set_conversions() {
        let b = bag(&[(1, 3), (2, 1)]);
        let s = b.to_set();
        assert_eq!(s.len(), 2);
        let b2 = BagRelation::from_set(&s);
        assert_eq!(b2.len(), 2);
        assert_eq!(b2.multiplicity(&tuple![1]), 1);
    }

    #[test]
    fn union_not_idempotent() {
        // The rewrite-rule divergence from set semantics, as a fact.
        let a = bag(&[(1, 1)]);
        assert_ne!(a.union(&a).unwrap(), a);
    }

    #[test]
    fn arity_checks() {
        let a = BagRelation::empty(1);
        let b = BagRelation::empty(2);
        assert!(a.union(&b).is_err());
        assert!(a.difference(&b).is_err());
        assert!(a.intersect(&b).is_err());
        let mut a = a;
        assert!(a.insert(tuple![1, 2], 1).is_err());
    }

    #[test]
    fn display_shows_multiplicities() {
        let b = bag(&[(1, 1), (2, 3)]);
        assert_eq!(b.to_string(), "{|(1), (2)×3|}");
    }

    #[test]
    fn clone_shares_storage_until_write() {
        let a = bag(&[(1, 2), (2, 1)]);
        let mut b = a.clone();
        assert!(a.ptr_eq(&b));
        b.insert(tuple![3], 1).unwrap();
        assert!(!a.ptr_eq(&b));
        assert_eq!(a.multiplicity(&tuple![3]), 0);
        let e = BagRelation::empty(1);
        assert!(a.union(&e).unwrap().ptr_eq(&a));
        assert!(a.difference(&e).unwrap().ptr_eq(&a));
    }
}
