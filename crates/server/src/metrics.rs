//! Atomic-counter metrics for the server: connection/request/byte
//! counters plus a per-verb latency histogram, all lock-free (`AtomicU64`
//! everywhere) so the hot path never serializes behind a mutex. Rendered
//! as `key value` lines by the `STATS` verb.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::proto::Verb;

const BUCKETS: usize = 22;

/// A power-of-two latency histogram: bucket `b` counts observations in
/// `[2^(b-1), 2^b)` microseconds (bucket 0 is `< 1 µs`, the last bucket
/// absorbs everything ≥ ~2 s). Quantiles come back as the upper bound of
/// the bucket the quantile falls in — coarse, but monotone and cheap.
#[derive(Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Histogram {
    fn bucket_of(us: u64) -> usize {
        if us == 0 {
            0
        } else {
            ((u64::BITS - us.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// Record one observation, in microseconds.
    pub fn record_us(&self, us: u64) {
        self.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// The upper bound (µs) of the bucket holding quantile `q` ∈ [0, 1].
    pub fn quantile_us(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (b, slot) in self.buckets.iter().enumerate() {
            seen += slot.load(Ordering::Relaxed);
            if seen >= rank {
                return if b == 0 { 1 } else { 1u64 << b };
            }
        }
        1u64 << (BUCKETS - 1)
    }
}

/// One verb's counters.
#[derive(Default)]
pub struct VerbMetrics {
    /// Requests carrying this verb.
    pub count: AtomicU64,
    /// How many of them answered with `ERR`.
    pub errors: AtomicU64,
    /// Request-handling latency.
    pub latency: Histogram,
}

/// The server-wide registry. Shared (`Arc`) between the accept loop, all
/// workers, and the `STATS` verb.
#[derive(Default)]
pub struct Metrics {
    /// Connections accepted since start.
    pub connections: AtomicU64,
    /// Connections currently being served.
    pub active: AtomicU64,
    /// Request frames received (well-formed or not).
    pub requests: AtomicU64,
    /// Requests answered with `ERR` (any code).
    pub errors: AtomicU64,
    /// Request bytes read off the wire (frames incl. length prefixes).
    pub bytes_in: AtomicU64,
    /// Reply + greeting bytes written (frames incl. length prefixes).
    pub bytes_out: AtomicU64,
    verbs: [VerbMetrics; Verb::ALL.len()],
}

impl Metrics {
    /// Fresh, all-zero registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// The counters for one verb.
    pub fn verb(&self, v: Verb) -> &VerbMetrics {
        &self.verbs[v.index()]
    }

    /// Record one handled request.
    pub fn record_request(&self, verb: Option<Verb>, latency_us: u64, errored: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if errored {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(v) = verb {
            let vm = self.verb(v);
            vm.count.fetch_add(1, Ordering::Relaxed);
            if errored {
                vm.errors.fetch_add(1, Ordering::Relaxed);
            }
            vm.latency.record_us(latency_us);
        }
    }

    /// Render the whole registry as `key value` lines — the `STATS`
    /// reply body. Verbs with zero traffic are omitted. Secondary-index
    /// cache counters (process-wide, from `hypoquery_storage`) ride along
    /// as `index.*` lines: `hits` are probes answered from cache, `misses`
    /// are probes that found no cached build, `builds` are physical index
    /// constructions — `misses == builds` means no rebuild was wasted.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (key, val) in [
            ("server.connections", &self.connections),
            ("server.active", &self.active),
            ("server.requests", &self.requests),
            ("server.errors", &self.errors),
            ("server.bytes_in", &self.bytes_in),
            ("server.bytes_out", &self.bytes_out),
        ] {
            out.push_str(key);
            out.push(' ');
            out.push_str(&val.load(Ordering::Relaxed).to_string());
            out.push('\n');
        }
        let idx = hypoquery_storage::index_counters();
        for (key, val) in [
            ("index.hits", idx.hits),
            ("index.misses", idx.misses),
            ("index.builds", idx.builds),
        ] {
            out.push_str(key);
            out.push(' ');
            out.push_str(&val.to_string());
            out.push('\n');
        }
        for v in Verb::ALL {
            let vm = self.verb(v);
            let count = vm.count.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            let name = v.name();
            out.push_str(&format!("verb.{name}.count {count}\n"));
            out.push_str(&format!(
                "verb.{name}.errors {}\n",
                vm.errors.load(Ordering::Relaxed)
            ));
            out.push_str(&format!("verb.{name}.mean_us {}\n", vm.latency.mean_us()));
            out.push_str(&format!(
                "verb.{name}.p50_us {}\n",
                vm.latency.quantile_us(0.50)
            ));
            out.push_str(&format!(
                "verb.{name}.p99_us {}\n",
                vm.latency.quantile_us(0.99)
            ));
        }
        out.trim_end().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.quantile_us(0.5), 0); // empty
        for us in [0, 1, 1, 2, 3, 100, 1000, 100_000] {
            h.record_us(us);
        }
        assert_eq!(h.count(), 8);
        assert!(h.mean_us() > 0);
        // Monotone in q, and the tail lands in a high bucket.
        let p50 = h.quantile_us(0.5);
        let p99 = h.quantile_us(0.99);
        assert!(p50 <= p99, "{p50} vs {p99}");
        assert!(p99 >= 100_000, "{p99}");
        // Tiny latencies resolve to the 1 µs floor.
        assert_eq!(h.quantile_us(0.01), 1);
    }

    #[test]
    fn bucket_of_is_monotone_and_bounded() {
        let mut prev = 0;
        for us in [0u64, 1, 2, 3, 4, 7, 8, 1000, u64::MAX] {
            let b = Histogram::bucket_of(us);
            assert!(b >= prev, "{us}");
            assert!(b < BUCKETS);
            prev = b;
        }
    }

    #[test]
    fn render_reconciles_counts() {
        let m = Metrics::new();
        m.record_request(Some(Verb::Query), 120, false);
        m.record_request(Some(Verb::Query), 80, true);
        m.record_request(Some(Verb::Ping), 5, false);
        m.record_request(None, 1, true); // malformed frame: no verb
        let text = m.render();
        assert!(text.contains("server.requests 4"), "{text}");
        assert!(text.contains("server.errors 2"), "{text}");
        assert!(text.contains("verb.QUERY.count 2"), "{text}");
        assert!(text.contains("verb.QUERY.errors 1"), "{text}");
        assert!(text.contains("verb.PING.count 1"), "{text}");
        // Untouched verbs are omitted.
        assert!(!text.contains("verb.DUMP"), "{text}");
        // Index cache counters are always present.
        assert!(text.contains("index.hits "), "{text}");
        assert!(text.contains("index.misses "), "{text}");
        assert!(text.contains("index.builds "), "{text}");
        // Every line is `key value`.
        for line in text.lines() {
            let mut parts = line.split(' ');
            assert!(parts.next().is_some());
            assert!(parts.next().unwrap().parse::<u64>().is_ok(), "{line}");
            assert!(parts.next().is_none(), "{line}");
        }
    }
}
