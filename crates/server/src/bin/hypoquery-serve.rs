//! `hypoquery-serve` — serve a database over the HQL wire protocol.
//!
//! ```text
//! hypoquery-serve [--addr HOST:PORT] [--workers N] [--load DUMP_FILE]
//!                 [--read-timeout-ms N] [--idle-timeout-ms N]
//!                 [--max-request-bytes N]
//! ```
//!
//! Starts empty unless `--load` points at a `hypoquery_storage::dump`
//! file. Stops on the `SHUTDOWN` verb from any client, or on a
//! `shutdown` line on stdin (the dependency-free stand-in for signal
//! handling — wire a process supervisor to either).

use std::io::BufRead;
use std::process::ExitCode;
use std::time::Duration;

use hypoquery_engine::Database;
use hypoquery_server::{serve, ServerConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: hypoquery-serve [--addr HOST:PORT] [--workers N] [--load DUMP_FILE]\n\
         \u{20}                      [--read-timeout-ms N] [--idle-timeout-ms N]\n\
         \u{20}                      [--max-request-bytes N]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut config = ServerConfig::default();
    let mut load: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |name: &str| -> Option<String> {
            let v = args.next();
            if v.is_none() {
                eprintln!("{name} needs a value");
            }
            v
        };
        match flag.as_str() {
            "--addr" => match take("--addr") {
                Some(v) => config.addr = v,
                None => return usage(),
            },
            "--workers" => match take("--workers").and_then(|v| v.parse().ok()) {
                Some(n) => config.workers = n,
                None => return usage(),
            },
            "--load" => match take("--load") {
                Some(v) => load = Some(v),
                None => return usage(),
            },
            "--read-timeout-ms" => match take("--read-timeout-ms").and_then(|v| v.parse().ok()) {
                Some(ms) => config.read_timeout = Duration::from_millis(ms),
                None => return usage(),
            },
            "--idle-timeout-ms" => match take("--idle-timeout-ms").and_then(|v| v.parse().ok()) {
                Some(ms) => config.idle_timeout = Duration::from_millis(ms),
                None => return usage(),
            },
            "--max-request-bytes" => {
                match take("--max-request-bytes").and_then(|v| v.parse().ok()) {
                    Some(n) => config.max_request_bytes = n,
                    None => return usage(),
                }
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other:?}");
                return usage();
            }
        }
    }

    let db = match &load {
        None => Database::new(),
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match Database::restore(&text) {
                Ok(db) => db,
                Err(e) => {
                    eprintln!("cannot load {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let handle = match serve(config, db) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("hypoquery-serve listening on {}", handle.addr());
    if let Some(path) = load {
        println!("loaded {path}");
    }
    println!("send the SHUTDOWN verb (or type `shutdown`) to stop");

    // Stdin watcher: `shutdown`/`quit` stops the server; EOF (e.g. when
    // daemonized with stdin closed) just stops watching.
    let stdin_trigger = {
        let shared = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = std::sync::Arc::clone(&shared);
        std::thread::spawn(move || {
            for line in std::io::stdin().lock().lines() {
                match line {
                    Ok(l) if matches!(l.trim(), "shutdown" | "quit" | "exit") => {
                        flag.store(true, std::sync::atomic::Ordering::SeqCst);
                        return;
                    }
                    Ok(_) => {}
                    Err(_) => return,
                }
            }
        });
        shared
    };

    // Wait for either trigger.
    while !handle.is_shutting_down() {
        if stdin_trigger.load(std::sync::atomic::Ordering::SeqCst) {
            handle.shutdown();
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    handle.join();
    println!("bye");
    ExitCode::SUCCESS
}
