//! Per-connection session state and verb dispatch.
//!
//! Every connection owns a **copy-on-write snapshot** of the server's
//! base [`Database`] (a `clone` is pointer bumps — see PR 1's shared
//! storage), plus a [`WhatIfTree`] of named what-if branches, a registry
//! of [`PreparedState`]s, and an evaluation [`Strategy`]. Nothing here is
//! shared between sessions, so concurrent clients get isolation for free
//! and no verb ever takes a lock.
//!
//! The session's view of the world:
//!
//! * `SWITCH <branch>` selects a branch; `QUERY`/`EXPLAIN` then evaluate
//!   in that branch's hypothetical state (`Q when η_path`).
//! * `UPDATE` at the root applies a real, constraint-checked update to
//!   the session snapshot. `UPDATE` *on a branch* stays hypothetical: it
//!   stacks an auto-named child branch and switches to it, so an analyst
//!   can keep typing updates and watch a scenario evolve without ever
//!   touching the base data.

use std::collections::BTreeMap;

use hypoquery_engine::{Database, EngineError, PreparedState, Strategy, WhatIfTree};

use crate::proto::{parse_paren_rows, Reply, Request, Verb, WireError};

/// What the connection loop should do after a reply.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Control {
    /// Keep serving this connection.
    Continue,
    /// Close this connection (`BYE`, fatal framing errors).
    Close,
    /// Close this connection and stop the whole server (`SHUTDOWN`).
    Shutdown,
}

/// One connection's isolated state.
pub struct Session {
    db: Database,
    tree: WhatIfTree,
    current: Option<String>,
    prepared: BTreeMap<String, PreparedState>,
    strategy: Strategy,
    anon: usize,
}

impl Session {
    /// Start a session over a snapshot of the server's base database.
    pub fn new(db: Database) -> Session {
        Session {
            db,
            tree: WhatIfTree::new(),
            current: None,
            prepared: BTreeMap::new(),
            strategy: Strategy::Auto,
            anon: 0,
        }
    }

    /// The session's database (tests, in-process fallbacks).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The currently selected branch, if any.
    pub fn current_branch(&self) -> Option<&str> {
        self.current.as_deref()
    }

    /// Dispatch one request. `STATS` is server-scoped and handled by the
    /// caller; it answers with a protocol error here.
    pub fn handle(&mut self, req: &Request) -> (Reply, Control) {
        let reply = match req.verb {
            Verb::Ping => Ok(Reply::Ok("pong".into())),
            Verb::Query => self.query(req),
            Verb::Table => self.table(req),
            Verb::Update => self.update(req),
            Verb::Explain => self.explain(req),
            Verb::Define => self.define(req),
            Verb::Load => self.load(req),
            Verb::Constraint => self.constraint(req),
            Verb::Branch => self.branch(req),
            Verb::Switch => self.switch(req),
            Verb::Drop => self.drop_branch(req),
            Verb::Branches => Ok(self.branches()),
            Verb::Prepare => self.prepare(req),
            Verb::Exec => self.exec(req),
            Verb::Strategy => self.set_strategy(req),
            Verb::Schema => Ok(self.schema()),
            Verb::Dump => Ok(Reply::Text(self.db.dump())),
            Verb::Restore => self.restore(req),
            Verb::Index => self.create_index(req),
            Verb::Unindex => self.drop_index(req),
            Verb::Stats => Err(WireError::proto("STATS is handled by the server")),
            Verb::Bye => return (Reply::ok(), Control::Close),
            Verb::Shutdown => return (Reply::ok(), Control::Shutdown),
        };
        match reply {
            Ok(r) => (r, Control::Continue),
            Err(e) => (Reply::Err(e), Control::Continue),
        }
    }

    fn query(&self, req: &Request) -> Result<Reply, WireError> {
        let src = req.source();
        let rel = match &self.current {
            None => self.db.query_with(&src, self.strategy),
            Some(b) => self.tree.query_at(&self.db, b, &src, self.strategy),
        }
        .map_err(|e| WireError::from_engine(&e))?;
        Ok(Reply::Rows(rel))
    }

    fn table(&self, req: &Request) -> Result<Reply, WireError> {
        let src = req.source();
        let text = match &self.current {
            None => self.db.query_table(&src),
            Some(b) => self.db.prepare(&src).and_then(|q| {
                // Headers come from the surface query; rows from the
                // branch's hypothetical state.
                let attrs = self.db.output_attrs(&q)?;
                let rel = self.tree.query_at(&self.db, b, &src, self.strategy)?;
                Ok(hypoquery_engine::render_table(&attrs, &rel))
            }),
        }
        .map_err(|e| WireError::from_engine(&e))?;
        Ok(Reply::Text(text.trim_end().to_string()))
    }

    fn update(&mut self, req: &Request) -> Result<Reply, WireError> {
        let src = req.source();
        match self.current.clone() {
            None => {
                self.db
                    .execute_update(&src)
                    .map_err(|e| WireError::from_engine(&e))?;
                // Real state moved: prepared materializations are stale.
                for p in self.prepared.values_mut() {
                    p.invalidate();
                }
                Ok(Reply::ok())
            }
            Some(cur) => {
                // Hypothetical: stack an auto-named child branch.
                let name = loop {
                    self.anon += 1;
                    let cand = format!("{cur}+{}", self.anon);
                    if !self.tree.contains(&cand) {
                        break cand;
                    }
                };
                self.tree
                    .branch(&self.db, &name, Some(&cur), &src)
                    .map_err(|e| WireError::from_engine(&e))?;
                self.current = Some(name.clone());
                Ok(Reply::Ok(format!("branch {name}")))
            }
        }
    }

    fn explain(&self, req: &Request) -> Result<Reply, WireError> {
        let src = req.source();
        // `EXPLAIN ANALYZE <hql>` rides on the same verb: a leading
        // ANALYZE keyword (case-insensitive) switches to instrumented
        // execution with per-operator rows/elapsed.
        let (analyze, src) = match src.trim_start().split_once(char::is_whitespace) {
            Some((kw, rest)) if kw.eq_ignore_ascii_case("ANALYZE") => {
                (true, rest.trim().to_string())
            }
            _ => (false, src),
        };
        let text = match (&self.current, analyze) {
            (None, false) => self.db.explain(&src),
            (None, true) => self.db.explain_analyze(&src),
            (Some(b), analyze) => self
                .db
                .prepare(&src)
                .and_then(|q| self.tree.at(b, &q))
                .and_then(|wrapped| {
                    if analyze {
                        self.db.explain_analyze_query(&wrapped)
                    } else {
                        self.db.explain_query(&wrapped)
                    }
                }),
        }
        .map_err(|e| WireError::from_engine(&e))?;
        Ok(Reply::Text(text))
    }

    fn define(&mut self, req: &Request) -> Result<Reply, WireError> {
        let (name, spec) = req
            .args
            .split_once(char::is_whitespace)
            .ok_or_else(|| WireError::proto("usage: DEFINE <name> <arity | attr,attr,...>"))?;
        let (name, spec) = (name.trim(), spec.trim());
        if let Ok(arity) = spec.parse::<usize>() {
            self.db.define(name, arity)
        } else {
            self.db.define_named(name, spec.split(',').map(str::trim))
        }
        .map_err(|e| WireError::from_engine(&e))?;
        Ok(Reply::ok())
    }

    fn load(&mut self, req: &Request) -> Result<Reply, WireError> {
        let (name, inline) = match req.args.split_once(char::is_whitespace) {
            Some((n, rest)) => (n.trim(), rest.trim()),
            None => (req.args.trim(), ""),
        };
        if name.is_empty() {
            return Err(WireError::proto("usage: LOAD <name> [(v, ...) ...]"));
        }
        // Rows arrive inline in paren syntax and/or as dump-format body
        // lines (the client's bulk path).
        let mut rows = parse_paren_rows(inline)?;
        for (i, line) in req.body.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            rows.push(
                hypoquery_storage::decode_tuple(line, i + 1)
                    .map_err(|e| WireError::proto(e.to_string()))?,
            );
        }
        let n = rows.len();
        self.db
            .load(name, rows)
            .map_err(|e| WireError::from_engine(&e))?;
        Ok(Reply::Ok(format!("loaded {n}")))
    }

    fn constraint(&mut self, req: &Request) -> Result<Reply, WireError> {
        // `CONSTRAINT <name>` with the violation query in the args tail
        // or the body.
        let (name, rest) = match req.args.split_once(char::is_whitespace) {
            Some((n, r)) => (n.trim(), r.trim().to_string()),
            None => (req.args.trim(), String::new()),
        };
        let src = if req.body.trim().is_empty() {
            rest
        } else if rest.is_empty() {
            req.body.trim().to_string()
        } else {
            format!("{rest}\n{}", req.body.trim())
        };
        if name.is_empty() || src.is_empty() {
            return Err(WireError::proto(
                "usage: CONSTRAINT <name> <violation query>",
            ));
        }
        self.db
            .add_constraint(name, &src)
            .map_err(|e| WireError::from_engine(&e))?;
        Ok(Reply::ok())
    }

    fn branch(&mut self, req: &Request) -> Result<Reply, WireError> {
        // `BRANCH <name> [FROM <parent>]`, update source in the body.
        let mut parts = req.args.split_whitespace();
        let name = parts
            .next()
            .ok_or_else(|| WireError::proto("usage: BRANCH <name> [FROM <parent>] + body"))?;
        let parent = match (parts.next().map(str::to_ascii_uppercase), parts.next()) {
            (None, _) => self.current.clone(),
            (Some(kw), Some(p)) if kw == "FROM" => Some(p.to_string()),
            _ => {
                return Err(WireError::proto(
                    "usage: BRANCH <name> [FROM <parent>] + body",
                ))
            }
        };
        if parts.next().is_some() {
            return Err(WireError::proto(
                "usage: BRANCH <name> [FROM <parent>] + body",
            ));
        }
        if req.body.trim().is_empty() {
            return Err(WireError::proto("BRANCH needs an update in the body"));
        }
        self.tree
            .branch(&self.db, name, parent.as_deref(), req.body.trim())
            .map_err(|e| WireError::from_engine(&e))?;
        Ok(Reply::ok())
    }

    fn switch(&mut self, req: &Request) -> Result<Reply, WireError> {
        let target = req.args.trim();
        if target.is_empty() {
            return Err(WireError::proto("usage: SWITCH <branch | ->"));
        }
        if target == "-" || target.eq_ignore_ascii_case("root") {
            self.current = None;
            return Ok(Reply::Ok("at root".into()));
        }
        if !self.tree.contains(target) {
            return Err(WireError::from_engine(&EngineError::UnknownName(
                target.to_string(),
            )));
        }
        self.current = Some(target.to_string());
        Ok(Reply::Ok(format!("at {target}")))
    }

    fn drop_branch(&mut self, req: &Request) -> Result<Reply, WireError> {
        let name = req.args.trim();
        if name.is_empty() {
            return Err(WireError::proto("usage: DROP <branch>"));
        }
        let removed = self
            .tree
            .drop_branch(name)
            .map_err(|e| WireError::from_engine(&e))?;
        if let Some(cur) = &self.current {
            if removed.contains(cur) {
                self.current = None;
            }
        }
        Ok(Reply::Ok(format!("dropped {}", removed.len())))
    }

    fn branches(&self) -> Reply {
        let mut out = String::new();
        for name in self.tree.branch_names() {
            let marker = if self.current.as_deref() == Some(name) {
                '*'
            } else {
                ' '
            };
            let parent = self.tree.parent_of(name).ok().flatten().unwrap_or("-");
            out.push_str(&format!("{marker}{name}\t{parent}\n"));
        }
        Reply::Text(out.trim_end().to_string())
    }

    fn prepare(&mut self, req: &Request) -> Result<Reply, WireError> {
        let name = req.args.trim();
        if name.is_empty() || req.body.trim().is_empty() {
            return Err(WireError::proto(
                "usage: PREPARE <name> + state expression body",
            ));
        }
        if self.prepared.contains_key(name) {
            return Err(WireError::from_engine(&EngineError::DuplicateName(
                name.to_string(),
            )));
        }
        let mut p = PreparedState::parse(&self.db, req.body.trim())
            .map_err(|e| WireError::from_engine(&e))?;
        // Eager by default: Example 2.2's repeated-family use is the
        // whole point of PREPARE.
        p.materialize(&self.db)
            .map_err(|e| WireError::from_engine(&e))?;
        self.prepared.insert(name.to_string(), p);
        Ok(Reply::ok())
    }

    fn exec(&mut self, req: &Request) -> Result<Reply, WireError> {
        let (name, rest) = match req.args.split_once(char::is_whitespace) {
            Some((n, r)) => (n.trim(), r.trim().to_string()),
            None => (req.args.trim(), String::new()),
        };
        if name.is_empty() {
            return Err(WireError::proto("usage: EXEC <name> <query>"));
        }
        let src = if req.body.trim().is_empty() {
            rest
        } else if rest.is_empty() {
            req.body.trim().to_string()
        } else {
            format!("{rest}\n{}", req.body.trim())
        };
        if src.is_empty() {
            return Err(WireError::proto("usage: EXEC <name> <query>"));
        }
        let p = self
            .prepared
            .get(name)
            .ok_or_else(|| WireError::from_engine(&EngineError::UnknownName(name.to_string())))?;
        let rel = p
            .query_src(&self.db, &src)
            .map_err(|e| WireError::from_engine(&e))?;
        Ok(Reply::Rows(rel))
    }

    fn set_strategy(&mut self, req: &Request) -> Result<Reply, WireError> {
        let s: Strategy = req
            .args
            .parse()
            .map_err(|e: EngineError| WireError::from_engine(&e))?;
        self.strategy = s;
        Ok(Reply::Ok(format!("strategy {s}")))
    }

    fn restore(&mut self, req: &Request) -> Result<Reply, WireError> {
        if req.body.trim().is_empty() {
            return Err(WireError::proto("usage: RESTORE + dump body"));
        }
        let db = Database::restore(&req.body).map_err(|e| WireError::from_engine(&e))?;
        // Branches and prepared states reference the old catalog.
        self.db = db;
        self.tree = WhatIfTree::new();
        self.current = None;
        self.prepared.clear();
        Ok(Reply::ok())
    }

    /// Parse `<relation> <column>` where the column is a position or (for
    /// named schemas) an attribute name.
    fn index_args(&self, args: &str, usage: &'static str) -> Result<(String, usize), WireError> {
        let mut parts = args.split_whitespace();
        let (Some(name), Some(col), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(WireError::proto(usage));
        };
        let col = match col.parse::<usize>() {
            Ok(c) => c,
            Err(_) => self
                .db
                .catalog()
                .schema(&name.into())
                .and_then(|s| s.attrs.as_ref())
                .and_then(|attrs| attrs.iter().position(|a| a == col))
                .ok_or_else(|| WireError::proto(format!("unknown column {col:?}")))?,
        };
        Ok((name.to_string(), col))
    }

    fn create_index(&mut self, req: &Request) -> Result<Reply, WireError> {
        let (name, col) = self.index_args(&req.args, "usage: INDEX <relation> <column>")?;
        let fresh = self
            .db
            .create_index(&name, col)
            .map_err(|e| WireError::from_engine(&e))?;
        Ok(Reply::Ok(if fresh {
            format!("index {name}.{col}")
        } else {
            format!("index {name}.{col} (already declared)")
        }))
    }

    fn drop_index(&mut self, req: &Request) -> Result<Reply, WireError> {
        let (name, col) = self.index_args(&req.args, "usage: UNINDEX <relation> <column>")?;
        let existed = self
            .db
            .drop_index(&name, col)
            .map_err(|e| WireError::from_engine(&e))?;
        Ok(Reply::Ok(if existed {
            format!("dropped index {name}.{col}")
        } else {
            format!("no index {name}.{col}")
        }))
    }

    fn schema(&self) -> Reply {
        let mut out = String::new();
        for (name, schema) in self.db.catalog().iter() {
            out.push_str(name.as_str());
            out.push('/');
            out.push_str(&schema.arity.to_string());
            if let Some(attrs) = &schema.attrs {
                out.push(' ');
                out.push_str(&attrs.join(","));
            }
            out.push('\n');
        }
        Reply::Text(out.trim_end().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::ErrCode;
    use hypoquery_storage::tuple;

    fn req(line: &str, body: &str) -> Request {
        let mut payload = line.to_string();
        if !body.is_empty() {
            payload.push('\n');
            payload.push_str(body);
        }
        Request::decode(payload.as_bytes()).unwrap()
    }

    fn ok(s: &mut Session, line: &str, body: &str) -> Reply {
        let (reply, ctl) = s.handle(&req(line, body));
        assert_eq!(ctl, Control::Continue, "{line}");
        if let Reply::Err(e) = &reply {
            panic!("{line}: unexpected error {e}");
        }
        reply
    }

    fn err(s: &mut Session, line: &str, body: &str) -> WireError {
        match s.handle(&req(line, body)) {
            (Reply::Err(e), Control::Continue) => e,
            other => panic!("{line}: expected error, got {other:?}"),
        }
    }

    fn rows(r: Reply) -> usize {
        match r {
            Reply::Rows(rel) => rel.len(),
            other => panic!("expected rows, got {other:?}"),
        }
    }

    fn session() -> Session {
        let mut s = Session::new(Database::new());
        ok(&mut s, "DEFINE inv item,qty", "");
        ok(&mut s, "LOAD inv (1, 10) (2, 20) (3, 30)", "");
        s
    }

    #[test]
    fn define_load_query_update() {
        let mut s = session();
        assert_eq!(rows(ok(&mut s, "QUERY select qty >= 20 (inv)", "")), 2);
        ok(&mut s, "UPDATE insert into inv (row(4, 40))", "");
        assert_eq!(rows(ok(&mut s, "QUERY inv", "")), 4);
        // Body-borne rows (the client's bulk path).
        ok(&mut s, "LOAD inv", "5\t50\n6\t60");
        assert_eq!(rows(ok(&mut s, "QUERY inv", "")), 6);
    }

    #[test]
    fn branch_switch_query_drop() {
        let mut s = session();
        ok(
            &mut s,
            "BRANCH cut",
            "delete from inv (select qty < 15 (inv))",
        );
        ok(
            &mut s,
            "BRANCH restock FROM cut",
            "insert into inv (row(4, 40))",
        );
        assert_eq!(rows(ok(&mut s, "QUERY inv", "")), 3); // root untouched
        ok(&mut s, "SWITCH restock", "");
        assert_eq!(rows(ok(&mut s, "QUERY inv", "")), 3); // -1 +1
                                                          // Hypothetical UPDATE stacks a child branch.
        let note = match ok(&mut s, "UPDATE delete from inv (select qty > 35 (inv))", "") {
            Reply::Ok(n) => n,
            other => panic!("{other:?}"),
        };
        assert!(note.starts_with("branch restock+"), "{note}");
        assert_eq!(rows(ok(&mut s, "QUERY inv", "")), 2);
        // BRANCH with no FROM parents at the *current* branch.
        ok(&mut s, "BRANCH deeper", "insert into inv (row(9, 90))");
        ok(&mut s, "SWITCH deeper", "");
        assert_eq!(rows(ok(&mut s, "QUERY inv", "")), 3);
        // Root data never moved.
        ok(&mut s, "SWITCH -", "");
        assert_eq!(rows(ok(&mut s, "QUERY inv", "")), 3);
        // Dropping `cut` takes the whole subtree with it.
        let note = match ok(&mut s, "DROP cut", "") {
            Reply::Ok(n) => n,
            other => panic!("{other:?}"),
        };
        assert_eq!(note, "dropped 4");
        assert_eq!(err(&mut s, "SWITCH restock", "").code, ErrCode::Unknown);
    }

    #[test]
    fn dropping_current_branch_resets_to_root() {
        let mut s = session();
        ok(&mut s, "BRANCH b", "insert into inv (row(4, 40))");
        ok(&mut s, "SWITCH b", "");
        ok(&mut s, "DROP b", "");
        assert_eq!(s.current_branch(), None);
        assert_eq!(rows(ok(&mut s, "QUERY inv", "")), 3);
    }

    #[test]
    fn branches_listing_marks_current() {
        let mut s = session();
        ok(&mut s, "BRANCH a", "insert into inv (row(4, 40))");
        ok(&mut s, "BRANCH b FROM a", "insert into inv (row(5, 50))");
        ok(&mut s, "SWITCH b", "");
        let text = match ok(&mut s, "BRANCHES", "") {
            Reply::Text(t) => t,
            other => panic!("{other:?}"),
        };
        assert_eq!(text, " a\t-\n*b\ta");
    }

    #[test]
    fn prepare_exec_family() {
        let mut s = session();
        ok(
            &mut s,
            "PREPARE plan",
            "{delete from inv (select qty < 15 (inv))}",
        );
        assert_eq!(rows(ok(&mut s, "EXEC plan inv", "")), 2);
        // Matches the equivalent WHEN query.
        assert_eq!(
            rows(ok(
                &mut s,
                "QUERY inv when {delete from inv (select qty < 15 (inv))}",
                ""
            )),
            2
        );
        assert_eq!(
            err(&mut s, "PREPARE plan", "{insert into inv (row(7, 7))}").code,
            ErrCode::Duplicate
        );
        assert_eq!(err(&mut s, "EXEC nosuch inv", "").code, ErrCode::Unknown);
        // A real update invalidates the materialization but EXEC still
        // answers (lazily) against fresh data.
        ok(&mut s, "UPDATE insert into inv (row(4, 5))", "");
        assert_eq!(rows(ok(&mut s, "EXEC plan inv", "")), 2); // 5 < 15 deleted
    }

    #[test]
    fn explain_works_on_branches_too() {
        let mut s = session();
        let t = match ok(&mut s, "EXPLAIN inv when {delete from inv (inv)}", "") {
            Reply::Text(t) => t,
            other => panic!("{other:?}"),
        };
        assert!(t.contains("strategy:"), "{t}");
        ok(
            &mut s,
            "BRANCH b",
            "delete from inv (select qty > 15 (inv))",
        );
        ok(&mut s, "SWITCH b", "");
        let t = match ok(&mut s, "EXPLAIN inv", "") {
            Reply::Text(t) => t,
            other => panic!("{other:?}"),
        };
        assert!(t.contains("when"), "{t}");
    }

    #[test]
    fn explain_analyze_shows_operator_metrics() {
        let mut s = session();
        let t = match ok(
            &mut s,
            "EXPLAIN ANALYZE inv when {delete from inv (inv)}",
            "",
        ) {
            Reply::Text(t) => t,
            other => panic!("{other:?}"),
        };
        assert!(t.contains("physical plan (analyzed):"), "{t}");
        assert!(t.contains("rows in="), "{t}");
        assert!(t.contains("time="), "{t}");
        // Analyze also works on a branch, and the keyword is
        // case-insensitive.
        ok(
            &mut s,
            "BRANCH b",
            "delete from inv (select qty > 15 (inv))",
        );
        ok(&mut s, "SWITCH b", "");
        let t = match ok(&mut s, "EXPLAIN analyze inv", "") {
            Reply::Text(t) => t,
            other => panic!("{other:?}"),
        };
        assert!(t.contains("rows in="), "{t}");
    }

    #[test]
    fn strategy_schema_dump_ping() {
        let mut s = session();
        ok(&mut s, "STRATEGY lazy", "");
        assert_eq!(rows(ok(&mut s, "QUERY inv", "")), 3);
        assert_eq!(err(&mut s, "STRATEGY eager", "").code, ErrCode::Unknown);
        let t = match ok(&mut s, "SCHEMA", "") {
            Reply::Text(t) => t,
            other => panic!("{other:?}"),
        };
        assert_eq!(t, "inv/2 item,qty");
        let d = match ok(&mut s, "DUMP", "") {
            Reply::Text(t) => t,
            other => panic!("{other:?}"),
        };
        assert!(d.contains("relation inv 2 item,qty"), "{d}");
        assert!(matches!(ok(&mut s, "PING", ""), Reply::Ok(n) if n == "pong"));
    }

    #[test]
    fn engine_errors_become_structured_replies() {
        let mut s = session();
        assert_eq!(err(&mut s, "QUERY select (", "").code, ErrCode::Parse);
        assert_eq!(
            err(&mut s, "QUERY inv union nosuch", "").code,
            ErrCode::Type
        );
        assert_eq!(err(&mut s, "DEFINE inv 2", "").code, ErrCode::Storage);
        assert_eq!(
            err(&mut s, "BRANCH x FROM nope", "insert into inv (row(1, 1))").code,
            ErrCode::Unknown
        );
        assert_eq!(
            err(&mut s, "LOAD inv (bad literal)", "").code,
            ErrCode::Proto
        );
        assert_eq!(err(&mut s, "BRANCH", "").code, ErrCode::Proto);
        assert_eq!(err(&mut s, "STATS", "").code, ErrCode::Proto);
    }

    #[test]
    fn table_constraint_restore() {
        let mut s = session();
        let t = match ok(&mut s, "TABLE select qty >= 20 (inv)", "") {
            Reply::Text(t) => t,
            other => panic!("{other:?}"),
        };
        assert!(t.starts_with("item  qty"), "{t}");
        assert!(t.contains("3     30"), "{t}");
        // TABLE follows the current branch.
        ok(&mut s, "BRANCH b", "delete from inv (inv)");
        ok(&mut s, "SWITCH b", "");
        let t = match ok(&mut s, "TABLE inv", "") {
            Reply::Text(t) => t,
            other => panic!("{other:?}"),
        };
        assert_eq!(t.lines().count(), 2, "{t}"); // header + rule only
        ok(&mut s, "SWITCH -", "");
        // Constraints guard real updates from then on.
        ok(&mut s, "CONSTRAINT no_neg select qty < 0 (inv)", "");
        let e = err(&mut s, "UPDATE insert into inv (row(9, -1))", "");
        assert_eq!(e.code, ErrCode::Constraint, "{e}");
        assert_eq!(
            err(&mut s, "CONSTRAINT no_neg inv", "").code,
            ErrCode::Duplicate
        );
        // RESTORE swaps the whole database and clears branch state.
        let dump = match ok(&mut s, "DUMP", "") {
            Reply::Text(t) => t,
            other => panic!("{other:?}"),
        };
        ok(&mut s, "UPDATE delete from inv (inv)", "");
        ok(&mut s, "BRANCH stale", "insert into inv (row(8, 80))");
        ok(&mut s, "RESTORE", &dump);
        assert_eq!(rows(ok(&mut s, "QUERY inv", "")), 3);
        assert_eq!(err(&mut s, "SWITCH stale", "").code, ErrCode::Unknown);
        assert_eq!(err(&mut s, "RESTORE", "").code, ErrCode::Proto);
    }

    #[test]
    fn index_verbs_lifecycle_and_errors() {
        let mut s = session();
        // Named and positional column forms.
        assert!(matches!(
            ok(&mut s, "INDEX inv item", ""),
            Reply::Ok(n) if n == "index inv.0"
        ));
        assert!(matches!(
            ok(&mut s, "INDEX inv 0", ""),
            Reply::Ok(n) if n.contains("already declared")
        ));
        // Queries are unaffected by the access path.
        assert_eq!(rows(ok(&mut s, "QUERY select item = 2 (inv)", "")), 1);
        assert!(matches!(
            ok(&mut s, "UNINDEX inv 0", ""),
            Reply::Ok(n) if n == "dropped index inv.0"
        ));
        assert!(matches!(
            ok(&mut s, "UNINDEX inv 0", ""),
            Reply::Ok(n) if n == "no index inv.0"
        ));
        // Errors: unknown relation, out-of-range column, bad arg shapes.
        assert_eq!(err(&mut s, "INDEX nosuch 0", "").code, ErrCode::Storage);
        assert_eq!(err(&mut s, "INDEX inv 2", "").code, ErrCode::Storage);
        assert_eq!(err(&mut s, "UNINDEX nosuch 0", "").code, ErrCode::Storage);
        assert_eq!(err(&mut s, "UNINDEX inv 9", "").code, ErrCode::Storage);
        assert_eq!(err(&mut s, "INDEX inv", "").code, ErrCode::Proto);
        assert_eq!(err(&mut s, "INDEX inv nope", "").code, ErrCode::Proto);
        assert_eq!(err(&mut s, "INDEX inv 0 extra", "").code, ErrCode::Proto);
    }

    #[test]
    fn bye_and_shutdown_control_flow() {
        let mut s = session();
        assert_eq!(s.handle(&req("BYE", "")).1, Control::Close);
        assert_eq!(s.handle(&req("SHUTDOWN", "")).1, Control::Shutdown);
    }

    #[test]
    fn sessions_are_isolated() {
        let base = {
            let mut s = session();
            ok(&mut s, "QUERY inv", "");
            s.db
        };
        let mut a = Session::new(base.clone());
        let mut b = Session::new(base.clone());
        ok(&mut a, "UPDATE insert into inv (row(100, 1))", "");
        ok(&mut b, "UPDATE delete from inv (inv)", "");
        assert_eq!(rows(ok(&mut a, "QUERY inv", "")), 4);
        assert_eq!(rows(ok(&mut b, "QUERY inv", "")), 0);
        assert_eq!(base.query("inv").unwrap().len(), 3);
        assert_eq!(
            base.query("inv").unwrap(),
            Relation::from_rows(2, [tuple![1, 10], tuple![2, 20], tuple![3, 30]].into_iter())
                .unwrap()
        );
    }

    use hypoquery_storage::Relation;
}
