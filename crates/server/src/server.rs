//! The threaded TCP server: one accept loop feeding a fixed worker pool.
//!
//! Connections queue behind a `Mutex<VecDeque>` + `Condvar`; workers pull
//! the next connection until shutdown — the same pull-until-empty shape
//! as `hypoquery_eval::exec`'s atomic work cursor, applied to sockets
//! instead of scenario indices (and the pool defaults to
//! [`hypoquery_eval::num_workers`], so `HYPOQUERY_THREADS` governs both).
//!
//! Robustness rules, all tested over loopback:
//!
//! * a request frame larger than the advertised limit ⇒ `ERR too-large`,
//!   connection closed (the unread payload would desync framing);
//! * a request that stalls mid-frame past the read timeout ⇒
//!   `ERR timeout`, connection closed — a slow-loris client costs one
//!   worker for at most the timeout;
//! * malformed requests (bad UTF-8, unknown verb) ⇒ `ERR proto`, the
//!   connection stays usable;
//! * `SHUTDOWN` (or [`ServerHandle::shutdown`]) ⇒ stop accepting, let
//!   in-flight requests finish, wake idle workers, exit.

use std::collections::VecDeque;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use hypoquery_engine::Database;

use crate::metrics::Metrics;
use crate::proto::{
    read_frame, write_frame, ErrCode, FrameError, Reply, Request, Verb, WireError,
    DEFAULT_MAX_REQUEST_BYTES, HELLO_PREFIX,
};
use crate::session::{Control, Session};

/// Everything tunable about a server.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port — tests).
    pub addr: String,
    /// Worker pool size; also the concurrent-session cap.
    pub workers: usize,
    /// Per-connection socket read timeout. Bounds how long a stalled
    /// request can hold a worker.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// How long a connection may sit idle *between* requests before the
    /// server hangs up.
    pub idle_timeout: Duration,
    /// Largest accepted request frame, bytes.
    pub max_request_bytes: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: format!("127.0.0.1:{}", crate::proto::DEFAULT_PORT),
            workers: hypoquery_eval::num_workers().max(2),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(300),
            max_request_bytes: DEFAULT_MAX_REQUEST_BYTES,
        }
    }
}

struct Shared {
    base: Database,
    config: ServerConfig,
    metrics: Metrics,
    shutdown: AtomicBool,
    queue: Mutex<VecDeque<TcpStream>>,
    wake: Condvar,
}

impl Shared {
    fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.wake.notify_all();
    }

    fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A running server: its address, metrics, and shutdown/join controls.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<thread::JoinHandle<()>>,
}

/// Bind and start serving `base`. Every session works on a copy-on-write
/// snapshot of `base`; the server never mutates it.
pub fn serve(config: ServerConfig, base: Database) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(resolve(&config.addr)?)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let workers = config.workers.max(1);
    let shared = Arc::new(Shared {
        base,
        config,
        metrics: Metrics::new(),
        shutdown: AtomicBool::new(false),
        queue: Mutex::new(VecDeque::new()),
        wake: Condvar::new(),
    });

    let mut threads = Vec::with_capacity(workers + 1);
    {
        let shared = Arc::clone(&shared);
        threads.push(
            thread::Builder::new()
                .name("hq-accept".into())
                .spawn(move || accept_loop(listener, &shared))?,
        );
    }
    for i in 0..workers {
        let shared = Arc::clone(&shared);
        threads.push(
            thread::Builder::new()
                .name(format!("hq-worker-{i}"))
                .spawn(move || worker_loop(&shared))?,
        );
    }
    Ok(ServerHandle {
        addr,
        shared,
        threads,
    })
}

fn resolve(addr: &str) -> io::Result<SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address"))
}

impl ServerHandle {
    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Whether shutdown has been triggered (by this handle or the
    /// `SHUTDOWN` verb).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.is_shutting_down()
    }

    /// Trigger a graceful shutdown: stop accepting, finish in-flight
    /// requests, stop workers. Returns immediately; pair with
    /// [`ServerHandle::join`].
    pub fn shutdown(&self) {
        self.shared.trigger_shutdown();
    }

    /// Block until every server thread has exited (after a shutdown was
    /// triggered — by this handle or a client's `SHUTDOWN` verb).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: &Shared) {
    loop {
        if shared.is_shutting_down() {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
                let mut q = shared.queue.lock().unwrap();
                q.push_back(stream);
                drop(q);
                shared.wake.notify_one();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // Nonblocking accept so shutdown is observed promptly.
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let next = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(stream) = q.pop_front() {
                    break Some(stream);
                }
                if shared.is_shutting_down() {
                    break None;
                }
                let (guard, _) = shared
                    .wake
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap();
                q = guard;
            }
        };
        match next {
            // Connections still queued after shutdown are dropped, not
            // served: their sockets close, which is the polite signal.
            Some(stream) if !shared.is_shutting_down() => serve_connection(stream, shared),
            Some(_) => {}
            None => return,
        }
    }
}

fn serve_connection(stream: TcpStream, shared: &Shared) {
    shared.metrics.active.fetch_add(1, Ordering::Relaxed);
    let _ = serve_connection_inner(&stream, shared);
    shared.metrics.active.fetch_sub(1, Ordering::Relaxed);
}

fn serve_connection_inner(mut stream: &TcpStream, shared: &Shared) -> io::Result<()> {
    let cfg = &shared.config;
    stream.set_read_timeout(Some(cfg.read_timeout))?;
    stream.set_write_timeout(Some(cfg.write_timeout))?;
    stream.set_nodelay(true).ok();

    let greeting = format!("{HELLO_PREFIX}{}", cfg.max_request_bytes);
    send(stream, greeting.as_bytes(), shared)?;

    let mut session = Session::new(shared.base.clone());
    let mut idle_since = Instant::now();
    loop {
        if shared.is_shutting_down() {
            let bye = Reply::Err(WireError {
                code: ErrCode::Shutdown,
                message: "server shutting down".into(),
            });
            let _ = send(stream, bye.encode().as_bytes(), shared);
            return Ok(());
        }
        let payload = match read_frame(&mut stream, cfg.max_request_bytes) {
            Ok(Some(p)) => p,
            Ok(None) => return Ok(()), // clean disconnect
            Err(FrameError::Io(e))
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Idle between requests: allowed up to idle_timeout.
                if idle_since.elapsed() >= cfg.idle_timeout {
                    return Ok(());
                }
                continue;
            }
            Err(FrameError::TooLarge { len, max }) => {
                // The oversized payload desyncs framing, so answer and
                // hang up. Drain the declared payload first (bounded by
                // one read timeout): closing with unread bytes in the
                // receive buffer makes the kernel answer with RST, which
                // can destroy the error reply before the client reads it.
                let e = WireError {
                    code: ErrCode::TooLarge,
                    message: format!("request of {len} bytes exceeds the {max}-byte limit"),
                };
                shared.metrics.record_request(None, 0, true);
                let _ = send(stream, Reply::Err(e).encode().as_bytes(), shared);
                let mut remaining = len as u64;
                let mut sink = [0u8; 8192];
                let deadline = Instant::now() + cfg.read_timeout;
                while remaining > 0 && Instant::now() < deadline {
                    match stream.read(&mut sink) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => remaining = remaining.saturating_sub(n as u64),
                    }
                }
                return Ok(());
            }
            Err(FrameError::Stalled) => {
                let e = WireError {
                    code: ErrCode::Timeout,
                    message: format!(
                        "request stalled mid-frame past the {:?} read timeout",
                        cfg.read_timeout
                    ),
                };
                shared.metrics.record_request(None, 0, true);
                let _ = send(stream, Reply::Err(e).encode().as_bytes(), shared);
                return Ok(());
            }
            Err(FrameError::Truncated) | Err(FrameError::Io(_)) => return Ok(()),
        };
        shared
            .metrics
            .bytes_in
            .fetch_add(4 + payload.len() as u64, Ordering::Relaxed);

        let started = Instant::now();
        let (verb, reply, control) = match Request::decode(&payload) {
            Err(e) => (None, Reply::Err(e), Control::Continue),
            Ok(req) if req.verb == Verb::Stats => (
                Some(Verb::Stats),
                Reply::Text(shared.metrics.render()),
                Control::Continue,
            ),
            Ok(req) => {
                let (reply, control) = session.handle(&req);
                (Some(req.verb), reply, control)
            }
        };
        let errored = matches!(reply, Reply::Err(_));
        shared.metrics.record_request(
            verb,
            started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
            errored,
        );
        // Flip the flag before acknowledging: a client that has read the
        // SHUTDOWN reply must observe the server already shutting down.
        if matches!(control, Control::Shutdown) {
            shared.trigger_shutdown();
        }
        send(stream, reply.encode().as_bytes(), shared)?;
        idle_since = Instant::now();
        match control {
            Control::Continue => {}
            Control::Close | Control::Shutdown => return Ok(()),
        }
    }
}

fn send(mut stream: &TcpStream, payload: &[u8], shared: &Shared) -> io::Result<()> {
    write_frame(&mut stream, payload)?;
    shared
        .metrics
        .bytes_out
        .fetch_add(4 + payload.len() as u64, Ordering::Relaxed);
    Ok(())
}
