//! The HQL wire protocol.
//!
//! A deliberately simple, dependency-free framing: every message — in
//! both directions — is a **length-prefixed frame** (4-byte big-endian
//! payload length, then that many bytes of UTF-8 text), and every payload
//! is **line-oriented** (a command or status line, then an optional
//! body). Length prefixes make request-size limits enforceable before a
//! single payload byte is read; the text inside keeps the protocol
//! debuggable with nothing fancier than `Debug` prints.
//!
//! ```text
//! client → server    <len> VERB args\n body…
//! server → client    <len> OK [note]            unit result
//!                    <len> ROWS n k\n row…      a relation (n rows, arity k)
//!                    <len> TEXT\n body          renderable text
//!                    <len> ERR code\n message   structured error
//! ```
//!
//! On accept the server sends one greeting frame
//! (`HELLO hypoquery/1 max <bytes>`) advertising the protocol version and
//! its request-size limit.
//!
//! Rows travel in the same escaped, tab-separated form the dump format
//! uses ([`hypoquery_storage::encode_tuple`]), so relations round-trip
//! bit-exactly between server and client. Errors carry the
//! [`EngineError`] variant as a code plus the full display message —
//! see [`WireError`].

use std::fmt;
use std::io::{self, Read, Write};

use hypoquery_engine::EngineError;
use hypoquery_storage::{decode_tuple, encode_tuple, Relation, Tuple, Value};

/// Protocol version spoken by this crate.
pub const PROTOCOL_VERSION: u32 = 1;

/// Default cap on a single frame's payload, bytes (requests *and*
/// replies are framed, but only requests are capped — replies are
/// trusted).
pub const DEFAULT_MAX_REQUEST_BYTES: u32 = 1 << 20;

/// Default TCP port (hypoquery = "hq" = 0x68 0x71 → 7877 keeps it
/// memorable and unprivileged).
pub const DEFAULT_PORT: u16 = 7877;

/// The greeting line sent by the server on accept, minus the limit.
pub const HELLO_PREFIX: &str = "HELLO hypoquery/1 max ";

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Why reading a frame failed.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying transport error (includes timeouts, which surface as
    /// `WouldBlock`/`TimedOut` depending on platform).
    Io(io::Error),
    /// The peer announced a payload larger than the negotiated cap.
    TooLarge {
        /// Announced payload length.
        len: u32,
        /// The enforced cap.
        max: u32,
    },
    /// The stream ended mid-frame (after the length prefix started).
    Truncated,
    /// A read timeout expired **mid-frame**: the peer started a request
    /// and stalled. (A timeout before the first byte surfaces as
    /// [`FrameError::Io`] instead — that's just an idle connection.)
    Stalled,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            FrameError::Truncated => write!(f, "connection closed mid-frame"),
            FrameError::Stalled => write!(f, "request stalled mid-frame"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl FrameError {
    /// Whether this is a read/write timeout (the platform reports either
    /// `WouldBlock` or `TimedOut` for a socket timeout expiring).
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            FrameError::Io(e) if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            )
        )
    }
}

/// Write one frame: 4-byte big-endian length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame over 4 GiB"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame, enforcing `max` against the announced length *before*
/// reading the payload. `Ok(None)` means the peer closed cleanly at a
/// frame boundary.
pub fn read_frame(r: &mut impl Read, max: u32) -> Result<Option<Vec<u8>>, FrameError> {
    let mut len_buf = [0u8; 4];
    // First byte distinguishes clean EOF from truncation.
    match r.read(&mut len_buf[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(FrameError::Io(e)),
    }
    read_exact_or_truncated(r, &mut len_buf[1..])?;
    let len = u32::from_be_bytes(len_buf);
    if len > max {
        return Err(FrameError::TooLarge { len, max });
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_or_truncated(r, &mut payload)?;
    Ok(Some(payload))
}

fn read_exact_or_truncated(r: &mut impl Read, buf: &mut [u8]) -> Result<(), FrameError> {
    r.read_exact(buf).map_err(|e| match e.kind() {
        io::ErrorKind::UnexpectedEof => FrameError::Truncated,
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => FrameError::Stalled,
        _ => FrameError::Io(e),
    })
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// Every verb a request frame can open with.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)] // the names *are* the documentation — see module docs
pub enum Verb {
    Ping,
    Query,
    Table,
    Update,
    Explain,
    Define,
    Load,
    Constraint,
    Branch,
    Switch,
    Drop,
    Branches,
    Prepare,
    Exec,
    Strategy,
    Schema,
    Dump,
    Restore,
    Index,
    Unindex,
    Stats,
    Bye,
    Shutdown,
}

impl Verb {
    /// All verbs, in a fixed order (metrics are indexed by this).
    pub const ALL: [Verb; 23] = [
        Verb::Ping,
        Verb::Query,
        Verb::Table,
        Verb::Update,
        Verb::Explain,
        Verb::Define,
        Verb::Load,
        Verb::Constraint,
        Verb::Branch,
        Verb::Switch,
        Verb::Drop,
        Verb::Branches,
        Verb::Prepare,
        Verb::Exec,
        Verb::Strategy,
        Verb::Schema,
        Verb::Dump,
        Verb::Restore,
        Verb::Index,
        Verb::Unindex,
        Verb::Stats,
        Verb::Bye,
        Verb::Shutdown,
    ];

    /// Canonical wire spelling.
    pub fn name(self) -> &'static str {
        match self {
            Verb::Ping => "PING",
            Verb::Query => "QUERY",
            Verb::Table => "TABLE",
            Verb::Update => "UPDATE",
            Verb::Explain => "EXPLAIN",
            Verb::Define => "DEFINE",
            Verb::Load => "LOAD",
            Verb::Constraint => "CONSTRAINT",
            Verb::Branch => "BRANCH",
            Verb::Switch => "SWITCH",
            Verb::Drop => "DROP",
            Verb::Branches => "BRANCHES",
            Verb::Prepare => "PREPARE",
            Verb::Exec => "EXEC",
            Verb::Strategy => "STRATEGY",
            Verb::Schema => "SCHEMA",
            Verb::Dump => "DUMP",
            Verb::Restore => "RESTORE",
            Verb::Index => "INDEX",
            Verb::Unindex => "UNINDEX",
            Verb::Stats => "STATS",
            Verb::Bye => "BYE",
            Verb::Shutdown => "SHUTDOWN",
        }
    }

    /// Index into [`Verb::ALL`] (for per-verb metrics).
    pub fn index(self) -> usize {
        Verb::ALL.iter().position(|v| *v == self).expect("in ALL")
    }

    /// Parse a wire spelling (case-insensitive).
    pub fn parse(s: &str) -> Option<Verb> {
        let up = s.to_ascii_uppercase();
        Verb::ALL.into_iter().find(|v| v.name() == up)
    }
}

impl fmt::Display for Verb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A decoded request: verb, rest-of-command-line, and body.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Request {
    /// The verb.
    pub verb: Verb,
    /// Everything after the verb on the command line, trimmed.
    pub args: String,
    /// Everything after the first newline, verbatim.
    pub body: String,
}

impl Request {
    /// Build a request (helper for clients).
    pub fn new(verb: Verb, args: impl Into<String>, body: impl Into<String>) -> Request {
        Request {
            verb,
            args: args.into(),
            body: body.into(),
        }
    }

    /// Encode into a frame payload.
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(8 + self.args.len() + self.body.len());
        out.push_str(self.verb.name());
        if !self.args.is_empty() {
            out.push(' ');
            out.push_str(&self.args);
        }
        if !self.body.is_empty() {
            out.push('\n');
            out.push_str(&self.body);
        }
        out
    }

    /// Decode a frame payload. Errors are protocol errors (not UTF-8,
    /// empty, or an unknown verb).
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let text = std::str::from_utf8(payload)
            .map_err(|e| WireError::proto(format!("request is not UTF-8: {e}")))?;
        let (line, body) = match text.split_once('\n') {
            Some((l, b)) => (l, b),
            None => (text, ""),
        };
        let line = line.trim();
        if line.is_empty() {
            return Err(WireError::proto("empty request"));
        }
        let (verb, args) = match line.split_once(char::is_whitespace) {
            Some((v, a)) => (v, a.trim()),
            None => (line, ""),
        };
        let verb =
            Verb::parse(verb).ok_or_else(|| WireError::proto(format!("unknown verb {verb:?}")))?;
        Ok(Request {
            verb,
            args: args.to_string(),
            body: body.to_string(),
        })
    }

    /// The full source text for verbs whose payload is HQL: the args
    /// line, with the body appended on a fresh line when present (lets
    /// long queries span lines).
    pub fn source(&self) -> String {
        if self.body.trim().is_empty() {
            self.args.clone()
        } else if self.args.is_empty() {
            self.body.clone()
        } else {
            format!("{}\n{}", self.args, self.body)
        }
    }
}

// ---------------------------------------------------------------------
// Errors on the wire
// ---------------------------------------------------------------------

/// Which kind of error an `ERR` reply carries: one code per
/// [`EngineError`] variant, plus server-side codes the engine never
/// produces.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErrCode {
    /// `EngineError::Parse`.
    Parse,
    /// `EngineError::Type`.
    Type,
    /// `EngineError::Eval`.
    Eval,
    /// `EngineError::Storage`.
    Storage,
    /// `EngineError::Enf`.
    Enf,
    /// `EngineError::ConstraintViolation`.
    Constraint,
    /// `EngineError::DuplicateName`.
    Duplicate,
    /// `EngineError::UnknownName`.
    Unknown,
    /// Malformed request (framing, UTF-8, verb, argument shape).
    Proto,
    /// Request frame exceeded the advertised size limit.
    TooLarge,
    /// The connection stalled past the configured read timeout.
    Timeout,
    /// The server is shutting down.
    Shutdown,
}

impl ErrCode {
    /// Wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrCode::Parse => "parse",
            ErrCode::Type => "type",
            ErrCode::Eval => "eval",
            ErrCode::Storage => "storage",
            ErrCode::Enf => "enf",
            ErrCode::Constraint => "constraint",
            ErrCode::Duplicate => "duplicate",
            ErrCode::Unknown => "unknown",
            ErrCode::Proto => "proto",
            ErrCode::TooLarge => "too-large",
            ErrCode::Timeout => "timeout",
            ErrCode::Shutdown => "shutdown",
        }
    }

    /// Parse a wire spelling.
    pub fn parse_code(s: &str) -> Option<ErrCode> {
        const ALL: [ErrCode; 12] = [
            ErrCode::Parse,
            ErrCode::Type,
            ErrCode::Eval,
            ErrCode::Storage,
            ErrCode::Enf,
            ErrCode::Constraint,
            ErrCode::Duplicate,
            ErrCode::Unknown,
            ErrCode::Proto,
            ErrCode::TooLarge,
            ErrCode::Timeout,
            ErrCode::Shutdown,
        ];
        ALL.into_iter().find(|c| c.as_str() == s)
    }
}

impl fmt::Display for ErrCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A structured error reply: the variant code plus the full display
/// message. Encoding an [`EngineError`] and decoding the reply preserves
/// both exactly (the round-trip the protocol tests pin down); messages
/// may span lines, hence the body position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WireError {
    /// Which error this is.
    pub code: ErrCode,
    /// The error's display text, unabridged.
    pub message: String,
}

impl WireError {
    /// A protocol-level error.
    pub fn proto(message: impl Into<String>) -> WireError {
        WireError {
            code: ErrCode::Proto,
            message: message.into(),
        }
    }

    /// Classify an [`EngineError`] and capture its display text.
    pub fn from_engine(e: &EngineError) -> WireError {
        let code = match e {
            EngineError::Parse(_) => ErrCode::Parse,
            EngineError::Type(_) => ErrCode::Type,
            EngineError::Eval(_) => ErrCode::Eval,
            EngineError::Storage(_) => ErrCode::Storage,
            EngineError::Enf(_) => ErrCode::Enf,
            EngineError::ConstraintViolation { .. } => ErrCode::Constraint,
            EngineError::DuplicateName(_) => ErrCode::Duplicate,
            EngineError::UnknownName(_) => ErrCode::Unknown,
        };
        WireError {
            code,
            message: e.to_string(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.code, self.message)
    }
}

impl std::error::Error for WireError {}

impl From<EngineError> for WireError {
    fn from(e: EngineError) -> Self {
        WireError::from_engine(&e)
    }
}

// ---------------------------------------------------------------------
// Replies
// ---------------------------------------------------------------------

/// A decoded reply frame.
#[derive(Clone, PartialEq, Debug)]
pub enum Reply {
    /// Unit success, with an optional one-line note.
    Ok(String),
    /// A relation result.
    Rows(Relation),
    /// Human-renderable text (EXPLAIN, STATS, DUMP, …).
    Text(String),
    /// A structured error.
    Err(WireError),
}

impl Reply {
    /// Unit success without a note.
    pub fn ok() -> Reply {
        Reply::Ok(String::new())
    }

    /// Encode into a frame payload.
    pub fn encode(&self) -> String {
        match self {
            Reply::Ok(note) if note.is_empty() => "OK".to_string(),
            Reply::Ok(note) => format!("OK {note}"),
            Reply::Rows(rel) => {
                let mut out = format!("ROWS {} {}", rel.len(), rel.arity());
                for t in rel.iter() {
                    out.push('\n');
                    out.push_str(&encode_tuple(t));
                }
                out
            }
            Reply::Text(body) => format!("TEXT\n{body}"),
            Reply::Err(e) => format!("ERR {}\n{}", e.code, e.message),
        }
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Reply, WireError> {
        let text = std::str::from_utf8(payload)
            .map_err(|e| WireError::proto(format!("reply is not UTF-8: {e}")))?;
        let (line, body) = match text.split_once('\n') {
            Some((l, b)) => (l, b),
            None => (text, ""),
        };
        if line == "OK" || line.starts_with("OK ") {
            return Ok(Reply::Ok(
                line.strip_prefix("OK").unwrap().trim_start().to_string(),
            ));
        }
        if let Some(rest) = line.strip_prefix("ROWS ") {
            let mut parts = rest.split_whitespace();
            let n: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| WireError::proto("ROWS missing row count"))?;
            let arity: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| WireError::proto("ROWS missing arity"))?;
            let mut rel = Relation::empty(arity);
            let mut lines = body.lines();
            for i in 0..n {
                let row = lines
                    .next()
                    .ok_or_else(|| WireError::proto(format!("ROWS truncated at row {i}")))?;
                let t = decode_tuple(row, i + 1)
                    .map_err(|e| WireError::proto(format!("bad row {i}: {e}")))?;
                rel.insert(t)
                    .map_err(|e| WireError::proto(format!("bad row {i}: {e}")))?;
            }
            return Ok(Reply::Rows(rel));
        }
        if line == "TEXT" {
            return Ok(Reply::Text(body.to_string()));
        }
        if let Some(code) = line.strip_prefix("ERR ") {
            let code = ErrCode::parse_code(code.trim())
                .ok_or_else(|| WireError::proto(format!("unknown error code {code:?}")))?;
            return Ok(Reply::Err(WireError {
                code,
                message: body.to_string(),
            }));
        }
        Err(WireError::proto(format!("unparseable reply line {line:?}")))
    }
}

// ---------------------------------------------------------------------
// Row literals
// ---------------------------------------------------------------------

/// Parse human row literals `(1, "a", true) (2, "b", false)` — the
/// `LOAD` verb's command-line form (the REPL's row syntax).
pub fn parse_paren_rows(src: &str) -> Result<Vec<Tuple>, WireError> {
    let mut rows = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    let mut in_str = false;
    let mut escaped = false;
    for c in src.chars() {
        if in_str {
            cur.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' if depth > 0 => {
                in_str = true;
                cur.push(c);
            }
            '(' => {
                if depth == 0 {
                    cur.clear();
                } else {
                    cur.push(c);
                }
                depth += 1;
            }
            ')' => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| WireError::proto("unbalanced parentheses"))?;
                if depth == 0 {
                    rows.push(parse_row_fields(&cur)?);
                } else {
                    cur.push(c);
                }
            }
            _ => {
                if depth > 0 {
                    cur.push(c);
                } else if !c.is_whitespace() {
                    return Err(WireError::proto(format!(
                        "unexpected {c:?} outside a row literal"
                    )));
                }
            }
        }
    }
    if depth != 0 || in_str {
        return Err(WireError::proto("unbalanced parentheses"));
    }
    Ok(rows)
}

fn parse_row_fields(inner: &str) -> Result<Tuple, WireError> {
    if inner.trim().is_empty() {
        return Ok(Tuple::empty());
    }
    // Split on commas outside string literals.
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut escaped = false;
    for c in inner.chars() {
        if in_str {
            cur.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
        } else if c == '"' {
            in_str = true;
            cur.push(c);
        } else if c == ',' {
            fields.push(std::mem::take(&mut cur));
        } else {
            cur.push(c);
        }
    }
    fields.push(cur);
    let values: Result<Vec<Value>, WireError> = fields
        .iter()
        .map(|f| {
            // A field is exactly a dump-format scalar; reuse that codec.
            decode_tuple(f.trim(), 0)
                .ok()
                .filter(|t| t.arity() == 1)
                .map(|t| t.fields()[0].clone())
                .ok_or_else(|| WireError::proto(format!("bad literal {:?}", f.trim())))
        })
        .collect();
    Ok(Tuple::new(values?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypoquery_storage::tuple;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r, 1024).unwrap().is_none()); // clean EOF
    }

    #[test]
    fn frame_limit_enforced_before_payload() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[b'x'; 100]).unwrap();
        let mut r = io::Cursor::new(buf);
        match read_frame(&mut r, 10) {
            Err(FrameError::TooLarge { len: 100, max: 10 }) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frames_detected() {
        // Length prefix promises 8 bytes, stream has 3.
        let buf = [0u8, 0, 0, 8, 1, 2, 3];
        let mut r = io::Cursor::new(&buf[..]);
        assert!(matches!(
            read_frame(&mut r, 1024),
            Err(FrameError::Truncated)
        ));
        // Partial length prefix.
        let buf = [0u8, 0];
        let mut r = io::Cursor::new(&buf[..]);
        assert!(matches!(
            read_frame(&mut r, 1024),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn request_roundtrip() {
        for (req, wire) in [
            (Request::new(Verb::Ping, "", ""), "PING"),
            (
                Request::new(Verb::Query, "select #0 > 1 (emp)", ""),
                "QUERY select #0 > 1 (emp)",
            ),
            (
                Request::new(
                    Verb::Branch,
                    "plan_b FROM base",
                    "insert into inv (row(4, 40))",
                ),
                "BRANCH plan_b FROM base\ninsert into inv (row(4, 40))",
            ),
        ] {
            assert_eq!(req.encode(), wire);
            assert_eq!(Request::decode(wire.as_bytes()).unwrap(), req);
        }
        // Case-insensitive verbs, whitespace tolerated.
        assert_eq!(
            Request::decode(b"  query  emp ").unwrap(),
            Request::new(Verb::Query, "emp", "")
        );
    }

    #[test]
    fn request_decode_rejects_garbage() {
        for bad in [&b""[..], b"  ", b"FROBNICATE x", b"\xff\xfe"] {
            let e = Request::decode(bad).unwrap_err();
            assert_eq!(e.code, ErrCode::Proto, "{bad:?}");
        }
    }

    #[test]
    fn request_source_merges_args_and_body() {
        assert_eq!(Request::new(Verb::Query, "emp", "").source(), "emp");
        assert_eq!(Request::new(Verb::Query, "", "emp").source(), "emp");
        assert_eq!(
            Request::new(Verb::Query, "emp when", "{delete from emp (emp)}").source(),
            "emp when\n{delete from emp (emp)}"
        );
    }

    #[test]
    fn reply_roundtrip() {
        let mut rel = Relation::empty(2);
        rel.insert(tuple![1, "tab\there"]).unwrap();
        rel.insert(tuple![2, "line\nbreak"]).unwrap();
        for reply in [
            Reply::ok(),
            Reply::Ok("dropped 3".into()),
            Reply::Rows(rel),
            Reply::Rows(Relation::empty(5)),
            Reply::Text("line one\nline two".into()),
            Reply::Err(WireError::proto("nope")),
        ] {
            let wire = reply.encode();
            assert_eq!(Reply::decode(wire.as_bytes()).unwrap(), reply, "{wire:?}");
        }
    }

    #[test]
    fn reply_decode_rejects_garbage() {
        for bad in [
            &b"NOPE"[..],
            b"ROWS",
            b"ROWS x y",
            b"ERR gibberish\nmsg",
            b"\xff",
        ] {
            assert!(Reply::decode(bad).is_err(), "{bad:?}");
        }
        // Truncated row list.
        assert!(Reply::decode(b"ROWS 2 1\n5").is_err());
    }

    /// Satellite: every [`EngineError`] variant serializes into a
    /// protocol error reply and back without loss — the variant (code)
    /// and the display text both survive exactly.
    #[test]
    fn engine_error_display_roundtrip_table() {
        use hypoquery_engine::Database;

        let db = {
            let mut db = Database::new();
            db.define_named("emp", ["id", "salary"]).unwrap();
            db.load("emp", vec![hypoquery_storage::tuple![1, 100]])
                .unwrap();
            db
        };
        // One live instance of each variant, produced by the real engine
        // paths where practical so messages are realistic.
        let table: Vec<(ErrCode, EngineError)> = vec![
            (ErrCode::Parse, db.prepare("select (").unwrap_err()),
            (ErrCode::Type, db.prepare("emp union nosuch").unwrap_err()),
            (ErrCode::Eval, {
                // `sum` over strings fails at eval time.
                let mut db2 = Database::new();
                db2.define_named("tags", ["id", "label"]).unwrap();
                db2.load("tags", vec![hypoquery_storage::tuple![1, "x"]])
                    .unwrap();
                db2.query("aggregate [id; sum label] (tags)").unwrap_err()
            }),
            (
                ErrCode::Storage,
                EngineError::Storage(hypoquery_storage::StorageError::ArityMismatch {
                    context: "insert",
                    expected: 2,
                    found: 3,
                }),
            ),
            (ErrCode::Enf, {
                let mut db2 = Database::new();
                db2.define("emp", 2).unwrap();
                db2.query_with(
                    "emp when {select #1 > 100 (emp) / emp}",
                    hypoquery_engine::Strategy::Delta,
                )
                .unwrap_err()
            }),
            (
                ErrCode::Constraint,
                EngineError::ConstraintViolation {
                    constraint: "salary_cap".into(),
                    violations: 7,
                },
            ),
            (
                ErrCode::Duplicate,
                EngineError::DuplicateName("branch_a".into()),
            ),
            (
                ErrCode::Unknown,
                EngineError::UnknownName("no_such_branch".into()),
            ),
        ];
        for (want_code, e) in &table {
            let wire = WireError::from_engine(e);
            assert_eq!(wire.code, *want_code, "{e:?}");
            let frame = Reply::Err(wire.clone()).encode();
            let back = match Reply::decode(frame.as_bytes()).unwrap() {
                Reply::Err(w) => w,
                other => panic!("expected ERR, got {other:?}"),
            };
            // Lossless: code identifies the variant, message is the full
            // display text — even when it contains newlines/quotes.
            assert_eq!(back, wire, "{e:?}");
            assert_eq!(back.message, e.to_string(), "{e:?}");
            // And a second trip is a fixpoint.
            let again = Reply::Err(back.clone()).encode();
            assert_eq!(again, frame);
        }
        // The table covers every variant (compile-time nudge: update this
        // match and the table together when adding a variant).
        for (_, e) in &table {
            match e {
                EngineError::Parse(_)
                | EngineError::Type(_)
                | EngineError::Eval(_)
                | EngineError::Storage(_)
                | EngineError::Enf(_)
                | EngineError::ConstraintViolation { .. }
                | EngineError::DuplicateName(_)
                | EngineError::UnknownName(_) => {}
            }
        }
        assert_eq!(table.len(), 8, "one row per EngineError variant");
    }

    #[test]
    fn paren_rows_parse() {
        let rows = parse_paren_rows("(1, \"a, b\", true) (2, \"c)\", false)").unwrap();
        assert_eq!(rows, vec![tuple![1, "a, b", true], tuple![2, "c)", false]]);
        assert_eq!(parse_paren_rows("()").unwrap(), vec![Tuple::empty()]);
        assert_eq!(parse_paren_rows("  ").unwrap(), vec![]);
        for bad in ["(1, 2", "(nope)", "junk (1)", "(\"unterminated)"] {
            assert!(parse_paren_rows(bad).is_err(), "{bad:?}");
        }
    }
}
