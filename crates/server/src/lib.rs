//! # hypoquery-server
//!
//! The network service layer: a line-oriented, length-prefixed wire
//! protocol ([`proto`]) carrying the HQL surface syntax plus session
//! verbs, served by a threaded TCP server ([`server`]) in which every
//! connection owns a copy-on-write snapshot of the base database and a
//! private tree of what-if branches ([`session`]). An atomic metrics
//! registry ([`metrics`]) backs the `STATS` verb.
//!
//! Ships the `hypoquery-serve` binary; the matching client and
//! `hypoquery-cli` REPL live in `hypoquery-client`.
//!
//! ```no_run
//! use hypoquery_engine::Database;
//! use hypoquery_server::{serve, ServerConfig};
//!
//! let mut db = Database::new();
//! db.define_named("inv", ["item", "qty"]).unwrap();
//! let handle = serve(ServerConfig::default(), db).unwrap();
//! println!("listening on {}", handle.addr());
//! handle.join(); // until a client sends SHUTDOWN
//! ```

#![warn(missing_docs)]

pub mod metrics;
pub mod proto;
pub mod server;
pub mod session;

pub use metrics::{Histogram, Metrics};
pub use proto::{ErrCode, Reply, Request, Verb, WireError};
pub use server::{serve, ServerConfig, ServerHandle};
pub use session::{Control, Session};
