//! Loopback integration tests: a real server on `127.0.0.1:0`, real
//! `hypoquery_client::Client`s, and adversarial raw sockets.
//!
//! Covers the acceptance bar for the service layer: ≥8 concurrent
//! clients whose branch results match in-process [`WhatIfTree`]
//! evaluation exactly; `STATS` counters that reconcile with the requests
//! actually sent; malformed / oversized / stalled requests answered (or
//! hung up on) within the configured timeout; graceful shutdown.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use hypoquery_client::Client;
use hypoquery_engine::{Database, Strategy, WhatIfTree};
use hypoquery_server::proto::{read_frame, write_frame, ErrCode, FrameError, Reply, HELLO_PREFIX};
use hypoquery_server::{serve, ServerConfig, ServerHandle};
use hypoquery_storage::tuple;

fn base_db() -> Database {
    let mut db = Database::new();
    db.define_named("inv", ["item", "qty"]).unwrap();
    db.load(
        "inv",
        (1..=8).map(|i| tuple![i, 10 * i]).collect::<Vec<_>>(),
    )
    .unwrap();
    db
}

fn start(config: ServerConfig) -> ServerHandle {
    let mut config = config;
    config.addr = "127.0.0.1:0".into();
    serve(config, base_db()).unwrap()
}

fn quick_config() -> ServerConfig {
    ServerConfig {
        read_timeout: Duration::from_millis(200),
        write_timeout: Duration::from_millis(500),
        idle_timeout: Duration::from_secs(30),
        ..ServerConfig::default()
    }
}

/// Read the greeting frame off a raw socket.
fn eat_hello(stream: &mut TcpStream) {
    let hello = read_frame(stream, u32::MAX).unwrap().unwrap();
    assert!(String::from_utf8_lossy(&hello).starts_with(HELLO_PREFIX));
}

fn reply_of(stream: &mut TcpStream) -> Reply {
    let payload = read_frame(stream, u32::MAX).unwrap().unwrap();
    Reply::decode(&payload).unwrap()
}

#[test]
fn concurrent_clients_match_in_process_whatif_evaluation() {
    const CLIENTS: usize = 8;
    let handle = start(ServerConfig {
        workers: CLIENTS, // every client gets a live worker at once
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    // Exercise every strategy across the fleet.
    let strategies = [
        Strategy::Auto,
        Strategy::Lazy,
        Strategy::Hql1,
        Strategy::Hql2,
        Strategy::Delta,
    ];

    let threads: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let cutoff = 15 + 10 * (c as i64 % 4); // 15/25/35/45
                let strategy = strategies[c % strategies.len()];
                let cut = format!("delete from inv (select qty < {cutoff} (inv))");
                let restock = format!("insert into inv (row({}, {}))", 100 + c, 5 * c + 1);

                let mut client = Client::connect(addr).unwrap();
                client.strategy(&strategy.to_string()).unwrap();
                client.branch("cut", None, &cut).unwrap();
                client.branch("restock", Some("cut"), &restock).unwrap();
                client.switch(Some("restock")).unwrap();
                let on_branch = client.query("inv").unwrap();
                let summed = client.query("aggregate [; count, sum qty] (inv)").unwrap();
                client.switch(None).unwrap();
                let at_root = client.query("inv").unwrap();
                client.bye().unwrap();

                // The oracle: the same branch tree evaluated in-process
                // on a CoW snapshot of the same base.
                let db = base_db();
                let mut tree = WhatIfTree::new();
                tree.branch(&db, "cut", None, &cut).unwrap();
                tree.branch(&db, "restock", Some("cut"), &restock).unwrap();
                let want_branch = tree.query_at(&db, "restock", "inv", strategy).unwrap();
                let want_summed = tree
                    .query_at(
                        &db,
                        "restock",
                        "aggregate [; count, sum qty] (inv)",
                        strategy,
                    )
                    .unwrap();
                assert_eq!(on_branch, want_branch, "client {c} ({strategy})");
                assert_eq!(summed, want_summed, "client {c} ({strategy})");
                assert_eq!(at_root, db.query("inv").unwrap(), "client {c} root");
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    // Base data on the server never moved, and every session was seen.
    let m = handle.metrics();
    assert_eq!(
        m.connections.load(std::sync::atomic::Ordering::Relaxed),
        CLIENTS as u64
    );
    assert_eq!(m.errors.load(std::sync::atomic::Ordering::Relaxed), 0);
    let mut probe = Client::connect(addr).unwrap();
    assert_eq!(probe.query("inv").unwrap().len(), 8);

    probe.shutdown().unwrap();
    handle.join();
}

#[test]
fn stats_reconcile_with_request_count() {
    // Workers cap concurrent sessions; we hold three connections open.
    let handle = start(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    // Sequential traffic so the expected totals are exact.
    let mut clients: Vec<Client> = (0..3).map(|_| Client::connect(addr).unwrap()).collect();
    for c in clients.iter_mut() {
        c.ping().unwrap();
        c.query("inv").unwrap();
        c.query("select qty >= 20 (inv)").unwrap();
    }
    // One error, deliberately.
    assert!(clients[0].query("select (").is_err());

    // 3×3 fine requests + 1 error = 10 before this STATS (the render
    // happens before the STATS request itself is recorded).
    let stats = clients[0].stats_map().unwrap();
    assert_eq!(stats["server.requests"], 10);
    assert_eq!(stats["server.errors"], 1);
    assert_eq!(stats["server.connections"], 3);
    assert_eq!(stats["verb.PING.count"], 3);
    assert_eq!(stats["verb.QUERY.count"], 7);
    assert_eq!(stats["verb.QUERY.errors"], 1);
    assert!(stats["server.bytes_in"] > 0);
    assert!(stats["server.bytes_out"] > 0);
    assert!(stats.contains_key("verb.QUERY.p50_us"), "{stats:?}");
    assert!(stats.contains_key("verb.QUERY.p99_us"), "{stats:?}");

    // The live registry agrees (now including the STATS request).
    let m = handle.metrics();
    assert_eq!(m.requests.load(std::sync::atomic::Ordering::Relaxed), 11);
    assert_eq!(
        m.verb(hypoquery_server::Verb::Stats)
            .count
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );

    let c = clients.pop().unwrap();
    c.shutdown().unwrap();
    handle.join();
}

#[test]
fn index_verbs_roundtrip_and_stats_counters_reconcile() {
    let handle = start(ServerConfig::default());
    let addr = handle.addr();
    let mut c = Client::connect(addr).unwrap();

    // The index cache counters are process-global, so reconcile deltas
    // around this test's own traffic rather than absolute values.
    let before = c.stats_map().unwrap();
    for key in ["index.hits", "index.misses", "index.builds"] {
        assert!(before.contains_key(key), "{before:?}");
    }

    // Declare by attribute name; the note names the resolved position.
    assert_eq!(c.create_index("inv", "qty").unwrap(), "index inv.1");
    assert!(c
        .create_index("inv", "1")
        .unwrap()
        .contains("already declared"));

    // First point query builds the index (one miss, one build) …
    assert_eq!(c.query("select qty = 40 (inv)").unwrap().len(), 1);
    // … the second is answered from cache (a hit), zero new builds.
    assert_eq!(c.query("select qty = 40 (inv)").unwrap().len(), 1);
    let after = c.stats_map().unwrap();
    let delta = |k: &str| after[k] - before[k];
    assert!(delta("index.builds") >= 1, "{after:?}");
    assert!(delta("index.hits") >= 1, "{after:?}");
    // Every build was requested through a miss: misses keep pace.
    assert!(delta("index.misses") >= delta("index.builds"), "{after:?}");

    // UNINDEX round-trip.
    assert_eq!(c.drop_index("inv", "qty").unwrap(), "dropped index inv.1");
    assert_eq!(c.drop_index("inv", "1").unwrap(), "no index inv.1");

    // Error replies: unknown relation and out-of-range column, both verbs.
    for (rel, col) in [("nosuch", "0"), ("inv", "9")] {
        let e = c.create_index(rel, col).unwrap_err();
        assert_eq!(e.code(), Some(ErrCode::Storage), "{e}");
        let e = c.drop_index(rel, col).unwrap_err();
        assert_eq!(e.code(), Some(ErrCode::Storage), "{e}");
    }
    // Malformed argument shapes are protocol errors.
    let e = c.create_index("inv", "").unwrap_err();
    assert_eq!(e.code(), Some(ErrCode::Proto), "{e}");
    let e = c.create_index("inv", "qty extra").unwrap_err();
    assert_eq!(e.code(), Some(ErrCode::Proto), "{e}");

    c.shutdown().unwrap();
    handle.join();
}

#[test]
fn malformed_requests_answer_and_keep_the_connection() {
    let handle = start(quick_config());
    let addr = handle.addr();

    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    eat_hello(&mut s);

    // Unknown verb.
    write_frame(&mut s, b"BOGUS do things").unwrap();
    match reply_of(&mut s) {
        Reply::Err(e) => assert_eq!(e.code, ErrCode::Proto, "{e}"),
        other => panic!("{other:?}"),
    }
    // Not UTF-8.
    write_frame(&mut s, &[0xff, 0xfe, 0x00]).unwrap();
    match reply_of(&mut s) {
        Reply::Err(e) => assert_eq!(e.code, ErrCode::Proto, "{e}"),
        other => panic!("{other:?}"),
    }
    // Empty payload.
    write_frame(&mut s, b"").unwrap();
    match reply_of(&mut s) {
        Reply::Err(e) => assert_eq!(e.code, ErrCode::Proto, "{e}"),
        other => panic!("{other:?}"),
    }
    // ... and the connection still works.
    write_frame(&mut s, b"PING").unwrap();
    assert!(matches!(reply_of(&mut s), Reply::Ok(n) if n == "pong"));

    let m = handle.metrics();
    assert_eq!(m.errors.load(std::sync::atomic::Ordering::Relaxed), 3);
    drop(s);
    handle.shutdown();
    handle.join();
}

#[test]
fn oversized_request_is_refused_and_connection_closed() {
    let handle = start(ServerConfig {
        max_request_bytes: 256,
        ..quick_config()
    });
    let addr = handle.addr();

    // The well-behaved client refuses to send it at all (it saw the
    // advertised limit in the greeting).
    let mut polite = Client::connect(addr).unwrap();
    assert_eq!(polite.server_max_request_bytes(), 256);
    let huge = format!("QUERY {}", "x".repeat(1024));
    let err = polite.raw_line(&huge).unwrap_err();
    assert_eq!(err.code(), Some(ErrCode::TooLarge), "{err}");

    // A rude client gets told and hung up on — without the server ever
    // reading the kilobyte.
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    eat_hello(&mut s);
    s.write_all(&(1024u32).to_be_bytes()).unwrap();
    s.write_all(&[b'x'; 1024]).unwrap();
    match reply_of(&mut s) {
        Reply::Err(e) => {
            assert_eq!(e.code, ErrCode::TooLarge, "{e}");
            assert!(e.message.contains("256"), "{e}");
        }
        other => panic!("{other:?}"),
    }
    // Closed: the next read sees EOF (or, if the kernel raced the
    // server's payload drain, a reset — either way the connection is
    // gone).
    match read_frame(&mut s, u32::MAX) {
        Ok(None) => {}
        Err(FrameError::Io(e)) if e.kind() == std::io::ErrorKind::ConnectionReset => {}
        other => panic!("expected closed connection, got {other:?}"),
    }

    handle.shutdown();
    handle.join();
}

#[test]
fn stalled_request_times_out_within_the_configured_window() {
    let config = quick_config(); // 200 ms read timeout
    let read_timeout = config.read_timeout;
    let handle = start(config);
    let addr = handle.addr();

    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    eat_hello(&mut s);

    // Claim 100 bytes, send 5, then stall.
    s.write_all(&(100u32).to_be_bytes()).unwrap();
    s.write_all(b"QUERY").unwrap();
    let started = Instant::now();
    match reply_of(&mut s) {
        Reply::Err(e) => assert_eq!(e.code, ErrCode::Timeout, "{e}"),
        other => panic!("{other:?}"),
    }
    let waited = started.elapsed();
    assert!(
        waited >= read_timeout && waited < read_timeout + Duration::from_secs(2),
        "timed out after {waited:?} (configured {read_timeout:?})"
    );
    // And the connection is gone.
    let mut rest = Vec::new();
    assert_eq!(s.read_to_end(&mut rest).unwrap(), 0);

    handle.shutdown();
    handle.join();
}

#[test]
fn idle_connection_is_hung_up_after_idle_timeout() {
    let handle = start(ServerConfig {
        read_timeout: Duration::from_millis(50),
        idle_timeout: Duration::from_millis(150),
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    eat_hello(&mut s);
    // Stay silent past the idle window: the server hangs up (EOF), no
    // error frame owed.
    let mut rest = Vec::new();
    assert_eq!(s.read_to_end(&mut rest).unwrap(), 0);

    handle.shutdown();
    handle.join();
}

#[test]
fn shutdown_verb_stops_the_server_gracefully() {
    let handle = start(quick_config());
    let addr = handle.addr();

    let mut c1 = Client::connect(addr).unwrap();
    c1.query("inv").unwrap();
    let c2 = Client::connect(addr).unwrap();
    c2.shutdown().unwrap();

    assert!(handle.is_shutting_down());
    handle.join(); // all threads exit; would hang the test otherwise

    // New connections are refused (or accepted-and-dropped, never served).
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut s) => {
            s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
            let mut buf = Vec::new();
            assert_eq!(s.read_to_end(&mut buf).unwrap_or(0), 0, "{buf:?}");
        }
    }
}
