//! Workload generators shared by the Criterion benches and the `report`
//! binary.
//!
//! The paper has no published datasets; every claim it makes is a *shape*
//! claim (who wins, how cost scales with a parameter), so synthetic
//! integer relations with controlled sizes and selectivities exercise
//! exactly the relevant behavior (see DESIGN.md §2, substitutions table).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hypoquery_algebra::{CmpOp, ExplicitSubst, Predicate, Query, StateExpr, Update};
use hypoquery_storage::{Catalog, DatabaseState, RelName, Relation, Tuple, Value};

/// Deterministic RNG for reproducible benches.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A binary relation of `n` distinct rows `(key, payload)` with keys drawn
/// uniformly from `0..key_range`.
pub fn int_relation(n: usize, key_range: i64, rng: &mut StdRng) -> Relation {
    let mut rel = Relation::empty(2);
    let mut next_payload = 0i64;
    while rel.len() < n {
        let key = rng.random_range(0..key_range);
        let row = Tuple::new([Value::int(key), Value::int(next_payload)]);
        next_payload += 1;
        let _ = rel.insert(row);
    }
    rel
}

/// Build a state with binary relations `R` and `S` of the given sizes.
/// Keys range over `0..key_range` so joins and the paper's 30/60-style
/// threshold selections hit real data.
pub fn two_table_db(r_rows: usize, s_rows: usize, key_range: i64, seed: u64) -> DatabaseState {
    let mut catalog = Catalog::new();
    catalog.declare_arity("R", 2).unwrap();
    catalog.declare_arity("S", 2).unwrap();
    let mut db = DatabaseState::new(catalog);
    let mut r = rng(seed);
    db.set(RelName::new("R"), int_relation(r_rows, key_range, &mut r))
        .unwrap();
    db.set(RelName::new("S"), int_relation(s_rows, key_range, &mut r))
        .unwrap();
    db
}

/// `σ_{#0 op c}(q)`.
pub fn sel(q: Query, op: CmpOp, c: i64) -> Query {
    q.select(Predicate::col_cmp(0, op, c))
}

/// The equi-join `R ⋈_{#0=#2} S`.
pub fn rs_join() -> Query {
    Query::base("R").join(Query::base("S"), Predicate::col_col(0, CmpOp::Eq, 2))
}

/// Example 2.1's query (1), parameterized by the key thresholds:
///
/// ```text
/// [ ((R ⋈ S) when {ins(R, σ_{#0>lo}(S))})
///   − ((R ⋈ S) when {ins(R, σ_{#0>lo}(S))}) ] when {del(S, σ_{#0<hi}(S))}
/// ```
///
/// Both branches reduce to the same pure query, so lazy rewriting proves
/// the whole thing empty with zero data access.
pub fn e1_query(lo: i64, hi: i64) -> Query {
    let branch = || {
        rs_join().when(StateExpr::update(Update::insert(
            "R",
            sel(Query::base("S"), CmpOp::Gt, lo),
        )))
    };
    branch()
        .diff(branch())
        .when(StateExpr::update(Update::delete(
            "S",
            sel(Query::base("S"), CmpOp::Lt, hi),
        )))
}

/// Example 2.2's hypothetical state:
/// `{del(S, σ_{#0<hi}(S))} # {ins(R, σ_{#0>lo}(S))}`.
pub fn e2_state(lo: i64, hi: i64) -> StateExpr {
    StateExpr::update(Update::delete("S", sel(Query::base("S"), CmpOp::Lt, hi))).compose(
        StateExpr::update(Update::insert("R", sel(Query::base("S"), CmpOp::Gt, lo))),
    )
}

/// A family of `k` distinct member queries for Example 2.2 (all reading R
/// and S through different selections).
pub fn e2_family(k: usize) -> Vec<Query> {
    (0..k)
        .map(|i| {
            sel(Query::base("R"), CmpOp::Gt, (i % 50) as i64).union(sel(
                Query::base("S"),
                CmpOp::Le,
                (i % 70) as i64,
            ))
        })
        .collect()
}

/// Example 2.3's three-step update (R, S and T all written; queries that
/// avoid S can drop its slice).
pub fn e3_update() -> Update {
    Update::seq([
        Update::insert("R", sel(Query::base("S"), CmpOp::Gt, 10)),
        Update::delete("S", sel(Query::base("R"), CmpOp::Lt, 90)),
        Update::insert("T", Query::base("R").project([0, 1])),
    ])
}

/// Catalog/state for Example 2.3 (adds `T` to the two-table db).
pub fn e3_db(rows: usize, seed: u64) -> DatabaseState {
    let mut catalog = Catalog::new();
    catalog.declare_arity("R", 2).unwrap();
    catalog.declare_arity("S", 2).unwrap();
    catalog.declare_arity("T", 2).unwrap();
    let mut db = DatabaseState::new(catalog);
    let mut r = rng(seed);
    db.set(RelName::new("R"), int_relation(rows, 100, &mut r))
        .unwrap();
    db.set(RelName::new("S"), int_relation(rows, 100, &mut r))
        .unwrap();
    db.set(RelName::new("T"), int_relation(rows / 2, 100, &mut r))
        .unwrap();
    db
}

/// Example 2.4's query: depth-`n` nest of
/// `(… (R0 when {E1(R1)/R0}) …) when {En(Rn)/R_{n-1}}` with
/// `E_i(R_i) = R_i × R_i`, except `E_j = (R_j × R_j) − (R_j × R_j)` when
/// `empty_level = Some(j)`. `R_i` has arity `2^(n-i)`.
pub fn e4_query(n: usize, empty_level: Option<usize>) -> (Query, Catalog) {
    let mut catalog = Catalog::new();
    for i in 0..=n {
        catalog
            .declare_arity(format!("R{i}"), 1usize << (n - i))
            .unwrap();
    }
    let mut q = Query::base("R0");
    for lvl in 1..=n {
        let name = format!("R{lvl}");
        let prod = Query::base(name.clone()).product(Query::base(name));
        let e = if empty_level == Some(lvl) {
            prod.clone().diff(prod)
        } else {
            prod
        };
        q = q.when(StateExpr::subst(ExplicitSubst::single(
            format!("R{}", lvl - 1),
            e,
        )));
    }
    (q, catalog)
}

/// A state for Example 2.4(c): every `R_i` holds a couple of rows so that
/// the intersections/products are small and eager evaluation is cheap.
pub fn e4_db(catalog: &Catalog, rows_per_rel: usize) -> DatabaseState {
    let mut db = DatabaseState::new(catalog.clone());
    for (name, schema) in catalog.iter() {
        let mut rel = Relation::empty(schema.arity);
        for r in 0..rows_per_rel {
            let row = Tuple::new((0..schema.arity).map(|c| Value::int((r + c % 2) as i64)));
            let _ = rel.insert(row);
        }
        db.set(name.clone(), rel).unwrap();
    }
    db
}

/// §5.5's delta workload: an update touching `frac` of R and S
/// (half deletions of existing keys, half insertions of fresh keys).
pub fn e5_update(db: &DatabaseState, frac: f64) -> Update {
    let r_rows = db.get(&RelName::new("R")).unwrap().len();
    let s_rows = db.get(&RelName::new("S")).unwrap().len();
    let r_touch = ((r_rows as f64) * frac).max(1.0) as i64;
    let s_touch = ((s_rows as f64) * frac).max(1.0) as i64;
    // Payload column (#1) is a dense 0..n counter, so payload thresholds
    // select an exact fraction.
    Update::seq([
        Update::delete(
            "R",
            Query::base("R").select(Predicate::col_cmp(1, CmpOp::Lt, r_touch / 2)),
        ),
        Update::insert(
            "R",
            Query::base("R")
                .select(Predicate::col_cmp(1, CmpOp::Lt, r_touch - r_touch / 2))
                .project([1, 0]),
        ),
        Update::delete(
            "S",
            Query::base("S").select(Predicate::col_cmp(1, CmpOp::Lt, s_touch / 2)),
        ),
        Update::insert(
            "S",
            Query::base("S")
                .select(Predicate::col_cmp(1, CmpOp::Lt, s_touch - s_touch / 2))
                .project([1, 0]),
        ),
    ])
}

/// Example 2.1(c)'s shape: a body with `m` occurrences of `R` (cheap
/// selections with distinct thresholds, which no rewrite rule collapses)
/// under a hypothetical state whose binding is *expensive* to compute (a
/// self-join of `S`). The lazy strategy re-derives the join once per
/// occurrence; the eager strategies materialize it once — the crossover
/// of Example 2.1(c).
pub fn e7_query(m: usize) -> Query {
    let expensive = Query::base("S")
        .join(Query::base("S"), Predicate::col_col(0, CmpOp::Eq, 2))
        .project([0, 3]);
    let mut body = Query::base("R").select(Predicate::col_cmp(1, CmpOp::Lt, 1_000));
    for i in 1..m {
        body = body.union(Query::base("R").select(Predicate::col_cmp(
            1,
            CmpOp::Lt,
            1_000 + (i as i64) * 1_000,
        )));
    }
    body.when(StateExpr::update(Update::insert("R", expensive)))
}

/// E9: an engine-level database for the multi-scenario executor —
/// `R` and `S` with `rows` rows each, keys over `0..1000`.
pub fn e9_db(rows: usize, seed: u64) -> hypoquery_engine::Database {
    let state = two_table_db(rows, rows, 1000, seed);
    let mut db = hypoquery_engine::Database::with_catalog(state.catalog().clone());
    for (name, rel) in state.iter() {
        db.load(name.as_str(), rel.iter().cloned()).unwrap();
    }
    db
}

/// `k` independent what-if scenarios over the E9 base: scenario `i`
/// hypothetically deletes its own key slice of `R` and inserts a slice of
/// `S`, then reads both through selections. Each scenario builds its own
/// snapshot of the shared base; the reads are linear scans, so snapshot
/// cost is visible next to evaluation cost.
pub fn e9_scenarios(k: usize) -> Vec<Query> {
    (0..k)
        .map(|i| {
            let t = 10 + (i as i64 * 900) / k.max(1) as i64;
            sel(Query::base("R"), CmpOp::Gt, 990)
                .union(sel(Query::base("S"), CmpOp::Le, 5))
                .when(StateExpr::update(Update::delete(
                    "R",
                    sel(Query::base("R"), CmpOp::Lt, t),
                )))
                .when(StateExpr::update(Update::insert(
                    "S",
                    sel(Query::base("R"), CmpOp::Gt, 1000 - t),
                )))
        })
        .collect()
}

/// E12: a depth-`k` chain of alternating range selections over `R`,
/// shrinking the key window by `key_range/16` per step. Every step keeps
/// most of the remaining rows, so a materializing tree-walker builds a
/// large intermediate `BTreeSet` per operator while the pipelined
/// executor streams the whole chain in one pass.
pub fn e12_select_chain(k: usize, key_range: i64) -> Query {
    let step = (key_range / 16).max(1);
    let mut lo = 0i64;
    let mut hi = key_range;
    let mut q = Query::base("R");
    for i in 0..k {
        if i % 2 == 0 {
            lo += step;
            q = q.select(Predicate::col_cmp(0, CmpOp::Ge, lo));
        } else {
            hi -= step;
            q = q.select(Predicate::col_cmp(0, CmpOp::Lt, hi));
        }
    }
    q
}

/// E12: the select chain fed into an equi-join with `S`, projected down
/// to the payload columns, with two more payload filters on top — a
/// deep mixed select/project/join chain (payloads are dense `0..n`
/// counters, so the thresholds keep real fractions of the data).
pub fn e12_join_chain(k: usize, key_range: i64, rows: usize) -> Query {
    e12_select_chain(k, key_range)
        .join(Query::base("S"), Predicate::col_col(0, CmpOp::Eq, 2))
        .project([1, 3])
        .select(Predicate::col_cmp(0, CmpOp::Lt, (rows as i64) * 7 / 8))
        .select(Predicate::col_cmp(1, CmpOp::Ge, (rows as i64) / 8))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypoquery_algebra::typing::arity_of;
    use hypoquery_eval::eval_query;

    #[test]
    fn relations_have_requested_sizes() {
        let db = two_table_db(100, 200, 1000, 42);
        assert_eq!(db.get(&"R".into()).unwrap().len(), 100);
        assert_eq!(db.get(&"S".into()).unwrap().len(), 200);
        // Deterministic for a fixed seed.
        let db2 = two_table_db(100, 200, 1000, 42);
        assert_eq!(db.get(&"R".into()).unwrap(), db2.get(&"R".into()).unwrap());
    }

    #[test]
    fn e1_query_is_well_typed_and_empty() {
        let db = two_table_db(50, 50, 100, 7);
        let q = e1_query(30, 60);
        assert_eq!(arity_of(&q, db.catalog()), Ok(4));
        assert!(eval_query(&q, &db).unwrap().is_empty());
    }

    #[test]
    fn e2_builders_are_well_typed() {
        let db = two_table_db(10, 10, 100, 1);
        for q in e2_family(8) {
            let hq = q.when(e2_state(30, 60));
            assert!(arity_of(&hq, db.catalog()).is_ok());
            eval_query(&hq, &db).unwrap();
        }
    }

    #[test]
    fn e3_update_well_typed() {
        let db = e3_db(20, 3);
        let q = Query::base("R")
            .union(Query::base("T"))
            .when(StateExpr::update(e3_update()));
        assert!(arity_of(&q, db.catalog()).is_ok());
        eval_query(&q, &db).unwrap();
    }

    #[test]
    fn e4_query_types_and_blows_up() {
        let (q, catalog) = e4_query(6, None);
        assert_eq!(arity_of(&q, &catalog), Ok(64));
        let (q_empty, catalog) = e4_query(6, Some(3));
        assert_eq!(arity_of(&q_empty, &catalog), Ok(64));
        let db = e4_db(&catalog, 2);
        assert!(eval_query(&q_empty, &db).unwrap().is_empty());
    }

    #[test]
    fn e5_update_touches_requested_fraction() {
        let db = two_table_db(1000, 1000, 10_000, 11);
        let u = e5_update(&db, 0.02);
        let rho = hypoquery_core::slice(&hypoquery_core::red_update(&u).unwrap()).unwrap();
        // The S binding under the update changes ~2% of S.
        let after = hypoquery_eval::apply_subst(&db, &rho).unwrap();
        let before_s = db.get(&"S".into()).unwrap();
        let after_s = after.get(&"S".into()).unwrap();
        let changed = before_s.difference(&after_s).unwrap().len()
            + after_s.difference(&before_s).unwrap().len();
        assert!(changed > 0 && changed < 100, "changed {changed} rows");
    }

    #[test]
    fn e7_occurrences_grow() {
        let db = two_table_db(30, 30, 50, 5);
        for m in [1, 2, 4] {
            let q = e7_query(m);
            assert!(arity_of(&q, db.catalog()).is_ok());
            eval_query(&q, &db).unwrap();
        }
    }
}
