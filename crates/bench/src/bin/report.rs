//! Experiment report generator: runs every experiment (E1–E12) once with
//! wall-clock timing and prints the paper-claim-vs-measured tables that
//! EXPERIMENTS.md records. E9–E12 additionally write machine-readable
//! medians (ns per config) to `BENCH_e9.json` … `BENCH_e12.json` in the
//! current directory — override the paths with `BENCH_E9_JSON` …
//! `BENCH_E12_JSON`.
//!
//! Run with: `cargo run --release -p hypoquery-bench --bin report`
//! (a debug build measures the same shapes, ~20× slower.)
//!
//! Set `HYPOQUERY_BENCH_QUICK=1` for a smoke run (CI): the same
//! experiments over ~20× smaller relations with minimal repetitions —
//! numbers are not meaningful, but every code path runs and every
//! `BENCH_*.json` file is written.

use std::io::Write as _;
use std::time::Instant;

use hypoquery_algebra::{Query, StateExpr};
use hypoquery_bench::workload::{
    e12_join_chain, e12_select_chain, e1_query, e2_family, e2_state, e3_db, e3_update, e4_db,
    e4_query, e5_update, e7_query, e9_db, e9_scenarios, rs_join, two_table_db,
};
use hypoquery_core::{
    fully_lazy, lazy_state, red_query, red_state, sub_query, to_enf_query, to_mod_enf, RewriteTrace,
};
use hypoquery_eval::{
    algorithm_hql1, algorithm_hql2, algorithm_hql3, eval_pure, filter1, materialize_subst,
};
use hypoquery_opt::{lower_query, optimize, plan, reduce_optimized, PlannedStrategy, Statistics};
use hypoquery_storage::DatabaseState;

/// `HYPOQUERY_BENCH_QUICK` selects the CI smoke configuration.
fn quick() -> bool {
    std::env::var_os("HYPOQUERY_BENCH_QUICK").is_some()
}

/// Relation sizes: full scale, or ~20× smaller in quick mode.
fn scaled(n: usize) -> usize {
    if quick() {
        (n / 20).max(500)
    } else {
        n
    }
}

/// Repetition counts for median timings: minimal in quick mode.
fn reps(n: usize) -> usize {
    if quick() {
        3
    } else {
        n
    }
}

fn time_ms(f: impl FnOnce() -> usize) -> (f64, usize) {
    let t = Instant::now();
    let out = f();
    (t.elapsed().as_secs_f64() * 1e3, out)
}

/// Median-of-3 timing to damp scheduler noise.
fn bench_ms(mut f: impl FnMut() -> usize) -> (f64, usize) {
    let mut times = Vec::with_capacity(3);
    let mut out = 0;
    for _ in 0..3 {
        let (t, o) = time_ms(&mut f);
        times.push(t);
        out = o;
    }
    times.sort_by(f64::total_cmp);
    (times[1], out)
}

fn main() {
    println!("# hypoquery experiment report\n");
    e1();
    e2();
    e3();
    e4();
    e5();
    e6();
    e7();
    e8();
    e9();
    e10();
    e11();
    e12();
}

fn e1() {
    println!("## E1 — Example 2.1: eager vs lazy on the alternatives query");
    println!("paper claim: lazy rewriting proves the query ≡ ∅ with no data access;");
    println!("eager cost grows with |R|,|S|.\n");
    println!(
        "| rows | eager HQL-1 (ms) | eager HQL-2 (ms) | lazy (ms) | auto (ms) | auto picked |"
    );
    println!("|---:|---:|---:|---:|---:|:--|");
    for n in [scaled(1_000), scaled(10_000), scaled(50_000)] {
        let keys = (10 * n) as i64;
        let db = two_table_db(n, n, keys, 1);
        let q = e1_query(keys * 3 / 10, keys * 6 / 10);
        let enf = to_enf_query(&q, &mut RewriteTrace::new());
        let stats = Statistics::of(&db);
        let (t1, _) = bench_ms(|| algorithm_hql1(&enf, &db).unwrap().len());
        let (t2, _) = bench_ms(|| algorithm_hql2(&enf, &db).unwrap().len());
        let (tl, r) = bench_ms(|| {
            let reduced = fully_lazy(&q, &mut RewriteTrace::new());
            let (optimized, _) = optimize(&reduced, db.catalog());
            eval_pure(&optimized, &db).unwrap().len()
        });
        assert_eq!(r, 0);
        let p = plan(&q, db.catalog(), &stats);
        let picked = p.strategy;
        let (ta, _) = bench_ms(|| {
            let p = plan(&q, db.catalog(), &stats);
            exec_plan(&p, &db)
        });
        println!("| {n} | {t1:.2} | {t2:.2} | {tl:.3} | {ta:.3} | {picked} |");
    }
    println!();
}

fn exec_plan(p: &hypoquery_opt::Plan, db: &DatabaseState) -> usize {
    match p.strategy {
        PlannedStrategy::Lazy => eval_pure(&p.query, db).unwrap().len(),
        PlannedStrategy::EagerDelta => algorithm_hql3(&p.query, db).unwrap().len(),
        _ => algorithm_hql2(&p.query, db).unwrap().len(),
    }
}

fn e2() {
    println!("## E2 — Example 2.2: composition amortizes over a query family");
    println!("paper claim: computing the composed substitution once 'might reduce");
    println!("work' when many queries hit the same hypothetical state.\n");
    println!(
        "| k queries | naive per-query (ms) | compose-once eager (ms) | compose-once lazy (ms) |"
    );
    println!("|---:|---:|---:|---:|");
    let n = scaled(20_000);
    let db = two_table_db(n, n, 100, 2);
    let eta = e2_state(30, 60);
    for k in [1usize, 4, 16, 64] {
        let family = e2_family(k);
        let (tn, _) = bench_ms(|| {
            family
                .iter()
                .map(|q| {
                    let hq = q.clone().when(eta.clone());
                    let enf = to_enf_query(&hq, &mut RewriteTrace::new());
                    algorithm_hql2(&enf, &db).unwrap().len()
                })
                .sum()
        });
        let (te, _) = bench_ms(|| {
            let rho = lazy_state(&eta, &mut RewriteTrace::new());
            let e = materialize_subst(&rho, &db).unwrap();
            family
                .iter()
                .map(|q| filter1(q, &e, &db).unwrap().len())
                .sum()
        });
        let (tl, _) = bench_ms(|| {
            let rho = lazy_state(&eta, &mut RewriteTrace::new());
            family
                .iter()
                .map(|q| eval_pure(&sub_query(q, &rho).unwrap(), &db).unwrap().len())
                .sum()
        });
        println!("| {k} | {tn:.2} | {te:.2} | {tl:.2} |");
    }
    println!();
}

fn e3() {
    println!("## E3 — Example 2.3: binding removal");
    println!("paper claim: dropping the S binding (S not read by the queries)");
    println!("reduces eager data work and lazy optimizer work.\n");
    println!("| rows | eager full subst (ms) | eager binding-removed (ms) | lazy red (ms) | lazy binding-removed (ms) |");
    println!("|---:|---:|---:|---:|---:|");
    for n in [scaled(5_000), scaled(50_000)] {
        let db = e3_db(n, 3);
        let eta = StateExpr::update(e3_update());
        let q = Query::base("R").union(Query::base("T"));
        let (tf, _) = bench_ms(|| {
            let rho = red_state(&eta).unwrap();
            let e = materialize_subst(&rho, &db).unwrap();
            filter1(&q, &e, &db).unwrap().len()
        });
        let (tr, _) = bench_ms(|| {
            let rho = red_state(&eta).unwrap();
            let free = hypoquery_algebra::scope::free_query(&q);
            let restricted: hypoquery_algebra::ExplicitSubst = rho
                .into_bindings()
                .into_iter()
                .filter(|(name, _)| free.contains(name))
                .collect();
            let e = materialize_subst(&restricted, &db).unwrap();
            filter1(&q, &e, &db).unwrap().len()
        });
        let (tlr, _) = bench_ms(|| {
            let reduced = red_query(&q.clone().when(eta.clone())).unwrap();
            eval_pure(&reduced, &db).unwrap().len()
        });
        let (tlb, _) = bench_ms(|| {
            let reduced = fully_lazy(&q.clone().when(eta.clone()), &mut RewriteTrace::new());
            eval_pure(&reduced, &db).unwrap().len()
        });
        println!("| {n} | {tf:.2} | {tr:.2} | {tlr:.2} | {tlb:.2} |");
    }
    println!();
}

fn e4() {
    println!("## E4 — Example 2.4: exponential blow-up and the rescue");
    println!("paper claims: (a) the lazy equivalent is exponential in n;");
    println!("(b) algebra rewriting finds ∅ cheaply; (c) eager wins on small values.\n");
    println!("| n | input nodes | lazy nodes | lazy red (ms) | rescue (ms) | eager HQL-1 (ms) |");
    println!("|---:|---:|---:|---:|---:|---:|");
    let depths: &[usize] = if quick() { &[6, 8] } else { &[6, 10, 14] };
    for &n in depths {
        let (q, _) = e4_query(n, None);
        let input_nodes = q.node_count();
        let (tred, lazy_nodes) = bench_ms(|| red_query(&q).unwrap().node_count());
        let (q_rescue, catalog) = e4_query(n, Some(1));
        let (tres, rescue_nodes) =
            bench_ms(|| reduce_optimized(&q_rescue, &catalog).0.node_count());
        assert_eq!(rescue_nodes, 1); // ∅
        let eager = if n <= 10 {
            let (qq, cat) = e4_query(n, None);
            let db = e4_db(&cat, 1);
            let enf = to_enf_query(&qq, &mut RewriteTrace::new());
            let (te, _) = bench_ms(|| algorithm_hql1(&enf, &db).unwrap().len());
            format!("{te:.2}")
        } else {
            "—".to_string()
        };
        println!("| {n} | {input_nodes} | {lazy_nodes} | {tred:.2} | {tres:.3} | {eager} |");
    }
    println!();
}

fn e5() {
    println!("## E5 — §5.5: join-when overhead vs delta size");
    println!("paper claim (rule of thumb): a delta of x% of the base relations");
    println!("makes join-when only nominally more expensive than the plain join");
    println!("(~22% extra at 2% in Heraclitus); full xsub materialization pays");
    println!("the whole hypothetical relation regardless.\n");
    let n = scaled(50_000);
    let db = two_table_db(n, n, (n as i64) * 10, 4);
    let join = rs_join();
    let (tbase, _) = bench_ms(|| eval_pure(&join, &db).unwrap().len());
    println!("plain join baseline: {tbase:.2} ms\n");
    println!("| delta % | join-when only (ms) | overhead vs join | HQL-3 end-to-end (ms) | HQL-2 xsub (ms) |");
    println!("|---:|---:|---:|---:|---:|");
    for pct in [0.5f64, 2.0, 10.0, 25.0, 50.0] {
        let u = e5_update(&db, pct / 100.0);
        let q = join.clone().when(StateExpr::update(u.clone()));
        let modq = to_mod_enf(&q).unwrap();
        let enfq = to_enf_query(&q, &mut RewriteTrace::new());
        // The paper's measured operation: join-when with the delta value
        // already in hand (Heraclitus times the operator, not the delta
        // construction).
        let delta = hypoquery_eval::filter3::filter3_update(
            &hypoquery_core::red_update(&u).unwrap(),
            &hypoquery_eval::DeltaValue::empty(),
            &db,
        )
        .unwrap();
        let (tjw, _) = bench_ms(|| {
            hypoquery_eval::eval_filter_d(&join, &delta, &db)
                .unwrap()
                .len()
        });
        let (t3, _) = bench_ms(|| algorithm_hql3(&modq, &db).unwrap().len());
        let (t2, _) = bench_ms(|| algorithm_hql2(&enfq, &db).unwrap().len());
        let overhead = (tjw / tbase - 1.0) * 100.0;
        println!("| {pct} | {tjw:.2} | {overhead:+.0}% | {t3:.2} | {t2:.2} |");
    }
    println!();
}

fn e6() {
    println!("## E6 — §5.4: HQL-1 (node-at-a-time) vs HQL-2 (clustered)");
    println!("paper claim: HQL-1 'does not permit grouping of relational algebra");
    println!("operators into single physical operations'.\n");
    println!("| query | HQL-1 (ms) | HQL-2 (ms) |");
    println!("|:--|---:|---:|");
    let n = scaled(30_000);
    let db = two_table_db(n, n, 5_000, 5);
    use hypoquery_algebra::{CmpOp, Predicate, Update};
    let eta = StateExpr::update(Update::insert(
        "R",
        Query::base("S").select(Predicate::col_cmp(0, CmpOp::Gt, 30)),
    ));
    let cases = vec![
        (
            "R ⋈ σ(S)",
            Query::base("R")
                .join(
                    Query::base("S").select(Predicate::col_cmp(0, CmpOp::Lt, 70)),
                    Predicate::col_col(0, CmpOp::Eq, 2),
                )
                .when(eta.clone()),
        ),
        (
            "π(σ(R ⋈ S))",
            Query::base("R")
                .join(Query::base("S"), Predicate::col_col(0, CmpOp::Eq, 2))
                .select(Predicate::col_cmp(1, CmpOp::Gt, 100))
                .project([0, 3])
                .when(eta.clone()),
        ),
    ];
    for (name, q) in cases {
        let enf = to_enf_query(&q, &mut RewriteTrace::new());
        let (t1, _) = bench_ms(|| algorithm_hql1(&enf, &db).unwrap().len());
        let (t2, _) = bench_ms(|| algorithm_hql2(&enf, &db).unwrap().len());
        println!("| {name} | {t1:.2} | {t2:.2} |");
    }
    println!();
}

fn e7() {
    println!("## E7 — Example 2.1(c): lazy↔eager crossover by occurrence count");
    println!("paper claim: lazy wins when affected names 'occur only once or");
    println!("twice'; eager wins as occurrences grow.\n");
    println!("| occurrences | lazy (ms) | eager HQL-2 (ms) | auto (ms) | auto picked |");
    println!("|---:|---:|---:|---:|:--|");
    let n = scaled(20_000);
    let db = two_table_db(n, n, n as i64, 6);
    let stats = Statistics::of(&db);
    for m in [1usize, 2, 4, 8, 16] {
        let q = e7_query(m);
        let enf = to_enf_query(&q, &mut RewriteTrace::new());
        let (tl, _) = bench_ms(|| {
            let reduced = fully_lazy(&q, &mut RewriteTrace::new());
            eval_pure(&reduced, &db).unwrap().len()
        });
        let (te, _) = bench_ms(|| algorithm_hql2(&enf, &db).unwrap().len());
        let p = plan(&q, db.catalog(), &stats);
        let picked = p.strategy;
        let (ta, _) = bench_ms(|| {
            let p = plan(&q, db.catalog(), &stats);
            exec_plan(&p, &db)
        });
        println!("| {m} | {tl:.2} | {te:.2} | {ta:.2} | {picked} |");
    }
    println!();
}

fn e8() {
    println!("## E8 — planner vs fixed strategies across scenarios");
    println!("claim: no fixed strategy wins everywhere; Auto tracks the best.\n");
    println!("| scenario | lazy (ms) | HQL-2 (ms) | HQL-3 (ms) | auto (ms) | auto picked |");
    println!("|:--|---:|---:|---:|---:|:--|");
    let n = scaled(20_000);
    let db = two_table_db(n, n, n as i64, 8);
    let stats = Statistics::of(&db);
    let scenarios: Vec<(&str, Query)> = vec![
        ("empty_provable (E1)", e1_query(6_000, 12_000)),
        (
            "small_delta_join (E5)",
            rs_join().when(StateExpr::update(e5_update(&db, 0.02))),
        ),
        ("many_occurrences (E7)", e7_query(8)),
    ];
    for (name, q) in scenarios {
        let (tl, _) = bench_ms(|| {
            let reduced = fully_lazy(&q, &mut RewriteTrace::new());
            let (optimized, _) = optimize(&reduced, db.catalog());
            eval_pure(&optimized, &db).unwrap().len()
        });
        let enf = to_enf_query(&q, &mut RewriteTrace::new());
        let (t2, _) = bench_ms(|| algorithm_hql2(&enf, &db).unwrap().len());
        let t3 = match to_mod_enf(&q) {
            Ok(m) => {
                let (t, _) = bench_ms(|| algorithm_hql3(&m, &db).unwrap().len());
                format!("{t:.2}")
            }
            Err(_) => "—".to_string(),
        };
        let p = plan(&q, db.catalog(), &stats);
        let picked = p.strategy;
        let (ta, _) = bench_ms(|| {
            let p = plan(&q, db.catalog(), &stats);
            exec_plan(&p, &db)
        });
        println!("| {name} | {tl:.2} | {t2:.2} | {t3} | {ta:.2} | {picked} |");
    }
    println!();
}

fn e9() {
    println!("## E9 — copy-on-write snapshots + parallel multi-scenario executor");
    println!("claims: state snapshots are O(#relations) pointer bumps, not O(data);");
    println!("k independent what-if branches over one base share it physically and");
    println!("fan out across cores (speedup ~min(k, cores)× when work dominates).\n");

    // Median-of-N nanosecond timings, machine-readable for regression
    // tracking across PRs.
    let mut json: Vec<(String, f64)> = Vec::new();
    let mut bench_ns = |config: &str, reps: usize, f: &mut dyn FnMut() -> usize| -> f64 {
        let mut samples: Vec<f64> = (0..reps.max(3))
            .map(|_| {
                let t = Instant::now();
                std::hint::black_box(f());
                t.elapsed().as_secs_f64() * 1e9
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        json.push((config.to_string(), median));
        median
    };

    let rows = scaled(100_000);
    let state = two_table_db(rows, rows, 1000, 9);
    println!("| config | median |");
    println!("|:--|---:|");
    let t = bench_ns("clone_cow_100k", reps(101), &mut || {
        state.clone().total_tuples()
    });
    println!(
        "| `DatabaseState::clone` (CoW, {rows} rows) | {} |",
        fmt_ns(t)
    );
    let t = bench_ns("clone_deep_100k", reps(5), &mut || {
        let mut out = DatabaseState::new(state.catalog().clone());
        for (name, rel) in state.iter() {
            let copy =
                hypoquery_storage::Relation::from_rows(rel.arity(), rel.iter().cloned()).unwrap();
            out.set(name.clone(), copy).unwrap();
        }
        out.total_tuples()
    });
    println!("| deep copy (pre-CoW cost model) | {} |", fmt_ns(t));

    let db = e9_db(rows, 9);
    let k = 8usize;
    let scenarios = e9_scenarios(k);
    let t_deep = bench_ns(
        &format!("scenarios_deepcopy_seq_{k}x100k"),
        reps(5),
        &mut || {
            scenarios
                .iter()
                .map(|q| {
                    let mut snapshot = DatabaseState::new(db.state().catalog().clone());
                    for (name, rel) in db.state().iter() {
                        let copy = hypoquery_storage::Relation::from_rows(
                            rel.arity(),
                            rel.iter().cloned(),
                        )
                        .unwrap();
                        snapshot.set(name.clone(), copy).unwrap();
                    }
                    std::hint::black_box(&snapshot);
                    db.execute(q, hypoquery_engine::Strategy::Lazy)
                        .unwrap()
                        .len()
                })
                .sum()
        },
    );
    println!(
        "| {k} scenarios, deep snapshot each (seed cost model) | {} |",
        fmt_ns(t_deep)
    );
    let t_seq = bench_ns(&format!("scenarios_cow_seq_{k}x100k"), reps(5), &mut || {
        scenarios
            .iter()
            .map(|q| {
                db.execute(q, hypoquery_engine::Strategy::Lazy)
                    .unwrap()
                    .len()
            })
            .sum()
    });
    println!(
        "| {k} scenarios, CoW snapshots, sequential | {} |",
        fmt_ns(t_seq)
    );
    let t_par = bench_ns(&format!("scenarios_cow_par_{k}x100k"), reps(5), &mut || {
        db.execute_many(&scenarios, hypoquery_engine::Strategy::Lazy)
            .unwrap()
            .iter()
            .map(|r| r.len())
            .sum()
    });
    println!(
        "| {k} scenarios, CoW snapshots, parallel ({} workers) | {} |",
        hypoquery_eval::num_workers(),
        fmt_ns(t_par)
    );
    println!(
        "\nspeedup vs seed cost model: sequential {:.1}×, parallel {:.1}×\n",
        t_deep / t_seq,
        t_deep / t_par
    );

    let path = std::env::var("BENCH_E9_JSON").unwrap_or_else(|_| "BENCH_e9.json".to_string());
    let mut out = String::from("{\n");
    for (i, (config, median)) in json.iter().enumerate() {
        let comma = if i + 1 < json.len() { "," } else { "" };
        out.push_str(&format!("  \"{config}\": {median:.1}{comma}\n"));
    }
    out.push_str("}\n");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(out.as_bytes())) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn e10() {
    println!("## E10 — network service layer: wire overhead and served throughput");
    println!("claims: the wire protocol adds a fixed per-request cost (framing +");
    println!("loopback + dispatch) on top of in-process evaluation, and the worker");
    println!("pool sustains many concurrent sessions with per-session CoW branch");
    println!("state — served results are bit-identical to in-process ones.\n");

    use hypoquery_client::Client;
    use hypoquery_server::{serve, ServerConfig};

    let rows = scaled(10_000);
    let query = "select #0 > 990 (R) union select #0 <= 5 (S)";
    let branch_update = "delete from R (select #0 < 500 (R))";

    let state = two_table_db(rows, rows, 1000, 10);
    let mut db = hypoquery_engine::Database::with_catalog(state.catalog().clone());
    for (name, rel) in state.iter() {
        db.load(name.as_str(), rel.iter().cloned()).unwrap();
    }

    const CLIENTS: usize = 8;
    let handle = serve(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: CLIENTS,
            ..ServerConfig::default()
        },
        db.clone(),
    )
    .unwrap();
    let addr = handle.addr();

    let mut json: Vec<(String, f64)> = Vec::new();
    let mut bench_ns = |config: &str, reps: usize, f: &mut dyn FnMut() -> usize| -> f64 {
        let mut samples: Vec<f64> = (0..reps.max(3))
            .map(|_| {
                let t = Instant::now();
                std::hint::black_box(f());
                t.elapsed().as_secs_f64() * 1e9
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        json.push((config.to_string(), median));
        median
    };

    println!("| config | median |");
    println!("|:--|---:|");
    let t_inproc = bench_ns(&format!("inproc_query_{rows}"), reps(101), &mut || {
        db.query(query).unwrap().len()
    });
    println!(
        "| in-process query ({rows} rows/table) | {} |",
        fmt_ns(t_inproc)
    );

    let mut client = Client::connect(addr).unwrap();
    let t_ping = bench_ns("wire_ping", reps(101), &mut || {
        client.ping().unwrap();
        1
    });
    println!(
        "| wire `PING` round-trip (protocol floor) | {} |",
        fmt_ns(t_ping)
    );
    let t_wire = bench_ns(&format!("wire_query_{rows}"), reps(101), &mut || {
        client.query(query).unwrap().len()
    });
    println!("| wire query round-trip | {} |", fmt_ns(t_wire));

    client.branch("cut", None, branch_update).unwrap();
    client.switch(Some("cut")).unwrap();
    let t_branch = bench_ns(&format!("wire_branch_query_{rows}"), reps(101), &mut || {
        client.query(query).unwrap().len()
    });
    println!(
        "| wire query inside a what-if branch | {} |",
        fmt_ns(t_branch)
    );
    client.switch(None).unwrap();

    // Served results match in-process evaluation exactly.
    assert_eq!(client.query(query).unwrap(), db.query(query).unwrap());

    // Throughput: 8 concurrent clients, a fixed batch of queries each.
    let per_client = if quick() { 20 } else { 200 };
    let t_total = bench_ns(
        &format!("throughput_{CLIENTS}x{per_client}"),
        3,
        &mut || {
            let threads: Vec<_> = (0..CLIENTS)
                .map(|_| {
                    std::thread::spawn(move || {
                        let mut c = Client::connect(addr).unwrap();
                        let mut n = 0usize;
                        for _ in 0..per_client {
                            n += c.query(query).unwrap().len();
                        }
                        n
                    })
                })
                .collect();
            threads
                .into_iter()
                .map(|t| t.join().unwrap())
                .sum::<usize>()
        },
    );
    let reqs = (CLIENTS * per_client) as f64;
    let rps = reqs / (t_total / 1e9);
    println!(
        "| {CLIENTS} clients × {per_client} queries (throughput) | {} ({rps:.0} req/s) |",
        fmt_ns(t_total)
    );
    println!(
        "\nwire overhead vs in-process: query {:.2}×, floor (ping) {}\n",
        t_wire / t_inproc,
        fmt_ns(t_ping)
    );

    client.shutdown().unwrap();
    handle.join();

    let path = std::env::var("BENCH_E10_JSON").unwrap_or_else(|_| "BENCH_e10.json".to_string());
    let mut out = String::from("{\n");
    for (i, (config, median)) in json.iter().enumerate() {
        let comma = if i + 1 < json.len() { "," } else { "" };
        out.push_str(&format!("  \"{config}\": {median:.1}{comma}\n"));
    }
    out.push_str("}\n");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(out.as_bytes())) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn e11() {
    println!("## E11 — secondary indexes: point queries and snapshot reuse");
    println!("claims: a declared hash index answers point-equality selects ≥10×");
    println!("faster than a full scan at 100k rows, and CoW branches that leave");
    println!("the indexed base untouched share the one physical index — zero");
    println!("rebuilds across an 8-branch what-if tree.\n");

    use hypoquery_algebra::CmpOp;
    use hypoquery_storage::{tuple, RelName};

    let mut json: Vec<(String, f64)> = Vec::new();
    let mut bench_ns = |config: &str, reps: usize, f: &mut dyn FnMut() -> usize| -> f64 {
        let mut samples: Vec<f64> = (0..reps.max(3))
            .map(|_| {
                let t = Instant::now();
                std::hint::black_box(f());
                t.elapsed().as_secs_f64() * 1e9
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        json.push((config.to_string(), median));
        median
    };

    let rows = scaled(100_000);
    let db = two_table_db(rows, rows, rows as i64, 11);
    let mut idb = db.clone();
    idb.declare_index(RelName::new("R"), 0).unwrap();
    // 64 probe keys spread over the key range.
    let keys: Vec<i64> = (0..64i64).map(|i| (i * 7919) % rows as i64).collect();
    let point = |k: i64| hypoquery_bench::workload::sel(Query::base("R"), CmpOp::Eq, k);

    println!("| config | median |");
    println!("|:--|---:|");
    let t_scan = bench_ns(&format!("point_select_scan_{rows}"), reps(11), &mut || {
        keys.iter()
            .map(|&k| hypoquery_eval::eval_query(&point(k), &db).unwrap().len())
            .sum()
    });
    println!(
        "| {} point selects, full scan | {} |",
        keys.len(),
        fmt_ns(t_scan)
    );
    // Warm the build so the timed series measures steady-state probes.
    hypoquery_eval::eval_query(&point(keys[0]), &idb).unwrap();
    let t_idx = bench_ns(
        &format!("point_select_indexed_{rows}"),
        reps(11),
        &mut || {
            keys.iter()
                .map(|&k| hypoquery_eval::eval_query(&point(k), &idb).unwrap().len())
                .sum()
        },
    );
    println!(
        "| {} point selects, indexed | {} |",
        keys.len(),
        fmt_ns(t_idx)
    );

    // 8 CoW branches, each mutating S; R's storage pointer — and with it
    // the cached index — stays shared across every branch.
    let branches: Vec<DatabaseState> = (0..8i64)
        .map(|i| {
            let mut b = idb.clone();
            b.insert_row("S", tuple![rows as i64 + i, -i]).unwrap();
            b
        })
        .collect();
    let before = hypoquery_storage::index_counters();
    let t_branches = bench_ns(&format!("branch_probe_8x{rows}"), reps(11), &mut || {
        branches
            .iter()
            .map(|b| {
                keys.iter()
                    .map(|&k| hypoquery_eval::eval_query(&point(k), b).unwrap().len())
                    .sum::<usize>()
            })
            .sum()
    });
    let rebuilds = hypoquery_storage::index_counters().builds - before.builds;
    assert_eq!(rebuilds, 0, "CoW branches must reuse the shared index");
    println!(
        "| 8 branches × {} point selects, shared index | {} |",
        keys.len(),
        fmt_ns(t_branches)
    );

    let speedup = t_scan / t_idx;
    println!(
        "\npoint-select speedup: {speedup:.1}×; index rebuilds across 8 branches: {rebuilds}\n"
    );

    json.push(("point_select_speedup".to_string(), speedup));
    json.push(("branch_index_rebuilds_8x".to_string(), rebuilds as f64));
    let path = std::env::var("BENCH_E11_JSON").unwrap_or_else(|_| "BENCH_e11.json".to_string());
    let mut out = String::from("{\n");
    for (i, (config, median)) in json.iter().enumerate() {
        let comma = if i + 1 < json.len() { "," } else { "" };
        out.push_str(&format!("  \"{config}\": {median:.1}{comma}\n"));
    }
    out.push_str("}\n");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(out.as_bytes())) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn e12() {
    println!("## E12 — pipelined physical operators vs materializing walkers");
    println!("claim: streaming deep select/project/join chains through the");
    println!("physical operator layer beats (or at worst matches) the legacy");
    println!("tree-walkers, which materialize a BTreeSet per operator — on the");
    println!("same prepared query form under lazy, HQL-2, and HQL-3.\n");

    let mut json: Vec<(String, f64)> = Vec::new();
    let mut speedups: Vec<(String, f64)> = Vec::new();
    let mut bench_ns = |config: &str, reps: usize, f: &mut dyn FnMut() -> usize| -> f64 {
        let mut samples: Vec<f64> = (0..reps.max(3))
            .map(|_| {
                let t = Instant::now();
                std::hint::black_box(f());
                t.elapsed().as_secs_f64() * 1e9
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        json.push((config.to_string(), median));
        median
    };

    println!("| shape | rows | strategy | legacy | pipelined | speedup |");
    println!("|:--|---:|:--|---:|---:|---:|");
    for rows in [scaled(10_000), scaled(100_000)] {
        let db = two_table_db(rows, rows, rows as i64, 7);
        let stats = Statistics::of(&db);
        let u = e5_update(&db, 0.05);
        for (shape, body) in [
            ("select_chain", e12_select_chain(8, rows as i64)),
            ("join_chain", e12_join_chain(6, rows as i64, rows)),
        ] {
            let q = body.when(StateExpr::update(u.clone()));
            let reduced = optimize(&fully_lazy(&q, &mut RewriteTrace::new()), db.catalog()).0;
            let enf = to_enf_query(&q, &mut RewriteTrace::new());
            let modq = to_mod_enf(&q).unwrap();
            for (strat, pq) in [("lazy", &reduced), ("hql2", &enf), ("hql3", &modq)] {
                let legacy = |pq: &Query| -> usize {
                    match strat {
                        "lazy" => eval_pure(pq, &db).unwrap().len(),
                        "hql2" => algorithm_hql2(pq, &db).unwrap().len(),
                        _ => algorithm_hql3(pq, &db).unwrap().len(),
                    }
                };
                let phys = lower_query(pq, db.catalog(), &stats).unwrap();
                // Differential check before timing anything.
                assert_eq!(phys.execute(&db).unwrap().len(), legacy(pq));
                let t_legacy = bench_ns(
                    &format!("{shape}_{strat}_legacy_{rows}"),
                    reps(7),
                    &mut || legacy(pq),
                );
                let t_pipe = bench_ns(
                    &format!("{shape}_{strat}_pipelined_{rows}"),
                    reps(7),
                    &mut || phys.execute(&db).unwrap().len(),
                );
                let speedup = t_legacy / t_pipe;
                speedups.push((format!("{shape}_{strat}_speedup_{rows}"), speedup));
                println!(
                    "| {shape} | {rows} | {strat} | {} | {} | {speedup:.2}× |",
                    fmt_ns(t_legacy),
                    fmt_ns(t_pipe)
                );
            }
        }
    }
    println!();

    json.extend(speedups);
    let path = std::env::var("BENCH_E12_JSON").unwrap_or_else(|_| "BENCH_e12.json".to_string());
    let mut out = String::from("{\n");
    for (i, (config, median)) in json.iter().enumerate() {
        let comma = if i + 1 < json.len() { "," } else { "" };
        out.push_str(&format!("  \"{config}\": {median:.1}{comma}\n"));
    }
    out.push_str("}\n");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(out.as_bytes())) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}
