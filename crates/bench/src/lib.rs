//! # hypoquery-bench
//!
//! Benchmark harness reproducing every quantitative claim of
//! Griffin & Hull (SIGMOD 1997). The paper is an extended abstract with no
//! measured tables; each bench regenerates a *claim* from the examples or
//! §5.5 — see DESIGN.md §5 for the experiment index and EXPERIMENTS.md for
//! paper-vs-measured results.
//!
//! Run `cargo bench -p hypoquery-bench` for the Criterion suite, or
//! `cargo run --release -p hypoquery-bench --bin report` for the summary
//! tables recorded in EXPERIMENTS.md.

#![warn(missing_docs)]

pub mod workload;
