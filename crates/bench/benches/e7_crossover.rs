//! E7 — Example 2.1(c): the lazy↔eager crossover as occurrence count
//! grows.
//!
//! Claim reproduced: when the relation names affected by the hypothetical
//! update "occur only once or twice" in the query, lazy substitution is
//! cheap; as the body references the affected relation more and more
//! times, the lazy strategy re-derives the hypothetical relation per
//! occurrence while the eager strategy materializes it once — a crossover
//! the planner's Auto mode should straddle.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hypoquery_bench::workload::{e7_query, two_table_db};
use hypoquery_core::{fully_lazy, to_enf_query, RewriteTrace};
use hypoquery_eval::{algorithm_hql2, eval_pure};
use hypoquery_opt::{plan, PlannedStrategy, Statistics};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_crossover");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let db = two_table_db(20_000, 20_000, 20_000, 6);
    let stats = Statistics::of(&db);

    for &m in &[1usize, 2, 4, 8, 16] {
        let q = e7_query(m);
        let enf = to_enf_query(&q, &mut RewriteTrace::new());

        g.bench_with_input(BenchmarkId::new("lazy", m), &m, |b, _| {
            b.iter(|| {
                let reduced = fully_lazy(&q, &mut RewriteTrace::new());
                eval_pure(&reduced, &db).unwrap().len()
            })
        });
        g.bench_with_input(BenchmarkId::new("eager_hql2", m), &m, |b, _| {
            b.iter(|| algorithm_hql2(&enf, &db).unwrap().len())
        });
        g.bench_with_input(BenchmarkId::new("auto", m), &m, |b, _| {
            b.iter(|| {
                let p = plan(&q, db.catalog(), &stats);
                match p.strategy {
                    PlannedStrategy::Lazy => eval_pure(&p.query, &db).unwrap().len(),
                    PlannedStrategy::EagerDelta => {
                        hypoquery_eval::algorithm_hql3(&p.query, &db).unwrap().len()
                    }
                    _ => algorithm_hql2(&p.query, &db).unwrap().len(),
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
