//! E6 — §5.4: node-at-a-time vs clustered eager evaluation.
//!
//! Claim reproduced: Algorithm HQL-2's collapsed regions, which hand whole
//! pure-RA fragments to a conventional (hash-join) evaluator, beat
//! Algorithm HQL-1's operator-at-a-time interpretation — "a significant
//! weakness of Algorithm HQL-1 is that it does not permit grouping of
//! relational algebra operators into single physical operations".
//!
//! The gap is widest on queries like `R ⋈ σ(S)` where HQL-1's `⋈` sees
//! only already-materialized operands while HQL-2 can pipeline the select
//! into the join build side.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hypoquery_algebra::{CmpOp, Predicate, Query, StateExpr, Update};
use hypoquery_bench::workload::{sel, two_table_db};
use hypoquery_core::{to_enf_query, RewriteTrace};
use hypoquery_eval::{algorithm_hql1, algorithm_hql2};

fn queries() -> Vec<(&'static str, Query)> {
    let eta = || StateExpr::update(Update::insert("R", sel(Query::base("S"), CmpOp::Gt, 30)));
    vec![
        (
            "join_select",
            Query::base("R")
                .join(
                    sel(Query::base("S"), CmpOp::Lt, 70),
                    Predicate::col_col(0, CmpOp::Eq, 2),
                )
                .when(eta()),
        ),
        (
            "select_join_project",
            Query::base("R")
                .join(Query::base("S"), Predicate::col_col(0, CmpOp::Eq, 2))
                .select(Predicate::col_cmp(1, CmpOp::Gt, 100))
                .project([0, 3])
                .when(eta()),
        ),
        (
            "union_of_joins",
            Query::base("R")
                .join(Query::base("S"), Predicate::col_col(0, CmpOp::Eq, 2))
                .union(
                    sel(Query::base("R"), CmpOp::Le, 50)
                        .join(Query::base("S"), Predicate::col_col(1, CmpOp::Eq, 3)),
                )
                .when(eta()),
        ),
    ]
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_algorithms");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let db = two_table_db(30_000, 30_000, 5_000, 5);

    for (name, q) in queries() {
        let enf = to_enf_query(&q, &mut RewriteTrace::new());
        g.bench_with_input(BenchmarkId::new("hql1", name), name, |b, _| {
            b.iter(|| algorithm_hql1(&enf, &db).unwrap().len())
        });
        g.bench_with_input(BenchmarkId::new("hql2", name), name, |b, _| {
            b.iter(|| algorithm_hql2(&enf, &db).unwrap().len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
