//! E9 — copy-on-write snapshots + the parallel multi-scenario executor.
//!
//! Two claims:
//!
//! 1. **Snapshots are O(1), not O(data).** `DatabaseState::clone` is
//!    pointer bumps; the old behavior (deep-copying every relation) is
//!    measured alongside as `deep_copy` for contrast, as is applying a
//!    one-binding xsub-value, which must not copy untouched relations.
//! 2. **Independent scenarios scale across cores.** Evaluating k
//!    hypothetical branches through `Database::execute_many` should beat
//!    the sequential loop by ~min(k, cores)× once per-branch work
//!    dominates spawn cost.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hypoquery_bench::workload::{e9_db, e9_scenarios, two_table_db};
use hypoquery_engine::Strategy;
use hypoquery_eval::XsubValue;
use hypoquery_storage::Relation;

fn bench_snapshots(c: &mut Criterion) {
    let rows = 100_000;
    let state = two_table_db(rows, rows, 1000, 9);
    let mut g = c.benchmark_group("e9_snapshot");
    g.sample_size(20).measurement_time(Duration::from_secs(2));

    g.bench_with_input(BenchmarkId::new("cow_clone", rows), &state, |b, s| {
        b.iter(|| s.clone())
    });

    g.bench_with_input(BenchmarkId::new("deep_copy", rows), &state, |b, s| {
        b.iter(|| {
            // What clone cost before shared storage: rebuild every tuple set.
            let mut out = hypoquery_storage::DatabaseState::new(s.catalog().clone());
            for (name, rel) in s.iter() {
                let copy = Relation::from_rows(rel.arity(), rel.iter().cloned()).unwrap();
                out.set(name.clone(), copy).unwrap();
            }
            out
        })
    });

    // Apply an xsub-value binding one small relation: must not copy R/S.
    let delta = Relation::from_rows(
        2,
        (0..64i64).map(|i| {
            hypoquery_storage::Tuple::new([
                hypoquery_storage::Value::int(i),
                hypoquery_storage::Value::int(-i),
            ])
        }),
    )
    .unwrap();
    let xsub = XsubValue::new([("S".into(), delta)]);
    g.bench_with_input(BenchmarkId::new("xsub_apply", rows), &state, |b, s| {
        b.iter(|| xsub.apply(s).unwrap())
    });
    g.finish();
}

fn deep_copy_state(s: &hypoquery_storage::DatabaseState) -> hypoquery_storage::DatabaseState {
    let mut out = hypoquery_storage::DatabaseState::new(s.catalog().clone());
    for (name, rel) in s.iter() {
        let copy = Relation::from_rows(rel.arity(), rel.iter().cloned()).unwrap();
        out.set(name.clone(), copy).unwrap();
    }
    out
}

fn bench_scenarios(c: &mut Criterion) {
    let rows = 100_000;
    let db = e9_db(rows, 9);
    let mut g = c.benchmark_group("e9_scenarios");
    g.sample_size(10).measurement_time(Duration::from_secs(3));

    for k in [2usize, 8] {
        let scenarios = e9_scenarios(k);

        // The seed's cost model: every scenario snapshot deep-copies the
        // base state before evaluating (what XsubValue::apply / state
        // clone did without shared storage).
        g.bench_with_input(
            BenchmarkId::new("deepcopy_sequential", k),
            &scenarios,
            |b, qs| {
                b.iter(|| {
                    qs.iter()
                        .map(|q| {
                            let snapshot = deep_copy_state(db.state());
                            criterion::black_box(&snapshot);
                            db.execute(q, Strategy::Lazy).unwrap()
                        })
                        .collect::<Vec<_>>()
                })
            },
        );

        // Copy-on-write snapshots, sequential loop.
        g.bench_with_input(
            BenchmarkId::new("cow_sequential", k),
            &scenarios,
            |b, qs| {
                b.iter(|| {
                    qs.iter()
                        .map(|q| db.execute(q, Strategy::Lazy).unwrap())
                        .collect::<Vec<_>>()
                })
            },
        );

        // Copy-on-write snapshots + thread fan-out (`execute_many`).
        // Equals cow_sequential on a 1-core host; scales ~min(k, cores)×
        // elsewhere.
        g.bench_with_input(BenchmarkId::new("cow_parallel", k), &scenarios, |b, qs| {
            b.iter(|| db.execute_many(qs, Strategy::Lazy).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_snapshots, bench_scenarios);
criterion_main!(benches);
