//! E2 — Example 2.2: composing substitutions amortizes over a family of
//! queries against the same hypothetical state.
//!
//! Claim reproduced: answering k queries by (a) re-deriving and
//! re-materializing the hypothetical state per query costs ~k× the
//! materialization, while (b) computing the composed substitution once and
//! reusing its xsub-value makes the per-query cost approach plain query
//! evaluation.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hypoquery_bench::workload::{e2_family, e2_state, two_table_db};
use hypoquery_core::{lazy_state, sub_query, to_enf_query, RewriteTrace};
use hypoquery_eval::{algorithm_hql2, eval_pure, filter1, materialize_subst, XsubValue};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_composition");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let db = two_table_db(20_000, 20_000, 100, 2);
    let eta = e2_state(30, 60);

    for &k in &[1usize, 4, 16, 64] {
        let family = e2_family(k);

        // (a) Naive: every family member re-normalizes and re-materializes
        // the hypothetical state from scratch.
        g.bench_with_input(BenchmarkId::new("naive_per_query", k), &k, |b, _| {
            b.iter(|| {
                let mut total = 0usize;
                for q in &family {
                    let hq = q.clone().when(eta.clone());
                    let enf = to_enf_query(&hq, &mut RewriteTrace::new());
                    total += algorithm_hql2(&enf, &db).unwrap().len();
                }
                total
            })
        });

        // (b) Composed once, materialized once, reused k times (the
        // eager reading of Example 2.2(a)).
        g.bench_with_input(BenchmarkId::new("compose_once_eager", k), &k, |b, _| {
            b.iter(|| {
                let rho = lazy_state(&eta, &mut RewriteTrace::new());
                let e: XsubValue = materialize_subst(&rho, &db).unwrap();
                let mut total = 0usize;
                for q in &family {
                    total += filter1(q, &e, &db).unwrap().len();
                }
                total
            })
        });

        // (c) Composed once, applied lazily per query (the lazy reading:
        // "the new substitution can be applied to each of the queries").
        g.bench_with_input(BenchmarkId::new("compose_once_lazy", k), &k, |b, _| {
            b.iter(|| {
                let rho = lazy_state(&eta, &mut RewriteTrace::new());
                let mut total = 0usize;
                for q in &family {
                    let substituted = sub_query(q, &rho).unwrap();
                    total += eval_pure(&substituted, &db).unwrap().len();
                }
                total
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
