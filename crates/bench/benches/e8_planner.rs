//! E8 — the planner across the whole spectrum: Auto vs the best and worst
//! fixed strategies on one scenario from each other experiment.
//!
//! Claim reproduced: the framework's point is that no single fixed
//! strategy wins everywhere; a planner navigating the EQUIV_when space
//! should be near the per-scenario best (and far from the per-scenario
//! worst).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hypoquery_algebra::{Query, StateExpr};
use hypoquery_bench::workload::{e1_query, e5_update, e7_query, rs_join, two_table_db};
use hypoquery_core::{fully_lazy, to_enf_query, to_mod_enf, RewriteTrace};
use hypoquery_eval::{algorithm_hql2, algorithm_hql3, eval_pure};
use hypoquery_opt::{optimize, plan, PlannedStrategy, Statistics};
use hypoquery_storage::DatabaseState;

fn scenarios(db: &DatabaseState) -> Vec<(&'static str, Query)> {
    vec![
        ("empty_provable", e1_query(6_000, 12_000)),
        (
            "small_delta_join",
            rs_join().when(StateExpr::update(e5_update(db, 0.02))),
        ),
        ("many_occurrences", e7_query(8)),
    ]
}

fn run_fixed(q: &Query, db: &DatabaseState, strategy: &str) -> usize {
    match strategy {
        "lazy" => {
            let reduced = fully_lazy(q, &mut RewriteTrace::new());
            let (optimized, _) = optimize(&reduced, db.catalog());
            eval_pure(&optimized, db).unwrap().len()
        }
        "hql2" => {
            let enf = to_enf_query(q, &mut RewriteTrace::new());
            algorithm_hql2(&enf, db).unwrap().len()
        }
        "hql3" => match to_mod_enf(q) {
            Ok(m) => algorithm_hql3(&m, db).unwrap().len(),
            Err(_) => {
                let enf = to_enf_query(q, &mut RewriteTrace::new());
                algorithm_hql2(&enf, db).unwrap().len()
            }
        },
        _ => unreachable!(),
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_planner");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let db = two_table_db(20_000, 20_000, 20_000, 8);
    let stats = Statistics::of(&db);

    for (name, q) in scenarios(&db) {
        for fixed in ["lazy", "hql2", "hql3"] {
            g.bench_with_input(
                BenchmarkId::new(format!("fixed_{fixed}"), name),
                name,
                |b, _| b.iter(|| run_fixed(&q, &db, fixed)),
            );
        }
        g.bench_with_input(BenchmarkId::new("auto", name), name, |b, _| {
            b.iter(|| {
                let p = plan(&q, db.catalog(), &stats);
                match p.strategy {
                    PlannedStrategy::Lazy => eval_pure(&p.query, &db).unwrap().len(),
                    PlannedStrategy::EagerDelta => algorithm_hql3(&p.query, &db).unwrap().len(),
                    _ => algorithm_hql2(&p.query, &db).unwrap().len(),
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
