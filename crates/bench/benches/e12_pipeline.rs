//! E12 — pipelined physical execution vs. materializing tree-walkers.
//!
//! The physical operator layer streams tuples through deep
//! select/project/join chains in one pass; the legacy walkers
//! materialize a `BTreeSet` per operator. This bench runs the same
//! prepared query form (lazy-reduced, ENF, modified ENF) through both
//! executors, so any gap is purely the execution model:
//!
//! * `select_chain` — 8 stacked range selections, each keeping most of
//!   the remaining rows (the worst case for per-node materialization);
//! * `join_chain` — the chain fed into an equi-join, projected, and
//!   filtered twice more.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hypoquery_algebra::{Query, StateExpr};
use hypoquery_bench::workload::{e12_join_chain, e12_select_chain, e5_update, two_table_db};
use hypoquery_core::{fully_lazy, to_enf_query, to_mod_enf, RewriteTrace};
use hypoquery_eval::{algorithm_hql2, algorithm_hql3, eval_pure};
use hypoquery_opt::{lower_query, optimize, Statistics};
use hypoquery_storage::DatabaseState;

const ROWS: usize = 10_000;

/// Each strategy's prepared logical form — exactly what the engine hands
/// to the executor (the `report` binary covers 100k rows; criterion
/// stays at 10k to keep wall-clock sane).
fn prepared(q: &Query, db: &DatabaseState) -> Vec<(&'static str, Query)> {
    let reduced = optimize(&fully_lazy(q, &mut RewriteTrace::new()), db.catalog()).0;
    let enf = to_enf_query(q, &mut RewriteTrace::new());
    let modq = to_mod_enf(q).unwrap();
    vec![("lazy", reduced), ("hql2", enf), ("hql3", modq)]
}

fn legacy_eval(strat: &str, pq: &Query, db: &DatabaseState) -> usize {
    match strat {
        "lazy" => eval_pure(pq, db).unwrap().len(),
        "hql2" => algorithm_hql2(pq, db).unwrap().len(),
        "hql3" => algorithm_hql3(pq, db).unwrap().len(),
        other => panic!("unknown strategy {other}"),
    }
}

fn bench_chains(c: &mut Criterion) {
    let db = two_table_db(ROWS, ROWS, ROWS as i64, 7);
    let stats = Statistics::of(&db);
    let u = e5_update(&db, 0.05);
    for (shape, body) in [
        ("select_chain", e12_select_chain(8, ROWS as i64)),
        ("join_chain", e12_join_chain(6, ROWS as i64, ROWS)),
    ] {
        let q = body.when(StateExpr::update(u.clone()));
        let mut g = c.benchmark_group(format!("e12_{shape}"));
        g.sample_size(10).measurement_time(Duration::from_secs(2));
        for (strat, pq) in prepared(&q, &db) {
            g.bench_with_input(
                BenchmarkId::new(format!("{strat}_legacy"), ROWS),
                &pq,
                |b, pq| b.iter(|| legacy_eval(strat, pq, &db)),
            );
            let phys = lower_query(&pq, db.catalog(), &stats).unwrap();
            // Both executors must agree before we time anything.
            assert_eq!(
                phys.execute(&db).unwrap().len(),
                legacy_eval(strat, &pq, &db)
            );
            g.bench_with_input(
                BenchmarkId::new(format!("{strat}_pipelined"), ROWS),
                &phys,
                |b, phys| b.iter(|| phys.execute(&db).unwrap().len()),
            );
        }
        g.finish();
    }
}

criterion_group!(benches, bench_chains);
criterion_main!(benches);
