//! E11 — snapshot-shared secondary indexes.
//!
//! Two claims:
//!
//! 1. **Point-equality selects probe, not scan.** With an index declared
//!    on `R.#0`, `σ_{#0=k}(R)` at 100k rows is answered from a hash
//!    probe; the undeclared baseline pays a full scan.
//! 2. **CoW branches share the built index.** The cache keys on the
//!    relation's shared storage pointer, so 8 what-if branches that
//!    mutate *other* relations all reuse the one physical index — zero
//!    rebuilds (asserted by the `report` binary, measured here).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hypoquery_algebra::{CmpOp, Query};
use hypoquery_bench::workload::{sel, two_table_db};
use hypoquery_eval::eval_query;
use hypoquery_storage::{tuple, DatabaseState, RelName};

const ROWS: usize = 100_000;

fn point(k: i64) -> Query {
    sel(Query::base("R"), CmpOp::Eq, k)
}

/// The base state, optionally with an index declared on `R.#0`.
fn db(indexed: bool) -> DatabaseState {
    let mut db = two_table_db(ROWS, ROWS, ROWS as i64, 11);
    if indexed {
        db.declare_index(RelName::new("R"), 0).unwrap();
        // Warm the build so the timed series measures steady-state probes.
        eval_query(&point(0), &db).unwrap();
    }
    db
}

fn bench_point_select(c: &mut Criterion) {
    let scan_db = db(false);
    let indexed_db = db(true);
    let mut g = c.benchmark_group("e11_point_select");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    for (name, state) in [("scan", &scan_db), ("indexed", &indexed_db)] {
        g.bench_with_input(BenchmarkId::new(name, ROWS), state, |b, s| {
            let mut k = 0i64;
            b.iter(|| {
                k = (k + 7919) % ROWS as i64;
                eval_query(&point(k), s).unwrap().len()
            })
        });
    }
    g.finish();
}

fn bench_branch_reuse(c: &mut Criterion) {
    let base = db(true);
    // 8 CoW branches, each mutating S: R's storage pointer — and with it
    // the cached index — stays shared across every branch.
    let branches: Vec<DatabaseState> = (0..8i64)
        .map(|i| {
            let mut b = base.clone();
            b.insert_row("S", tuple![ROWS as i64 + i, -i]).unwrap();
            b
        })
        .collect();
    let mut g = c.benchmark_group("e11_branch_reuse");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    g.bench_with_input(
        BenchmarkId::new("probe_8_branches", ROWS),
        &branches,
        |b, bs| {
            let mut k = 0i64;
            b.iter(|| {
                k = (k + 7919) % ROWS as i64;
                bs.iter()
                    .map(|s| eval_query(&point(k), s).unwrap().len())
                    .sum::<usize>()
            })
        },
    );
    g.finish();
}

criterion_group!(benches, bench_point_select, bench_branch_reuse);
criterion_main!(benches);
