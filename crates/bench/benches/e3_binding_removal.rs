//! E3 — Example 2.3: binding removal.
//!
//! Claim reproduced: when the queries to be answered never mention `S`,
//! dropping the `S` binding from the composed substitution "will reduce
//! work on the underlying data" for eager evaluation (skip materializing
//! the S slice) "and … work in the optimizer" for lazy evaluation.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hypoquery_algebra::{ExplicitSubst, Query, StateExpr};
use hypoquery_bench::workload::{e3_db, e3_update};
use hypoquery_core::{fully_lazy, red_query, red_state, RewriteTrace};
use hypoquery_eval::{eval_pure, filter1, materialize_subst};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_binding_removal");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for &n in &[5_000usize, 50_000] {
        let db = e3_db(n, 3);
        let eta = StateExpr::update(e3_update());
        // The family's queries avoid S entirely.
        let q = Query::base("R").union(Query::base("T"));

        // Eager WITHOUT binding removal: materialize the full composed
        // substitution (R, S and T slices).
        g.bench_with_input(BenchmarkId::new("eager_full_subst", n), &n, |b, _| {
            b.iter(|| {
                let rho = red_state(&eta).unwrap();
                let e = materialize_subst(&rho, &db).unwrap();
                filter1(&q, &e, &db).unwrap().len()
            })
        });

        // Eager WITH binding removal: restrict to free(q) = {R, T} first —
        // the S slice (which reads the post-insert R!) is never computed.
        g.bench_with_input(BenchmarkId::new("eager_binding_removed", n), &n, |b, _| {
            b.iter(|| {
                let rho = red_state(&eta).unwrap();
                let free = hypoquery_algebra::scope::free_query(&q);
                let restricted: ExplicitSubst = rho
                    .into_bindings()
                    .into_iter()
                    .filter(|(name, _)| free.contains(name))
                    .collect();
                let e = materialize_subst(&restricted, &db).unwrap();
                filter1(&q, &e, &db).unwrap().len()
            })
        });

        // Lazy WITHOUT binding removal (red composes every slice).
        g.bench_with_input(BenchmarkId::new("lazy_red", n), &n, |b, _| {
            b.iter(|| {
                let reduced = red_query(&q.clone().when(eta.clone())).unwrap();
                eval_pure(&reduced, &db).unwrap().len()
            })
        });

        // Lazy WITH binding removal (fully_lazy drops the S binding before
        // substitution).
        g.bench_with_input(BenchmarkId::new("lazy_binding_removed", n), &n, |b, _| {
            b.iter(|| {
                let reduced = fully_lazy(&q.clone().when(eta.clone()), &mut RewriteTrace::new());
                eval_pure(&reduced, &db).unwrap().len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
