//! E1 — Example 2.1: eager vs lazy vs planner on the alternatives query.
//!
//! Claim reproduced: the lazy strategy rewrites query (1) to `∅` and its
//! cost is independent of the data size, while the eager strategies pay
//! for materializing and joining the hypothetical relations; the planner
//! (Auto) should track the lazy side on this query.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hypoquery_bench::workload::{e1_query, two_table_db};
use hypoquery_core::{fully_lazy, to_enf_query, RewriteTrace};
use hypoquery_eval::{algorithm_hql1, algorithm_hql2, eval_pure};
use hypoquery_opt::{optimize, plan, Statistics};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_alternatives");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for &n in &[1_000usize, 10_000, 50_000] {
        let keys = (10 * n) as i64;
        let db = two_table_db(n, n, keys, 1);
        let q = e1_query(keys * 3 / 10, keys * 6 / 10);
        let enf = to_enf_query(&q, &mut RewriteTrace::new());
        let stats = Statistics::of(&db);

        g.bench_with_input(BenchmarkId::new("eager_hql1", n), &n, |b, _| {
            b.iter(|| algorithm_hql1(&enf, &db).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("eager_hql2", n), &n, |b, _| {
            b.iter(|| algorithm_hql2(&enf, &db).unwrap())
        });
        // Lazy end-to-end: reduce, simplify, evaluate (the evaluation is
        // of ∅ — the point of the claim).
        g.bench_with_input(BenchmarkId::new("lazy", n), &n, |b, _| {
            b.iter(|| {
                let reduced = fully_lazy(&q, &mut RewriteTrace::new());
                let (optimized, _) = optimize(&reduced, db.catalog());
                eval_pure(&optimized, &db).unwrap()
            })
        });
        // Planner-chosen strategy end-to-end (plan + execute).
        g.bench_with_input(BenchmarkId::new("auto", n), &n, |b, _| {
            b.iter(|| {
                let p = plan(&q, db.catalog(), &stats);
                match p.strategy {
                    hypoquery_opt::PlannedStrategy::Lazy => eval_pure(&p.query, &db).unwrap(),
                    hypoquery_opt::PlannedStrategy::EagerDelta => {
                        hypoquery_eval::algorithm_hql3(&p.query, &db).unwrap()
                    }
                    _ => algorithm_hql2(&p.query, &db).unwrap(),
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
