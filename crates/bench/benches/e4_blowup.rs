//! E4 — Example 2.4: the exponential blow-up of fully lazy evaluation,
//! the algebraic-rewriting rescue, and the case where eager wins.
//!
//! Claims reproduced:
//! * (a) the fully lazy equivalent of the depth-n query has ~2ⁿ nodes
//!   while the query itself is linear in n (measured as rewrite time and
//!   asserted on node counts in `workload` tests);
//! * (b) interleaving RA simplification with reduction collapses the
//!   query to `∅` cheaply when a level is empty;
//! * (c) when the Eᵢ values are small, eager evaluation beats lazy
//!   rewriting even though the lazy *query* is huge.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hypoquery_bench::workload::{e4_db, e4_query};
use hypoquery_core::{red_query, to_enf_query, RewriteTrace};
use hypoquery_eval::algorithm_hql1;
use hypoquery_opt::reduce_optimized;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_blowup");
    g.sample_size(10).measurement_time(Duration::from_secs(3));

    for &n in &[6usize, 10, 14] {
        // (a) Plain lazy reduction: exponential output, exponential time.
        let (q, _) = e4_query(n, None);
        g.bench_with_input(BenchmarkId::new("lazy_red_products", n), &n, |b, _| {
            b.iter(|| red_query(&q).unwrap().node_count())
        });

        // (b) Rescue: the empty level short-circuits interleaved
        // reduction+simplification (empty at the innermost level).
        let (q_rescue, catalog) = e4_query(n, Some(1));
        g.bench_with_input(BenchmarkId::new("rewriting_rescue", n), &n, |b, _| {
            b.iter(|| reduce_optimized(&q_rescue, &catalog).0.node_count())
        });
    }

    // (c) Eager evaluation on small data: each Eᵢ is tiny, so Algorithm
    // HQL-1 materializes small xsub-values level by level while lazy
    // reduction still pays the 2ⁿ rewrite.
    for &n in &[6usize, 10] {
        let (q, catalog) = e4_query(n, None);
        let db = e4_db(&catalog, 1);
        let enf = to_enf_query(&q, &mut RewriteTrace::new());
        g.bench_with_input(BenchmarkId::new("eager_small_values", n), &n, |b, _| {
            b.iter(|| algorithm_hql1(&enf, &db).unwrap().len())
        });
        g.bench_with_input(BenchmarkId::new("lazy_then_eval", n), &n, |b, _| {
            b.iter(|| {
                let reduced = red_query(&q).unwrap();
                hypoquery_eval::eval_pure(&reduced, &db).unwrap().len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
