//! E10 — the network service layer: wire-protocol overhead and
//! branch-scoped evaluation over loopback.
//!
//! Three comparisons against the in-process baseline:
//!
//! 1. **Protocol floor.** `PING` round-trips measure framing + socket +
//!    dispatch with zero evaluation.
//! 2. **Query overhead.** The same HQL evaluated via `Session::handle`
//!    in-process vs. a loopback round-trip — the gap is what the wire
//!    costs on top of evaluation.
//! 3. **Branch-scoped queries.** `QUERY` inside a what-if branch over
//!    the wire, where per-session CoW state does the heavy lifting.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use hypoquery_bench::workload::two_table_db;
use hypoquery_client::Client;
use hypoquery_server::proto::{Request, Verb};
use hypoquery_server::{serve, ServerConfig, Session};

const QUERY: &str = "select #0 > 990 (R) union select #0 <= 5 (S)";
const BRANCH_UPDATE: &str = "delete from R (select #0 < 500 (R))";

fn e10_database(rows: usize) -> hypoquery_engine::Database {
    let state = two_table_db(rows, rows, 1000, 10);
    let mut db = hypoquery_engine::Database::with_catalog(state.catalog().clone());
    for (name, rel) in state.iter() {
        db.load(name.as_str(), rel.iter().cloned()).unwrap();
    }
    db
}

fn bench_wire_overhead(c: &mut Criterion) {
    let rows = 10_000;
    let db = e10_database(rows);

    let handle = serve(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            ..ServerConfig::default()
        },
        db.clone(),
    )
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let mut g = c.benchmark_group("e10_server");
    g.sample_size(20).measurement_time(Duration::from_secs(2));

    // In-process baseline: the same dispatch path the server runs per
    // request, minus sockets and framing.
    let mut session = Session::new(db.clone());
    let req = Request::new(Verb::Query, QUERY, "");
    g.bench_function(format!("inproc_query_{rows}"), |b| {
        b.iter(|| session.handle(&req))
    });

    g.bench_function("wire_ping", |b| b.iter(|| client.ping().unwrap()));

    g.bench_function(format!("wire_query_{rows}"), |b| {
        b.iter(|| client.query(QUERY).unwrap().len())
    });

    // Branch-scoped: evaluate inside a what-if branch on the server.
    client.branch("cut", None, BRANCH_UPDATE).unwrap();
    client.switch(Some("cut")).unwrap();
    g.bench_function(format!("wire_branch_query_{rows}"), |b| {
        b.iter(|| client.query(QUERY).unwrap().len())
    });
    g.finish();

    client.shutdown().unwrap();
    handle.join();
}

criterion_group!(benches, bench_wire_overhead);
criterion_main!(benches);
