//! E5 — §5.5: delta values and `join-when`.
//!
//! Claims reproduced:
//! * evaluating `(R ⋈ S) when {U}` with deltas (Algorithm HQL-3 /
//!   `join-when`) costs only nominally more than the plain join when the
//!   update touches a small fraction of the data (the paper's
//!   rule-of-thumb: a delta of x% of the base adds roughly proportional
//!   overhead — ~22% at 2% in Heraclitus's sort-merge; our hash pipeline
//!   has the same shape);
//! * the full-materialization strategy (HQL-2 / xsub-values) pays the
//!   whole hypothetical-relation cost regardless of delta size, so HQL-3
//!   wins for small deltas and the gap narrows as the delta grows.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hypoquery_algebra::StateExpr;
use hypoquery_bench::workload::{e5_update, rs_join, two_table_db};
use hypoquery_core::{to_enf_query, to_mod_enf, RewriteTrace};
use hypoquery_eval::{algorithm_hql2, algorithm_hql3, eval_pure};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_delta");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let n = 50_000usize;
    let db = two_table_db(n, n, (n as i64) * 10, 4);
    let join = rs_join();

    // Baseline: the plain join, no hypothetical state at all.
    g.bench_function("plain_join_baseline", |b| {
        b.iter(|| eval_pure(&join, &db).unwrap().len())
    });

    for &pct in &[0.5f64, 2.0, 10.0, 25.0, 50.0] {
        let frac = pct / 100.0;
        let u = e5_update(&db, frac);
        let q = join.clone().when(StateExpr::update(u.clone()));
        let modq = to_mod_enf(&q).unwrap();
        let enfq = to_enf_query(&q, &mut RewriteTrace::new());
        let label = format!("{pct}");

        // The operator the paper's rule-of-thumb times: join-when with
        // the delta already built.
        let delta = hypoquery_eval::filter3::filter3_update(
            &hypoquery_core::red_update(&u).unwrap(),
            &hypoquery_eval::DeltaValue::empty(),
            &db,
        )
        .unwrap();
        g.bench_with_input(BenchmarkId::new("join_when_only", &label), &pct, |b, _| {
            b.iter(|| {
                hypoquery_eval::eval_filter_d(&join, &delta, &db)
                    .unwrap()
                    .len()
            })
        });

        // Delta-based end-to-end: delta construction + join-when.
        g.bench_with_input(BenchmarkId::new("hql3_join_when", &label), &pct, |b, _| {
            b.iter(|| algorithm_hql3(&modq, &db).unwrap().len())
        });

        // Full materialization of both hypothetical relations.
        g.bench_with_input(BenchmarkId::new("hql2_xsub", &label), &pct, |b, _| {
            b.iter(|| algorithm_hql2(&enfq, &db).unwrap().len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
