//! Property tests for the paper's lemmas, theorems, and propositions,
//! checked against the direct semantics on random states and expressions.
//!
//! Covered here: Lemmas 3.2 (semantic half), 3.5, 3.6, 3.9; Theorems 3.10
//! and 4.1; Propositions 5.1, 5.3, 5.4; the xsub smash/composition
//! equation of §5.3; and the delta capture/smash laws of §5.5.

use proptest::prelude::*;

use hypoquery_algebra::{Query, StateExpr};
use hypoquery_core::{
    compose_pure, fully_lazy, red_query, red_state, red_update, slice, sub_query, to_enf_query,
    to_mod_enf, RewriteTrace,
};
use hypoquery_eval::{
    algorithm_hql1, algorithm_hql2, algorithm_hql3, apply_subst, eval_pure, eval_query, eval_state,
    eval_update, materialize_subst, DeltaValue, XsubValue,
};
use hypoquery_testkit::{
    arb_atomic_update_seq, arb_db, arb_pure_query, arb_pure_subst, arb_query, arb_state_expr,
    arb_update, Universe,
};

fn universe() -> Universe {
    Universe::standard()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Lemma 3.5: [[sub(Q, ρ)]](DB) = [[Q]](apply(DB, ρ)).
    #[test]
    fn lemma_3_5(
        q in arb_pure_query(&universe(), 2, 3),
        rho in arb_pure_subst(&universe(), 2),
        db in arb_db(&universe(), 5),
    ) {
        let substituted = sub_query(&q, &rho).unwrap();
        let lhs = eval_pure(&substituted, &db).unwrap();
        let rhs = eval_pure(&q, &apply_subst(&db, &rho).unwrap()).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// Lemma 3.6: apply(DB, ρ₁#ρ₂) = apply(apply(DB, ρ₁), ρ₂).
    #[test]
    fn lemma_3_6(
        r1 in arb_pure_subst(&universe(), 2),
        r2 in arb_pure_subst(&universe(), 2),
        db in arb_db(&universe(), 5),
    ) {
        let composed = compose_pure(&r1, &r2).unwrap();
        let lhs = apply_subst(&db, &composed).unwrap();
        let rhs = apply_subst(&apply_subst(&db, &r1).unwrap(), &r2).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// Lemma 3.9: apply(DB, slice(U)) = [[U]](DB), for pure updates —
    /// including the §6 conditional extension via the 0-ary-guard slice.
    #[test]
    fn lemma_3_9(
        u in arb_update(&universe(), 2),
        db in arb_db(&universe(), 5),
    ) {
        // Purify inner queries first (red_update), asserting purification
        // preserves update semantics along the way.
        let pure_u = red_update(&u).unwrap();
        let direct = eval_update(&pure_u, &db).unwrap();
        prop_assert_eq!(&direct, &eval_update(&u, &db).unwrap());
        let sliced = slice(&pure_u).unwrap();
        prop_assert_eq!(apply_subst(&db, &sliced).unwrap(), direct);
    }

    /// Theorem 4.1 (subsumes Theorem 3.10): red(Q) is pure and
    /// [[Q]](DB) = [[red(Q)]](DB); and [[η]](DB) = apply(DB, red(η)).
    #[test]
    fn theorem_4_1(
        q in arb_query(&universe(), 2, 3),
        eta in arb_state_expr(&universe(), 2),
        db in arb_db(&universe(), 5),
    ) {
        let reduced = red_query(&q).unwrap();
        prop_assert!(reduced.is_pure());
        prop_assert_eq!(
            eval_query(&q, &db).unwrap(),
            eval_pure(&reduced, &db).unwrap()
        );

        let rho = red_state(&eta).unwrap();
        prop_assert_eq!(
            eval_state(&eta, &db).unwrap(),
            apply_subst(&db, &rho).unwrap()
        );
    }

    /// The traced lazy strategy (with binding removal) agrees with red.
    #[test]
    fn lazy_strategy_agrees_with_red(
        q in arb_query(&universe(), 2, 3),
        db in arb_db(&universe(), 5),
    ) {
        let mut trace = RewriteTrace::new();
        let lazy = fully_lazy(&q, &mut trace);
        prop_assert!(lazy.is_pure());
        prop_assert_eq!(
            eval_pure(&lazy, &db).unwrap(),
            eval_query(&q, &db).unwrap()
        );
    }

    /// Proposition 5.1: Algorithm HQL-1 is correct.
    #[test]
    fn proposition_5_1(
        q in arb_query(&universe(), 2, 3),
        db in arb_db(&universe(), 5),
    ) {
        let enf = to_enf_query(&q, &mut RewriteTrace::new());
        prop_assert_eq!(
            algorithm_hql1(&enf, &db).unwrap(),
            eval_query(&q, &db).unwrap()
        );
    }

    /// Proposition 5.3: Algorithm HQL-2 is correct.
    #[test]
    fn proposition_5_3(
        q in arb_query(&universe(), 2, 3),
        db in arb_db(&universe(), 5),
    ) {
        let enf = to_enf_query(&q, &mut RewriteTrace::new());
        prop_assert_eq!(
            algorithm_hql2(&enf, &db).unwrap(),
            eval_query(&q, &db).unwrap()
        );
    }

    /// ENF normalization itself preserves semantics (it only uses
    /// EQUIV_when rules, so this also exercises their composition).
    #[test]
    fn enf_preserves_semantics(
        q in arb_query(&universe(), 2, 3),
        db in arb_db(&universe(), 5),
    ) {
        let enf = to_enf_query(&q, &mut RewriteTrace::new());
        prop_assert_eq!(
            eval_query(&enf, &db).unwrap(),
            eval_query(&q, &db).unwrap()
        );
    }

    /// Proposition 5.4: Algorithm HQL-3 is correct on mod-ENF queries.
    #[test]
    fn proposition_5_4(
        base in arb_pure_query(&universe(), 2, 2),
        updates in prop::collection::vec(arb_atomic_update_seq(&universe(), 3), 1..3),
        db in arb_db(&universe(), 5),
    ) {
        let mut q = base;
        for u in updates {
            q = q.when(StateExpr::update(u));
        }
        let m = to_mod_enf(&q).unwrap();
        prop_assert_eq!(
            algorithm_hql3(&m, &db).unwrap(),
            eval_query(&q, &db).unwrap()
        );
    }

    /// mod-ENF conversion preserves semantics whenever it succeeds —
    /// checked over arbitrary HQL queries (most contain compositions that
    /// convert to update sequences, some fail with NotModEnf and are
    /// skipped).
    #[test]
    fn mod_enf_preserves_semantics(
        q in arb_query(&universe(), 2, 3),
        db in arb_db(&universe(), 5),
    ) {
        if let Ok(m) = to_mod_enf(&q) {
            prop_assert_eq!(
                eval_query(&m, &db).unwrap(),
                eval_query(&q, &db).unwrap()
            );
            if hypoquery_core::is_mod_enf(&m) {
                prop_assert_eq!(
                    algorithm_hql3(&m, &db).unwrap(),
                    eval_query(&q, &db).unwrap()
                );
            }
        }
    }

    /// §5.3: apply(DB, [ε]ₓ(DB)) = [[ε]](DB).
    #[test]
    fn xsub_materialization_correct(
        eps in arb_pure_subst(&universe(), 2),
        db in arb_db(&universe(), 5),
    ) {
        let e = materialize_subst(&eps, &db).unwrap();
        prop_assert_eq!(
            e.apply(&db).unwrap(),
            apply_subst(&db, &eps).unwrap()
        );
    }

    /// §5.3: [ε₁#ε₂]ₓ(DB) = [ε₁]ₓ(DB) ! [ε₂]ₓ(apply(DB, [ε₁]ₓ(DB))).
    #[test]
    fn xsub_smash_composition(
        e1 in arb_pure_subst(&universe(), 2),
        e2 in arb_pure_subst(&universe(), 2),
        db in arb_db(&universe(), 5),
    ) {
        let composed = compose_pure(&e1, &e2).unwrap();
        let lhs = materialize_subst(&composed, &db).unwrap();
        let m1 = materialize_subst(&e1, &db).unwrap();
        let mid = m1.apply(&db).unwrap();
        let m2 = materialize_subst(&e2, &mid).unwrap();
        let rhs = m1.smash(&m2);
        prop_assert_eq!(lhs, rhs);
    }

    /// §5.5: the precise delta captures the xsub-value, and delta smash
    /// corresponds to sequential application.
    #[test]
    fn delta_capture_and_smash(
        e1 in arb_pure_subst(&universe(), 2),
        e2 in arb_pure_subst(&universe(), 2),
        db in arb_db(&universe(), 5),
    ) {
        let m1 = materialize_subst(&e1, &db).unwrap();
        let d1 = DeltaValue::capture_xsub(&m1, &db).unwrap();
        prop_assert_eq!(d1.apply(&db).unwrap(), m1.apply(&db).unwrap());

        // Capture e2 in the intermediate state, then smash.
        let mid = d1.apply(&db).unwrap();
        let m2 = materialize_subst(&e2, &mid).unwrap();
        let d2 = DeltaValue::capture_xsub(&m2, &mid).unwrap();
        let smashed = d1.smash(&d2).unwrap();
        prop_assert_eq!(
            smashed.apply(&db).unwrap(),
            d2.apply(&mid).unwrap()
        );
    }

    /// filter1 under a non-empty ambient xsub-value computes the query in
    /// the overlaid state.
    #[test]
    fn filter1_respects_ambient_filter(
        q in arb_pure_query(&universe(), 2, 2),
        eps in arb_pure_subst(&universe(), 1),
        db in arb_db(&universe(), 5),
    ) {
        let e = materialize_subst(&eps, &db).unwrap();
        let overlaid = e.apply(&db).unwrap();
        prop_assert_eq!(
            hypoquery_eval::filter1(&q, &e, &db).unwrap(),
            eval_query(&q, &overlaid).unwrap()
        );
    }
}

// The all-strategies-agree invariant, exercised once more with deeper
// nesting than the per-proposition tests.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_strategies_agree(
        q in arb_query(&universe(), 2, 4),
        db in arb_db(&universe(), 4),
    ) {
        let expected = eval_query(&q, &db).unwrap();
        // Lazy.
        let reduced = red_query(&q).unwrap();
        prop_assert_eq!(&expected, &eval_pure(&reduced, &db).unwrap());
        // Eager HQL-1 / HQL-2.
        let enf = to_enf_query(&q, &mut RewriteTrace::new());
        prop_assert_eq!(&expected, &algorithm_hql1(&enf, &db).unwrap());
        prop_assert_eq!(&expected, &algorithm_hql2(&enf, &db).unwrap());
        // Hybrid: materialize the outermost substitution eagerly, reduce
        // the rest lazily.
        if let Query::When(body, eta) = &enf {
            if let StateExpr::Subst(eps) = &**eta {
                let e = materialize_subst(eps, &db).unwrap();
                let lazy_body = red_query(body).unwrap();
                let hybrid = eval_pure(&lazy_body, &e.apply(&db).unwrap()).unwrap();
                prop_assert_eq!(&expected, &hybrid);
            }
        }
    }
}

#[test]
fn empty_xsub_is_transparent() {
    // Degenerate sanity check outside proptest: filter1 with {} equals
    // direct evaluation on a handcrafted state.
    let u = universe();
    let db = hypoquery_storage::DatabaseState::new(u.catalog.clone());
    let q = Query::base("R").union(Query::base("S"));
    assert_eq!(
        hypoquery_eval::filter1(&q, &XsubValue::empty(), &db).unwrap(),
        eval_query(&q, &db).unwrap()
    );
}
