//! Property tests for secondary indexes: declaring indexes is a pure
//! access-path decision and must never change results. For random
//! databases, queries, and hypothetical updates, every strategy's answer
//! over an index-declared state equals direct evaluation over the same
//! state with no declarations. Plus the snapshot-sharing invariant the
//! cache is built on: physically shared storage resolves to the *same*
//! built index, and a mutated (un-shared) snapshot gets a fresh one.

use std::sync::Arc;

use proptest::prelude::*;

use hypoquery_algebra::StateExpr;
use hypoquery_core::{fully_lazy, to_enf_query, to_mod_enf, RewriteTrace};
use hypoquery_eval::{algorithm_hql1, algorithm_hql2, algorithm_hql3, eval_pure, eval_query};
use hypoquery_storage::{lookup_or_build_index, tuple, DatabaseState, RelName};
use hypoquery_testkit::{arb_db, arb_query, arb_update, Universe};

fn universe() -> Universe {
    Universe::standard()
}

/// `db` with an index declared on every column of every relation — the
/// adversarial extreme: any query that *can* take an index path does.
fn declare_all(db: &DatabaseState) -> DatabaseState {
    let mut out = db.clone();
    let decls: Vec<(RelName, usize)> = out
        .catalog()
        .iter()
        .flat_map(|(name, schema)| (0..schema.arity).map(move |c| (name.clone(), c)))
        .collect();
    for (name, col) in decls {
        out.declare_index(name, col).unwrap();
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Indexed == scan for all five strategies, on a hypothetical query
    /// (`body when {update}`) over a random database.
    #[test]
    fn indexed_equals_scan_all_strategies(
        body in arb_query(&universe(), 2, 2),
        u in arb_update(&universe(), 2),
        db in arb_db(&universe(), 6),
    ) {
        let q = body.when(StateExpr::update(u));
        // Ground truth: direct evaluation with no index declarations.
        let expected = eval_query(&q, &db).unwrap();
        let idb = declare_all(&db);

        // Direct.
        prop_assert_eq!(eval_query(&q, &idb).unwrap(), expected.clone());
        // Lazy.
        let reduced = fully_lazy(&q, &mut RewriteTrace::new());
        prop_assert_eq!(eval_pure(&reduced, &idb).unwrap(), expected.clone());
        // HQL-1 / HQL-2 over ENF.
        let enf = to_enf_query(&q, &mut RewriteTrace::new());
        prop_assert_eq!(algorithm_hql1(&enf, &idb).unwrap(), expected.clone());
        prop_assert_eq!(algorithm_hql2(&enf, &idb).unwrap(), expected.clone());
        // HQL-3 over modified ENF (not every state expression qualifies).
        if let Ok(modq) = to_mod_enf(&q) {
            prop_assert_eq!(algorithm_hql3(&modq, &idb).unwrap(), expected);
        }
    }

    /// Pure queries too: no hypothetical context, indexes still inert.
    #[test]
    fn indexed_equals_scan_pure(
        q in arb_query(&universe(), 2, 3),
        db in arb_db(&universe(), 6),
    ) {
        let expected = eval_query(&q, &db).unwrap();
        let idb = declare_all(&db);
        prop_assert_eq!(eval_query(&q, &idb).unwrap(), expected.clone());
        // `eval_pure` needs a when-free query; reduce first.
        let reduced = fully_lazy(&q, &mut RewriteTrace::new());
        prop_assert_eq!(eval_pure(&reduced, &idb).unwrap(), expected);
    }

    /// The cache contract: snapshots that physically share a relation's
    /// storage share the built index (same `Arc`), and a mutation —
    /// which un-shares the storage — yields a fresh index that reflects
    /// the new contents.
    #[test]
    fn shared_storage_shares_index(
        db in arb_db(&universe(), 6),
        col in 0usize..2,
    ) {
        let mut db = db;
        let r = RelName::new("R");
        // An empty binding is synthesized fresh on every read and shares
        // nothing; make sure R is physically stored.
        db.insert_row("R", tuple![0, 0]).unwrap();
        let base = db.get(&r).unwrap();
        let snapshot = db.clone();
        let in_snapshot = snapshot.get(&r).unwrap();
        prop_assert!(base.ptr_eq(&in_snapshot));
        let i1 = lookup_or_build_index(&base, &[col]);
        let i2 = lookup_or_build_index(&in_snapshot, &[col]);
        prop_assert!(Arc::ptr_eq(&i1, &i2), "shared storage must share the index");

        // Mutate the snapshot: storage un-shares, the index follows.
        let mut mutated = db.clone();
        mutated.insert_row("R", tuple![99, 99]).unwrap();
        let in_mutated = mutated.get(&r).unwrap();
        prop_assert!(!base.ptr_eq(&in_mutated));
        let i3 = lookup_or_build_index(&in_mutated, &[col]);
        prop_assert!(!Arc::ptr_eq(&i1, &i3), "mutated snapshot must get a fresh index");
        // And the fresh index sees the mutation.
        let probed = i3.probe(&[hypoquery_storage::Value::int(99)]);
        prop_assert_eq!(probed, &[tuple![99, 99]]);

        // The base's index is untouched by the branch's mutation.
        let i4 = lookup_or_build_index(&base, &[col]);
        prop_assert!(Arc::ptr_eq(&i1, &i4));
        prop_assert!(i1.probe(&[hypoquery_storage::Value::int(99)]).is_empty());
    }
}
