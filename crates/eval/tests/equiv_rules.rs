//! Per-rule soundness of the EQUIV_when family (Figure 1): every rewrite a
//! rule performs must preserve the direct semantics in every database
//! state. Redexes are constructed so each rule actually fires.

use proptest::prelude::*;

use hypoquery_algebra::{Query, StateExpr};
use hypoquery_core::equiv::{
    rule_commute_hypotheticals, rule_compose_assoc, rule_compute_composition, rule_convert_update,
    rule_push_when, rule_replace_nested_when, rule_simplify_subst, rule_when_leaf,
};
use hypoquery_eval::{eval_query, eval_state};
use hypoquery_testkit::{arb_db, arb_query, arb_state_expr, arb_subst, arb_update, Universe};

fn universe() -> Universe {
    Universe::standard()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// when-base / when-singleton / when-empty: fire on leaf bodies.
    #[test]
    fn rule_when_leaf_sound(
        eps in arb_subst(&universe(), 1),
        db in arb_db(&universe(), 5),
        pick_base in any::<bool>(),
    ) {
        let body = if pick_base { Query::base("R") } else { Query::empty(2) };
        let q = body.when(StateExpr::subst(eps));
        if let Some((rewritten, _)) = rule_when_leaf(&q) {
            prop_assert_eq!(
                eval_query(&rewritten, &db).unwrap(),
                eval_query(&q, &db).unwrap()
            );
        } else {
            prop_assert!(false, "leaf rule must fire on base/empty bodies");
        }
    }

    /// push-when through unary and binary operators.
    #[test]
    fn rule_push_when_sound(
        body in arb_query(&universe(), 2, 2),
        eta in arb_state_expr(&universe(), 1),
        db in arb_db(&universe(), 5),
    ) {
        let q = body.when(eta);
        if let Some((rewritten, _)) = rule_push_when(&q) {
            prop_assert_eq!(
                eval_query(&rewritten, &db).unwrap(),
                eval_query(&q, &db).unwrap()
            );
        }
    }

    /// convert-to-explicit-substitutions: {U} ≡ its explicit/composed form.
    #[test]
    fn rule_convert_update_sound(
        u in arb_update(&universe(), 2),
        db in arb_db(&universe(), 5),
    ) {
        let eta = StateExpr::update(u);
        let (rewritten, _) = rule_convert_update(&eta).unwrap();
        prop_assert_eq!(
            eval_state(&rewritten, &db).unwrap(),
            eval_state(&eta, &db).unwrap()
        );
    }

    /// replace-nested-when: (Q when η₁) when η₂ ≡ Q when (η₂ # η₁).
    #[test]
    fn rule_replace_nested_when_sound(
        body in arb_query(&universe(), 2, 1),
        e1 in arb_state_expr(&universe(), 1),
        e2 in arb_state_expr(&universe(), 1),
        db in arb_db(&universe(), 5),
    ) {
        let q = body.when(e1).when(e2);
        let (rewritten, _) = rule_replace_nested_when(&q).unwrap();
        prop_assert_eq!(
            eval_query(&rewritten, &db).unwrap(),
            eval_query(&q, &db).unwrap()
        );
    }

    /// associativity of #.
    #[test]
    fn rule_compose_assoc_sound(
        e1 in arb_state_expr(&universe(), 1),
        e2 in arb_state_expr(&universe(), 1),
        e3 in arb_state_expr(&universe(), 1),
        db in arb_db(&universe(), 5),
    ) {
        let eta = e1.compose(e2).compose(e3);
        let (rewritten, _) = rule_compose_assoc(&eta).unwrap();
        prop_assert_eq!(
            eval_state(&rewritten, &db).unwrap(),
            eval_state(&eta, &db).unwrap()
        );
    }

    /// compute-composition: ε₁ # ε₂ as a single suspended substitution.
    #[test]
    fn rule_compute_composition_sound(
        e1 in arb_subst(&universe(), 1),
        e2 in arb_subst(&universe(), 1),
        db in arb_db(&universe(), 5),
    ) {
        let eta = StateExpr::subst(e1).compose(StateExpr::subst(e2));
        let (rewritten, _) = rule_compute_composition(&eta).unwrap();
        prop_assert!(rewritten.is_explicit());
        prop_assert_eq!(
            eval_state(&rewritten, &db).unwrap(),
            eval_state(&eta, &db).unwrap()
        );
    }

    /// substitution-simplification: dropping unused/identity bindings and
    /// empty substitutions preserves semantics; iterate to fixpoint.
    #[test]
    fn rule_simplify_subst_sound(
        body in arb_query(&universe(), 2, 2),
        eps in arb_subst(&universe(), 1),
        db in arb_db(&universe(), 5),
    ) {
        let mut q = body.when(StateExpr::subst(eps));
        let expected = eval_query(&q, &db).unwrap();
        while let Some((rewritten, _)) = rule_simplify_subst(&q) {
            q = rewritten;
            prop_assert_eq!(eval_query(&q, &db).unwrap(), expected.clone());
        }
    }

    /// commute-hypotheticals: when the disjointness conditions hold,
    /// swapping is sound.
    #[test]
    fn rule_commute_hypotheticals_sound(
        body in arb_query(&universe(), 2, 1),
        e1 in arb_state_expr(&universe(), 1),
        e2 in arb_state_expr(&universe(), 1),
        db in arb_db(&universe(), 5),
    ) {
        let q = body.when(e1).when(e2);
        if let Some((rewritten, _)) = rule_commute_hypotheticals(&q) {
            prop_assert_eq!(
                eval_query(&rewritten, &db).unwrap(),
                eval_query(&q, &db).unwrap()
            );
        }
    }
}

/// Deterministic commute counterexample: when the conditions do NOT hold,
/// the swap really can change the result — evidence the side conditions
/// are not vacuous.
#[test]
fn commute_conditions_are_necessary() {
    use hypoquery_algebra::Update;
    use hypoquery_storage::{tuple, DatabaseState};

    let u = universe();
    let mut db = DatabaseState::new(u.catalog.clone());
    db.insert_row("S", tuple![1, 1]).unwrap();

    // η1 = ins(R, S), η2 = del(S, S): η2's dom meets η1's free names.
    let e1 = StateExpr::update(Update::insert("R", Query::base("S")));
    let e2 = StateExpr::update(Update::delete("S", Query::base("S")));
    let q12 = Query::base("R").when(e1.clone()).when(e2.clone());
    let q21 = Query::base("R").when(e2.clone()).when(e1.clone());
    let v12 = eval_query(&q12, &db).unwrap();
    let v21 = eval_query(&q21, &db).unwrap();
    assert_ne!(v12, v21);
    // And the rule correctly refuses to fire.
    assert!(rule_commute_hypotheticals(&q12).is_none());
}

/// Compute-composition worked end-to-end on the paper's Example 2.2(a):
/// the composed substitution simplifies (after reduction) to
/// {σ_{A≥60}-ish bindings}; here we verify semantic equality of the
/// composed form against nested whens on data.
#[test]
fn example_2_2a_composition_semantics() {
    use hypoquery_algebra::{CmpOp, Predicate, Update};
    use hypoquery_storage::{tuple, DatabaseState};

    let u = universe();
    let mut db = DatabaseState::new(u.catalog.clone());
    for a in [10i64, 35, 45, 61, 75] {
        db.insert_row("S", tuple![a, a]).unwrap();
    }
    db.insert_row("R", tuple![99, 99]).unwrap();

    let ins = StateExpr::update(Update::insert(
        "R",
        Query::base("S").select(Predicate::col_cmp(0, CmpOp::Gt, 30)),
    ));
    let del = StateExpr::update(Update::delete(
        "S",
        Query::base("S").select(Predicate::col_cmp(0, CmpOp::Lt, 60)),
    ));
    // (Q̂ when {ins}) when {del}  ≡  Q̂ when ({del} # {ins})
    // (outer-when-first composition order, per replace-nested-when).
    let q_nested = Query::base("R")
        .union(Query::base("S"))
        .when(ins.clone())
        .when(del.clone());
    let q_composed = Query::base("R")
        .union(Query::base("S"))
        .when(del.compose(ins));
    assert_eq!(
        eval_query(&q_nested, &db).unwrap(),
        eval_query(&q_composed, &db).unwrap()
    );
}
