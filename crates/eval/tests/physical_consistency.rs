//! Differential property tests for the pipelined physical operator
//! layer: for random databases, queries, and hypothetical updates, the
//! lowered [`PhysPlan`] must produce exactly what the legacy tree-walking
//! evaluators produce, under every strategy's prepared form (lazy-reduced,
//! ENF for HQL-1/HQL-2, modified ENF for HQL-3), with and without
//! declared secondary indexes, and on duplicate-producing ("bag")
//! workloads where the streaming segments carry duplicates internally.

use proptest::prelude::*;

use hypoquery_algebra::{Query, StateExpr};
use hypoquery_core::{fully_lazy, to_enf_query, to_mod_enf, RewriteTrace};
use hypoquery_eval::{
    algorithm_hql1, algorithm_hql2, algorithm_hql3, eval_bag_query, eval_pure, eval_query,
    BagState, PhysPlan,
};
use hypoquery_opt::{lower_plan, lower_query, plan, Statistics};
use hypoquery_storage::{DatabaseState, RelName, Relation};
use hypoquery_testkit::{arb_db, arb_predicate, arb_query, arb_tuple, arb_update, Universe};

fn universe() -> Universe {
    Universe::standard()
}

/// `db` with an index declared on every column of every relation — the
/// adversarial extreme: every probe/index-join gate that *can* fire does.
fn declare_all(db: &DatabaseState) -> DatabaseState {
    let mut out = db.clone();
    let decls: Vec<(RelName, usize)> = out
        .catalog()
        .iter()
        .flat_map(|(name, schema)| (0..schema.arity).map(move |c| (name.clone(), c)))
        .collect();
    for (name, col) in decls {
        out.declare_index(name, col).unwrap();
    }
    out
}

/// Lower and execute through the physical pipeline — the path
/// `engine::Database::execute` takes for every explicit strategy.
fn pipelined(q: &Query, db: &DatabaseState) -> Result<Relation, TestCaseError> {
    let phys: PhysPlan = lower_query(q, db.catalog(), &Statistics::of(db))
        .map_err(|e| TestCaseError::fail(format!("lowering failed: {e}")))?;
    phys.execute(db)
        .map_err(|e| TestCaseError::fail(format!("execution failed: {e}")))
}

/// Positive relational algebra only — select / project / union /
/// product / join over base relations and literals. On these shapes the
/// support of bag evaluation equals set evaluation, so the legacy bag
/// interpreter is a second independent oracle for the physical layer's
/// handling of duplicate-carrying streams (projections and unions emit
/// duplicates between pipeline breakers).
fn arb_positive_query(universe: &Universe, arity: usize, depth: u32) -> BoxedStrategy<Query> {
    let names = universe.names_of_arity(arity);
    let mut leaves: Vec<BoxedStrategy<Query>> =
        vec![arb_tuple(arity).prop_map(Query::singleton).boxed()];
    if !names.is_empty() {
        leaves.push(prop::sample::select(names).prop_map(Query::Base).boxed());
    }
    let leaf = prop::strategy::Union::new(leaves).boxed();
    if depth == 0 {
        return leaf;
    }
    let sub = arb_positive_query(universe, arity, depth - 1);
    let mut options: Vec<BoxedStrategy<Query>> = vec![
        leaf,
        (sub.clone(), arb_predicate(arity, 1))
            .prop_map(|(q, p)| q.select(p))
            .boxed(),
        (sub.clone(), sub).prop_map(|(a, b)| a.union(b)).boxed(),
    ];
    // Duplicate-heavy projections from wider inputs.
    for src_arity in universe.arities() {
        if src_arity >= arity && src_arity > 0 {
            let inner = arb_positive_query(universe, src_arity, depth - 1);
            let cols = prop::collection::vec(0..src_arity, arity);
            options.push((inner, cols).prop_map(|(q, cols)| q.project(cols)).boxed());
        }
    }
    for la in 1..arity {
        let ra = arity - la;
        let l = arb_positive_query(universe, la, depth - 1);
        let r = arb_positive_query(universe, ra, depth - 1);
        options.push(
            (l.clone(), r.clone())
                .prop_map(|(a, b)| a.product(b))
                .boxed(),
        );
        options.push(
            (l, r, arb_predicate(arity, 1))
                .prop_map(|(a, b, p)| a.join(b, p))
                .boxed(),
        );
    }
    prop::strategy::Union::new(options).boxed()
}

/// Pipelined == every legacy evaluator, on the strategy's own prepared
/// query form, over one database state.
fn check_all_strategies(q: &Query, db: &DatabaseState) -> Result<(), TestCaseError> {
    let expected = eval_query(q, db)
        .map_err(|e| TestCaseError::fail(format!("direct evaluation failed: {e}")))?;

    // Lazy: reduce to pure RA, then the pipeline must match `eval_pure`.
    let reduced = fully_lazy(q, &mut RewriteTrace::new());
    let lazy = pipelined(&reduced, db)?;
    prop_assert_eq!(&lazy, &eval_pure(&reduced, db).unwrap());
    prop_assert_eq!(&lazy, &expected);

    // HQL-1 / HQL-2 share one physical plan over the ENF form.
    let enf = to_enf_query(q, &mut RewriteTrace::new());
    let eager = pipelined(&enf, db)?;
    prop_assert_eq!(&eager, &algorithm_hql1(&enf, db).unwrap());
    prop_assert_eq!(&eager, &algorithm_hql2(&enf, db).unwrap());
    prop_assert_eq!(&eager, &expected);

    // HQL-3 over modified ENF (not every state expression qualifies).
    if let Ok(modq) = to_mod_enf(q) {
        let delta = pipelined(&modq, db)?;
        prop_assert_eq!(&delta, &algorithm_hql3(&modq, db).unwrap());
        prop_assert_eq!(&delta, &expected);
    }

    // Auto: whatever the planner picks, lowered as a whole plan.
    let stats = Statistics::of(db);
    let p = plan(q, db.catalog(), &stats);
    let phys = lower_plan(&p, db.catalog(), &stats)
        .map_err(|e| TestCaseError::fail(format!("plan lowering failed: {e}")))?;
    let auto = phys
        .execute(db)
        .map_err(|e| TestCaseError::fail(format!("plan execution failed: {e}")))?;
    prop_assert_eq!(&auto, &expected);

    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hypothetical queries (`body when {update}`): the pipeline matches
    /// every legacy strategy, with and without declared indexes.
    #[test]
    fn pipelined_matches_legacy_hypothetical(
        body in arb_query(&universe(), 2, 2),
        u in arb_update(&universe(), 2),
        db in arb_db(&universe(), 6),
    ) {
        let q = body.when(StateExpr::update(u));
        check_all_strategies(&q, &db)?;
        check_all_strategies(&q, &declare_all(&db))?;
    }

    /// Arbitrary queries (hypothetical contexts may appear at any depth,
    /// including under set operations and joins).
    #[test]
    fn pipelined_matches_legacy_nested(
        q in arb_query(&universe(), 2, 3),
        db in arb_db(&universe(), 6),
    ) {
        check_all_strategies(&q, &db)?;
        check_all_strategies(&q, &declare_all(&db))?;
    }

    /// Duplicate-heavy positive-RA workloads: the physical layer streams
    /// segments that carry duplicates between pipeline breakers; its
    /// answer must match both the set-semantics oracle and the support
    /// of the independent bag-semantics interpreter.
    #[test]
    fn pipelined_matches_bag_support_on_positive_queries(
        q in arb_positive_query(&universe(), 2, 3),
        db in arb_db(&universe(), 6),
    ) {
        let expected = eval_query(&q, &db).unwrap();
        let got = pipelined(&q, &db)?;
        prop_assert_eq!(&got, &expected);
        prop_assert_eq!(&pipelined(&q, &declare_all(&db))?, &expected);
        let bag = eval_bag_query(&q, &BagState::from_set(&db)).unwrap();
        prop_assert_eq!(bag.to_set(), expected);
    }
}
