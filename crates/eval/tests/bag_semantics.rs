//! §6 extension, property-tested: the substitution calculus is purely
//! syntactic, so Theorem 4.1 (reduction correctness) holds under **bag
//! semantics** too — `red(Q)` evaluated as a bag query equals the direct
//! bag evaluation of `Q`, and reduced state expressions applied as
//! parallel bag substitutions equal the direct bag state semantics.

use proptest::prelude::*;

use hypoquery_algebra::{Query, StateExpr, Update};
use hypoquery_core::{red_query, red_state};
use hypoquery_eval::{apply_bag_subst, eval_bag_query, eval_bag_state, BagState};
use hypoquery_testkit::{arb_bag_relation, arb_query, arb_state_expr, Universe};

fn universe() -> Universe {
    Universe::standard()
}

/// Build a random bag state over the standard universe.
fn arb_bag_state() -> impl Strategy<Value = BagState> {
    let u = universe();
    let rels: Vec<_> = u
        .names
        .iter()
        .map(|(name, arity)| {
            (
                proptest::strategy::Just(name.clone()),
                arb_bag_relation(*arity, 4, 3),
            )
        })
        .collect();
    let catalog = u.catalog.clone();
    rels.prop_map(move |bindings| {
        let mut db = BagState::new(catalog.clone());
        for (name, bag) in bindings {
            db.set(name, bag).expect("declared names");
        }
        db
    })
}

/// Conditional updates are excluded: their 0-ary-guard slice encoding is
/// set-semantics-only (see `hypoquery_eval::bag` docs — the paper's §6
/// limit, found by these very tests before the exclusion).
fn query_has_cond(q: &Query) -> bool {
    match q {
        Query::Base(_) | Query::Singleton(_) | Query::Empty { .. } => false,
        Query::Select(inner, _) | Query::Project(inner, _) => query_has_cond(inner),
        Query::Union(a, b)
        | Query::Intersect(a, b)
        | Query::Product(a, b)
        | Query::Join(a, b, _)
        | Query::Diff(a, b) => query_has_cond(a) || query_has_cond(b),
        Query::When(body, eta) => query_has_cond(body) || state_has_cond(eta),
        Query::Aggregate { input, .. } => query_has_cond(input),
    }
}

fn state_has_cond(eta: &StateExpr) -> bool {
    match eta {
        StateExpr::Update(u) => update_has_cond(u),
        StateExpr::Subst(eps) => eps.iter().any(|(_, q)| query_has_cond(q)),
        StateExpr::Compose(a, b) => state_has_cond(a) || state_has_cond(b),
    }
}

fn update_has_cond(u: &Update) -> bool {
    match u {
        Update::Cond { .. } => true,
        Update::Insert(_, q) | Update::Delete(_, q) => query_has_cond(q),
        Update::Seq(a, b) => update_has_cond(a) || update_has_cond(b),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Theorem 4.1 under bag semantics: [[Q]] = [[red(Q)]].
    #[test]
    fn reduction_correct_in_bag_semantics(
        q in arb_query(&universe(), 2, 3),
        db in arb_bag_state(),
    ) {
        prop_assume!(!query_has_cond(&q));
        let direct = eval_bag_query(&q, &db).unwrap();
        let reduced = red_query(&q).unwrap();
        prop_assert!(reduced.is_pure());
        let lazy = eval_bag_query(&reduced, &db).unwrap();
        prop_assert_eq!(direct, lazy, "query {}", q);
    }

    /// ...and for state expressions: [[η]](DB) = apply(DB, red(η)).
    #[test]
    fn state_reduction_correct_in_bag_semantics(
        eta in arb_state_expr(&universe(), 2),
        db in arb_bag_state(),
    ) {
        prop_assume!(!state_has_cond(&eta));
        let direct = eval_bag_state(&eta, &db).unwrap();
        let rho = red_state(&eta).unwrap();
        let lazy = apply_bag_subst(&db, &rho).unwrap();
        prop_assert_eq!(direct, lazy, "state {}", eta);
    }
}

/// The bag counterexample for conditional updates, preserved as a
/// deterministic regression test: duplicate guards inflate multiplicities
/// through the 0-ary-guard slice, so reduction ≠ direct for Cond in bags.
#[test]
fn cond_slice_is_set_semantics_only() {
    use hypoquery_storage::tuple;
    let u = universe();
    let mut db = BagState::new(u.catalog.clone());
    db.insert_row("R", tuple![0, 0], 2).unwrap();
    db.insert_row("U1", tuple![0], 1).unwrap();
    let guard = Query::singleton(tuple![0]).union(Query::base("U1")); // mult 2
    let upd = Update::cond(
        guard,
        Update::delete("R", Query::singleton(tuple![0, 0])),
        Update::delete("R", Query::singleton(tuple![0, 0])),
    );
    let eta = StateExpr::update(upd);
    let direct = eval_bag_state(&eta, &db).unwrap();
    let rho = red_state(&eta).unwrap();
    let lazy = apply_bag_subst(&db, &rho).unwrap();
    assert_ne!(
        direct, lazy,
        "if this starts passing, the Cond slice became bag-correct"
    );
    // ...whereas under set semantics the same pair agrees (Lemma 3.9).
    let mut set_db = hypoquery_storage::DatabaseState::new(u.catalog.clone());
    set_db.insert_row("R", tuple![0, 0]).unwrap();
    set_db.insert_row("U1", tuple![0]).unwrap();
    let d = hypoquery_eval::eval_state(&eta, &set_db).unwrap();
    let l = hypoquery_eval::apply_subst(&set_db, &rho).unwrap();
    assert_eq!(d, l);
}
