//! Bag-semantics evaluation — the §6 extension, executable.
//!
//! §6 claims the framework "extends to query languages that include bags";
//! the reason is that the substitution calculus (`sub`, `slice`, `red`,
//! the EQUIV_when conversions) is purely *syntactic*: Lemmas 3.5/3.9 and
//! Theorem 4.1 only need the semantics to interpret each operator
//! pointwise over relation values, which bag semantics does. This module
//! provides that interpretation; `tests/bag_semantics.rs` property-tests
//! Theorem 4.1 under it.
//!
//! Note the asymmetry with the set path: `red` transfers, but the
//! set-semantics RA *optimizer* does not (`X ∪ X ≡ X` fails in bags) and
//! is never used here.
//!
//! One genuine limit — found by the property tests and matching the
//! paper's §6 caveat that "for some extensions to the update language,
//! Q when U is expressible in RA, but not as a substitution instance" —
//! is the **conditional update**: its slice encodes the guard as the
//! 0-ary projection `π∅(G)`, which under bag semantics carries
//! multiplicity `|G|` rather than 1, so products against it inflate
//! multiplicities. Reduction of conditionals is therefore sound for sets
//! only; the bag property tests quantify over Cond-free updates, and
//! direct bag evaluation of conditionals (this module) remains correct.

use std::collections::{BTreeMap, HashMap};

use hypoquery_storage::{BagRelation, Catalog, RelName, Tuple, Value};

use hypoquery_algebra::{AggExpr, ExplicitSubst, Predicate, Query, StateExpr, Update};

use crate::error::EvalError;
use crate::join::split_equi_pairs;

/// A database state under bag semantics.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BagState {
    catalog: Catalog,
    rels: BTreeMap<RelName, BagRelation>,
}

impl BagState {
    /// The all-empty state over a catalog.
    pub fn new(catalog: Catalog) -> Self {
        BagState {
            catalog,
            rels: BTreeMap::new(),
        }
    }

    /// Build from a set-semantics state (multiplicity 1 everywhere).
    pub fn from_set(db: &hypoquery_storage::DatabaseState) -> Self {
        let mut out = BagState::new(db.catalog().clone());
        for (name, rel) in db.iter() {
            out.rels.insert(name.clone(), BagRelation::from_set(rel));
        }
        out
    }

    /// The schema.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Read `DB(R)`.
    pub fn get(&self, name: &RelName) -> Result<BagRelation, EvalError> {
        let arity = self.catalog.arity(name).map_err(EvalError::Storage)?;
        Ok(self
            .rels
            .get(name)
            .cloned()
            .unwrap_or_else(|| BagRelation::empty(arity)))
    }

    /// Functional binding update.
    pub fn set(&mut self, name: impl Into<RelName>, value: BagRelation) -> Result<(), EvalError> {
        let name = name.into();
        let arity = self.catalog.arity(&name).map_err(EvalError::Storage)?;
        if value.arity() != arity {
            return Err(EvalError::Storage(
                hypoquery_storage::StorageError::ArityMismatch {
                    context: "bag state binding",
                    expected: arity,
                    found: value.arity(),
                },
            ));
        }
        if value.is_empty() {
            // Canonical form, as for set-semantics states: absent and
            // stored-empty are the same function.
            self.rels.remove(&name);
        } else {
            self.rels.insert(name, value);
        }
        Ok(())
    }

    /// Load `count` copies of a row.
    pub fn insert_row(
        &mut self,
        name: impl Into<RelName>,
        row: Tuple,
        count: u64,
    ) -> Result<(), EvalError> {
        let name = name.into();
        let arity = self.catalog.arity(&name).map_err(EvalError::Storage)?;
        let bag = self
            .rels
            .entry(name)
            .or_insert_with(|| BagRelation::empty(arity));
        bag.insert(row, count).map_err(EvalError::Storage)
    }
}

/// `[[Q]]` under bag semantics.
pub fn eval_bag_query(q: &Query, db: &BagState) -> Result<BagRelation, EvalError> {
    match q {
        Query::Base(name) => db.get(name),
        Query::Singleton(t) => Ok(BagRelation::singleton(t.clone())),
        Query::Empty { arity } => Ok(BagRelation::empty(*arity)),
        Query::Select(inner, p) => Ok(eval_bag_query(inner, db)?.select(|t| p.eval(t))),
        Query::Project(inner, cols) => Ok(eval_bag_query(inner, db)?
            .project(cols)
            .map_err(EvalError::Storage)?),
        Query::Union(a, b) => Ok(eval_bag_query(a, db)?
            .union(&eval_bag_query(b, db)?)
            .map_err(EvalError::Storage)?),
        Query::Intersect(a, b) => Ok(eval_bag_query(a, db)?
            .intersect(&eval_bag_query(b, db)?)
            .map_err(EvalError::Storage)?),
        Query::Diff(a, b) => Ok(eval_bag_query(a, db)?
            .difference(&eval_bag_query(b, db)?)
            .map_err(EvalError::Storage)?),
        Query::Product(a, b) => Ok(eval_bag_query(a, db)?.product(&eval_bag_query(b, db)?)),
        Query::Join(a, b, p) => {
            let (va, vb) = (eval_bag_query(a, db)?, eval_bag_query(b, db)?);
            bag_join(&va, &vb, p).map_err(EvalError::Storage)
        }
        Query::When(inner, eta) => {
            let hyp = eval_bag_state(eta, db)?;
            eval_bag_query(inner, &hyp)
        }
        Query::Aggregate {
            input,
            group_by,
            aggs,
        } => eval_bag_aggregate(&eval_bag_query(input, db)?, group_by, aggs),
    }
}

/// `[[U]]` under bag semantics: `ins` adds multiplicities, `del` is monus.
pub fn eval_bag_update(u: &Update, db: &BagState) -> Result<BagState, EvalError> {
    match u {
        Update::Insert(name, q) => {
            let v = eval_bag_query(q, db)?;
            let cur = db.get(name)?;
            let mut out = db.clone();
            out.set(name.clone(), cur.union(&v).map_err(EvalError::Storage)?)?;
            Ok(out)
        }
        Update::Delete(name, q) => {
            let v = eval_bag_query(q, db)?;
            let cur = db.get(name)?;
            let mut out = db.clone();
            out.set(
                name.clone(),
                cur.difference(&v).map_err(EvalError::Storage)?,
            )?;
            Ok(out)
        }
        Update::Seq(a, b) => eval_bag_update(b, &eval_bag_update(a, db)?),
        Update::Cond {
            guard,
            then_u,
            else_u,
        } => {
            if eval_bag_query(guard, db)?.is_empty() {
                eval_bag_update(else_u, db)
            } else {
                eval_bag_update(then_u, db)
            }
        }
    }
}

/// `[[η]]` under bag semantics.
pub fn eval_bag_state(eta: &StateExpr, db: &BagState) -> Result<BagState, EvalError> {
    match eta {
        StateExpr::Update(u) => eval_bag_update(u, db),
        StateExpr::Subst(eps) => apply_bag_subst(db, eps),
        StateExpr::Compose(a, b) => eval_bag_state(b, &eval_bag_state(a, db)?),
    }
}

/// `apply(DB, ρ)` under bag semantics (parallel binding evaluation).
pub fn apply_bag_subst(db: &BagState, eps: &ExplicitSubst) -> Result<BagState, EvalError> {
    let mut values = Vec::with_capacity(eps.len());
    for (name, q) in eps.iter() {
        values.push((name.clone(), eval_bag_query(q, db)?));
    }
    let mut out = db.clone();
    for (name, v) in values {
        out.set(name, v)?;
    }
    Ok(out)
}

/// Bag equi-join: `σ_p(Q₁ × Q₂)` semantics, executed as a hash join on the
/// conjunctive equality core of `p` (as [`crate::join`] does for sets).
/// Output multiplicity is the product of the operand multiplicities; the
/// residual predicate filters candidate pairs. When no equality core
/// exists the evaluation falls back to the literal product-then-select.
fn bag_join(
    left: &BagRelation,
    right: &BagRelation,
    p: &Predicate,
) -> Result<BagRelation, hypoquery_storage::StorageError> {
    let (pairs, residual) = split_equi_pairs(p, left.arity());
    if pairs.is_empty() {
        return Ok(left.product(right).select(|t| p.eval(t)));
    }
    let mut table: HashMap<Vec<Value>, Vec<(&Tuple, u64)>> = HashMap::new();
    for (r, m) in right.iter() {
        let key: Vec<Value> = pairs.iter().map(|pr| r[pr.right].clone()).collect();
        table.entry(key).or_default().push((r, m));
    }
    let mut out = BagRelation::empty(left.arity() + right.arity());
    for (l, ml) in left.iter() {
        let key: Vec<Value> = pairs.iter().map(|pr| l[pr.left].clone()).collect();
        if let Some(matches) = table.get(&key) {
            for (r, mr) in matches {
                let joined = l.concat(r);
                if residual.iter().all(|q| q.eval(&joined)) {
                    out.insert(joined, ml * mr)?;
                }
            }
        }
    }
    Ok(out)
}

fn eval_bag_aggregate(
    input: &BagRelation,
    group_by: &[usize],
    aggs: &[AggExpr],
) -> Result<BagRelation, EvalError> {
    // Group respecting multiplicities: a tuple with multiplicity m counts
    // m times.
    let mut groups: BTreeMap<Tuple, Vec<(&Tuple, u64)>> = BTreeMap::new();
    for (t, m) in input.iter() {
        groups.entry(t.project(group_by)).or_default().push((t, m));
    }
    let mut out = BagRelation::empty(group_by.len() + aggs.len());
    for (key, members) in groups {
        let mut fields: Vec<Value> = key.fields().to_vec();
        for agg in aggs {
            fields.push(match agg {
                AggExpr::Count => Value::int(members.iter().map(|(_, m)| *m as i64).sum()),
                AggExpr::Sum(col) => {
                    let mut total = 0i64;
                    for (t, m) in &members {
                        match t[*col].as_int() {
                            Some(v) => total += v * (*m as i64),
                            None => {
                                return Err(EvalError::AggregateType {
                                    agg: "sum",
                                    value: t[*col].to_string(),
                                })
                            }
                        }
                    }
                    Value::int(total)
                }
                AggExpr::Min(col) => members
                    .iter()
                    .map(|(t, _)| t[*col].clone())
                    .min()
                    .expect("groups are non-empty"),
                AggExpr::Max(col) => members
                    .iter()
                    .map(|(t, _)| t[*col].clone())
                    .max()
                    .expect("groups are non-empty"),
            });
        }
        out.insert(Tuple::new(fields), 1)
            .map_err(EvalError::Storage)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypoquery_algebra::{CmpOp, Predicate};
    use hypoquery_storage::tuple;

    fn db() -> BagState {
        let mut cat = Catalog::new();
        cat.declare_arity("R", 1).unwrap();
        cat.declare_arity("S", 1).unwrap();
        let mut db = BagState::new(cat);
        db.insert_row("R", tuple![1], 2).unwrap();
        db.insert_row("R", tuple![2], 1).unwrap();
        db.insert_row("S", tuple![1], 1).unwrap();
        db
    }

    #[test]
    fn union_when_keeps_duplicates() {
        let db = db();
        // R when {ins(R, S)}: tuple (1) now has multiplicity 3.
        let q = Query::base("R").when(StateExpr::update(Update::insert("R", Query::base("S"))));
        let out = eval_bag_query(&q, &db).unwrap();
        assert_eq!(out.multiplicity(&tuple![1]), 3);
        assert_eq!(out.len(), 4);
        // Underlying state unchanged.
        assert_eq!(db.get(&"R".into()).unwrap().len(), 3);
    }

    #[test]
    fn delete_is_monus() {
        let db = db();
        // del(R, S) removes ONE copy of (1).
        let q = Query::base("R").when(StateExpr::update(Update::delete("R", Query::base("S"))));
        let out = eval_bag_query(&q, &db).unwrap();
        assert_eq!(out.multiplicity(&tuple![1]), 1);
        assert_eq!(out.multiplicity(&tuple![2]), 1);
    }

    #[test]
    fn theorem_4_1_holds_in_bags_on_example() {
        // red(Q when {U}) evaluated in bag semantics equals the direct
        // bag evaluation — the §6 extension claim, concretely.
        let db = db();
        let u = Update::insert("R", Query::base("S")).then(Update::delete("R", Query::base("S")));
        let q = Query::base("R")
            .union(Query::base("R"))
            .when(StateExpr::update(u));
        let direct = eval_bag_query(&q, &db).unwrap();
        let reduced = hypoquery_core::red_query(&q).unwrap();
        let lazy = eval_bag_query(&reduced, &db).unwrap();
        assert_eq!(direct, lazy);
        // And duplicates really are present (R∪R doubles multiplicities).
        assert_eq!(direct.multiplicity(&tuple![2]), 2);
    }

    #[test]
    fn bag_aggregates_count_multiplicity() {
        let db = db();
        let q = Query::base("R").aggregate([], [AggExpr::Count, AggExpr::Sum(0)]);
        let out = eval_bag_query(&q, &db).unwrap();
        // count = 3 (2 copies of 1 + 1 copy of 2); sum = 1+1+2 = 4.
        assert_eq!(out.multiplicity(&tuple![3, 4]), 1);
    }

    #[test]
    fn select_and_project_semantics() {
        let db = db();
        let q = Query::base("R").select(Predicate::col_cmp(0, CmpOp::Eq, 1));
        assert_eq!(eval_bag_query(&q, &db).unwrap().len(), 2);
        // Projection keeps duplicates.
        let mut cat = Catalog::new();
        cat.declare_arity("T", 2).unwrap();
        let mut db2 = BagState::new(cat);
        db2.insert_row("T", tuple![1, 10], 1).unwrap();
        db2.insert_row("T", tuple![1, 20], 1).unwrap();
        let q = Query::base("T").project([0]);
        assert_eq!(
            eval_bag_query(&q, &db2).unwrap().multiplicity(&tuple![1]),
            2
        );
    }

    #[test]
    fn bag_join_equals_product_then_select() {
        let mut cat = Catalog::new();
        cat.declare_arity("T", 2).unwrap();
        cat.declare_arity("U", 2).unwrap();
        let mut db = BagState::new(cat);
        db.insert_row("T", tuple![1, 10], 2).unwrap();
        db.insert_row("T", tuple![2, 20], 1).unwrap();
        db.insert_row("T", tuple![3, 99], 1).unwrap();
        db.insert_row("U", tuple![1, 100], 3).unwrap();
        db.insert_row("U", tuple![2, 200], 2).unwrap();
        let p = Predicate::col_col(0, CmpOp::Eq, 2).and(Predicate::col_cmp(1, CmpOp::Lt, 50));
        let joined =
            eval_bag_query(&Query::base("T").join(Query::base("U"), p.clone()), &db).unwrap();
        let product =
            eval_bag_query(&Query::base("T").product(Query::base("U")).select(p), &db).unwrap();
        assert_eq!(joined, product);
        // Multiplicities multiply: 2 copies of (1,10) × 3 copies of (1,100).
        assert_eq!(joined.multiplicity(&tuple![1, 10, 1, 100]), 6);
        assert_eq!(joined.multiplicity(&tuple![2, 20, 2, 200]), 2);
        assert_eq!(joined.len(), 8);
    }

    #[test]
    fn from_set_round_trip() {
        let mut cat = Catalog::new();
        cat.declare_arity("R", 1).unwrap();
        let mut set_db = hypoquery_storage::DatabaseState::new(cat);
        set_db.insert_row("R", tuple![5]).unwrap();
        let bag_db = BagState::from_set(&set_db);
        assert_eq!(bag_db.get(&"R".into()).unwrap().multiplicity(&tuple![5]), 1);
        assert_eq!(bag_db.catalog().len(), 1);
    }
}
