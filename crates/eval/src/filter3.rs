//! `filter3` (Figure 4) and Algorithm HQL-3 (§5.5): delta-based evaluation
//! of modified-ENF queries.
//!
//! Hypothetical updates of the form `{A₁; …; Aₙ}` (atomic inserts/deletes)
//! are turned directly into delta values — no full hypothetical relation is
//! ever materialized:
//!
//! ```text
//! filter3({del(R, Q)}, Δ) = {(filter3(Q, Δ), ∅)/R}
//! filter3({ins(R, Q)}, Δ) = {(∅, filter3(Q, Δ))/R}
//! filter3({U; A}, Δ)      = F ! filter3({A}, Δ ! F)    where F = filter3({U}, Δ)
//! filter3(Q when {U}, Δ)  = filter3(Q, Δ ! filter3({U}, Δ))
//! ```
//!
//! Pure-RA regions are evaluated in one clustered call to
//! [`crate::delta::eval_filter_d`] — operationally the same as running
//! `eval-filter-d` on the collapsed tree's region nodes (§5.4), including
//! the `join-when` operator on joins of base relations.

use hypoquery_storage::{DatabaseState, Relation};

use hypoquery_algebra::{Query, StateExpr, Update};

use crate::access;
use crate::delta::{eval_filter_d, DeltaValue, RelDelta};
use crate::direct::eval_aggregate;
use crate::error::EvalError;
use crate::join;

/// Declared indexed columns of `q` when it is a base scan the delta leaves
/// untouched — only then does its value share the stored base storage the
/// index cache keys on.
fn undeltaed_decls(q: &Query, delta: &DeltaValue, db: &DatabaseState) -> Vec<usize> {
    match q {
        Query::Base(name) if delta.get(name).is_none() => db.indexed_columns(name),
        _ => Vec::new(),
    }
}

/// `filter3(Q, Δ)` in state `db` (Figure 4). `Q` must be in mod-ENF.
pub fn filter3(q: &Query, delta: &DeltaValue, db: &DatabaseState) -> Result<Relation, EvalError> {
    // Clustered fast path: a pure region is a single eval-filter-d call.
    if q.is_pure() {
        return eval_filter_d(q, delta, db);
    }
    match q {
        Query::Select(inner, p) => Ok(filter3(inner, delta, db)?.select(|t| p.eval(t))),
        Query::Project(inner, cols) => Ok(filter3(inner, delta, db)?.project(cols)?),
        Query::Union(a, b) => Ok(filter3(a, delta, db)?.union(&filter3(b, delta, db)?)?),
        Query::Intersect(a, b) => Ok(filter3(a, delta, db)?.intersect(&filter3(b, delta, db)?)?),
        Query::Diff(a, b) => Ok(filter3(a, delta, db)?.difference(&filter3(b, delta, db)?)?),
        Query::Product(a, b) => Ok(filter3(a, delta, db)?.product(&filter3(b, delta, db)?)),
        Query::Join(a, b, p) => {
            let (va, vb) = (filter3(a, delta, db)?, filter3(b, delta, db)?);
            access::prepare_join_index(
                &va,
                &undeltaed_decls(a, delta, db),
                &vb,
                &undeltaed_decls(b, delta, db),
                p,
            );
            Ok(join::join(&va, &vb, p))
        }
        Query::When(inner, eta) => {
            let StateExpr::Update(u) = &**eta else {
                return Err(EvalError::UnsupportedShape(format!(
                    "filter3 requires mod-ENF (atomic hypothetical updates), got: {eta}"
                )));
            };
            let f = filter3_update(u, delta, db)?;
            filter3(inner, &delta.smash(&f)?, db)
        }
        Query::Aggregate {
            input,
            group_by,
            aggs,
        } => eval_aggregate(&filter3(input, delta, db)?, group_by, aggs),
        // Pure leaves are handled by the fast path above.
        _ => eval_filter_d(q, delta, db),
    }
}

/// `filter3({U}, Δ)`: build the delta value of an atomic update sequence
/// under the ambient delta (Figure 4).
pub fn filter3_update(
    u: &Update,
    delta: &DeltaValue,
    db: &DatabaseState,
) -> Result<DeltaValue, EvalError> {
    match u {
        Update::Delete(name, q) => {
            let v = filter3(q, delta, db)?;
            Ok(DeltaValue::new([(name.clone(), RelDelta::deletion(v))]))
        }
        Update::Insert(name, q) => {
            let v = filter3(q, delta, db)?;
            Ok(DeltaValue::new([(name.clone(), RelDelta::insertion(v))]))
        }
        Update::Seq(u1, a) => {
            let f = filter3_update(u1, delta, db)?;
            let fa = filter3_update(a, &delta.smash(&f)?, db)?;
            f.smash(&fa)
        }
        Update::Cond { .. } => Err(EvalError::UnsupportedShape(format!(
            "filter3 requires atomic updates, got conditional: {u}"
        ))),
    }
}

/// Algorithm HQL-3: evaluate a mod-ENF query by `filter3(Q, {})`.
pub fn algorithm_hql3(q: &Query, db: &DatabaseState) -> Result<Relation, EvalError> {
    filter3(q, &DeltaValue::empty(), db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::eval_query;
    use hypoquery_algebra::{CmpOp, ExplicitSubst, Predicate};
    use hypoquery_storage::{tuple, Catalog};

    fn db() -> DatabaseState {
        let mut cat = Catalog::new();
        cat.declare_arity("R", 2).unwrap();
        cat.declare_arity("S", 2).unwrap();
        let mut db = DatabaseState::new(cat);
        db.insert_rows("R", [tuple![1, 10], tuple![2, 20], tuple![35, 1]])
            .unwrap();
        db.insert_rows("S", [tuple![2, 200], tuple![35, 300], tuple![50, 500]])
            .unwrap();
        db
    }

    #[test]
    fn hql3_matches_direct_semantics() {
        let db = db();
        // (R ⋈ S) when {ins(R, σ_{#0>30}(S)); del(S, σ_{#1<250}(S))}
        let u = Update::insert(
            "R",
            Query::base("S").select(Predicate::col_cmp(0, CmpOp::Gt, 30)),
        )
        .then(Update::delete(
            "S",
            Query::base("S").select(Predicate::col_cmp(1, CmpOp::Lt, 250)),
        ));
        let q = Query::base("R")
            .join(Query::base("S"), Predicate::col_col(0, CmpOp::Eq, 2))
            .when(StateExpr::update(u));
        let expected = eval_query(&q, &db).unwrap();
        assert_eq!(algorithm_hql3(&q, &db).unwrap(), expected);
        assert!(!expected.is_empty());
    }

    #[test]
    fn sequence_deltas_see_prior_atoms() {
        let db = db();
        // ins(R, S) then del(R, R): the delete's R is the post-insert R,
        // so everything is gone.
        let u = Update::insert("R", Query::base("S")).then(Update::delete("R", Query::base("R")));
        let q = Query::base("R").when(StateExpr::update(u));
        assert!(algorithm_hql3(&q, &db).unwrap().is_empty());
    }

    #[test]
    fn nested_whens_smash_deltas() {
        let db = db();
        let q = Query::base("R")
            .when(StateExpr::update(Update::insert("R", Query::base("S"))))
            .when(StateExpr::update(Update::delete("S", Query::base("S"))));
        let expected = eval_query(&q, &db).unwrap();
        assert_eq!(algorithm_hql3(&q, &db).unwrap(), expected);
        assert_eq!(expected.len(), 3); // S was emptied before the insert.
    }

    #[test]
    fn when_inside_update_query() {
        let db = db();
        // ins(R, S when {del(S, σ(S))}) — hypothetical within the update.
        let inner = Query::base("S").when(StateExpr::update(Update::delete(
            "S",
            Query::base("S").select(Predicate::col_cmp(0, CmpOp::Lt, 40)),
        )));
        let q = Query::base("R").when(StateExpr::update(Update::insert("R", inner)));
        let expected = eval_query(&q, &db).unwrap();
        assert_eq!(algorithm_hql3(&q, &db).unwrap(), expected);
        assert_eq!(expected.len(), 4); // R + the single surviving S row.
    }

    #[test]
    fn rejects_non_mod_enf() {
        let db = db();
        let q = Query::base("R").when(StateExpr::subst(ExplicitSubst::single(
            "R",
            Query::base("S"),
        )));
        assert!(matches!(
            algorithm_hql3(&q, &db),
            Err(EvalError::UnsupportedShape(_))
        ));
        let cond = Update::cond(
            Query::base("S"),
            Update::insert("R", Query::base("S")),
            Update::delete("R", Query::base("S")),
        );
        let q = Query::base("R").when(StateExpr::update(cond));
        assert!(matches!(
            algorithm_hql3(&q, &db),
            Err(EvalError::UnsupportedShape(_))
        ));
    }

    #[test]
    fn pure_query_is_plain_evaluation() {
        let db = db();
        let q = Query::base("R").join(Query::base("S"), Predicate::col_col(0, CmpOp::Eq, 2));
        assert_eq!(
            algorithm_hql3(&q, &db).unwrap(),
            eval_query(&q, &db).unwrap()
        );
    }
}
