//! `filter1` (Figure 3) and Algorithm HQL-1 (§5.4).
//!
//! The straightforward eager evaluator: a depth-first traversal of an ENF
//! query's syntax tree that filters every base-relation access through an
//! xsub-value. At a `when` node the right side is processed first — the
//! explicit substitution is materialized (under the *current* filter) and
//! smashed onto it, mirroring the run-time `when` stack of the Heraclitus
//! implementation.
//!
//! ```text
//! filter1(R, E)         = E(R) if R ∈ dom(E), else DB(R)
//! filter1(ε, E)         = { filter1(Qᵢ, E)/Rᵢ }           (an xsub-value)
//! filter1(Q when ε, E)  = filter1(Q, E ! filter1(ε, E))
//! ```
//!
//! Proposition 5.1 (correctness: `filter1(Q, {}) = [[Q]](DB)`) is
//! property-tested in `tests/`.

use hypoquery_storage::{DatabaseState, Relation};

use hypoquery_algebra::{ExplicitSubst, Query, StateExpr};

use crate::access;
use crate::direct::eval_aggregate;
use crate::error::EvalError;
use crate::join;
use crate::xsub::XsubValue;

/// Declared indexed columns of `q` when it is a base scan the filter does
/// *not* rebind — only then does its value share the stored base storage
/// the index cache keys on.
fn unfiltered_decls(q: &Query, e: &XsubValue, db: &DatabaseState) -> Vec<usize> {
    match q {
        Query::Base(name) if e.get(name).is_none() => db.indexed_columns(name),
        _ => Vec::new(),
    }
}

/// `filter1(Q, E)` in state `db` (Figure 3). `Q` must be in ENF.
pub fn filter1(q: &Query, e: &XsubValue, db: &DatabaseState) -> Result<Relation, EvalError> {
    match q {
        Query::Base(name) => match e.get(name) {
            Some(rel) => Ok(rel.clone()),
            None => Ok(db.get(name)?),
        },
        Query::Singleton(t) => Ok(Relation::singleton(t.clone())),
        Query::Empty { arity } => Ok(Relation::empty(*arity)),
        Query::Select(inner, p) => Ok(filter1(inner, e, db)?.select(|t| p.eval(t))),
        Query::Project(inner, cols) => Ok(filter1(inner, e, db)?.project(cols)?),
        Query::Union(a, b) => Ok(filter1(a, e, db)?.union(&filter1(b, e, db)?)?),
        Query::Intersect(a, b) => Ok(filter1(a, e, db)?.intersect(&filter1(b, e, db)?)?),
        Query::Diff(a, b) => Ok(filter1(a, e, db)?.difference(&filter1(b, e, db)?)?),
        Query::Product(a, b) => Ok(filter1(a, e, db)?.product(&filter1(b, e, db)?)),
        Query::Join(a, b, p) => {
            let (va, vb) = (filter1(a, e, db)?, filter1(b, e, db)?);
            access::prepare_join_index(
                &va,
                &unfiltered_decls(a, e, db),
                &vb,
                &unfiltered_decls(b, e, db),
                p,
            );
            Ok(join::join(&va, &vb, p))
        }
        Query::When(inner, eta) => {
            let StateExpr::Subst(eps) = &**eta else {
                return Err(EvalError::UnsupportedShape(format!(
                    "filter1 requires ENF (explicit substitutions), got: {eta}"
                )));
            };
            // Right child first: materialize ε under the current filter,
            // then smash.
            let f = filter1_subst(eps, e, db)?;
            filter1(inner, &e.smash(&f), db)
        }
        Query::Aggregate {
            input,
            group_by,
            aggs,
        } => eval_aggregate(&filter1(input, e, db)?, group_by, aggs),
    }
}

/// `filter1(ε, E)`: materialize an explicit substitution under filter `E`
/// into an xsub-value.
pub fn filter1_subst(
    eps: &ExplicitSubst,
    e: &XsubValue,
    db: &DatabaseState,
) -> Result<XsubValue, EvalError> {
    let mut out = XsubValue::empty();
    for (name, q) in eps.iter() {
        out.bind(name.clone(), filter1(q, e, db)?);
    }
    Ok(out)
}

/// Algorithm HQL-1: evaluate an ENF query by `filter1(Q, {})`.
pub fn algorithm_hql1(q: &Query, db: &DatabaseState) -> Result<Relation, EvalError> {
    filter1(q, &XsubValue::empty(), db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::eval_query;
    use hypoquery_algebra::{CmpOp, Predicate, Update};
    use hypoquery_core::{to_enf_query, RewriteTrace};
    use hypoquery_storage::{tuple, Catalog};

    fn db() -> DatabaseState {
        let mut cat = Catalog::new();
        cat.declare_arity("R", 2).unwrap();
        cat.declare_arity("S", 2).unwrap();
        let mut db = DatabaseState::new(cat);
        db.insert_rows("R", [tuple![1, 10], tuple![2, 20]]).unwrap();
        db.insert_rows("S", [tuple![2, 200], tuple![35, 300]])
            .unwrap();
        db
    }

    fn enf(q: &Query) -> Query {
        to_enf_query(q, &mut RewriteTrace::new())
    }

    #[test]
    fn hql1_matches_direct_semantics_on_example() {
        let db = db();
        let q = Query::base("R")
            .union(Query::base("S"))
            .when(StateExpr::update(Update::insert(
                "R",
                Query::base("S").select(Predicate::col_cmp(0, CmpOp::Gt, 30)),
            )));
        let expected = eval_query(&q, &db).unwrap();
        let got = algorithm_hql1(&enf(&q), &db).unwrap();
        assert_eq!(got, expected);
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn nested_whens_smash_in_order() {
        let db = db();
        // Outer hypothetical deletes everything from S; inner inserts from
        // the (already filtered) S.
        let q = Query::base("R")
            .when(StateExpr::update(Update::insert("R", Query::base("S"))))
            .when(StateExpr::update(Update::delete("S", Query::base("S"))));
        let expected = eval_query(&q, &db).unwrap();
        let got = algorithm_hql1(&enf(&q), &db).unwrap();
        assert_eq!(got, expected);
        // With S emptied first, R gains nothing.
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn filter1_requires_enf() {
        let db = db();
        let q = Query::base("R").when(StateExpr::update(Update::insert("R", Query::base("S"))));
        assert!(matches!(
            algorithm_hql1(&q, &db),
            Err(EvalError::UnsupportedShape(_))
        ));
    }

    #[test]
    fn filter_overrides_base_lookup() {
        let db = db();
        let e = XsubValue::new([("R".into(), Relation::from_rows(2, [tuple![9, 9]]).unwrap())]);
        let out = filter1(&Query::base("R"), &e, &db).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&tuple![9, 9]));
        // Unbound names still come from the database.
        let out = filter1(&Query::base("S"), &e, &db).unwrap();
        assert_eq!(out, db.get(&"S".into()).unwrap());
    }
}
