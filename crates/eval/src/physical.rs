//! The pipelined physical operator layer.
//!
//! Every strategy on the paper's eager↔lazy spectrum — pure RA (lazy),
//! ENF filtering (HQL-1/HQL-2), and mod-ENF delta filtering (HQL-3) —
//! bottoms out in the same relational work: scans, selections,
//! projections, joins, set operations. The legacy evaluators
//! ([`crate::direct`], [`crate::filter1`], [`crate::filter2`],
//! [`crate::filter3`]) each implement that work as a recursive tree walk
//! that materializes a full [`Relation`] at *every* node. This module
//! replaces all of them on the default path with one executable IR,
//! [`PhysPlan`], whose operators stream tuples through a pipeline:
//! selections, projections, join probe sides, and delta-filtered scans
//! never materialize an intermediate result.
//!
//! # Execution model
//!
//! Operators execute in the Volcano spirit (one row at a time through an
//! operator tree), realized **push-based**: each operator drives its
//! children and hands produced tuples to a consumer callback. Push
//! composition sidesteps the self-referential-iterator problem that a
//! pull-based design hits with `Arc<BTreeSet>`-backed storage, while
//! keeping the same pipelining property — a tuple flows from its scan
//! through every streaming operator above it before the next tuple is
//! produced.
//!
//! Pipeline *breakers* materialize exactly what they must: a hash join
//! materializes only its build side; `Diff`/`Intersect` only their right
//! operand; `Aggregate` its input groups; `Dedup` the distinct set seen
//! so far. The plan sink materializes the final result, so set semantics
//! are restored at every breaker and at the output — streaming segments
//! may carry duplicates in flight (see [`PhysOp::Dedup`] for where the
//! lowering chooses to collapse them early).
//!
//! # Hypothetical operators
//!
//! The two `when` strategies become plan operators instead of separate
//! interpreters:
//!
//! * [`PhysOp::XsubRebind`] is `filter1`'s `when` rule: materialize an
//!   explicit substitution's bindings under the *current* environment,
//!   smash, and run the body with base scans rebound — HQL-1 and HQL-2
//!   lower to identical plans, which is the point: the distinction
//!   between them is traversal bookkeeping that dissolves in a physical
//!   IR.
//! * [`PhysOp::DeltaApply`] is `filter3`'s atomic-update rule: each
//!   atom's source query is evaluated under the accumulated delta, the
//!   resulting [`RelDelta`]s are smashed left-to-right, and the body's
//!   base scans stream `(base − ∇) ∪ Δ` via [`effective_iter`] without
//!   materializing the hypothetical state.
//!
//! # Instrumentation
//!
//! Every operator carries rows-in/rows-out counters (always on; two
//! `Cell` bumps per tuple) and an elapsed-time counter that is only
//! exercised under [`PhysPlan::execute_analyze`]. Elapsed time is
//! *exclusive* self-time: the clock runs only around an operator's own
//! work (predicate evaluation, hashing, set probes), never around the
//! downstream consumer, so the per-operator numbers in `EXPLAIN ANALYZE`
//! add up meaningfully even though execution is one fused pipeline.

use std::borrow::Cow;
use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

use hypoquery_storage::{lookup_or_build_index, DatabaseState, RelName, Relation, Tuple, Value};

use hypoquery_algebra::{AggExpr, Predicate};

use crate::delta::{effective_iter, DeltaValue, RelDelta};
use crate::direct::eval_aggregate;
use crate::error::EvalError;
use crate::join::EquiPair;
use crate::xsub::XsubValue;

/// Which operand of a binary operator plays a given role.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Side {
    /// The left operand.
    Left,
    /// The right operand.
    Right,
}

/// An atom of a [`PhysOp::DeltaApply`]: one `insert into`/`delete from`
/// whose source rows come from a sub-plan.
#[derive(Clone, Debug)]
pub struct DeltaAtom {
    /// The updated relation.
    pub name: RelName,
    /// `true` for an insertion, `false` for a deletion.
    pub insert: bool,
    /// Plan producing the inserted/deleted rows.
    pub input: PhysNode,
}

/// A physical operator. Children are embedded [`PhysNode`]s.
#[derive(Clone, Debug)]
pub enum PhysOp {
    /// Stream a base relation. Resolution order at runtime: an xsub
    /// binding in the environment (whole-relation replacement), else the
    /// stored base merged with any delta binding via the streaming
    /// three-way merge of [`effective_iter`].
    Scan {
        /// The relation scanned.
        name: RelName,
    },
    /// Probe a declared single-column index of an (unrebound) base
    /// relation with a point value, re-applying the full predicate to
    /// candidates. Only lowered when static shadow analysis proves no
    /// enclosing hypothetical operator can rebind `name`.
    IndexProbe {
        /// The indexed base relation.
        name: RelName,
        /// Indexed column probed.
        col: usize,
        /// Probe key.
        value: Value,
        /// Full selection predicate (re-checked on candidates).
        pred: Predicate,
    },
    /// Stream a constant relation (singletons, empties).
    Const {
        /// The constant value.
        rel: Relation,
    },
    /// Streaming selection `σ_pred`.
    Filter {
        /// Input plan.
        input: Box<PhysNode>,
        /// Selection predicate.
        pred: Predicate,
    },
    /// Streaming projection `π_cols` (may reorder/duplicate columns).
    Project {
        /// Input plan.
        input: Box<PhysNode>,
        /// Output column positions.
        cols: Vec<usize>,
    },
    /// Hash join (or, with no equi pairs, a nested-loop product). The
    /// `build` side is materialized into a hash table (resp. vector);
    /// the other side streams through as the probe. Output columns are
    /// always `left ++ right` regardless of build side.
    HashJoin {
        /// Left operand.
        left: Box<PhysNode>,
        /// Right operand.
        right: Box<PhysNode>,
        /// Cross-side equality columns (`right` rebased).
        pairs: Vec<EquiPair>,
        /// Residual conjuncts over the concatenated tuple.
        residual: Vec<Predicate>,
        /// Which side is materialized.
        build: Side,
    },
    /// Index nested-loop join: the build side is an unrebound base scan
    /// with declared indexes on its equi columns, so instead of hashing
    /// it the probe side streams against the shared cached
    /// [`hypoquery_storage::ColumnIndex`]. Output columns are always
    /// `left ++ right`.
    IndexJoin {
        /// The streaming (probe) operand.
        probe: Box<PhysNode>,
        /// Which side of the join the probe operand is.
        probe_side: Side,
        /// The indexed base relation standing in for the other side.
        rel: RelName,
        /// Indexed columns (build side, local coordinates).
        index_cols: Vec<usize>,
        /// Probe-side key columns, aligned with `index_cols`.
        probe_cols: Vec<usize>,
        /// Residual conjuncts over the concatenated tuple.
        residual: Vec<Predicate>,
    },
    /// Streaming union (both children pushed through; duplicates collapse
    /// at the next breaker or the sink).
    Union {
        /// Left operand.
        left: Box<PhysNode>,
        /// Right operand.
        right: Box<PhysNode>,
    },
    /// Set difference; the right side is materialized, the left streams.
    Diff {
        /// Left operand (streams).
        left: Box<PhysNode>,
        /// Right operand (materialized).
        right: Box<PhysNode>,
    },
    /// Set intersection; the right side is materialized, the left streams.
    Intersect {
        /// Left operand (streams).
        left: Box<PhysNode>,
        /// Right operand (materialized).
        right: Box<PhysNode>,
    },
    /// Explicit duplicate elimination. Not required for correctness (set
    /// semantics are restored at every pipeline breaker); the lowering
    /// inserts one where letting duplicates flow would multiply work,
    /// e.g. under a join operand whose stream may carry duplicates.
    Dedup {
        /// Input plan.
        input: Box<PhysNode>,
    },
    /// Grouped aggregation (§6 extension). A full pipeline breaker: the
    /// input is materialized into a set (restoring set semantics for
    /// `COUNT`) and grouped.
    Aggregate {
        /// Input plan.
        input: Box<PhysNode>,
        /// Grouping columns.
        group_by: Vec<usize>,
        /// Aggregates per group.
        aggs: Vec<AggExpr>,
    },
    /// `filter1`'s `when ε`: materialize each binding under the current
    /// environment, smash onto the xsub value, run the body.
    XsubRebind {
        /// Bindings `Qᵢ/Rᵢ`, each a sub-plan.
        bindings: Vec<(RelName, PhysNode)>,
        /// Body plan, whose scans see the rebindings.
        body: Box<PhysNode>,
    },
    /// `filter3`'s `when {U}` for an atomic-update sequence: fold the
    /// atoms into a delta value (each atom evaluated under the
    /// accumulated delta), run the body with scans delta-filtered.
    DeltaApply {
        /// The flattened atomic updates, in order.
        atoms: Vec<DeltaAtom>,
        /// Body plan, whose scans see the accumulated delta.
        body: Box<PhysNode>,
    },
}

/// A node of a physical plan: an operator plus its plan-wide id (index
/// into the metrics table) and output arity.
#[derive(Clone, Debug)]
pub struct PhysNode {
    /// Dense per-plan id, assigned by [`PhysPlan::new`].
    pub id: usize,
    /// Output arity.
    pub arity: usize,
    /// The operator.
    pub op: PhysOp,
}

impl PhysNode {
    /// A node with the given output arity; its `id` is assigned when the
    /// node is installed into a [`PhysPlan`].
    pub fn new(arity: usize, op: PhysOp) -> PhysNode {
        PhysNode { id: 0, arity, op }
    }

    fn children_mut(&mut self) -> Vec<&mut PhysNode> {
        match &mut self.op {
            PhysOp::Scan { .. } | PhysOp::IndexProbe { .. } | PhysOp::Const { .. } => Vec::new(),
            PhysOp::Filter { input, .. }
            | PhysOp::Project { input, .. }
            | PhysOp::Dedup { input }
            | PhysOp::Aggregate { input, .. } => vec![input],
            PhysOp::HashJoin { left, right, .. }
            | PhysOp::Union { left, right }
            | PhysOp::Diff { left, right }
            | PhysOp::Intersect { left, right } => vec![left, right],
            PhysOp::IndexJoin { probe, .. } => vec![probe],
            PhysOp::XsubRebind { bindings, body } => {
                let mut v: Vec<&mut PhysNode> = bindings.iter_mut().map(|(_, n)| n).collect();
                v.push(body);
                v
            }
            PhysOp::DeltaApply { atoms, body } => {
                let mut v: Vec<&mut PhysNode> = atoms.iter_mut().map(|a| &mut a.input).collect();
                v.push(body);
                v
            }
        }
    }

    fn children(&self) -> Vec<&PhysNode> {
        match &self.op {
            PhysOp::Scan { .. } | PhysOp::IndexProbe { .. } | PhysOp::Const { .. } => Vec::new(),
            PhysOp::Filter { input, .. }
            | PhysOp::Project { input, .. }
            | PhysOp::Dedup { input }
            | PhysOp::Aggregate { input, .. } => vec![input],
            PhysOp::HashJoin { left, right, .. }
            | PhysOp::Union { left, right }
            | PhysOp::Diff { left, right }
            | PhysOp::Intersect { left, right } => vec![left, right],
            PhysOp::IndexJoin { probe, .. } => vec![probe],
            PhysOp::XsubRebind { bindings, body } => {
                let mut v: Vec<&PhysNode> = bindings.iter().map(|(_, n)| n).collect();
                v.push(body);
                v
            }
            PhysOp::DeltaApply { atoms, body } => {
                let mut v: Vec<&PhysNode> = atoms.iter().map(|a| &a.input).collect();
                v.push(body);
                v
            }
        }
    }
}

/// An executable physical plan.
#[derive(Clone, Debug)]
pub struct PhysPlan {
    /// Root operator.
    pub root: PhysNode,
    /// Number of nodes (ids are `0..node_count`, pre-order).
    pub node_count: usize,
}

impl PhysPlan {
    /// Install `root` as a plan, assigning dense pre-order ids.
    pub fn new(mut root: PhysNode) -> PhysPlan {
        fn assign(n: &mut PhysNode, next: &mut usize) {
            n.id = *next;
            *next += 1;
            for c in n.children_mut() {
                assign(c, next);
            }
        }
        let mut next = 0;
        assign(&mut root, &mut next);
        PhysPlan {
            root,
            node_count: next,
        }
    }

    /// Output arity of the plan.
    pub fn arity(&self) -> usize {
        self.root.arity
    }

    /// Execute against `db`, returning the result relation. Row counters
    /// run; the per-operator clock does not.
    pub fn execute(&self, db: &DatabaseState) -> Result<Relation, EvalError> {
        self.run_root(db, false).map(|(rel, _)| rel)
    }

    /// Execute with full instrumentation: row counters plus exclusive
    /// per-operator elapsed time.
    pub fn execute_analyze(
        &self,
        db: &DatabaseState,
    ) -> Result<(Relation, ExecMetrics), EvalError> {
        self.run_root(db, true)
    }

    fn run_root(
        &self,
        db: &DatabaseState,
        timing: bool,
    ) -> Result<(Relation, ExecMetrics), EvalError> {
        let ctx = Ctx {
            db,
            ctrs: (0..self.node_count).map(|_| NodeCtr::default()).collect(),
            timing,
        };
        let env = Env::empty();
        // Buffer rows and bulk-build the result set once: `from_iter`
        // sorts and bulk-loads the tree, far cheaper than a per-row
        // sorted insert.
        let mut out: Vec<Tuple> = Vec::new();
        run(&self.root, &ctx, &env, &mut |t| {
            out.push(t.into_owned());
            Ok(())
        })?;
        let rel = Relation::from_tuple_set(self.root.arity, out.into_iter().collect())?;
        Ok((rel, ctx.into_metrics()))
    }

    /// Render the plan tree, one operator per line. With `metrics`, each
    /// line carries `rows in/out` and (when timed) exclusive elapsed
    /// time — the `EXPLAIN ANALYZE` output.
    pub fn render(&self, metrics: Option<&ExecMetrics>) -> String {
        let mut s = String::new();
        render_node(&self.root, 0, metrics, &mut s);
        s
    }
}

/// Per-operator execution statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Tuples received from children (0 for sources).
    pub rows_in: u64,
    /// Tuples pushed to the parent.
    pub rows_out: u64,
    /// Exclusive self-time (zero unless executed under
    /// [`PhysPlan::execute_analyze`]).
    pub elapsed: Duration,
}

/// Execution statistics for every operator of a plan, indexed by node id.
#[derive(Clone, Debug, Default)]
pub struct ExecMetrics {
    per_node: Vec<OpStats>,
}

impl ExecMetrics {
    /// Statistics for node `id`.
    pub fn node(&self, id: usize) -> &OpStats {
        &self.per_node[id]
    }

    /// Number of instrumented nodes.
    pub fn len(&self) -> usize {
        self.per_node.len()
    }

    /// Whether there are no instrumented nodes.
    pub fn is_empty(&self) -> bool {
        self.per_node.is_empty()
    }

    /// Sum of exclusive self-times — the pipeline's total measured work.
    pub fn total_elapsed(&self) -> Duration {
        self.per_node.iter().map(|s| s.elapsed).sum()
    }
}

// ---------------------------------------------------------------------
// Execution internals
// ---------------------------------------------------------------------

/// The runtime environment threaded down the operator tree: the current
/// xsub rebindings and delta bindings, extended by the hypothetical
/// wrapper operators. Push execution is synchronous recursion, so plain
/// references suffice — no shared ownership.
#[derive(Clone)]
struct Env {
    xsub: XsubValue,
    delta: DeltaValue,
}

impl Env {
    fn empty() -> Env {
        Env {
            xsub: XsubValue::empty(),
            delta: DeltaValue::empty(),
        }
    }
}

#[derive(Default)]
struct NodeCtr {
    rows_in: Cell<u64>,
    rows_out: Cell<u64>,
    nanos: Cell<u64>,
}

struct Ctx<'a> {
    db: &'a DatabaseState,
    ctrs: Vec<NodeCtr>,
    timing: bool,
}

impl Ctx<'_> {
    #[inline]
    fn row_in(&self, id: usize) {
        let c = &self.ctrs[id].rows_in;
        c.set(c.get() + 1);
    }

    #[inline]
    fn row_out(&self, id: usize) {
        let c = &self.ctrs[id].rows_out;
        c.set(c.get() + 1);
    }

    /// Run `f` with node `id`'s clock on. Only the operator's *own* work
    /// goes through here — never the downstream `out` call — so elapsed
    /// stays exclusive.
    #[inline]
    fn timed<R>(&self, id: usize, f: impl FnOnce() -> R) -> R {
        if !self.timing {
            return f();
        }
        let t0 = Instant::now();
        let r = f();
        let c = &self.ctrs[id].nanos;
        c.set(c.get() + t0.elapsed().as_nanos() as u64);
        r
    }

    fn into_metrics(self) -> ExecMetrics {
        ExecMetrics {
            per_node: self
                .ctrs
                .into_iter()
                .map(|c| OpStats {
                    rows_in: c.rows_in.get(),
                    rows_out: c.rows_out.get(),
                    elapsed: Duration::from_nanos(c.nanos.get()),
                })
                .collect(),
        }
    }
}

/// The tuple consumer operators push into.
type Sink<'s> = dyn FnMut(Cow<'_, Tuple>) -> Result<(), EvalError> + 's;

/// Drain a source iterator into `out`, charging each `next` to node
/// `id`. Generic so the common direct-scan path is monomorphized with no
/// boxed-iterator indirection.
fn scan_emit<'a>(
    id: usize,
    ctx: &Ctx<'_>,
    mut it: impl Iterator<Item = &'a Tuple>,
    out: &mut Sink<'_>,
) -> Result<(), EvalError> {
    loop {
        let Some(t) = ctx.timed(id, || it.next()) else {
            return Ok(());
        };
        ctx.row_out(id);
        out(Cow::Borrowed(t))?;
    }
}

fn run(node: &PhysNode, ctx: &Ctx<'_>, env: &Env, out: &mut Sink<'_>) -> Result<(), EvalError> {
    let id = node.id;
    match &node.op {
        PhysOp::Scan { name } => {
            if let Some(rel) = env.xsub.get(name) {
                scan_emit(id, ctx, rel.iter(), out)
            } else {
                let base = ctx.db.get(name)?;
                match env.delta.get(name) {
                    // The common un-rebound case skips the boxed merge
                    // iterator entirely.
                    None => scan_emit(id, ctx, base.iter(), out),
                    delta => scan_emit(id, ctx, effective_iter(&base, delta), out),
                }
            }
        }
        PhysOp::IndexProbe {
            name,
            col,
            value,
            pred,
        } => {
            let base = ctx.db.get(name)?;
            let idx = ctx.timed(id, || lookup_or_build_index(&base, &[*col]));
            let candidates = idx.probe(std::slice::from_ref(value));
            for t in candidates {
                if ctx.timed(id, || pred.eval(t)) {
                    ctx.row_out(id);
                    out(Cow::Borrowed(t))?;
                }
            }
            Ok(())
        }
        PhysOp::Const { rel } => {
            for t in rel.iter() {
                ctx.row_out(id);
                out(Cow::Borrowed(t))?;
            }
            Ok(())
        }
        PhysOp::Filter { input, pred } => run(input, ctx, env, &mut |t| {
            ctx.row_in(id);
            if ctx.timed(id, || pred.eval(&t)) {
                ctx.row_out(id);
                out(t)
            } else {
                Ok(())
            }
        }),
        PhysOp::Project { input, cols } => run(input, ctx, env, &mut |t| {
            ctx.row_in(id);
            let proj = ctx.timed(id, || t.project(cols));
            ctx.row_out(id);
            out(Cow::Owned(proj))
        }),
        PhysOp::HashJoin {
            left,
            right,
            pairs,
            residual,
            build,
        } => run_hash_join(node, left, right, pairs, residual, *build, ctx, env, out),
        PhysOp::IndexJoin {
            probe,
            probe_side,
            rel,
            index_cols,
            probe_cols,
            residual,
        } => {
            let base = ctx.db.get(rel)?;
            let idx = ctx.timed(id, || lookup_or_build_index(&base, index_cols));
            run(probe, ctx, env, &mut |t| {
                ctx.row_in(id);
                let key: Vec<Value> =
                    ctx.timed(id, || probe_cols.iter().map(|&c| t[c].clone()).collect());
                for m in idx.probe(&key) {
                    let joined = ctx.timed(id, || match probe_side {
                        Side::Left => t.concat(m),
                        Side::Right => m.concat(&t),
                    });
                    if ctx.timed(id, || residual.iter().all(|p| p.eval(&joined))) {
                        ctx.row_out(id);
                        out(Cow::Owned(joined))?;
                    }
                }
                Ok(())
            })
        }
        PhysOp::Union { left, right } => {
            for child in [left.as_ref(), right.as_ref()] {
                run(child, ctx, env, &mut |t| {
                    ctx.row_in(id);
                    ctx.row_out(id);
                    out(t)
                })?;
            }
            Ok(())
        }
        PhysOp::Diff { left, right } => {
            let rset = collect_set(right, ctx, env, id)?;
            run(left, ctx, env, &mut |t| {
                ctx.row_in(id);
                if ctx.timed(id, || !rset.contains(t.as_ref())) {
                    ctx.row_out(id);
                    out(t)
                } else {
                    Ok(())
                }
            })
        }
        PhysOp::Intersect { left, right } => {
            let rset = collect_set(right, ctx, env, id)?;
            run(left, ctx, env, &mut |t| {
                ctx.row_in(id);
                if ctx.timed(id, || rset.contains(t.as_ref())) {
                    ctx.row_out(id);
                    out(t)
                } else {
                    Ok(())
                }
            })
        }
        PhysOp::Dedup { input } => {
            let mut seen: HashSet<Tuple> = HashSet::new();
            run(input, ctx, env, &mut |t| {
                ctx.row_in(id);
                if ctx.timed(id, || seen.contains(t.as_ref())) {
                    return Ok(());
                }
                let owned = t.into_owned();
                ctx.timed(id, || seen.insert(owned.clone()));
                ctx.row_out(id);
                out(Cow::Owned(owned))
            })
        }
        PhysOp::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let mut acc: Vec<Tuple> = Vec::new();
            run(input, ctx, env, &mut |t| {
                ctx.row_in(id);
                ctx.timed(id, || acc.push(t.into_owned()));
                Ok(())
            })?;
            let acc = Relation::from_tuple_set(input.arity, acc.into_iter().collect())?;
            let result = ctx.timed(id, || eval_aggregate(&acc, group_by, aggs))?;
            for t in result.iter() {
                ctx.row_out(id);
                out(Cow::Borrowed(t))?;
            }
            Ok(())
        }
        PhysOp::XsubRebind { bindings, body } => {
            // filter1's `when` rule: materialize bindings under the
            // *current* environment, then smash.
            let mut f = XsubValue::empty();
            for (name, plan) in bindings {
                let mut rows: Vec<Tuple> = Vec::new();
                run(plan, ctx, env, &mut |t| {
                    ctx.row_in(id);
                    rows.push(t.into_owned());
                    Ok(())
                })?;
                let rel = Relation::from_tuple_set(plan.arity, rows.into_iter().collect())?;
                f.bind(name.clone(), rel);
            }
            let inner = Env {
                xsub: env.xsub.smash(&f),
                delta: env.delta.clone(),
            };
            run(body, ctx, &inner, &mut |t| {
                ctx.row_out(id);
                out(t)
            })
        }
        PhysOp::DeltaApply { atoms, body } => {
            // filter3's update rule, with the Seq recursion unrolled:
            // atom i sees the incoming delta smashed with the deltas of
            // atoms 0..i.
            let mut acc = DeltaValue::empty();
            for atom in atoms {
                let inner = Env {
                    xsub: env.xsub.clone(),
                    delta: env.delta.smash(&acc)?,
                };
                let mut rows: Vec<Tuple> = Vec::new();
                run(&atom.input, ctx, &inner, &mut |t| {
                    ctx.row_in(id);
                    rows.push(t.into_owned());
                    Ok(())
                })?;
                let rel = Relation::from_tuple_set(atom.input.arity, rows.into_iter().collect())?;
                let d = if atom.insert {
                    RelDelta::insertion(rel)
                } else {
                    RelDelta::deletion(rel)
                };
                let step = DeltaValue::new([(atom.name.clone(), d)]);
                acc = acc.smash(&step)?;
            }
            let inner = Env {
                xsub: env.xsub.clone(),
                delta: env.delta.smash(&acc)?,
            };
            run(body, ctx, &inner, &mut |t| {
                ctx.row_out(id);
                out(t)
            })
        }
    }
}

/// Materialize a sub-plan into a hash set (the right operand of `Diff` /
/// `Intersect` — probed per left row, so O(1) membership beats a sorted
/// set), charging rows and build time to operator `id`.
fn collect_set(
    node: &PhysNode,
    ctx: &Ctx<'_>,
    env: &Env,
    id: usize,
) -> Result<HashSet<Tuple>, EvalError> {
    let mut set: HashSet<Tuple> = HashSet::new();
    run(node, ctx, env, &mut |t| {
        ctx.row_in(id);
        ctx.timed(id, || set.insert(t.into_owned()));
        Ok(())
    })?;
    Ok(set)
}

#[allow(clippy::too_many_arguments)]
fn run_hash_join(
    node: &PhysNode,
    left: &PhysNode,
    right: &PhysNode,
    pairs: &[EquiPair],
    residual: &[Predicate],
    build: Side,
    ctx: &Ctx<'_>,
    env: &Env,
    out: &mut Sink<'_>,
) -> Result<(), EvalError> {
    let id = node.id;
    let (build_child, probe_child) = match build {
        Side::Left => (left, right),
        Side::Right => (right, left),
    };
    let build_is_left = build == Side::Left;

    if pairs.is_empty() {
        // Nested loop (product, possibly with residual theta conjuncts).
        let mut rows: Vec<Tuple> = Vec::new();
        run(build_child, ctx, env, &mut |t| {
            ctx.row_in(id);
            rows.push(t.into_owned());
            Ok(())
        })?;
        return run(probe_child, ctx, env, &mut |t| {
            ctx.row_in(id);
            for b in &rows {
                let joined = ctx.timed(id, || {
                    if build_is_left {
                        b.concat(&t)
                    } else {
                        t.concat(b)
                    }
                });
                if ctx.timed(id, || residual.iter().all(|p| p.eval(&joined))) {
                    ctx.row_out(id);
                    out(Cow::Owned(joined))?;
                }
            }
            Ok(())
        });
    }

    let build_cols: Vec<usize> = pairs
        .iter()
        .map(|p| if build_is_left { p.left } else { p.right })
        .collect();
    let probe_cols: Vec<usize> = pairs
        .iter()
        .map(|p| if build_is_left { p.right } else { p.left })
        .collect();

    let mut table: HashMap<Vec<Value>, Vec<Tuple>> = HashMap::new();
    run(build_child, ctx, env, &mut |t| {
        ctx.row_in(id);
        ctx.timed(id, || {
            let key: Vec<Value> = build_cols.iter().map(|&c| t[c].clone()).collect();
            table.entry(key).or_default().push(t.into_owned());
        });
        Ok(())
    })?;

    run(probe_child, ctx, env, &mut |t| {
        ctx.row_in(id);
        let key: Vec<Value> = ctx.timed(id, || probe_cols.iter().map(|&c| t[c].clone()).collect());
        if let Some(matches) = table.get(&key) {
            for b in matches {
                let joined = ctx.timed(id, || {
                    if build_is_left {
                        b.concat(&t)
                    } else {
                        t.concat(b)
                    }
                });
                if ctx.timed(id, || residual.iter().all(|p| p.eval(&joined))) {
                    ctx.row_out(id);
                    out(Cow::Owned(joined))?;
                }
            }
        }
        Ok(())
    })
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

fn op_label(node: &PhysNode) -> String {
    match &node.op {
        PhysOp::Scan { name } => format!("Scan {name}"),
        PhysOp::IndexProbe {
            name, col, value, ..
        } => format!("IndexProbe {name} (#{col} = {value})"),
        PhysOp::Const { rel } => format!("Const ({} row(s), arity {})", rel.len(), rel.arity()),
        PhysOp::Filter { pred, .. } => format!("Filter [{pred}]"),
        PhysOp::Project { cols, .. } => {
            let cs: Vec<String> = cols.iter().map(|c| format!("#{c}")).collect();
            format!("Project [{}]", cs.join(", "))
        }
        PhysOp::HashJoin {
            pairs,
            residual,
            build,
            ..
        } => {
            if pairs.is_empty() {
                format!(
                    "NestedLoop (build={}, residual={})",
                    side_name(*build),
                    residual.len()
                )
            } else {
                let ks: Vec<String> = pairs
                    .iter()
                    .map(|p| format!("#{}=#{}", p.left, p.right))
                    .collect();
                format!(
                    "HashJoin (build={}, on {}, residual={})",
                    side_name(*build),
                    ks.join(" "),
                    residual.len()
                )
            }
        }
        PhysOp::IndexJoin {
            probe_side,
            rel,
            index_cols,
            ..
        } => {
            let cs: Vec<String> = index_cols.iter().map(|c| format!("#{c}")).collect();
            format!(
                "IndexJoin (probe={}, index {rel}[{}])",
                side_name(*probe_side),
                cs.join(", ")
            )
        }
        PhysOp::Union { .. } => "Union".into(),
        PhysOp::Diff { .. } => "Diff".into(),
        PhysOp::Intersect { .. } => "Intersect".into(),
        PhysOp::Dedup { .. } => "Dedup".into(),
        PhysOp::Aggregate { group_by, aggs, .. } => {
            format!("Aggregate (group_by={group_by:?}, aggs={})", aggs.len())
        }
        PhysOp::XsubRebind { bindings, .. } => {
            let ns: Vec<String> = bindings.iter().map(|(n, _)| n.to_string()).collect();
            format!("XsubRebind {{{}}}", ns.join(", "))
        }
        PhysOp::DeltaApply { atoms, .. } => {
            let ns: Vec<String> = atoms
                .iter()
                .map(|a| format!("{}{}", if a.insert { "+" } else { "\u{2212}" }, a.name))
                .collect();
            format!("DeltaApply [{}]", ns.join(", "))
        }
    }
}

fn side_name(s: Side) -> &'static str {
    match s {
        Side::Left => "left",
        Side::Right => "right",
    }
}

fn fmt_elapsed(d: Duration) -> String {
    let n = d.as_nanos();
    if n >= 1_000_000 {
        format!("{:.2}ms", n as f64 / 1.0e6)
    } else {
        format!("{:.1}\u{b5}s", n as f64 / 1.0e3)
    }
}

fn render_node(node: &PhysNode, depth: usize, metrics: Option<&ExecMetrics>, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(&op_label(node));
    if let Some(m) = metrics {
        let s = m.node(node.id);
        let _ = write!(
            out,
            "  (rows in={} out={}, time={})",
            s.rows_in,
            s.rows_out,
            fmt_elapsed(s.elapsed)
        );
    }
    out.push('\n');
    for c in node.children() {
        render_node(c, depth + 1, metrics, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypoquery_algebra::CmpOp;
    use hypoquery_storage::{tuple, Catalog};

    fn db() -> DatabaseState {
        let mut cat = Catalog::new();
        cat.declare_arity("R", 2).unwrap();
        cat.declare_arity("S", 2).unwrap();
        let mut db = DatabaseState::new(cat);
        db.insert_rows("R", [tuple![1, 10], tuple![2, 20], tuple![3, 30]])
            .unwrap();
        db.insert_rows("S", [tuple![2, 200], tuple![3, 300]])
            .unwrap();
        db
    }

    fn scan(name: &str) -> PhysNode {
        PhysNode::new(2, PhysOp::Scan { name: name.into() })
    }

    #[test]
    fn filter_project_pipeline_streams() {
        let db = db();
        let plan = PhysPlan::new(PhysNode::new(
            1,
            PhysOp::Project {
                input: Box::new(PhysNode::new(
                    2,
                    PhysOp::Filter {
                        input: Box::new(scan("R")),
                        pred: Predicate::col_cmp(0, CmpOp::Ge, 2),
                    },
                )),
                cols: vec![1],
            },
        ));
        let out = plan.execute(&db).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.contains(&tuple![20]) && out.contains(&tuple![30]));
    }

    #[test]
    fn hash_join_matches_either_build_side() {
        let db = db();
        for build in [Side::Left, Side::Right] {
            let plan = PhysPlan::new(PhysNode::new(
                4,
                PhysOp::HashJoin {
                    left: Box::new(scan("R")),
                    right: Box::new(scan("S")),
                    pairs: vec![EquiPair { left: 0, right: 0 }],
                    residual: vec![],
                    build,
                },
            ));
            let out = plan.execute(&db).unwrap();
            assert_eq!(out.len(), 2, "build={build:?}");
            assert!(out.contains(&tuple![2, 20, 2, 200]));
            assert!(out.contains(&tuple![3, 30, 3, 300]));
        }
    }

    #[test]
    fn xsub_rebind_overrides_scan() {
        let db = db();
        // R rebound to σ_{#0=2}(R): body Scan R sees only that row.
        let plan = PhysPlan::new(PhysNode::new(
            2,
            PhysOp::XsubRebind {
                bindings: vec![(
                    "R".into(),
                    PhysNode::new(
                        2,
                        PhysOp::Filter {
                            input: Box::new(scan("R")),
                            pred: Predicate::col_cmp(0, CmpOp::Eq, 2),
                        },
                    ),
                )],
                body: Box::new(scan("R")),
            },
        ));
        let out = plan.execute(&db).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&tuple![2, 20]));
    }

    #[test]
    fn delta_apply_streams_effective_relation() {
        let db = db();
        // delete from R where #0 = 1; insert S into R.
        let plan = PhysPlan::new(PhysNode::new(
            2,
            PhysOp::DeltaApply {
                atoms: vec![
                    DeltaAtom {
                        name: "R".into(),
                        insert: false,
                        input: PhysNode::new(
                            2,
                            PhysOp::Filter {
                                input: Box::new(scan("R")),
                                pred: Predicate::col_cmp(0, CmpOp::Eq, 1),
                            },
                        ),
                    },
                    DeltaAtom {
                        name: "R".into(),
                        insert: true,
                        input: scan("S"),
                    },
                ],
                body: Box::new(scan("R")),
            },
        ));
        let out = plan.execute(&db).unwrap();
        // {2,20},{3,30} survive; {2,200},{3,300} inserted.
        assert_eq!(out.len(), 4);
        assert!(!out.contains(&tuple![1, 10]));
        assert!(out.contains(&tuple![2, 200]));
    }

    #[test]
    fn sequential_atoms_see_earlier_deltas() {
        let db = db();
        // insert into S (select R where #0=1); then insert into R (select S).
        // The second atom must see the row the first one added to S.
        let plan = PhysPlan::new(PhysNode::new(
            2,
            PhysOp::DeltaApply {
                atoms: vec![
                    DeltaAtom {
                        name: "S".into(),
                        insert: true,
                        input: PhysNode::new(
                            2,
                            PhysOp::Filter {
                                input: Box::new(scan("R")),
                                pred: Predicate::col_cmp(0, CmpOp::Eq, 1),
                            },
                        ),
                    },
                    DeltaAtom {
                        name: "R".into(),
                        insert: true,
                        input: scan("S"),
                    },
                ],
                body: Box::new(scan("R")),
            },
        ));
        let out = plan.execute(&db).unwrap();
        // R ∪ S' where S' includes {1,10}: R already has {1,10} so the
        // distinctive evidence is {2,200},{3,300} plus base R rows.
        assert_eq!(out.len(), 5);
        assert!(out.contains(&tuple![2, 200]));
    }

    #[test]
    fn analyze_counts_rows_and_time() {
        let db = db();
        let plan = PhysPlan::new(PhysNode::new(
            2,
            PhysOp::Filter {
                input: Box::new(scan("R")),
                pred: Predicate::col_cmp(0, CmpOp::Ge, 2),
            },
        ));
        let (out, m) = plan.execute_analyze(&db).unwrap();
        assert_eq!(out.len(), 2);
        // Node 0 = Filter, node 1 = Scan (pre-order ids).
        assert_eq!(m.node(0).rows_in, 3);
        assert_eq!(m.node(0).rows_out, 2);
        assert_eq!(m.node(1).rows_out, 3);
        let rendered = plan.render(Some(&m));
        assert!(rendered.contains("Filter"));
        assert!(rendered.contains("rows in=3 out=2"));
    }

    #[test]
    fn dedup_and_union_collapse_duplicates_at_sink() {
        let db = db();
        let plan = PhysPlan::new(PhysNode::new(
            2,
            PhysOp::Union {
                left: Box::new(scan("R")),
                right: Box::new(scan("R")),
            },
        ));
        let out = plan.execute(&db).unwrap();
        assert_eq!(out.len(), 3);

        let plan = PhysPlan::new(PhysNode::new(
            2,
            PhysOp::Dedup {
                input: Box::new(PhysNode::new(
                    2,
                    PhysOp::Union {
                        left: Box::new(scan("R")),
                        right: Box::new(scan("R")),
                    },
                )),
            },
        ));
        let (out, m) = plan.execute_analyze(&db).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(m.node(0).rows_in, 6);
        assert_eq!(m.node(0).rows_out, 3);
    }
}
