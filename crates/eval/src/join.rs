//! Join execution: hash equi-join with nested-loop fallback.
//!
//! The direct semantics of `Q₁ ⋈_p Q₂` is `σ_p(Q₁ × Q₂)`; executing it that
//! way is quadratic regardless of `p`. This module extracts the conjunctive
//! equality core of the join predicate and, when one exists, builds a hash
//! table on the right operand and probes it with the left — the standard
//! physical join every conventional evaluator in the paper's framework is
//! assumed to have. The residual (non-equality) part of the predicate is
//! applied to each candidate pair.
//!
//! When one operand carries a *cached* secondary index on the equi
//! columns (`hypoquery_storage::index`, keyed on shared CoW storage), the
//! hash build is skipped entirely: the cached index is the build side,
//! and only the other operand is iterated. [`join`] never builds indexes
//! itself — `crate::access::prepare_join_index` decides (cost-based)
//! which declared index to build.

use std::collections::HashMap;

use hypoquery_storage::{lookup_index, ColumnIndex, Relation, Tuple, Value};

use hypoquery_algebra::{CmpOp, Predicate, ScalarExpr};

/// An equality `left-col = right-col` extracted from a join predicate,
/// with `right` already rebased to the right operand's own column space.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EquiPair {
    /// Column in the left operand.
    pub left: usize,
    /// Column in the right operand (rebased: `0 ≤ right < arity(rhs)`).
    pub right: usize,
}

/// Split `pred` into equi-join pairs and a residual predicate.
///
/// Only top-level conjunctions are examined (disjunctions are left in the
/// residual). `left_arity` tells where the right operand's columns begin.
pub fn split_equi_pairs(pred: &Predicate, left_arity: usize) -> (Vec<EquiPair>, Vec<Predicate>) {
    let mut pairs = Vec::new();
    let mut residual = Vec::new();
    collect_conjuncts(pred, left_arity, &mut pairs, &mut residual);
    (pairs, residual)
}

fn collect_conjuncts(
    pred: &Predicate,
    left_arity: usize,
    pairs: &mut Vec<EquiPair>,
    residual: &mut Vec<Predicate>,
) {
    match pred {
        Predicate::And(a, b) => {
            collect_conjuncts(a, left_arity, pairs, residual);
            collect_conjuncts(b, left_arity, pairs, residual);
        }
        Predicate::True => {}
        Predicate::Cmp(ScalarExpr::Col(a), CmpOp::Eq, ScalarExpr::Col(b)) => {
            let (lo, hi) = if a < b { (*a, *b) } else { (*b, *a) };
            if lo < left_arity && hi >= left_arity {
                pairs.push(EquiPair {
                    left: lo,
                    right: hi - left_arity,
                });
            } else {
                residual.push(pred.clone());
            }
        }
        other => residual.push(other.clone()),
    }
}

/// Join two relations under `pred` (predicate over the concatenated tuple).
///
/// Lookup-only index fast path: if either operand's physical storage has
/// a cached index on its equi columns, that index replaces the hash
/// build. The side whose index leaves the *smaller* relation to iterate
/// is preferred.
pub fn join(left: &Relation, right: &Relation, pred: &Predicate) -> Relation {
    let (pairs, residual) = split_equi_pairs(pred, left.arity());
    if !pairs.is_empty() {
        let out_arity = left.arity() + right.arity();
        let right_first = right.len() >= left.len();
        for try_right in [right_first, !right_first] {
            if try_right {
                let cols: Vec<usize> = pairs.iter().map(|p| p.right).collect();
                if let Some(idx) = lookup_index(right, &cols) {
                    return probe_with_index(true, left, &idx, &pairs, &residual, out_arity);
                }
            } else {
                let cols: Vec<usize> = pairs.iter().map(|p| p.left).collect();
                if let Some(idx) = lookup_index(left, &cols) {
                    return probe_with_index(false, right, &idx, &pairs, &residual, out_arity);
                }
            }
        }
    }
    join_iter(left.iter(), left.arity(), right.iter(), right.arity(), pred)
}

/// Probe `index` (built over the non-`outer` operand's equi columns) with
/// every tuple of `outer`. `outer_is_left` says which side `outer` is, so
/// the output keeps the left ++ right column order.
fn probe_with_index(
    outer_is_left: bool,
    outer: &Relation,
    index: &ColumnIndex,
    pairs: &[EquiPair],
    residual: &[Predicate],
    out_arity: usize,
) -> Relation {
    let mut out = Relation::empty(out_arity);
    let passes = |t: &Tuple| residual.iter().all(|p| p.eval(t));
    for o in outer.iter() {
        let key: Vec<Value> = if outer_is_left {
            pairs.iter().map(|p| o[p.left].clone()).collect()
        } else {
            pairs.iter().map(|p| o[p.right].clone()).collect()
        };
        for m in index.probe(&key) {
            let joined = if outer_is_left {
                o.concat(m)
            } else {
                m.concat(o)
            };
            if passes(&joined) {
                let _ = out.insert(joined);
            }
        }
    }
    out
}

/// Join over arbitrary tuple iterators (used by the delta-aware
/// `join_when`, which feeds *effective* relations without materializing
/// them).
pub fn join_iter<'a>(
    left: impl Iterator<Item = &'a Tuple>,
    left_arity: usize,
    right: impl Iterator<Item = &'a Tuple>,
    right_arity: usize,
    pred: &Predicate,
) -> Relation {
    let (pairs, residual) = split_equi_pairs(pred, left_arity);
    let mut out = Relation::empty(left_arity + right_arity);
    let passes = |t: &Tuple| residual.iter().all(|p| p.eval(t));

    if pairs.is_empty() {
        // Nested loop over the (possibly small) right side.
        let right: Vec<&Tuple> = right.collect();
        for l in left {
            for r in &right {
                let joined = l.concat(r);
                if passes(&joined) {
                    let _ = out.insert(joined);
                }
            }
        }
        return out;
    }

    // Hash join: build on right, probe with left.
    let key_of_right =
        |t: &Tuple| -> Vec<Value> { pairs.iter().map(|p| t[p.right].clone()).collect() };
    let key_of_left =
        |t: &Tuple| -> Vec<Value> { pairs.iter().map(|p| t[p.left].clone()).collect() };
    let mut table: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::new();
    for r in right {
        table.entry(key_of_right(r)).or_default().push(r);
    }
    for l in left {
        if let Some(matches) = table.get(&key_of_left(l)) {
            for r in matches {
                let joined = l.concat(r);
                if passes(&joined) {
                    let _ = out.insert(joined);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypoquery_storage::tuple;

    fn rel(rows: &[[i64; 2]]) -> Relation {
        Relation::from_rows(2, rows.iter().map(|&[a, b]| tuple![a, b])).unwrap()
    }

    #[test]
    fn split_finds_cross_side_equalities() {
        // left arity 2: #0=#2 crosses, #0=#1 does not, #3>5 residual.
        let p = Predicate::col_col(0, CmpOp::Eq, 2)
            .and(Predicate::col_col(0, CmpOp::Eq, 1))
            .and(Predicate::col_cmp(3, CmpOp::Gt, 5));
        let (pairs, residual) = split_equi_pairs(&p, 2);
        assert_eq!(pairs, vec![EquiPair { left: 0, right: 0 }]);
        assert_eq!(residual.len(), 2);
    }

    #[test]
    fn split_handles_reversed_columns() {
        let p = Predicate::col_col(3, CmpOp::Eq, 1);
        let (pairs, residual) = split_equi_pairs(&p, 2);
        assert_eq!(pairs, vec![EquiPair { left: 1, right: 1 }]);
        assert!(residual.is_empty());
    }

    #[test]
    fn hash_join_equals_nested_loop() {
        let l = rel(&[[1, 10], [2, 20], [3, 30]]);
        let r = rel(&[[1, 100], [3, 300], [4, 400]]);
        let p = Predicate::col_col(0, CmpOp::Eq, 2);
        let hashed = join(&l, &r, &p);
        // Force the nested-loop path with an equivalent non-extractable
        // predicate form.
        let nl = join(
            &l,
            &r,
            &Predicate::col_col(0, CmpOp::Eq, 2).or(Predicate::False),
        );
        assert_eq!(hashed, nl);
        assert_eq!(hashed.len(), 2);
        assert!(hashed.contains(&tuple![1, 10, 1, 100]));
        assert!(hashed.contains(&tuple![3, 30, 3, 300]));
    }

    #[test]
    fn residual_applies_after_equi_match() {
        let l = rel(&[[1, 10], [1, 99]]);
        let r = rel(&[[1, 5]]);
        let p = Predicate::col_col(0, CmpOp::Eq, 2).and(Predicate::col_cmp(1, CmpOp::Lt, 50));
        let out = join(&l, &r, &p);
        assert_eq!(out.len(), 1);
        assert!(out.contains(&tuple![1, 10, 1, 5]));
    }

    #[test]
    fn true_predicate_is_cartesian() {
        let l = rel(&[[1, 1], [2, 2]]);
        let r = rel(&[[3, 3]]);
        let out = join(&l, &r, &Predicate::True);
        assert_eq!(out.len(), 2);
        assert_eq!(out.arity(), 4);
    }

    #[test]
    fn index_backed_join_matches_hash_join() {
        let l = rel(&[[1, 10], [1, 11], [2, 20], [3, 30]]);
        let r = rel(&[[1, 100], [3, 300], [4, 400]]);
        let p = Predicate::col_col(0, CmpOp::Eq, 2).and(Predicate::col_cmp(1, CmpOp::Lt, 25));
        let plain = join(&l, &r, &p);
        // Cached index on the right: probe-with-left path.
        let _ = hypoquery_storage::lookup_or_build_index(&r, &[0]);
        assert_eq!(join(&l, &r, &p), plain);
        // Cached index on the left too: build-side selection still exact.
        let _ = hypoquery_storage::lookup_or_build_index(&l, &[0]);
        assert_eq!(join(&l, &r, &p), plain);
    }

    #[test]
    fn join_with_empty_side_is_empty() {
        let l = rel(&[[1, 1]]);
        let e = Relation::empty(2);
        assert!(join(&l, &e, &Predicate::True).is_empty());
        assert!(join(&e, &l, &Predicate::col_col(0, CmpOp::Eq, 2)).is_empty());
    }
}
