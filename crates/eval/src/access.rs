//! Index-aware access paths over declared secondary indexes.
//!
//! The evaluators in this crate stay scan-based unless a relation has a
//! *declared* index ([`DatabaseState::declare_index`]) — declaring is
//! intent; the physical hash map is built lazily on the first probe and
//! cached on the relation's shared CoW storage pointer
//! (`hypoquery_storage::index`), so every snapshot that still shares the
//! base relation probes one index.
//!
//! Two access paths live here:
//!
//! * [`indexed_select`] — `σ_{…#i=c…}(R)` becomes an index probe when
//!   column `i` is declared;
//! * [`prepare_join_index`] — before an equi-join over base relations,
//!   build the declared index that lets [`crate::join::join`] (which only
//!   ever *looks up*, never builds) replace its hash-build side. The
//!   choice is cost-based: an index on the larger operand leaves only the
//!   smaller one to iterate.
//!
//! [`DatabaseState::declare_index`]: hypoquery_storage::DatabaseState::declare_index

use hypoquery_algebra::{CmpOp, Predicate, ScalarExpr};
use hypoquery_storage::{lookup_or_build_index, Relation, Value};

use crate::join::split_equi_pairs;

/// The top-level point-equality conjuncts `#i = const` of `p` (both
/// operand orders), descending only through `And` — a disjunction or
/// negation makes the conjunct non-guaranteed and is ignored.
pub fn point_eq_conjuncts(p: &Predicate) -> Vec<(usize, Value)> {
    let mut out = Vec::new();
    collect_points(p, &mut out);
    out
}

fn collect_points(p: &Predicate, out: &mut Vec<(usize, Value)>) {
    match p {
        Predicate::And(a, b) => {
            collect_points(a, out);
            collect_points(b, out);
        }
        Predicate::Cmp(ScalarExpr::Col(i), CmpOp::Eq, ScalarExpr::Const(v))
        | Predicate::Cmp(ScalarExpr::Const(v), CmpOp::Eq, ScalarExpr::Col(i)) => {
            out.push((*i, v.clone()));
        }
        _ => {}
    }
}

/// Evaluate `σ_p(rel)` by an index probe when `p` carries a point-equality
/// conjunct on one of the `declared` columns. `None` means "no usable
/// index — scan". The full predicate is re-applied to the probed
/// candidates, so residual conjuncts (and the probed equality itself)
/// stay exact.
pub fn indexed_select(rel: &Relation, p: &Predicate, declared: &[usize]) -> Option<Relation> {
    if declared.is_empty() || rel.is_empty() {
        return None;
    }
    let (col, v) = point_eq_conjuncts(p)
        .into_iter()
        .find(|(c, _)| declared.contains(c))?;
    let idx = lookup_or_build_index(rel, &[col]);
    let mut out = Relation::empty(rel.arity());
    for t in idx.probe(&[v]) {
        if p.eval(t) {
            let _ = out.insert(t.clone());
        }
    }
    Some(out)
}

/// Build (lazily, through the shared cache) the declared index most useful
/// for `a ⋈_pred b`, so the lookup-only probe inside [`crate::join::join`]
/// finds it. `a_declared`/`b_declared` are each operand's declared indexed
/// columns *when it resolves to its stored base relation* — pass empty for
/// computed operands; their transient storage must not pollute the cache.
///
/// Build-side selection is cost-based: when both sides qualify, index the
/// larger relation, leaving only the smaller one to iterate.
pub fn prepare_join_index(
    a: &Relation,
    a_declared: &[usize],
    b: &Relation,
    b_declared: &[usize],
    pred: &Predicate,
) {
    let (pairs, _) = split_equi_pairs(pred, a.arity());
    if pairs.is_empty() {
        return;
    }
    let left_cols: Vec<usize> = pairs.iter().map(|p| p.left).collect();
    let right_cols: Vec<usize> = pairs.iter().map(|p| p.right).collect();
    let left_ok = !a.is_empty() && left_cols.iter().all(|c| a_declared.contains(c));
    let right_ok = !b.is_empty() && right_cols.iter().all(|c| b_declared.contains(c));
    match (left_ok, right_ok) {
        (true, true) => {
            if a.len() > b.len() {
                let _ = lookup_or_build_index(a, &left_cols);
            } else {
                let _ = lookup_or_build_index(b, &right_cols);
            }
        }
        (true, false) => {
            let _ = lookup_or_build_index(a, &left_cols);
        }
        (false, true) => {
            let _ = lookup_or_build_index(b, &right_cols);
        }
        (false, false) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypoquery_algebra::Predicate as P;
    use hypoquery_storage::{lookup_index, tuple};

    fn rel() -> Relation {
        Relation::from_rows(2, (0..100).map(|i| tuple![i % 10, i])).unwrap()
    }

    #[test]
    fn point_conjuncts_both_orders_through_and() {
        let p = P::col_cmp(0, CmpOp::Eq, 3)
            .and(P::Cmp(
                ScalarExpr::Const(Value::int(5)),
                CmpOp::Eq,
                ScalarExpr::Col(1),
            ))
            .and(P::col_cmp(1, CmpOp::Gt, 0));
        let pts = point_eq_conjuncts(&p);
        assert_eq!(pts, vec![(0, Value::int(3)), (1, Value::int(5))]);
        // Disjunctions are not conjuncts.
        let p = P::col_cmp(0, CmpOp::Eq, 3).or(P::True);
        assert!(point_eq_conjuncts(&p).is_empty());
    }

    #[test]
    fn indexed_select_matches_scan() {
        let r = rel();
        let p = P::col_cmp(0, CmpOp::Eq, 7).and(P::col_cmp(1, CmpOp::Lt, 50));
        let scan = r.select(|t| p.eval(t));
        let probed = indexed_select(&r, &p, &[0]).expect("usable index");
        assert_eq!(probed, scan);
        // Undeclared column: no index path.
        assert!(indexed_select(&r, &p, &[1]).is_none());
        assert!(indexed_select(&r, &P::col_cmp(0, CmpOp::Gt, 7), &[0]).is_none());
    }

    #[test]
    fn prepare_builds_on_the_larger_declared_side() {
        let big = rel();
        let small = Relation::from_rows(2, (0..5).map(|i| tuple![i, i])).unwrap();
        let pred = P::col_col(0, CmpOp::Eq, 2);
        prepare_join_index(&small, &[0], &big, &[0], &pred);
        assert!(lookup_index(&big, &[0]).is_some(), "larger side indexed");
        assert!(lookup_index(&small, &[0]).is_none(), "smaller side skipped");
    }
}
