//! `filter2` and Algorithm HQL-2 (§5.4): clustered eager evaluation over
//! collapsed ENF syntax trees.
//!
//! `filter2` is `filter1` except on collapsed pure-RA regions
//! `Q[S₁, …, Sₘ, R₁, …, Rₖ]`: the `when`-subtrees `S₁…Sₘ` are evaluated
//! first, then the whole region is handed to `eval_filter_x` — a
//! conventional (clustered) RA evaluator whose base-name lookups are
//! filtered through the xsub-value. This allows grouping a join with the
//! selects/projects around it into single physical operations (here: the
//! hash-join pipeline of [`crate::join`]).

use hypoquery_storage::{DatabaseState, RelName, Relation};

use hypoquery_algebra::Query;
use hypoquery_core::enf::{CollapsedTree, PLACEHOLDER_PREFIX};
use hypoquery_core::{collapse, EnfError};

use crate::direct::{eval_pure, Resolver};
use crate::error::EvalError;
use crate::xsub::XsubValue;

/// Resolver used by `eval_filter_x`: placeholder names (`$i`) resolve to
/// the pre-computed `when`-subtree values; real names are filtered through
/// the xsub-value, falling back to the database.
struct FilteredResolver<'a> {
    db: &'a DatabaseState,
    e: &'a XsubValue,
    placeholders: &'a [Relation],
}

impl Resolver for FilteredResolver<'_> {
    fn resolve(&self, name: &RelName) -> Result<std::borrow::Cow<'_, Relation>, EvalError> {
        use std::borrow::Cow;
        if let Some(rest) = name.as_str().strip_prefix(PLACEHOLDER_PREFIX) {
            if let Ok(i) = rest.parse::<usize>() {
                if let Some(rel) = self.placeholders.get(i) {
                    return Ok(Cow::Borrowed(rel));
                }
            }
        }
        match self.e.get(name) {
            Some(rel) => Ok(Cow::Borrowed(rel)),
            None => self.db.resolve(name),
        }
    }

    fn indexed_columns(&self, name: &RelName) -> Vec<usize> {
        // Only names that fall through to the stored base relation keep
        // their declared indexes; placeholders and xsub-bound names
        // resolve to computed values with their own transient storage.
        if name.as_str().starts_with(PLACEHOLDER_PREFIX) || self.e.get(name).is_some() {
            return Vec::new();
        }
        self.db.indexed_columns(name)
    }
}

/// `eval_filter_x(Q[S₁…Sₘ, R₁…Rₖ], E)`: clustered evaluation of a pure RA
/// template with base names filtered by `E` and placeholders bound to the
/// given relations.
pub fn eval_filter_x(
    template: &Query,
    placeholders: &[Relation],
    e: &XsubValue,
    db: &DatabaseState,
) -> Result<Relation, EvalError> {
    eval_pure(
        template,
        &FilteredResolver {
            db,
            e,
            placeholders,
        },
    )
}

/// `filter2(T, E)` over a collapsed ENF tree (§5.4).
pub fn filter2(
    tree: &CollapsedTree,
    e: &XsubValue,
    db: &DatabaseState,
) -> Result<Relation, EvalError> {
    match tree {
        CollapsedTree::Leaf(name) => match e.get(name) {
            Some(rel) => Ok(rel.clone()),
            None => Ok(db.get(name)?),
        },
        CollapsedTree::When { child, bindings } => {
            let mut f = XsubValue::empty();
            for (name, sub) in bindings {
                f.bind(name.clone(), filter2(sub, e, db)?);
            }
            filter2(child, &e.smash(&f), db)
        }
        CollapsedTree::Ra {
            template,
            when_children,
            ..
        } => {
            let mut values = Vec::with_capacity(when_children.len());
            for child in when_children {
                values.push(filter2(child, e, db)?);
            }
            eval_filter_x(template, &values, e, db)
        }
    }
}

/// Algorithm HQL-2: collapse an ENF query and evaluate with
/// `filter2(collapse(T), {})`.
pub fn algorithm_hql2(q: &Query, db: &DatabaseState) -> Result<Relation, EvalError> {
    let tree = collapse(q).map_err(|e: EnfError| EvalError::UnsupportedShape(e.to_string()))?;
    filter2(&tree, &XsubValue::empty(), db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::eval_query;
    use crate::filter1::algorithm_hql1;
    use hypoquery_algebra::{CmpOp, Predicate, StateExpr, Update};
    use hypoquery_core::{to_enf_query, RewriteTrace};
    use hypoquery_storage::{tuple, Catalog};

    fn db() -> DatabaseState {
        let mut cat = Catalog::new();
        cat.declare_arity("R", 2).unwrap();
        cat.declare_arity("S", 2).unwrap();
        let mut db = DatabaseState::new(cat);
        db.insert_rows("R", [tuple![1, 10], tuple![2, 20], tuple![35, 1]])
            .unwrap();
        db.insert_rows("S", [tuple![2, 200], tuple![35, 300]])
            .unwrap();
        db
    }

    fn enf(q: &Query) -> Query {
        to_enf_query(q, &mut RewriteTrace::new())
    }

    #[test]
    fn hql2_agrees_with_direct_and_hql1() {
        let db = db();
        let q = Query::base("R")
            .join(
                Query::base("S").select(Predicate::col_cmp(1, CmpOp::Gt, 250)),
                Predicate::col_col(0, CmpOp::Eq, 2),
            )
            .when(StateExpr::update(Update::insert(
                "R",
                Query::base("S").select(Predicate::col_cmp(0, CmpOp::Gt, 30)),
            )))
            .when(StateExpr::update(Update::delete(
                "S",
                Query::base("S").select(Predicate::col_cmp(1, CmpOp::Lt, 250)),
            )));
        let expected = eval_query(&q, &db).unwrap();
        let e = enf(&q);
        assert_eq!(algorithm_hql2(&e, &db).unwrap(), expected);
        assert_eq!(algorithm_hql1(&e, &db).unwrap(), expected);
    }

    #[test]
    fn placeholder_resolution_in_regions() {
        let db = db();
        // (R when {S/R}) ∪ S : the when-subtree becomes a region child.
        let eps = hypoquery_algebra::ExplicitSubst::single("R", Query::base("S"));
        let q = Query::base("R")
            .when(StateExpr::subst(eps))
            .union(Query::base("S"));
        let out = algorithm_hql2(&q, &db).unwrap();
        assert_eq!(out, db.get(&"S".into()).unwrap());
    }

    #[test]
    fn rejects_non_enf() {
        let db = db();
        let q = Query::base("R").when(StateExpr::update(Update::insert("R", Query::base("S"))));
        assert!(matches!(
            algorithm_hql2(&q, &db),
            Err(EvalError::UnsupportedShape(_))
        ));
    }

    #[test]
    fn deep_pure_region_is_single_cluster() {
        let db = db();
        // Pure query: one collapsed region, no xsub machinery involved.
        let q = Query::base("R")
            .select(Predicate::col_cmp(0, CmpOp::Lt, 10))
            .join(Query::base("S"), Predicate::col_col(0, CmpOp::Eq, 2))
            .project([1, 3]);
        let expected = eval_query(&q, &db).unwrap();
        assert_eq!(algorithm_hql2(&q, &db).unwrap(), expected);
    }
}
