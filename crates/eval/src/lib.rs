//! # hypoquery-eval
//!
//! Evaluation engines for HQL, spanning the paper's eager/lazy spectrum:
//!
//! * [`direct`] — the reference semantics `[[Q]]`, `[[U]]`, `[[η]]`
//!   (§3.1, §4.2) and `apply(DB, ρ)` (§3.3);
//! * [`xsub`] — xsub-values with `apply` and smash `!` (§5.3);
//! * [`filter1`] — Figure 3 / Algorithm HQL-1 (node-at-a-time eager);
//! * [`filter2`] — Algorithm HQL-2 over collapsed trees (clustered eager);
//! * [`delta`] — Heraclitus-style delta values, delta smash, the
//!   six-operand `join-when`, and delta-filtered evaluation (§5.5);
//! * [`filter3`] — Figure 4 / Algorithm HQL-3 (delta-based eager);
//! * [`exec`] — scoped-thread fan-out for independent scenarios
//!   (copy-on-write snapshots make branches share-nothing writers).
//!
//! The lazy strategy needs no engine of its own: `hypoquery-core::red`
//! produces a pure RA query evaluated by [`direct::eval_pure`].

#![warn(missing_docs)]

pub mod access;
pub mod bag;
pub mod delta;
pub mod direct;
pub mod error;
pub mod exec;
pub mod filter1;
pub mod filter2;
pub mod filter3;
pub mod join;
pub mod physical;
pub mod xsub;

pub use access::{indexed_select, point_eq_conjuncts, prepare_join_index};
pub use bag::{apply_bag_subst, eval_bag_query, eval_bag_state, eval_bag_update, BagState};
pub use delta::{eval_filter_d, join_when, DeltaValue, RelDelta};
pub use direct::{apply_subst, eval_pure, eval_query, eval_state, eval_update, Resolver};
pub use error::EvalError;
pub use exec::{num_workers, parallel_map, try_parallel_map};
pub use filter1::{algorithm_hql1, filter1};
pub use filter2::{algorithm_hql2, eval_filter_x, filter2};
pub use filter3::{algorithm_hql3, filter3};
pub use physical::{DeltaAtom, ExecMetrics, OpStats, PhysNode, PhysOp, PhysPlan, Side};
pub use xsub::{materialize_subst, XsubValue};
