//! Evaluation errors.

use std::fmt;

use hypoquery_storage::StorageError;

/// Errors raised during query/update evaluation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EvalError {
    /// A storage-level failure (unknown relation, arity mismatch).
    Storage(StorageError),
    /// An aggregate was applied to a value of the wrong type
    /// (e.g. `sum` over strings).
    AggregateType {
        /// Which aggregate.
        agg: &'static str,
        /// Display of the offending value.
        value: String,
    },
    /// A query shape the called evaluator does not accept (e.g. `when`
    /// reaching a pure-only evaluator, or a non-explicit state expression
    /// reaching `filter1`). Indicates a missing normalization step.
    UnsupportedShape(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Storage(e) => write!(f, "{e}"),
            EvalError::AggregateType { agg, value } => {
                write!(f, "aggregate {agg} applied to non-numeric value {value}")
            }
            EvalError::UnsupportedShape(s) => {
                write!(
                    f,
                    "evaluator does not accept this shape (normalize first): {s}"
                )
            }
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for EvalError {
    fn from(e: StorageError) -> Self {
        EvalError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = EvalError::from(StorageError::UnknownRelation("R".into()));
        assert_eq!(e.to_string(), "unknown relation R");
        assert!(std::error::Error::source(&e).is_some());
        let a = EvalError::AggregateType {
            agg: "sum",
            value: "\"x\"".into(),
        };
        assert!(a.to_string().contains("sum"));
        assert!(std::error::Error::source(&a).is_none());
    }
}
