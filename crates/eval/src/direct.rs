//! The direct semantics of HQL (§3.1 and §4.2).
//!
//! * `[[Q]] : DB → R` — [`eval_query`];
//! * `[[U]] : DB → DB` — [`eval_update`];
//! * `[[η]] : DB → DB` — [`eval_state`];
//! * `apply(DB, ρ)` (§3.3, substitutions as updates) — [`apply_subst`].
//!
//! This is the reference semantics every optimized strategy in the
//! workspace is property-tested against.

use std::borrow::Cow;
use std::collections::BTreeMap;

use hypoquery_storage::{DatabaseState, RelName, Relation, Tuple, Value};

use hypoquery_algebra::{AggExpr, ExplicitSubst, Query, StateExpr, Update};

use crate::access;
use crate::error::EvalError;
use crate::join;

/// The declared indexed columns of `q` when it is a base-relation scan —
/// the only shape whose evaluated value has the stable storage the index
/// cache keys on. Empty for every computed shape.
fn base_decls(q: &Query, r: &impl Resolver) -> Vec<usize> {
    match q {
        Query::Base(name) => r.indexed_columns(name),
        _ => Vec::new(),
    }
}

/// Resolves base relation names to relation values. The direct evaluator
/// resolves against a [`DatabaseState`]; filtered evaluators
/// (`filter1`/`filter2`/`filter3`) resolve through xsub- or delta-values.
///
/// Resolution yields a [`Cow`]: borrowing resolvers (the database itself,
/// xsub overlays) hand out references, so the pipelined operators in
/// [`eval_pure`] never copy a base relation just to scan it.
pub trait Resolver {
    /// The relation currently named `name`.
    fn resolve(&self, name: &RelName) -> Result<Cow<'_, Relation>, EvalError>;

    /// The columns of `name` carrying a declared secondary index, *iff*
    /// this resolver resolves `name` to its stored base relation. The
    /// default says "none" — overlay resolvers that rebind names
    /// (xsub/placeholder) must not claim indexes for rebound values.
    fn indexed_columns(&self, name: &RelName) -> Vec<usize> {
        let _ = name;
        Vec::new()
    }
}

impl Resolver for DatabaseState {
    fn resolve(&self, name: &RelName) -> Result<Cow<'_, Relation>, EvalError> {
        match self.get_ref(name) {
            Some(rel) => Ok(Cow::Borrowed(rel)),
            // Declared-but-empty (or undeclared → error) go through `get`.
            None => Ok(Cow::Owned(self.get(name)?)),
        }
    }

    fn indexed_columns(&self, name: &RelName) -> Vec<usize> {
        DatabaseState::indexed_columns(self, name)
    }
}

/// Evaluate a **pure** RA query against any name resolver.
///
/// This is the "conventional (optimized) algorithm" that §5.4's
/// `eval-filter-x` is allowed to be: operands are evaluated to
/// copy-on-write handles, so scans, selections and join inputs over base
/// relations are processed by reference — no operator materializes its
/// input just to read it.
///
/// Returns [`EvalError::UnsupportedShape`] on a `when` node — full HQL
/// queries go through [`eval_query`], which knows how to evaluate
/// hypothetical states.
pub fn eval_pure(q: &Query, r: &impl Resolver) -> Result<Relation, EvalError> {
    Ok(eval_pure_cow(q, r)?.into_owned())
}

fn eval_pure_cow<'a>(q: &Query, r: &'a impl Resolver) -> Result<Cow<'a, Relation>, EvalError> {
    match q {
        Query::Base(name) => r.resolve(name),
        Query::Singleton(t) => Ok(Cow::Owned(Relation::singleton(t.clone()))),
        Query::Empty { arity } => Ok(Cow::Owned(Relation::empty(*arity))),
        Query::Select(inner, p) => {
            let input = eval_pure_cow(inner, r)?;
            if let Query::Base(name) = inner.as_ref() {
                if let Some(out) = access::indexed_select(&input, p, &r.indexed_columns(name)) {
                    return Ok(Cow::Owned(out));
                }
            }
            Ok(Cow::Owned(input.select(|t| p.eval(t))))
        }
        Query::Project(inner, cols) => {
            let input = eval_pure_cow(inner, r)?;
            Ok(Cow::Owned(input.project(cols)?))
        }
        Query::Union(a, b) => {
            let (a, b) = (eval_pure_cow(a, r)?, eval_pure_cow(b, r)?);
            Ok(Cow::Owned(a.union(&b)?))
        }
        Query::Intersect(a, b) => {
            let (a, b) = (eval_pure_cow(a, r)?, eval_pure_cow(b, r)?);
            Ok(Cow::Owned(a.intersect(&b)?))
        }
        Query::Diff(a, b) => {
            let (a, b) = (eval_pure_cow(a, r)?, eval_pure_cow(b, r)?);
            Ok(Cow::Owned(a.difference(&b)?))
        }
        Query::Product(a, b) => {
            let (a, b) = (eval_pure_cow(a, r)?, eval_pure_cow(b, r)?);
            Ok(Cow::Owned(a.product(&b)))
        }
        Query::Join(a, b, p) => {
            let (va, vb) = (eval_pure_cow(a, r)?, eval_pure_cow(b, r)?);
            access::prepare_join_index(&va, &base_decls(a, r), &vb, &base_decls(b, r), p);
            Ok(Cow::Owned(join::join(&va, &vb, p)))
        }
        Query::When(_, _) => Err(EvalError::UnsupportedShape(q.to_string())),
        Query::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let input = eval_pure_cow(input, r)?;
            Ok(Cow::Owned(eval_aggregate(&input, group_by, aggs)?))
        }
    }
}

/// `[[Q]](DB)` — the direct semantics of a full HQL query (§4.2).
pub fn eval_query(q: &Query, db: &DatabaseState) -> Result<Relation, EvalError> {
    match q {
        Query::When(inner, eta) => {
            let hypothetical = eval_state(eta, db)?;
            eval_query(inner, &hypothetical)
        }
        Query::Base(_) | Query::Singleton(_) | Query::Empty { .. } => eval_pure(q, db),
        Query::Select(inner, p) => {
            let input = eval_query(inner, db)?;
            if let Query::Base(name) = inner.as_ref() {
                if let Some(out) = access::indexed_select(&input, p, &db.indexed_columns(name)) {
                    return Ok(out);
                }
            }
            Ok(input.select(|t| p.eval(t)))
        }
        Query::Project(inner, cols) => Ok(eval_query(inner, db)?.project(cols)?),
        Query::Union(a, b) => Ok(eval_query(a, db)?.union(&eval_query(b, db)?)?),
        Query::Intersect(a, b) => Ok(eval_query(a, db)?.intersect(&eval_query(b, db)?)?),
        Query::Diff(a, b) => Ok(eval_query(a, db)?.difference(&eval_query(b, db)?)?),
        Query::Product(a, b) => Ok(eval_query(a, db)?.product(&eval_query(b, db)?)),
        Query::Join(a, b, p) => {
            let (va, vb) = (eval_query(a, db)?, eval_query(b, db)?);
            access::prepare_join_index(&va, &base_decls(a, db), &vb, &base_decls(b, db), p);
            Ok(join::join(&va, &vb, p))
        }
        Query::Aggregate {
            input,
            group_by,
            aggs,
        } => eval_aggregate(&eval_query(input, db)?, group_by, aggs),
    }
}

/// `[[U]](DB)` — the direct semantics of an update (§3.1), extended with
/// §6 conditionals.
pub fn eval_update(u: &Update, db: &DatabaseState) -> Result<DatabaseState, EvalError> {
    match u {
        Update::Insert(name, q) => {
            let v = eval_query(q, db)?;
            let cur = db.get(name)?;
            Ok(db.with_binding(name.clone(), cur.union(&v)?)?)
        }
        Update::Delete(name, q) => {
            let v = eval_query(q, db)?;
            let cur = db.get(name)?;
            Ok(db.with_binding(name.clone(), cur.difference(&v)?)?)
        }
        Update::Seq(a, b) => eval_update(b, &eval_update(a, db)?),
        Update::Cond {
            guard,
            then_u,
            else_u,
        } => {
            if eval_query(guard, db)?.is_empty() {
                eval_update(else_u, db)
            } else {
                eval_update(then_u, db)
            }
        }
    }
}

/// `[[η]](DB)` — the direct semantics of a hypothetical-state expression
/// (§4.2). Note the composition order of Lemma 3.6: `η₁ # η₂` reaches
/// `η₁`'s state first, then applies `η₂` in it.
pub fn eval_state(eta: &StateExpr, db: &DatabaseState) -> Result<DatabaseState, EvalError> {
    match eta {
        StateExpr::Update(u) => eval_update(u, db),
        StateExpr::Subst(eps) => apply_subst(db, eps),
        StateExpr::Compose(a, b) => eval_state(b, &eval_state(a, db)?),
    }
}

/// `apply(DB, ρ)` (§3.3): treat a substitution as the update that
/// *simultaneously* replaces each `Sᵢ` with the value of `Qᵢ` — every
/// binding is evaluated in the original state.
pub fn apply_subst(db: &DatabaseState, eps: &ExplicitSubst) -> Result<DatabaseState, EvalError> {
    let mut values: Vec<(RelName, Relation)> = Vec::with_capacity(eps.len());
    for (name, q) in eps.iter() {
        values.push((name.clone(), eval_query(q, db)?));
    }
    let mut out = db.clone();
    for (name, v) in values {
        out.set(name, v)?;
    }
    Ok(out)
}

/// Grouped aggregation over a materialized relation (§6 extension).
///
/// Set semantics; an empty input yields an empty output (including when
/// there are no grouping columns — we do not emit SQL's global zero-row).
pub fn eval_aggregate(
    input: &Relation,
    group_by: &[usize],
    aggs: &[AggExpr],
) -> Result<Relation, EvalError> {
    let mut groups: BTreeMap<Tuple, Vec<&Tuple>> = BTreeMap::new();
    for t in input.iter() {
        groups.entry(t.project(group_by)).or_default().push(t);
    }
    let mut out = Relation::empty(group_by.len() + aggs.len());
    for (key, members) in groups {
        let mut fields: Vec<Value> = key.fields().to_vec();
        for agg in aggs {
            fields.push(eval_one_agg(agg, &members)?);
        }
        out.insert(Tuple::new(fields))?;
    }
    Ok(out)
}

fn eval_one_agg(agg: &AggExpr, members: &[&Tuple]) -> Result<Value, EvalError> {
    match agg {
        AggExpr::Count => Ok(Value::int(members.len() as i64)),
        AggExpr::Sum(col) => {
            let mut total: i64 = 0;
            for t in members {
                match t[*col].as_int() {
                    Some(v) => total += v,
                    None => {
                        return Err(EvalError::AggregateType {
                            agg: "sum",
                            value: t[*col].to_string(),
                        })
                    }
                }
            }
            Ok(Value::int(total))
        }
        AggExpr::Min(col) => Ok(members
            .iter()
            .map(|t| t[*col].clone())
            .min()
            .expect("groups are non-empty by construction")),
        AggExpr::Max(col) => Ok(members
            .iter()
            .map(|t| t[*col].clone())
            .max()
            .expect("groups are non-empty by construction")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypoquery_algebra::{CmpOp, Predicate};
    use hypoquery_storage::{tuple, Catalog};

    fn db() -> DatabaseState {
        let mut cat = Catalog::new();
        cat.declare_arity("R", 2).unwrap();
        cat.declare_arity("S", 2).unwrap();
        cat.declare_arity("T", 1).unwrap();
        let mut db = DatabaseState::new(cat);
        db.insert_rows("R", [tuple![1, 10], tuple![2, 20]]).unwrap();
        db.insert_rows("S", [tuple![2, 200], tuple![3, 300]])
            .unwrap();
        db.insert_rows("T", [tuple![7]]).unwrap();
        db
    }

    #[test]
    fn basic_algebra_semantics() {
        let db = db();
        let q = Query::base("R").union(Query::base("S"));
        assert_eq!(eval_query(&q, &db).unwrap().len(), 4);
        let q = Query::base("R").intersect(Query::base("S"));
        assert!(eval_query(&q, &db).unwrap().is_empty());
        let q = Query::base("R").select(Predicate::col_cmp(0, CmpOp::Ge, 2));
        assert_eq!(eval_query(&q, &db).unwrap().len(), 1);
        let q = Query::base("R").project([0]);
        assert_eq!(
            eval_query(&q, &db).unwrap(),
            Relation::from_rows(1, [tuple![1], tuple![2]]).unwrap()
        );
        let q = Query::base("R").join(Query::base("S"), Predicate::col_col(0, CmpOp::Eq, 2));
        let out = eval_query(&q, &db).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&tuple![2, 20, 2, 200]));
    }

    #[test]
    fn update_semantics() {
        let db = db();
        // ins(R, S): R gains S's tuples.
        let u = Update::insert("R", Query::base("S"));
        let db2 = eval_update(&u, &db).unwrap();
        assert_eq!(db2.get(&"R".into()).unwrap().len(), 4);
        // Original untouched.
        assert_eq!(db.get(&"R".into()).unwrap().len(), 2);
        // del(R, σ_{#0=1}(R)) removes one row.
        let u = Update::delete(
            "R",
            Query::base("R").select(Predicate::col_cmp(0, CmpOp::Eq, 1)),
        );
        let db3 = eval_update(&u, &db).unwrap();
        assert_eq!(db3.get(&"R".into()).unwrap().len(), 1);
        // Sequencing: later updates see earlier effects.
        let u = Update::insert("R", Query::base("S")).then(Update::delete("R", Query::base("R")));
        let db4 = eval_update(&u, &db).unwrap();
        assert!(db4.get(&"R".into()).unwrap().is_empty());
    }

    #[test]
    fn conditional_update_semantics() {
        let db = db();
        let grow = Update::insert("R", Query::base("S"));
        let shrink = Update::delete("R", Query::base("R"));
        // Guard non-empty: then-branch.
        let u = Update::cond(Query::base("T"), grow.clone(), shrink.clone());
        assert_eq!(
            eval_update(&u, &db)
                .unwrap()
                .get(&"R".into())
                .unwrap()
                .len(),
            4
        );
        // Guard empty: else-branch.
        let empty_guard = Query::base("T").select(Predicate::col_cmp(0, CmpOp::Gt, 100));
        let u = Update::cond(empty_guard, grow, shrink);
        assert!(eval_update(&u, &db)
            .unwrap()
            .get(&"R".into())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn when_semantics() {
        let db = db();
        // R when {ins(R, S)} sees the inserted tuples; DB unchanged.
        let q = Query::base("R").when(StateExpr::update(Update::insert("R", Query::base("S"))));
        assert_eq!(eval_query(&q, &db).unwrap().len(), 4);
        assert_eq!(db.get(&"R".into()).unwrap().len(), 2);
    }

    #[test]
    fn subst_bindings_are_parallel() {
        let db = db();
        // {S/R, R/S} swaps — both sides read the ORIGINAL state.
        let eps = ExplicitSubst::new([
            ("R".into(), Query::base("S")),
            ("S".into(), Query::base("R")),
        ]);
        let swapped = apply_subst(&db, &eps).unwrap();
        assert_eq!(
            swapped.get(&"R".into()).unwrap(),
            db.get(&"S".into()).unwrap()
        );
        assert_eq!(
            swapped.get(&"S".into()).unwrap(),
            db.get(&"R".into()).unwrap()
        );
    }

    #[test]
    fn compose_order_matches_lemma_3_6() {
        let db = db();
        // η1 = ins(R, S); η2 = del(R, R) — compose runs η1 THEN η2.
        let e1 = StateExpr::update(Update::insert("R", Query::base("S")));
        let e2 = StateExpr::update(Update::delete("R", Query::base("R")));
        let out = eval_state(&e1.clone().compose(e2.clone()), &db).unwrap();
        assert!(out.get(&"R".into()).unwrap().is_empty());
        // Reversed: delete first, then insert S — R ends with S's rows.
        let out = eval_state(&e2.compose(e1), &db).unwrap();
        assert_eq!(out.get(&"R".into()).unwrap().len(), 2);
    }

    #[test]
    fn nested_when_inside_state() {
        let db = db();
        // ins(R, (S when {del(S, S)})) inserts the EMPTY relation.
        let inner = Query::base("S").when(StateExpr::update(Update::delete("S", Query::base("S"))));
        let q = Query::base("R").when(StateExpr::update(Update::insert("R", inner)));
        assert_eq!(eval_query(&q, &db).unwrap(), db.get(&"R".into()).unwrap());
    }

    #[test]
    fn eval_pure_rejects_when() {
        let db = db();
        let q = Query::base("R").when(StateExpr::update(Update::insert("R", Query::base("S"))));
        assert!(matches!(
            eval_pure(&q, &db),
            Err(EvalError::UnsupportedShape(_))
        ));
    }

    #[test]
    fn aggregate_semantics() {
        let db = db();
        let q = Query::base("R").union(Query::base("S")).aggregate(
            [],
            [
                AggExpr::Count,
                AggExpr::Sum(1),
                AggExpr::Min(0),
                AggExpr::Max(1),
            ],
        );
        let out = eval_query(&q, &db).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&tuple![4, 530, 1, 300]));
        // Grouped.
        let mut db2 = db.clone();
        db2.insert_row("R", tuple![1, 90]).unwrap();
        let q = Query::base("R").aggregate([0], [AggExpr::Count]);
        let out = eval_query(&q, &db2).unwrap();
        assert!(out.contains(&tuple![1, 2]));
        assert!(out.contains(&tuple![2, 1]));
        // Empty input → empty output.
        let q = Query::empty(2).aggregate([], [AggExpr::Count]);
        assert!(eval_query(&q, &db).unwrap().is_empty());
    }

    #[test]
    fn sum_over_strings_errors() {
        let mut cat = Catalog::new();
        cat.declare_arity("W", 1).unwrap();
        let mut db = DatabaseState::new(cat);
        db.insert_row("W", tuple!["x"]).unwrap();
        let q = Query::base("W").aggregate([], [AggExpr::Sum(0)]);
        assert!(matches!(
            eval_query(&q, &db),
            Err(EvalError::AggregateType { agg: "sum", .. })
        ));
    }
}
