//! Delta values (§5.5), in the spirit of Heraclitus.
//!
//! A delta value `Δ` maps relation names to pairs `(R∇, RΔ)` of deleted and
//! inserted tuples, with
//!
//! ```text
//! apply(DB, Δ)(R) = (DB(R) − R∇) ∪ RΔ
//! ```
//!
//! Unlike Heraclitus we do *not* require `R∇ ∩ RΔ = ∅` (the paper drops the
//! condition too). The smash `Δ₁ ! Δ₂` combines deltas so that applying the
//! smash equals applying `Δ₁` then `Δ₂`.
//!
//! [`eval_filter_d`] evaluates a pure RA query against `apply(DB, Δ)`
//! *without materializing* the hypothetical relations: base scans stream
//! `(DB(R) − R∇) ∪ RΔ` via a sorted three-way merge, and joins use
//! [`join_when`] — the six-operand join operator of §5.5, here realized as
//! a hash join over the two effective streams. For small deltas the cost is
//! only nominally above a plain join, which is exactly the Heraclitus
//! rule-of-thumb bench E5 reproduces.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use hypoquery_storage::{
    lookup_index, lookup_or_build_index, ColumnIndex, DatabaseState, RelName, Relation, Tuple,
    Value,
};

use hypoquery_algebra::{Predicate, Query};

use crate::access;
use crate::direct::eval_aggregate;
use crate::error::EvalError;
use crate::join::{join_iter, split_equi_pairs, EquiPair};
use crate::xsub::XsubValue;

/// A delta for one relation: `(deleted, inserted)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RelDelta {
    /// Tuples removed from the base (`R∇`).
    pub deleted: Relation,
    /// Tuples added (`RΔ`).
    pub inserted: Relation,
}

impl RelDelta {
    /// The empty delta of a given arity.
    pub fn empty(arity: usize) -> Self {
        RelDelta {
            deleted: Relation::empty(arity),
            inserted: Relation::empty(arity),
        }
    }

    /// A pure-deletion delta.
    pub fn deletion(deleted: Relation) -> Self {
        let arity = deleted.arity();
        RelDelta {
            deleted,
            inserted: Relation::empty(arity),
        }
    }

    /// A pure-insertion delta.
    pub fn insertion(inserted: Relation) -> Self {
        let arity = inserted.arity();
        RelDelta {
            deleted: Relation::empty(arity),
            inserted,
        }
    }

    /// Number of tuples in the delta (|R∇| + |RΔ|).
    pub fn len(&self) -> usize {
        self.deleted.len() + self.inserted.len()
    }

    /// Whether both sides are empty.
    pub fn is_empty(&self) -> bool {
        self.deleted.is_empty() && self.inserted.is_empty()
    }
}

/// A delta value: a partial map from relation names to [`RelDelta`]s.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DeltaValue {
    map: BTreeMap<RelName, RelDelta>,
}

impl DeltaValue {
    /// The empty delta value.
    pub fn empty() -> Self {
        DeltaValue::default()
    }

    /// Build from bindings.
    pub fn new(bindings: impl IntoIterator<Item = (RelName, RelDelta)>) -> Self {
        DeltaValue {
            map: bindings.into_iter().collect(),
        }
    }

    /// Bind (or replace) the delta for `name`.
    pub fn bind(&mut self, name: impl Into<RelName>, delta: RelDelta) {
        self.map.insert(name.into(), delta);
    }

    /// The delta for `name`, if present.
    pub fn get(&self, name: &RelName) -> Option<&RelDelta> {
        self.map.get(name)
    }

    /// Whether no names are bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total tuples held across all deltas — the materialization footprint
    /// of the delta representation (compare [`XsubValue::total_tuples`]).
    pub fn total_tuples(&self) -> usize {
        self.map.values().map(RelDelta::len).sum()
    }

    /// Iterate bindings in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&RelName, &RelDelta)> {
        self.map.iter()
    }

    /// `apply(DB, Δ)`: the state with `R ↦ (DB(R) − R∇) ∪ RΔ`.
    pub fn apply(&self, db: &DatabaseState) -> Result<DatabaseState, EvalError> {
        let mut out = db.clone();
        for (name, d) in &self.map {
            let base = db.get(name)?;
            out.set(
                name.clone(),
                base.difference(&d.deleted)?.union(&d.inserted)?,
            )?;
        }
        Ok(out)
    }

    /// The value of `R` under this delta in `db`, materialized.
    pub fn relation_under(
        &self,
        name: &RelName,
        db: &DatabaseState,
    ) -> Result<Relation, EvalError> {
        let base = db.get(name)?;
        match self.map.get(name) {
            None => Ok(base),
            Some(d) => Ok(base.difference(&d.deleted)?.union(&d.inserted)?),
        }
    }

    /// The smash `Δ₁ ! Δ₂` (§5.5):
    ///
    /// ```text
    /// R∇ = (R∇₁ − RΔ₂) ∪ R∇₂        RΔ = (RΔ₁ − R∇₂) ∪ RΔ₂
    /// ```
    ///
    /// so that `apply(DB, Δ₁!Δ₂) = apply(apply(DB, Δ₁), Δ₂)`.
    pub fn smash(&self, other: &DeltaValue) -> Result<DeltaValue, EvalError> {
        let mut map = self.map.clone();
        for (name, d2) in &other.map {
            let merged = match map.get(name) {
                None => d2.clone(),
                Some(d1) => RelDelta {
                    deleted: d1.deleted.difference(&d2.inserted)?.union(&d2.deleted)?,
                    inserted: d1.inserted.difference(&d2.deleted)?.union(&d2.inserted)?,
                },
            };
            map.insert(name.clone(), merged);
        }
        Ok(DeltaValue { map })
    }

    /// The *precise* delta capturing xsub-value `E` in `db` (§5.5):
    /// `R∇ = DB(R) − E(R)`, `RΔ = E(R) − DB(R)`. Always captures `E`
    /// (`apply(DB, Δ) = apply(DB, E)`), at the cost of computing both
    /// differences.
    pub fn capture_xsub(e: &XsubValue, db: &DatabaseState) -> Result<DeltaValue, EvalError> {
        let mut out = DeltaValue::empty();
        for (name, target) in e.iter() {
            let base = db.get(name)?;
            out.bind(
                name.clone(),
                RelDelta {
                    deleted: base.difference(target)?,
                    inserted: target.difference(&base)?,
                },
            );
        }
        Ok(out)
    }
}

impl fmt::Display for DeltaValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (name, d)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "(−{}, +{})/{name}", d.deleted.len(), d.inserted.len())?;
        }
        write!(f, "}}")
    }
}

/// Iterate the *effective* relation `(base − deleted) ∪ inserted` in sorted
/// order without materializing it: a three-way sorted merge over the
/// `BTreeSet`-backed operands. This is the streaming core of the §5.5
/// delta-filtered operators.
pub fn effective_iter<'a>(
    base: &'a Relation,
    delta: Option<&'a RelDelta>,
) -> Box<dyn Iterator<Item = &'a Tuple> + 'a> {
    match delta {
        None => Box::new(base.iter()),
        Some(d) => {
            // (base − deleted) by sorted anti-merge — O(1) amortized per
            // tuple, never a per-tuple tree lookup — then ∪ inserted by
            // sorted merge. This is the streaming discipline behind the
            // §5.5 "only nominally more expensive" claim.
            let survivors = SortedDiff {
                a: base.iter().peekable(),
                b: d.deleted.iter().peekable(),
            };
            Box::new(SortedUnion {
                a: survivors.peekable(),
                b: d.inserted.iter().peekable(),
            })
        }
    }
}

/// Sorted-merge difference of two ascending tuple streams.
struct SortedDiff<A: Iterator, B: Iterator> {
    a: std::iter::Peekable<A>,
    b: std::iter::Peekable<B>,
}

impl<'a, A, B> Iterator for SortedDiff<A, B>
where
    A: Iterator<Item = &'a Tuple>,
    B: Iterator<Item = &'a Tuple>,
{
    type Item = &'a Tuple;

    fn next(&mut self) -> Option<&'a Tuple> {
        loop {
            let x = self.a.peek()?;
            match self.b.peek() {
                None => return self.a.next(),
                Some(y) => match x.cmp(y) {
                    std::cmp::Ordering::Less => return self.a.next(),
                    std::cmp::Ordering::Greater => {
                        self.b.next();
                    }
                    std::cmp::Ordering::Equal => {
                        self.a.next();
                        self.b.next();
                    }
                },
            }
        }
    }
}

/// Sorted-merge union of two ascending tuple streams, deduplicating.
struct SortedUnion<A: Iterator, B: Iterator> {
    a: std::iter::Peekable<A>,
    b: std::iter::Peekable<B>,
}

impl<'a, A, B> Iterator for SortedUnion<A, B>
where
    A: Iterator<Item = &'a Tuple>,
    B: Iterator<Item = &'a Tuple>,
{
    type Item = &'a Tuple;

    fn next(&mut self) -> Option<&'a Tuple> {
        match (self.a.peek(), self.b.peek()) {
            (None, None) => None,
            (Some(_), None) => self.a.next(),
            (None, Some(_)) => self.b.next(),
            (Some(x), Some(y)) => match x.cmp(y) {
                std::cmp::Ordering::Less => self.a.next(),
                std::cmp::Ordering::Greater => self.b.next(),
                std::cmp::Ordering::Equal => {
                    self.b.next();
                    self.a.next()
                }
            },
        }
    }
}

/// The six-operand `join-when` operator of §5.5: computes
///
/// ```text
/// [(L − L∇) ∪ LΔ] ⋈_p [(R − R∇) ∪ RΔ]
/// ```
///
/// by streaming both effective relations into the join pipeline — neither
/// hypothetical relation is materialized. (Heraclitus used a sort-merge
/// variant; our equi-join core is hash-based with the same streaming
/// contract and the same small-delta cost profile.)
pub fn join_when(
    left_base: &Relation,
    left_delta: Option<&RelDelta>,
    right_base: &Relation,
    right_delta: Option<&RelDelta>,
    pred: &Predicate,
) -> Relation {
    // Index-backed path: when the right *base* has a cached index on the
    // equi columns, probe it per effective left tuple. Base candidates
    // are filtered against R∇, and a small hash table over RΔ covers the
    // inserted side — the index on the shared base storage stays valid no
    // matter the delta.
    let (pairs, residual) = split_equi_pairs(pred, left_base.arity());
    if !pairs.is_empty() && !right_base.is_empty() {
        let cols: Vec<usize> = pairs.iter().map(|p| p.right).collect();
        if let Some(idx) = lookup_index(right_base, &cols) {
            return join_when_indexed(
                left_base,
                left_delta,
                right_base.arity(),
                right_delta,
                &idx,
                &pairs,
                &residual,
            );
        }
    }
    let left = effective_iter(left_base, left_delta);
    let right: Vec<&Tuple> = effective_iter(right_base, right_delta).collect();
    join_iter(
        left,
        left_base.arity(),
        right.into_iter(),
        right_base.arity(),
        pred,
    )
}

/// `join_when` with the right base's cached index as the build side:
/// effective-left tuples probe the base index (candidates checked against
/// `R∇`) plus a hash table over the usually-small `RΔ`.
fn join_when_indexed(
    left_base: &Relation,
    left_delta: Option<&RelDelta>,
    right_arity: usize,
    right_delta: Option<&RelDelta>,
    idx: &ColumnIndex,
    pairs: &[EquiPair],
    residual: &[Predicate],
) -> Relation {
    let mut out = Relation::empty(left_base.arity() + right_arity);
    let passes = |t: &Tuple| residual.iter().all(|p| p.eval(t));
    let deleted = right_delta.map(|d| &d.deleted);
    let mut inserted: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::new();
    if let Some(d) = right_delta {
        for t in d.inserted.iter() {
            let key: Vec<Value> = pairs.iter().map(|p| t[p.right].clone()).collect();
            inserted.entry(key).or_default().push(t);
        }
    }
    for l in effective_iter(left_base, left_delta) {
        let key: Vec<Value> = pairs.iter().map(|p| l[p.left].clone()).collect();
        for r in idx.probe(&key) {
            if deleted.is_some_and(|d| d.contains(r)) {
                continue;
            }
            let joined = l.concat(r);
            if passes(&joined) {
                let _ = out.insert(joined);
            }
        }
        if let Some(matches) = inserted.get(&key) {
            for r in matches {
                let joined = l.concat(r);
                if passes(&joined) {
                    let _ = out.insert(joined);
                }
            }
        }
    }
    out
}

/// `eval_filter_d(Q, Δ)`: evaluate a **pure** RA query against
/// `apply(DB, Δ)` using delta-filtered scans and `join-when`.
pub fn eval_filter_d(
    q: &Query,
    delta: &DeltaValue,
    db: &DatabaseState,
) -> Result<Relation, EvalError> {
    match q {
        Query::Base(name) => delta.relation_under(name, db),
        Query::Singleton(t) => Ok(Relation::singleton(t.clone())),
        Query::Empty { arity } => Ok(Relation::empty(*arity)),
        Query::Select(inner, p) => {
            let input = eval_filter_d(inner, delta, db)?;
            // Point probe only for bases the delta leaves untouched —
            // `relation_under` hands those back with shared base storage.
            if let Query::Base(name) = &**inner {
                if delta.get(name).is_none() {
                    if let Some(out) = access::indexed_select(&input, p, &db.indexed_columns(name))
                    {
                        return Ok(out);
                    }
                }
            }
            Ok(input.select(|t| p.eval(t)))
        }
        Query::Project(inner, cols) => Ok(eval_filter_d(inner, delta, db)?.project(cols)?),
        Query::Union(a, b) => {
            Ok(eval_filter_d(a, delta, db)?.union(&eval_filter_d(b, delta, db)?)?)
        }
        Query::Intersect(a, b) => {
            Ok(eval_filter_d(a, delta, db)?.intersect(&eval_filter_d(b, delta, db)?)?)
        }
        Query::Diff(a, b) => {
            Ok(eval_filter_d(a, delta, db)?.difference(&eval_filter_d(b, delta, db)?)?)
        }
        Query::Product(a, b) => {
            Ok(eval_filter_d(a, delta, db)?.product(&eval_filter_d(b, delta, db)?))
        }
        Query::Join(a, b, p) => {
            // The headline case: base ⋈ base under a delta never
            // materializes the hypothetical operands.
            if let (Query::Base(l), Query::Base(r)) = (&**a, &**b) {
                let lb = db.get(l)?;
                let rb = db.get(r)?;
                // Build the right base's declared index (lazily, cached on
                // its shared storage) so join_when's probe finds it.
                if !rb.is_empty() {
                    let (pairs, _) = split_equi_pairs(p, lb.arity());
                    if !pairs.is_empty() {
                        let cols: Vec<usize> = pairs.iter().map(|pr| pr.right).collect();
                        let decl = db.indexed_columns(r);
                        if cols.iter().all(|c| decl.contains(c)) {
                            let _ = lookup_or_build_index(&rb, &cols);
                        }
                    }
                }
                return Ok(join_when(&lb, delta.get(l), &rb, delta.get(r), p));
            }
            Ok(crate::join::join(
                &eval_filter_d(a, delta, db)?,
                &eval_filter_d(b, delta, db)?,
                p,
            ))
        }
        Query::When(_, _) => Err(EvalError::UnsupportedShape(q.to_string())),
        Query::Aggregate {
            input,
            group_by,
            aggs,
        } => eval_aggregate(&eval_filter_d(input, delta, db)?, group_by, aggs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypoquery_algebra::CmpOp;
    use hypoquery_storage::{tuple, Catalog};

    fn rel(vals: &[i64]) -> Relation {
        Relation::from_rows(1, vals.iter().map(|&v| tuple![v])).unwrap()
    }

    fn db() -> DatabaseState {
        let mut cat = Catalog::new();
        cat.declare_arity("R", 2).unwrap();
        cat.declare_arity("S", 2).unwrap();
        let mut db = DatabaseState::new(cat);
        db.insert_rows("R", [tuple![1, 10], tuple![2, 20], tuple![3, 30]])
            .unwrap();
        db.insert_rows("S", [tuple![2, 200], tuple![3, 300], tuple![4, 400]])
            .unwrap();
        db
    }

    fn rel2(rows: &[[i64; 2]]) -> Relation {
        Relation::from_rows(2, rows.iter().map(|&[a, b]| tuple![a, b])).unwrap()
    }

    #[test]
    fn apply_delta() {
        let db = db();
        let d = DeltaValue::new([(
            "R".into(),
            RelDelta {
                deleted: rel2(&[[1, 10]]),
                inserted: rel2(&[[9, 90]]),
            },
        )]);
        let out = d.apply(&db).unwrap();
        assert_eq!(
            out.get(&"R".into()).unwrap(),
            rel2(&[[2, 20], [3, 30], [9, 90]])
        );
        assert_eq!(out.get(&"S".into()).unwrap(), db.get(&"S".into()).unwrap());
    }

    #[test]
    fn smash_equals_sequential_application() {
        let db = db();
        let d1 = DeltaValue::new([(
            "R".into(),
            RelDelta {
                deleted: rel2(&[[1, 10]]),
                inserted: rel2(&[[9, 90]]),
            },
        )]);
        let d2 = DeltaValue::new([(
            "R".into(),
            RelDelta {
                deleted: rel2(&[[9, 90], [2, 20]]),
                inserted: rel2(&[[1, 10]]),
            },
        )]);
        let smashed = d1.smash(&d2).unwrap();
        let lhs = smashed.apply(&db).unwrap();
        let rhs = d2.apply(&d1.apply(&db).unwrap()).unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn capture_xsub_is_precise() {
        let db = db();
        let e = XsubValue::new([("R".into(), rel2(&[[2, 20], [9, 90]]))]);
        let d = DeltaValue::capture_xsub(&e, &db).unwrap();
        let rd = d.get(&"R".into()).unwrap();
        assert_eq!(rd.deleted, rel2(&[[1, 10], [3, 30]]));
        assert_eq!(rd.inserted, rel2(&[[9, 90]]));
        assert_eq!(d.apply(&db).unwrap(), e.apply(&db).unwrap());
    }

    #[test]
    fn effective_iter_streams_sorted_dedup() {
        let base = rel(&[1, 2, 3, 5]);
        let d = RelDelta {
            deleted: rel(&[2]),
            inserted: rel(&[3, 4, 6]),
        };
        let vals: Vec<i64> = effective_iter(&base, Some(&d))
            .map(|t| t[0].as_int().unwrap())
            .collect();
        assert_eq!(vals, [1, 3, 4, 5, 6]);
        // No delta: base order.
        let vals: Vec<i64> = effective_iter(&base, None)
            .map(|t| t[0].as_int().unwrap())
            .collect();
        assert_eq!(vals, [1, 2, 3, 5]);
    }

    #[test]
    fn join_when_matches_materialized_join() {
        let db = db();
        let rd = RelDelta {
            deleted: rel2(&[[2, 20]]),
            inserted: rel2(&[[4, 40]]),
        };
        let sd = RelDelta {
            deleted: rel2(&[[4, 400]]),
            inserted: rel2(&[[1, 100]]),
        };
        let p = Predicate::col_col(0, CmpOp::Eq, 2);
        let fast = join_when(
            &db.get(&"R".into()).unwrap(),
            Some(&rd),
            &db.get(&"S".into()).unwrap(),
            Some(&sd),
            &p,
        );
        // Oracle: materialize both effective relations, then join.
        let left = rel2(&[[1, 10], [3, 30], [4, 40]]);
        let right = rel2(&[[2, 200], [3, 300], [1, 100]]);
        let slow = crate::join::join(&left, &right, &p);
        assert_eq!(fast, slow);
        // Matches: (1,10)-(1,100) and (3,30)-(3,300).
        assert_eq!(fast.len(), 2);
    }

    #[test]
    fn join_when_indexed_matches_fallback() {
        let db = db();
        let rb = db.get(&"S".into()).unwrap();
        let lb = db.get(&"R".into()).unwrap();
        let rd = RelDelta {
            deleted: rel2(&[[4, 400]]),
            inserted: rel2(&[[1, 100], [2, 200]]), // (2,200) also in base
        };
        let ld = RelDelta {
            deleted: rel2(&[[2, 20]]),
            inserted: rel2(&[[4, 40]]),
        };
        let p = Predicate::col_col(0, CmpOp::Eq, 2).and(Predicate::col_cmp(3, CmpOp::Lt, 250));
        let plain = join_when(&lb, Some(&ld), &rb, Some(&rd), &p);
        // Build the base index; the probe path must agree exactly.
        let _ = lookup_or_build_index(&rb, &[0]);
        let probed = join_when(&lb, Some(&ld), &rb, Some(&rd), &p);
        assert_eq!(probed, plain);
        // No right delta at all.
        assert_eq!(join_when(&lb, Some(&ld), &rb, None, &p), {
            let left = rel2(&[[1, 10], [3, 30], [4, 40]]);
            crate::join::join_iter(left.iter(), 2, rb.iter(), 2, &p)
        });
    }

    #[test]
    fn eval_filter_d_equals_eval_in_applied_state() {
        let db = db();
        let d = DeltaValue::new([
            (
                "R".into(),
                RelDelta {
                    deleted: rel2(&[[1, 10]]),
                    inserted: rel2(&[[4, 44]]),
                },
            ),
            ("S".into(), RelDelta::insertion(rel2(&[[1, 111]]))),
        ]);
        let q = Query::base("R")
            .join(Query::base("S"), Predicate::col_col(0, CmpOp::Eq, 2))
            .project([0, 3]);
        let fast = eval_filter_d(&q, &d, &db).unwrap();
        let slow = crate::direct::eval_query(&q, &d.apply(&db).unwrap()).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn eval_filter_d_rejects_when() {
        let db = db();
        let q = Query::base("R").when(hypoquery_algebra::StateExpr::subst(
            hypoquery_algebra::ExplicitSubst::empty(),
        ));
        assert!(matches!(
            eval_filter_d(&q, &DeltaValue::empty(), &db),
            Err(EvalError::UnsupportedShape(_))
        ));
    }

    #[test]
    fn display_shows_delta_sizes() {
        let d = DeltaValue::new([(
            "R".into(),
            RelDelta {
                deleted: rel(&[1]),
                inserted: rel(&[2, 3]),
            },
        )]);
        assert_eq!(d.to_string(), "{(−1, +2)/R}");
        assert_eq!(d.total_tuples(), 3);
    }
}
