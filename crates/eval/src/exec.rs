//! Parallel scenario execution.
//!
//! Hypothetical queries are embarrassingly parallel across scenarios: each
//! branch of a what-if tree (and each member of a prepared query family)
//! evaluates against its own copy-on-write snapshot, shares the base
//! relations physically (see `hypoquery-storage`), and writes nothing
//! shared. This module provides the one primitive the engine layers on —
//! [`parallel_map`] — built on `std::thread::scope` so it needs no
//! dependencies and no `'static` bounds.
//!
//! Work distribution is a single atomic cursor: workers pull the next
//! index until the items run out, which load-balances uneven scenarios
//! (one expensive branch doesn't serialize behind a fixed pre-split).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use for scenario fan-out.
///
/// `HYPOQUERY_THREADS` overrides when set to a positive integer
/// (`1` forces sequential execution). Anything else — `0`, the empty
/// string, garbage, or a value over [`MAX_THREAD_OVERRIDE`] — is
/// rejected and falls back to the machine's available parallelism, so a
/// typo can neither disable evaluation nor fork-bomb the host.
pub fn num_workers() -> usize {
    if let Some(n) = std::env::var("HYPOQUERY_THREADS")
        .ok()
        .as_deref()
        .and_then(thread_override)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Upper bound accepted from `HYPOQUERY_THREADS`; larger values are
/// treated as invalid (far beyond any sane core count, small enough that
/// a stray byte can't request billions of threads).
pub const MAX_THREAD_OVERRIDE: usize = 1024;

/// Parse a `HYPOQUERY_THREADS` value: `Some(n)` for `1..=MAX_THREAD_OVERRIDE`
/// (surrounding whitespace tolerated), `None` for everything else.
fn thread_override(s: &str) -> Option<usize> {
    match s.trim().parse::<usize>() {
        Ok(n) if (1..=MAX_THREAD_OVERRIDE).contains(&n) => Some(n),
        _ => None,
    }
}

/// Apply `f` to every item, fanning out across [`num_workers`] threads,
/// and return the results in item order.
///
/// `f` is called as `f(index, &item)`. Results come back exactly as a
/// sequential `items.iter().enumerate().map(f).collect()` would produce
/// them — parallelism is unobservable except in wall-clock time (callers
/// must keep `f` deterministic and side-effect-free for that to hold,
/// which CoW snapshots give for free). A panic in any worker propagates.
///
/// Short inputs (0 or 1 items) and single-worker configurations run
/// inline with no thread spawned.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = num_workers().min(n);
    if n <= 1 || workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(part) => part,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// [`parallel_map`] for fallible work: stops at nothing (all items run),
/// then returns the first error in *item order*, matching what a
/// sequential `collect::<Result<Vec<_>, _>>()` would report.
pub fn try_parallel_map<T, R, E, F>(items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    parallel_map(items, f).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = parallel_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u32> = vec![];
        assert!(parallel_map(&none, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn first_error_in_item_order() {
        let items: Vec<usize> = (0..100).collect();
        let r: Result<Vec<usize>, usize> =
            try_parallel_map(&items, |_, &x| if x % 30 == 29 { Err(x) } else { Ok(x) });
        assert_eq!(r, Err(29));
    }

    #[test]
    #[should_panic(expected = "boom 13")]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..64).collect();
        parallel_map(&items, |_, &x| {
            if x == 13 {
                panic!("boom 13");
            }
            x
        });
    }

    #[test]
    fn thread_override_accepts_only_positive_integers() {
        assert_eq!(thread_override("1"), Some(1));
        assert_eq!(thread_override(" 8 "), Some(8));
        assert_eq!(thread_override("1024"), Some(MAX_THREAD_OVERRIDE));
        // Rejected: zero, negatives, garbage, empty, overflow, huge.
        for bad in [
            "0",
            "-4",
            "four",
            "",
            "  ",
            "8.5",
            "1025",
            "99999999999999999999",
        ] {
            assert_eq!(thread_override(bad), None, "{bad:?} should be rejected");
        }
    }

    #[test]
    fn actually_uses_multiple_threads() {
        if num_workers() < 2 {
            return; // single-core CI: nothing to assert
        }
        let items: Vec<usize> = (0..64).collect();
        let ids: Vec<std::thread::ThreadId> =
            parallel_map(&items, |_, _| std::thread::current().id());
        let distinct: std::collections::BTreeSet<String> =
            ids.iter().map(|id| format!("{id:?}")).collect();
        assert!(distinct.len() > 1, "expected fan-out across threads");
    }
}
