//! Explicit substitution values — *xsub-values* (§5.3).
//!
//! An xsub-value `E` is a partial map from relation names to physical
//! relations: the materialized form of an explicit substitution in a given
//! state. The two operators of §5.3 are [`XsubValue::apply`] and the smash
//! `E₁ ! E₂` ([`XsubValue::smash`]), with
//!
//! ```text
//! apply(DB, [ε]ₓ(DB)) = [[ε]](DB)
//! [ε₁ # ε₂]ₓ(DB)      = [ε₁]ₓ(DB) ! [ε₂]ₓ(apply(DB, [ε₁]ₓ(DB)))
//! ```
//!
//! both of which are property-tested in `tests/`.

use std::collections::BTreeMap;
use std::fmt;

use hypoquery_storage::{DatabaseState, RelName, Relation};

use hypoquery_algebra::ExplicitSubst;

use crate::direct::eval_query;
use crate::error::EvalError;

/// A materialized explicit substitution: `{J₁/R₁, …, Jₙ/Rₙ}` with each `Jᵢ`
/// a physical relation.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct XsubValue {
    map: BTreeMap<RelName, Relation>,
}

impl XsubValue {
    /// The empty xsub-value `{ }`.
    pub fn empty() -> Self {
        XsubValue::default()
    }

    /// Build from (name, relation) pairs.
    pub fn new(bindings: impl IntoIterator<Item = (RelName, Relation)>) -> Self {
        XsubValue {
            map: bindings.into_iter().collect(),
        }
    }

    /// Bind (or replace) `name ↦ value`.
    pub fn bind(&mut self, name: impl Into<RelName>, value: Relation) {
        self.map.insert(name.into(), value);
    }

    /// The relation bound to `name`, if any.
    pub fn get(&self, name: &RelName) -> Option<&Relation> {
        self.map.get(name)
    }

    /// Whether no names are bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of bound names.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Total tuples across all bound relations (materialization size — the
    /// quantity eager strategies pay for; see benches E2/E3/E5).
    pub fn total_tuples(&self) -> usize {
        self.map.values().map(Relation::len).sum()
    }

    /// Iterate bindings in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&RelName, &Relation)> {
        self.map.iter()
    }

    /// `apply(DB, E)`: the state reading bound names from `E` and all
    /// others from `DB`.
    pub fn apply(&self, db: &DatabaseState) -> Result<DatabaseState, EvalError> {
        let mut out = db.clone();
        for (name, rel) in &self.map {
            out.set(name.clone(), rel.clone())?;
        }
        Ok(out)
    }

    /// The smash `self ! other` (§5.3): bindings of `other` win;
    /// `self`'s bindings survive where `other` is silent.
    pub fn smash(&self, other: &XsubValue) -> XsubValue {
        let mut map = self.map.clone();
        for (name, rel) in &other.map {
            map.insert(name.clone(), rel.clone());
        }
        XsubValue { map }
    }
}

impl fmt::Display for XsubValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (name, rel)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "[{} tuples]/{name}", rel.len())?;
        }
        write!(f, "}}")
    }
}

/// `[ε]ₓ(DB)`: materialize an explicit substitution into an xsub-value by
/// evaluating every binding in `DB` (§5.3). Bindings may be full HQL
/// queries (ENF permits `when` inside them).
pub fn materialize_subst(eps: &ExplicitSubst, db: &DatabaseState) -> Result<XsubValue, EvalError> {
    let mut out = XsubValue::empty();
    for (name, q) in eps.iter() {
        out.bind(name.clone(), eval_query(q, db)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypoquery_algebra::Query;
    use hypoquery_storage::{tuple, Catalog};

    fn db() -> DatabaseState {
        let mut cat = Catalog::new();
        cat.declare_arity("R", 1).unwrap();
        cat.declare_arity("S", 1).unwrap();
        let mut db = DatabaseState::new(cat);
        db.insert_rows("R", [tuple![1], tuple![2]]).unwrap();
        db.insert_rows("S", [tuple![9]]).unwrap();
        db
    }

    fn rel(vals: &[i64]) -> Relation {
        Relation::from_rows(1, vals.iter().map(|&v| tuple![v])).unwrap()
    }

    #[test]
    fn apply_overlays_bindings() {
        let db = db();
        let e = XsubValue::new([("R".into(), rel(&[5]))]);
        let out = e.apply(&db).unwrap();
        assert_eq!(out.get(&"R".into()).unwrap(), rel(&[5]));
        assert_eq!(out.get(&"S".into()).unwrap(), rel(&[9]));
    }

    #[test]
    fn smash_right_biased() {
        let e1 = XsubValue::new([("R".into(), rel(&[1])), ("S".into(), rel(&[2]))]);
        let e2 = XsubValue::new([("S".into(), rel(&[3])), ("T".into(), rel(&[4]))]);
        let s = e1.smash(&e2);
        assert_eq!(s.get(&"R".into()), Some(&rel(&[1])));
        assert_eq!(s.get(&"S".into()), Some(&rel(&[3])));
        assert_eq!(s.get(&"T".into()), Some(&rel(&[4])));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn smash_with_empty_is_identity() {
        let e = XsubValue::new([("R".into(), rel(&[1]))]);
        assert_eq!(e.smash(&XsubValue::empty()), e);
        assert_eq!(XsubValue::empty().smash(&e), e);
    }

    #[test]
    fn materialize_evaluates_bindings() {
        let db = db();
        let eps = ExplicitSubst::single("R", Query::base("R").union(Query::base("S")));
        let e = materialize_subst(&eps, &db).unwrap();
        assert_eq!(e.get(&"R".into()), Some(&rel(&[1, 2, 9])));
        assert_eq!(e.total_tuples(), 3);
        // apply(DB, [ε]ₓ(DB)) = [[ε]](DB)
        let lhs = e.apply(&db).unwrap();
        let rhs = crate::direct::apply_subst(&db, &eps).unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn display_shows_sizes() {
        let e = XsubValue::new([("R".into(), rel(&[1, 2]))]);
        assert_eq!(e.to_string(), "{[2 tuples]/R}");
    }
}
