//! Properties of the parallel multi-scenario executor and the
//! copy-on-write snapshot storage underneath it:
//!
//! 1. parallel fan-out (`execute_many`, `query_all_branches`,
//!    `query_batch`) returns exactly what the sequential entry points
//!    return, for every evaluation strategy;
//! 2. copy-on-write snapshots are isolated — arbitrary updates applied to
//!    a clone never leak into the original state — while untouched
//!    relations stay physically shared.

use proptest::prelude::*;

use hypoquery_engine::{Database, PreparedState, Strategy, WhatIfTree};
use hypoquery_testkit::{
    arb_atomic_update_seq, arb_db, arb_pure_query, arb_query, arb_update, Universe,
};

const STRATEGIES: [Strategy; 5] = [
    Strategy::Auto,
    Strategy::Lazy,
    Strategy::Hql1,
    Strategy::Hql2,
    Strategy::Delta,
];

fn database_of(state: &hypoquery_storage::DatabaseState) -> Database {
    let mut db = Database::with_catalog(state.catalog().clone());
    for (name, rel) in state.iter() {
        db.load(name.as_str(), rel.iter().cloned()).unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `execute_many` over a family of random (possibly hypothetical)
    /// queries equals executing each member sequentially — same results,
    /// same first error — for every strategy.
    #[test]
    fn execute_many_matches_sequential(
        queries in prop::collection::vec(arb_query(&Universe::standard(), 2, 3), 1..6),
        state in arb_db(&Universe::standard(), 5),
    ) {
        let db = database_of(&state);
        for s in STRATEGIES {
            let seq: Result<Vec<_>, _> =
                queries.iter().map(|q| db.execute(q, s)).collect();
            let par = db.execute_many(&queries, s);
            match (seq, par) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "strategy {}", s),
                (Err(a), Err(b)) => {
                    prop_assert_eq!(a.to_string(), b.to_string(), "strategy {}", s)
                }
                (a, b) => prop_assert!(false, "strategy {}: {:?} vs {:?}", s, a, b),
            }
        }
    }

    /// `query_all_branches` agrees with per-branch `query_at` on a
    /// what-if tree built from random update chains.
    #[test]
    fn query_all_branches_matches_query_at(
        updates in prop::collection::vec(arb_update(&Universe::standard(), 1), 1..5),
        chain in prop::collection::vec(any::<bool>(), 1..5),
        state in arb_db(&Universe::standard(), 5),
    ) {
        let db = database_of(&state);
        let mut tree = WhatIfTree::new();
        let mut last: Option<String> = None;
        for (i, u) in updates.iter().enumerate() {
            let name = format!("b{i}");
            // Alternate between chaining off the previous branch and
            // starting fresh from the root, per the random `chain` bits.
            let parent = if *chain.get(i).unwrap_or(&false) { last.as_deref() } else { None };
            tree.branch_update(&db, &name, parent, u.clone()).unwrap();
            last = Some(name);
        }
        for s in [Strategy::Auto, Strategy::Lazy, Strategy::Hql1, Strategy::Hql2] {
            let all = tree.query_all_branches(&db, "R", s).unwrap();
            prop_assert_eq!(all.len(), updates.len());
            for name in tree.branch_names() {
                let direct = tree.query_at(&db, name, "R", s).unwrap();
                prop_assert_eq!(&all[name], &direct, "branch {} strategy {}", name, s);
            }
        }
    }

    /// A prepared state's `query_batch` equals per-member `query`, both
    /// lazy and materialized. Family members are pure queries — the
    /// materialized (`filter1`) path requires ENF, i.e. no raw-update
    /// `when` nesting inside members.
    #[test]
    fn prepared_batch_matches_sequential(
        updates in arb_atomic_update_seq(&Universe::standard(), 3),
        queries in prop::collection::vec(arb_pure_query(&Universe::standard(), 2, 2), 1..5),
        state in arb_db(&Universe::standard(), 5),
    ) {
        let db = database_of(&state);
        let eta = hypoquery_algebra::StateExpr::update(updates);
        let mut p = PreparedState::new(&db, eta).unwrap();
        for materialized in [false, true] {
            if materialized {
                p.materialize(&db).unwrap();
            }
            let seq: Vec<_> =
                queries.iter().map(|q| p.query(&db, q).unwrap()).collect();
            let par = p.query_batch(&db, &queries).unwrap();
            prop_assert_eq!(par, seq, "materialized={}", materialized);
        }
    }

    /// Copy-on-write isolation: applying an arbitrary update to a cloned
    /// state never changes the original, and relations the update does
    /// not touch remain physically shared between base and branch.
    #[test]
    fn cow_snapshots_are_isolated(
        updates in arb_atomic_update_seq(&Universe::standard(), 3),
        state in arb_db(&Universe::standard(), 5),
    ) {
        let pristine = state.clone();
        prop_assert!(pristine.shares_storage_with(&state));

        let branch = hypoquery_eval::eval_update(&updates, &state).unwrap();
        // The base state is bit-for-bit what it was.
        prop_assert_eq!(&state, &pristine);
        // Relations present in both and equal in value must share
        // storage in at least the untouched case: verify that every
        // relation the update left identical is not a deep copy.
        for (name, base_rel) in state.iter() {
            if let Some(branch_rel) = branch.get_ref(name) {
                if base_rel == branch_rel {
                    prop_assert!(
                        base_rel.ptr_eq(branch_rel),
                        "untouched relation {} was deep-copied", name
                    );
                }
            }
        }
    }

    /// Fan-out across clones: many branches evaluated in parallel from
    /// one base agree with sequential evaluation and leave the base
    /// untouched.
    #[test]
    fn parallel_branches_leave_base_untouched(
        updates in prop::collection::vec(arb_atomic_update_seq(&Universe::standard(), 2), 1..6),
        state in arb_db(&Universe::standard(), 4),
    ) {
        let pristine = state.clone();
        let branches = hypoquery_eval::try_parallel_map(&updates, |_, u| {
            hypoquery_eval::eval_update(u, &state)
        }).unwrap();
        let sequential: Vec<_> = updates
            .iter()
            .map(|u| hypoquery_eval::eval_update(u, &state).unwrap())
            .collect();
        prop_assert_eq!(branches, sequential);
        prop_assert_eq!(&state, &pristine);
    }
}
