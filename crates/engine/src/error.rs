//! Engine-level error type, unifying the layers below.

use std::fmt;

use hypoquery_algebra::TypeError;
use hypoquery_core::EnfError;
use hypoquery_eval::EvalError;
use hypoquery_parser::ParseError;
use hypoquery_storage::StorageError;

/// Any error the engine can surface.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EngineError {
    /// Surface-syntax error.
    Parse(ParseError),
    /// Arity/typing error.
    Type(TypeError),
    /// Evaluation error.
    Eval(EvalError),
    /// Storage error.
    Storage(StorageError),
    /// Normal-form error (e.g. delta strategy requested for a query with
    /// no mod-ENF form).
    Enf(EnfError),
    /// An integrity constraint would be violated by an update; the update
    /// was not applied.
    ConstraintViolation {
        /// The violated constraint's name.
        constraint: String,
        /// Number of violating tuples found.
        violations: usize,
    },
    /// A name was already in use (constraint, branch, temp table).
    DuplicateName(String),
    /// A referenced name (branch, constraint, temp) does not exist.
    UnknownName(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Type(e) => write!(f, "{e}"),
            EngineError::Eval(e) => write!(f, "{e}"),
            EngineError::Storage(e) => write!(f, "{e}"),
            EngineError::Enf(e) => write!(f, "{e}"),
            EngineError::ConstraintViolation {
                constraint,
                violations,
            } => write!(
                f,
                "update aborted: constraint `{constraint}` violated by {violations} tuple(s)"
            ),
            EngineError::DuplicateName(n) => write!(f, "name `{n}` is already in use"),
            EngineError::UnknownName(n) => write!(f, "unknown name `{n}`"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e)
    }
}

impl From<TypeError> for EngineError {
    fn from(e: TypeError) -> Self {
        EngineError::Type(e)
    }
}

impl From<EvalError> for EngineError {
    fn from(e: EvalError) -> Self {
        EngineError::Eval(e)
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<EnfError> for EngineError {
    fn from(e: EnfError) -> Self {
        EngineError::Enf(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = EngineError::ConstraintViolation {
            constraint: "c1".into(),
            violations: 3,
        };
        assert!(e.to_string().contains("c1"));
        assert!(e.to_string().contains("3"));
        assert!(EngineError::DuplicateName("x".into())
            .to_string()
            .contains("already in use"));
        assert!(EngineError::UnknownName("y".into())
            .to_string()
            .contains("unknown name"));
        let p: EngineError = ParseError {
            offset: 0,
            message: "m".into(),
        }
        .into();
        assert!(p.to_string().contains("parse error"));
    }
}
