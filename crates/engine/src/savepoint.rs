//! Savepoints and transactions over hypothetical states.
//!
//! A [`Transaction`] buffers updates instead of applying them: its
//! pending updates form one hypothetical state, so reads *inside* the
//! transaction are ordinary hypothetical queries against the real state —
//! nothing is copied, locked, or undone. `commit` applies the buffered
//! sequence through the database's constraint checking in one shot;
//! `rollback` (or drop) discards it. Savepoints are just markers into the
//! buffered sequence.
//!
//! This is the "version management" application of the introduction, with
//! the paper's machinery doing all the work: reads-in-a-transaction are
//! `Q when {pending}`, and the planner freely chooses lazy/eager per
//! query.

use hypoquery_storage::Relation;

use hypoquery_algebra::typing::check_update;
use hypoquery_algebra::{StateExpr, Update};
use hypoquery_parser::{parse_query_named, parse_update_named};

use crate::database::{Database, Strategy};
use crate::error::EngineError;

/// A buffered, hypothetical transaction over a database.
#[derive(Clone, Debug, Default)]
pub struct Transaction {
    /// Buffered updates, in execution order.
    pending: Vec<Update>,
    /// Named savepoints: name → length of `pending` when created.
    savepoints: Vec<(String, usize)>,
}

impl Transaction {
    /// Begin an empty transaction.
    pub fn begin() -> Self {
        Transaction::default()
    }

    /// Number of buffered updates.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Buffer an update (type-checked now, applied at commit).
    pub fn update(&mut self, db: &Database, src: &str) -> Result<(), EngineError> {
        let u = parse_update_named(src, db.catalog())?;
        check_update(&u, db.catalog())?;
        self.pending.push(u);
        Ok(())
    }

    /// Create a named savepoint at the current position.
    pub fn savepoint(&mut self, name: &str) -> Result<(), EngineError> {
        if self.savepoints.iter().any(|(n, _)| n == name) {
            return Err(EngineError::DuplicateName(name.to_string()));
        }
        self.savepoints.push((name.to_string(), self.pending.len()));
        Ok(())
    }

    /// Roll back to a savepoint, discarding later updates and later
    /// savepoints. The savepoint itself stays usable.
    pub fn rollback_to(&mut self, name: &str) -> Result<(), EngineError> {
        let idx = self
            .savepoints
            .iter()
            .position(|(n, _)| n == name)
            .ok_or_else(|| EngineError::UnknownName(name.to_string()))?;
        let keep = self.savepoints[idx].1;
        self.pending.truncate(keep);
        self.savepoints.truncate(idx + 1);
        Ok(())
    }

    /// Discard everything.
    pub fn rollback(&mut self) {
        self.pending.clear();
        self.savepoints.clear();
    }

    /// The pending updates as one hypothetical state expression, if any.
    pub fn as_state(&self) -> Option<StateExpr> {
        let mut it = self.pending.iter().cloned();
        let first = it.next()?;
        Some(StateExpr::update(it.fold(first, Update::then)))
    }

    /// Read inside the transaction: the query sees the real state plus
    /// every buffered update — hypothetically.
    pub fn query(&self, db: &Database, src: &str) -> Result<Relation, EngineError> {
        let q = parse_query_named(src, db.catalog())?;
        match self.as_state() {
            None => db.execute(&q, Strategy::Auto),
            Some(eta) => db.execute(&q.when(eta), Strategy::Auto),
        }
    }

    /// Apply the buffered updates for real (single constraint-checked
    /// sequence — all or nothing) and end the transaction.
    pub fn commit(self, db: &mut Database) -> Result<(), EngineError> {
        if let Some(StateExpr::Update(u)) = self.as_state() {
            db.apply_update(&u)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypoquery_storage::tuple;

    fn db() -> Database {
        let mut db = Database::new();
        db.define_named("acct", ["id", "bal"]).unwrap();
        db.load("acct", [tuple![1, 100], tuple![2, 50]]).unwrap();
        db.add_constraint("no_neg", "select bal < 0 (acct)")
            .unwrap();
        db
    }

    #[test]
    fn reads_see_pending_writes_hypothetically() {
        let mut base = db();
        let mut tx = Transaction::begin();
        tx.update(&base, "insert into acct (row(3, 75))").unwrap();
        assert_eq!(tx.query(&base, "acct").unwrap().len(), 3);
        // Real state untouched until commit.
        assert_eq!(base.query("acct").unwrap().len(), 2);
        tx.commit(&mut base).unwrap();
        assert_eq!(base.query("acct").unwrap().len(), 3);
    }

    #[test]
    fn savepoints_truncate_pending() {
        let base = db();
        let mut tx = Transaction::begin();
        tx.update(&base, "insert into acct (row(3, 75))").unwrap();
        tx.savepoint("sp1").unwrap();
        tx.update(&base, "delete from acct (acct)").unwrap();
        assert!(tx.query(&base, "acct").unwrap().is_empty());
        tx.rollback_to("sp1").unwrap();
        assert_eq!(tx.query(&base, "acct").unwrap().len(), 3);
        assert_eq!(tx.len(), 1);
        // Savepoint survives and can be reused.
        tx.update(&base, "delete from acct (select id = 1 (acct))")
            .unwrap();
        tx.rollback_to("sp1").unwrap();
        assert_eq!(tx.len(), 1);
        // Unknown / duplicate names error.
        assert!(tx.rollback_to("nope").is_err());
        assert!(tx.savepoint("sp1").is_err());
    }

    #[test]
    fn commit_is_all_or_nothing_via_constraints() {
        let mut base = db();
        let mut tx = Transaction::begin();
        // Two updates: the pair would overdraw account 2.
        tx.update(&base, "delete from acct (row(2, 50))").unwrap();
        tx.update(&base, "insert into acct (row(2, -10))").unwrap();
        // Inside the transaction the (future) violation is visible
        // hypothetically.
        assert_eq!(tx.query(&base, "select bal < 0 (acct)").unwrap().len(), 1);
        let err = tx.clone().commit(&mut base).unwrap_err();
        assert!(matches!(err, EngineError::ConstraintViolation { .. }));
        // Nothing happened.
        assert_eq!(base.query("acct").unwrap().len(), 2);
        // Fix it and commit.
        tx.rollback();
        assert!(tx.is_empty());
        tx.update(&base, "delete from acct (row(2, 50))").unwrap();
        tx.update(&base, "insert into acct (row(2, 0))").unwrap();
        tx.commit(&mut base).unwrap();
        assert!(base.query("acct").unwrap().contains(&tuple![2, 0]));
    }

    #[test]
    fn empty_transaction_commits_as_noop() {
        let mut base = db();
        let tx = Transaction::begin();
        assert!(tx.as_state().is_none());
        tx.commit(&mut base).unwrap();
        assert_eq!(base.query("acct").unwrap().len(), 2);
    }
}
