//! # hypoquery-engine
//!
//! The public facade of the `hypoquery` framework:
//!
//! * [`Database`] — schema definition, loading, real (constraint-checked)
//!   updates, and hypothetical queries with a selectable evaluation
//!   [`Strategy`] spanning the paper's eager↔lazy spectrum, plus
//!   `EXPLAIN`;
//! * [`WhatIfTree`] — named trees of hypothetical updates (the
//!   decision-support scenario of Example 2.1);
//! * [`ext`] — §6 extensions: temporary tables as substitutions and
//!   `η₁ when η₂`.

#![warn(missing_docs)]

pub mod database;
pub mod error;
pub mod ext;
pub mod prepared;
pub mod savepoint;
pub mod whatif;

pub use database::{render_table, Constraint, Database, Strategy};
pub use error::EngineError;
pub use ext::{state_when, TempTables};
pub use prepared::PreparedState;
pub use savepoint::Transaction;
pub use whatif::WhatIfTree;
