//! The `Database` facade: schema definition, data loading, real updates,
//! hypothetical queries with selectable evaluation strategy, integrity
//! constraints, and `EXPLAIN`.

use std::collections::BTreeMap;
use std::fmt;

use hypoquery_storage::{Catalog, DatabaseState, RelName, RelSchema, Relation, Tuple};

use hypoquery_algebra::typing::{arity_of, check_update};
use hypoquery_algebra::{Query, Update};
use hypoquery_core::{fully_lazy, to_enf_query, to_mod_enf, RewriteTrace};
use hypoquery_eval::{
    algorithm_hql1, algorithm_hql2, algorithm_hql3, eval_pure, eval_update, ExecMetrics, PhysPlan,
};
use hypoquery_opt::{lower_plan, lower_query, optimize, plan, Plan, PlannedStrategy, Statistics};
use hypoquery_parser::{parse_query_named, parse_update_named};

use crate::error::EngineError;

/// How a hypothetical query should be evaluated.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Strategy {
    /// Let the planner choose (cost-based over lazy / eager / delta /
    /// hybrid — the paper's full spectrum).
    #[default]
    Auto,
    /// Fully lazy: reduce to pure RA, optimize, evaluate conventionally.
    Lazy,
    /// Eager, node-at-a-time: Algorithm HQL-1.
    Hql1,
    /// Eager, clustered: Algorithm HQL-2.
    Hql2,
    /// Eager with delta values: Algorithm HQL-3 (requires a mod-ENF form).
    Delta,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Strategy::Auto => "auto",
            Strategy::Lazy => "lazy",
            Strategy::Hql1 => "hql1",
            Strategy::Hql2 => "hql2",
            Strategy::Delta => "delta",
        };
        write!(f, "{s}")
    }
}

impl std::str::FromStr for Strategy {
    type Err = EngineError;

    /// Accepts exactly the [`fmt::Display`] names (case-insensitive).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Ok(Strategy::Auto),
            "lazy" => Ok(Strategy::Lazy),
            "hql1" => Ok(Strategy::Hql1),
            "hql2" => Ok(Strategy::Hql2),
            "delta" => Ok(Strategy::Delta),
            other => Err(EngineError::UnknownName(format!("strategy {other}"))),
        }
    }
}

/// An integrity constraint: a query that must evaluate to the empty
/// relation in every committed state.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// The violation query (non-empty result = violation).
    pub violation_query: Query,
}

/// The main entry point: a catalog, a current state, integrity
/// constraints, and query/update execution across the eager↔lazy spectrum.
#[derive(Clone, Debug)]
pub struct Database {
    state: DatabaseState,
    constraints: BTreeMap<String, Constraint>,
}

impl Database {
    /// An empty database with an empty catalog.
    pub fn new() -> Self {
        Database {
            state: DatabaseState::new(Catalog::new()),
            constraints: BTreeMap::new(),
        }
    }

    /// Create over an existing catalog.
    pub fn with_catalog(catalog: Catalog) -> Self {
        Database {
            state: DatabaseState::new(catalog),
            constraints: BTreeMap::new(),
        }
    }

    /// Declare a relation with positional columns.
    pub fn define(&mut self, name: &str, arity: usize) -> Result<(), EngineError> {
        self.define_schema(name, RelSchema::positional(arity))
    }

    /// Declare a relation with named columns; queries can then reference
    /// them by name (`select salary >= 200 (emp)`).
    pub fn define_named(
        &mut self,
        name: &str,
        attrs: impl IntoIterator<Item = impl Into<String>>,
    ) -> Result<(), EngineError> {
        self.define_schema(name, RelSchema::named(attrs))
    }

    fn define_schema(&mut self, name: &str, schema: RelSchema) -> Result<(), EngineError> {
        if hypoquery_parser::is_keyword(name) {
            return Err(EngineError::DuplicateName(format!(
                "{name} (reserved keyword)"
            )));
        }
        let mut catalog = self.state.catalog().clone();
        catalog.declare(name, schema)?;
        // Rebuild state over the extended catalog, keeping data and index
        // declarations.
        let mut next = DatabaseState::new(catalog);
        for (n, rel) in self.state.iter() {
            next.set(n.clone(), rel.clone())?;
        }
        for (n, col) in self.state.index_decls() {
            next.declare_index(n.clone(), col)?;
        }
        self.state = next;
        Ok(())
    }

    /// Declare a secondary index on column `col` of relation `name`.
    ///
    /// Declarations are intent: the physical hash index is built lazily on
    /// the first probe that can use it, and — because indexes are cached
    /// on the relation's shared storage pointer — every copy-on-write
    /// snapshot whose `name` is untouched reuses the same build for free.
    /// Returns `true` if the declaration is new.
    pub fn create_index(&mut self, name: &str, col: usize) -> Result<bool, EngineError> {
        Ok(self.state.declare_index(name, col)?)
    }

    /// Drop the index declaration on column `col` of relation `name`.
    /// Returns `true` if it existed. Errors on unknown relations and
    /// out-of-range columns, mirroring [`Database::create_index`].
    pub fn drop_index(&mut self, name: &str, col: usize) -> Result<bool, EngineError> {
        let rel = RelName::new(name);
        let arity = self.state.catalog().arity(&rel)?;
        if col >= arity {
            return Err(hypoquery_storage::StorageError::ArityMismatch {
                context: "index column out of range",
                expected: arity,
                found: col,
            }
            .into());
        }
        Ok(self.state.undeclare_index(&rel, col))
    }

    /// Columns of `name` with a declared index (empty when none).
    pub fn indexed_columns(&self, name: &str) -> Vec<usize> {
        self.state.indexed_columns(&RelName::new(name))
    }

    /// The current catalog.
    pub fn catalog(&self) -> &Catalog {
        self.state.catalog()
    }

    /// The current state (read-only).
    pub fn state(&self) -> &DatabaseState {
        &self.state
    }

    /// Bulk-load rows into a relation.
    pub fn load(
        &mut self,
        name: &str,
        rows: impl IntoIterator<Item = Tuple>,
    ) -> Result<(), EngineError> {
        self.state.insert_rows(RelName::new(name), rows)?;
        Ok(())
    }

    /// Register an integrity constraint: `violation_query` must stay empty.
    pub fn add_constraint(&mut self, name: &str, violation_query: &str) -> Result<(), EngineError> {
        if self.constraints.contains_key(name) {
            return Err(EngineError::DuplicateName(name.to_string()));
        }
        let q = parse_query_named(violation_query, self.state.catalog())?;
        arity_of(&q, self.state.catalog())?;
        self.constraints
            .insert(name.to_string(), Constraint { violation_query: q });
        Ok(())
    }

    /// Parse and type-check a query without running it. Named column
    /// references are resolved against the catalog's attribute names.
    pub fn prepare(&self, src: &str) -> Result<Query, EngineError> {
        let q = parse_query_named(src, self.state.catalog())?;
        arity_of(&q, self.state.catalog())?;
        Ok(q)
    }

    /// Parse and type-check an update without running it.
    pub fn prepare_update(&self, src: &str) -> Result<Update, EngineError> {
        let u = parse_update_named(src, self.state.catalog())?;
        check_update(&u, self.state.catalog())?;
        Ok(u)
    }

    /// The inferred output column names of a query (None = anonymous).
    pub fn output_attrs(&self, q: &Query) -> Result<Vec<Option<String>>, EngineError> {
        Ok(hypoquery_algebra::attrs_of(q, self.state.catalog())?)
    }

    /// Run a query and render the result as an aligned text table with
    /// inferred column headers.
    pub fn query_table(&self, src: &str) -> Result<String, EngineError> {
        let q = self.prepare(src)?;
        let attrs = self.output_attrs(&q)?;
        let rel = self.execute(&q, Strategy::Auto)?;
        Ok(render_table(&attrs, &rel))
    }

    /// Run a query with the default (Auto) strategy.
    pub fn query(&self, src: &str) -> Result<Relation, EngineError> {
        self.query_with(src, Strategy::Auto)
    }

    /// Run a query with an explicit strategy.
    pub fn query_with(&self, src: &str, strategy: Strategy) -> Result<Relation, EngineError> {
        let q = self.prepare(src)?;
        self.execute(&q, strategy)
    }

    /// Run an already-built query AST.
    ///
    /// Every strategy executes through the pipelined physical layer: the
    /// strategy only decides the logical *shape* the query is normalized
    /// into (pure / ENF / mod-ENF), which [`hypoquery_opt::lower`] then
    /// compiles onto the one operator set of
    /// [`hypoquery_eval::physical`]. The retired per-strategy tree
    /// walkers remain available as [`Database::execute_legacy`], the
    /// differential-testing oracle.
    pub fn execute(&self, q: &Query, strategy: Strategy) -> Result<Relation, EngineError> {
        arity_of(q, self.state.catalog())?;
        if strategy == Strategy::Auto {
            let p = self.plan_query(q);
            return self.execute_plan(&p);
        }
        let prepared = self.prepare_strategy_query(q, strategy)?;
        let stats = Statistics::of(&self.state);
        let phys = lower_query(&prepared, self.state.catalog(), &stats)?;
        Ok(phys.execute(&self.state)?)
    }

    /// Normalize `q` into the logical shape `strategy` executes:
    /// optimized pure RA for lazy, ENF for HQL-1/HQL-2 (whose plans are
    /// identical — the two algorithms differ only in interpreter
    /// traversal order, which has no physical counterpart), mod-ENF for
    /// the delta strategy.
    fn prepare_strategy_query(&self, q: &Query, strategy: Strategy) -> Result<Query, EngineError> {
        Ok(match strategy {
            Strategy::Auto | Strategy::Lazy => {
                let reduced = fully_lazy(q, &mut RewriteTrace::new());
                optimize(&reduced, self.state.catalog()).0
            }
            Strategy::Hql1 | Strategy::Hql2 => to_enf_query(q, &mut RewriteTrace::new()),
            Strategy::Delta => to_mod_enf(q)?,
        })
    }

    /// Run an already-built query AST through the **legacy** recursive
    /// tree-walking evaluators (`eval_pure`, `filter1`/`filter2`/
    /// `filter3`), which materialize a relation at every node.
    ///
    /// Kept as the differential oracle: the proptests in
    /// `crates/eval/tests/physical_consistency.rs` and
    /// `crates/engine/tests/` assert the pipelined default path agrees
    /// with this one on every strategy.
    pub fn execute_legacy(&self, q: &Query, strategy: Strategy) -> Result<Relation, EngineError> {
        arity_of(q, self.state.catalog())?;
        match strategy {
            Strategy::Auto => {
                let p = self.plan_query(q);
                self.execute_plan_legacy(&p)
            }
            Strategy::Lazy => {
                let reduced = fully_lazy(q, &mut RewriteTrace::new());
                let (optimized, _) = optimize(&reduced, self.state.catalog());
                Ok(eval_pure(&optimized, &self.state)?)
            }
            Strategy::Hql1 => {
                let enf = to_enf_query(q, &mut RewriteTrace::new());
                Ok(algorithm_hql1(&enf, &self.state)?)
            }
            Strategy::Hql2 => {
                let enf = to_enf_query(q, &mut RewriteTrace::new());
                Ok(algorithm_hql2(&enf, &self.state)?)
            }
            Strategy::Delta => {
                let m = to_mod_enf(q)?;
                Ok(algorithm_hql3(&m, &self.state)?)
            }
        }
    }

    /// Run several independent queries in parallel, fanning out across
    /// the machine's cores (`hypoquery_eval::exec`).
    ///
    /// Each query evaluates against the same immutable state — hypothetical
    /// `when` scenarios build copy-on-write snapshots that physically share
    /// every untouched relation, so k scenarios over an n-tuple base cost
    /// O(n + Σ|δᵢ|) memory, not O(k·n). Results (and the first error, if
    /// any) are exactly those of executing the queries sequentially in
    /// order.
    pub fn execute_many(
        &self,
        queries: &[Query],
        strategy: Strategy,
    ) -> Result<Vec<Relation>, EngineError> {
        hypoquery_eval::try_parallel_map(queries, |_, q| self.execute(q, strategy))
    }

    /// Parse, type-check, and run several query sources in parallel.
    /// Parsing is sequential (cheap); evaluation fans out — see
    /// [`Database::execute_many`].
    pub fn query_many(
        &self,
        sources: &[impl AsRef<str>],
        strategy: Strategy,
    ) -> Result<Vec<Relation>, EngineError> {
        let queries = sources
            .iter()
            .map(|s| self.prepare(s.as_ref()))
            .collect::<Result<Vec<_>, _>>()?;
        self.execute_many(&queries, strategy)
    }

    /// Produce the planner's plan for a query.
    pub fn plan_query(&self, q: &Query) -> Plan {
        let stats = Statistics::of(&self.state);
        plan(q, self.state.catalog(), &stats)
    }

    /// Execute a previously produced plan: lower it to the pipelined
    /// physical operator layer and run it. Every
    /// [`PlannedStrategy`] goes through the same executor.
    pub fn execute_plan(&self, p: &Plan) -> Result<Relation, EngineError> {
        let phys = self.physical_plan(p)?;
        Ok(phys.execute(&self.state)?)
    }

    /// Execute a previously produced plan through the legacy tree
    /// walkers (the differential oracle; see
    /// [`Database::execute_legacy`]).
    pub fn execute_plan_legacy(&self, p: &Plan) -> Result<Relation, EngineError> {
        match p.strategy {
            PlannedStrategy::Lazy => Ok(eval_pure(&p.query, &self.state)?),
            PlannedStrategy::EagerXsub | PlannedStrategy::Hybrid => {
                Ok(algorithm_hql2(&p.query, &self.state)?)
            }
            PlannedStrategy::EagerDelta => Ok(algorithm_hql3(&p.query, &self.state)?),
        }
    }

    /// Lower a plan to its physical form against the current state's
    /// statistics (access paths depend on declared indexes and estimated
    /// cardinalities).
    pub fn physical_plan(&self, p: &Plan) -> Result<PhysPlan, EngineError> {
        let stats = Statistics::of(&self.state);
        Ok(lower_plan(p, self.state.catalog(), &stats)?)
    }

    /// `EXPLAIN`: the chosen plan, its candidates and rewrite traces,
    /// rendered for humans.
    pub fn explain(&self, src: &str) -> Result<String, EngineError> {
        let q = self.prepare(src)?;
        self.explain_query(&q)
    }

    /// AST form of [`Database::explain`], for callers that wrap queries
    /// before planning (e.g. a what-if branch's state expression).
    pub fn explain_query(&self, q: &Query) -> Result<String, EngineError> {
        arity_of(q, self.state.catalog())?;
        let p = self.plan_query(q);
        let phys = self.physical_plan(&p)?;
        let mut out = String::new();
        use std::fmt::Write;
        let _ = writeln!(out, "query: {q}");
        // `Plan`'s Display covers strategy, candidates, and both rewrite
        // traces (EQUIV_when + RA).
        let _ = writeln!(out, "{p}");
        let _ = writeln!(out, "physical plan:");
        out.push_str(&phys.render(None));
        Ok(out)
    }

    /// `EXPLAIN ANALYZE`: run the query through the pipelined executor
    /// with full instrumentation and render the physical plan with
    /// per-operator rows-in/rows-out and exclusive elapsed time.
    pub fn explain_analyze(&self, src: &str) -> Result<String, EngineError> {
        let q = self.prepare(src)?;
        self.explain_analyze_query(&q)
    }

    /// AST form of [`Database::explain_analyze`], for callers that wrap
    /// queries before planning (e.g. a what-if branch).
    pub fn explain_analyze_query(&self, q: &Query) -> Result<String, EngineError> {
        arity_of(q, self.state.catalog())?;
        let p = self.plan_query(q);
        let phys = self.physical_plan(&p)?;
        let (rel, metrics) = phys.execute_analyze(&self.state)?;
        Ok(Self::render_analyze(&p, &phys, &metrics, rel.len()))
    }

    fn render_analyze(p: &Plan, phys: &PhysPlan, metrics: &ExecMetrics, rows: usize) -> String {
        let mut out = String::new();
        use std::fmt::Write;
        let _ = writeln!(
            out,
            "strategy: {} (est. cost {:.1})",
            p.strategy, p.est_cost
        );
        let _ = writeln!(out, "physical plan (analyzed):");
        out.push_str(&phys.render(Some(metrics)));
        let _ = writeln!(
            out,
            "result: {rows} row(s); operators: {}; total operator time: {:?}",
            metrics.len(),
            metrics.total_elapsed()
        );
        out
    }

    /// Parse, type-check, and apply an update to the **real** state,
    /// with hypothetical constraint checking first (§1's integrity
    /// maintenance application): each constraint is evaluated
    /// `when {U}` — if any would be violated, the update is rejected and
    /// the state unchanged.
    pub fn execute_update(&mut self, src: &str) -> Result<(), EngineError> {
        let u = parse_update_named(src, self.state.catalog())?;
        self.apply_update(&u)
    }

    /// AST form of [`Database::execute_update`].
    pub fn apply_update(&mut self, u: &Update) -> Result<(), EngineError> {
        check_update(u, self.state.catalog())?;
        // Hypothetical check: constraint when {U} must be empty.
        for (name, c) in &self.constraints {
            let check = c
                .violation_query
                .clone()
                .when(hypoquery_algebra::StateExpr::update(u.clone()));
            let violations = self.execute(&check, Strategy::Auto)?;
            if !violations.is_empty() {
                return Err(EngineError::ConstraintViolation {
                    constraint: name.clone(),
                    violations: violations.len(),
                });
            }
        }
        self.state = eval_update(u, &self.state)?;
        Ok(())
    }

    /// Serialize the current state (catalog + data) to the plain-text
    /// dump format of `hypoquery_storage::dump`.
    pub fn dump(&self) -> String {
        hypoquery_storage::dump_state(&self.state)
    }

    /// Restore a database from a plain-text dump. Constraints are not part
    /// of the dump and start empty.
    pub fn restore(dump: &str) -> Result<Database, EngineError> {
        let state = hypoquery_storage::load_state(dump).map_err(|e| {
            EngineError::Parse(hypoquery_parser::ParseError {
                offset: e.line,
                message: e.to_string(),
            })
        })?;
        Ok(Database {
            state,
            constraints: BTreeMap::new(),
        })
    }

    /// Apply an update without constraint checking (loading, tests).
    pub fn apply_update_unchecked(&mut self, u: &Update) -> Result<(), EngineError> {
        check_update(u, self.state.catalog())?;
        self.state = eval_update(u, &self.state)?;
        Ok(())
    }
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

/// Render a relation as an aligned text table under the given column
/// names (None = anonymous, shown as `#i`). [`Database::query_table`]
/// is the root-state convenience; callers evaluating in a hypothetical
/// branch can pair [`Database::output_attrs`] with any [`Relation`].
pub fn render_table(attrs: &[Option<String>], rel: &Relation) -> String {
    let headers: Vec<String> = attrs
        .iter()
        .enumerate()
        .map(|(i, a)| a.clone().unwrap_or_else(|| format!("#{i}")))
        .collect();
    let mut rows: Vec<Vec<String>> = vec![headers];
    for t in rel.iter() {
        rows.push(t.fields().iter().map(|v| v.to_string()).collect());
    }
    let ncols = rows[0].len();
    let mut widths = vec![0usize; ncols];
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:<w$}", w = widths[i]));
        }
        out.push('\n');
        if ri == 0 {
            for (i, w) in widths.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&"-".repeat(*w));
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypoquery_storage::tuple;

    fn db() -> Database {
        let mut db = Database::new();
        db.define("emp", 2).unwrap(); // (id, salary)
        db.define("dept", 2).unwrap(); // (id, dept)
        db.load("emp", [tuple![1, 100], tuple![2, 200], tuple![3, 300]])
            .unwrap();
        db.load("dept", [tuple![1, 10], tuple![2, 20]]).unwrap();
        db
    }

    #[test]
    fn define_load_query() {
        let db = db();
        let out = db.query("select #1 >= 200 (emp)").unwrap();
        assert_eq!(out.len(), 2);
        let out = db.query("emp join dept on #0 = #2").unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn all_strategies_agree_on_hypothetical() {
        let db = db();
        let q = "(emp join dept on #0 = #2) \
                 when {insert into dept (row(3, 30))} \
                 when {delete from emp (select #1 > 250 (emp))}";
        let expected = db.query_with(q, Strategy::Lazy).unwrap();
        for s in [
            Strategy::Auto,
            Strategy::Hql1,
            Strategy::Hql2,
            Strategy::Delta,
        ] {
            assert_eq!(db.query_with(q, s).unwrap(), expected, "strategy {s}");
        }
        assert_eq!(expected.len(), 2);
    }

    #[test]
    fn hypothetical_queries_do_not_mutate() {
        let db = db();
        db.query("emp when {delete from emp (emp)}").unwrap();
        assert_eq!(db.query("emp").unwrap().len(), 3);
    }

    #[test]
    fn real_updates_mutate() {
        let mut db = db();
        db.execute_update("insert into emp (row(4, 400))").unwrap();
        assert_eq!(db.query("emp").unwrap().len(), 4);
        db.execute_update("delete from emp (select #1 < 250 (emp))")
            .unwrap();
        assert_eq!(db.query("emp").unwrap().len(), 2);
    }

    #[test]
    fn constraints_reject_bad_updates_hypothetically() {
        let mut db = db();
        // No employee may earn more than 500.
        db.add_constraint("salary_cap", "select #1 > 500 (emp)")
            .unwrap();
        // OK update passes.
        db.execute_update("insert into emp (row(4, 400))").unwrap();
        // Violating update is rejected and state unchanged.
        let err = db
            .execute_update("insert into emp (row(5, 900))")
            .unwrap_err();
        match err {
            EngineError::ConstraintViolation {
                constraint,
                violations,
            } => {
                assert_eq!(constraint, "salary_cap");
                assert_eq!(violations, 1);
            }
            other => panic!("expected violation, got {other}"),
        }
        assert_eq!(db.query("emp").unwrap().len(), 4);
        // Duplicate constraint names are rejected.
        assert!(matches!(
            db.add_constraint("salary_cap", "emp"),
            Err(EngineError::DuplicateName(_))
        ));
    }

    #[test]
    fn type_errors_surface() {
        let mut db = db();
        assert!(matches!(
            db.query("emp union nope"),
            Err(EngineError::Type(_))
        ));
        assert!(matches!(
            db.query("emp union ("),
            Err(EngineError::Parse(_))
        ));
        assert!(db
            .execute_update("insert into emp (dept join dept on true)")
            .is_err());
    }

    #[test]
    fn keyword_relation_names_rejected() {
        let mut db = Database::new();
        assert!(db.define("when", 1).is_err());
    }

    #[test]
    fn named_schema_end_to_end() {
        let mut db = Database::new();
        db.define_named("emp", ["id", "salary"]).unwrap();
        db.define_named("dept", ["emp_id", "dept_id"]).unwrap();
        db.load("emp", [tuple![1, 100], tuple![2, 200]]).unwrap();
        db.load("dept", [tuple![2, 10]]).unwrap();
        // Named predicates in queries, joins, updates, constraints.
        let out = db.query("select salary >= 200 (emp)").unwrap();
        assert_eq!(out.len(), 1);
        let out = db.query("emp join dept on id = emp_id").unwrap();
        assert_eq!(out.len(), 1);
        db.add_constraint("cap", "select salary > 1000 (emp)")
            .unwrap();
        db.execute_update("insert into emp (row(3, 300))").unwrap();
        assert!(db.execute_update("insert into emp (row(4, 2000))").is_err());
        // Hypothetical with named columns.
        let out = db
            .query("select salary >= 200 (emp) when {delete from emp (select id = 2 (emp))}")
            .unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn dump_restore_roundtrip() {
        let mut db = Database::new();
        db.define_named("emp", ["id", "salary"]).unwrap();
        db.load("emp", [tuple![1, 100], tuple![2, 200]]).unwrap();
        let text = db.dump();
        let back = Database::restore(&text).unwrap();
        assert_eq!(back.query("emp").unwrap(), db.query("emp").unwrap());
        // Named columns survive the roundtrip.
        assert_eq!(back.query("select salary >= 200 (emp)").unwrap().len(), 1);
        assert!(Database::restore("relation R nope").is_err());
    }

    #[test]
    fn query_table_renders_headers() {
        let mut db = Database::new();
        db.define_named("emp", ["id", "salary"]).unwrap();
        db.load("emp", [tuple![1, 100]]).unwrap();
        let table = db.query_table("emp").unwrap();
        assert!(table.contains("id"), "{table}");
        assert!(table.contains("salary"), "{table}");
        assert!(table.contains("100"), "{table}");
        // Anonymous columns fall back to positions.
        let table = db
            .query_table("aggregate [; count] (emp) times project 0 (emp)")
            .unwrap();
        assert!(table.contains("count"), "{table}");
    }

    #[test]
    fn explain_mentions_strategy() {
        let db = db();
        let s = db
            .explain("emp when {insert into emp (select #1 > 100 (emp))}")
            .unwrap();
        assert!(s.contains("strategy:"), "{s}");
        assert!(s.contains("candidate"), "{s}");
        // The lowered operator tree and the Fig. 1 rewrite path are part
        // of EXPLAIN now.
        assert!(s.contains("physical plan:"), "{s}");
        assert!(s.contains("Scan emp") || s.contains("DeltaApply") || s.contains("XsubRebind"));
        assert!(s.contains("EQUIV_when rewrites:"), "{s}");
    }

    #[test]
    fn explain_analyze_reports_per_operator_rows_and_time() {
        let db = db();
        let s = db
            .explain_analyze("emp when {insert into emp (select #1 > 100 (emp))}")
            .unwrap();
        assert!(s.contains("physical plan (analyzed):"), "{s}");
        assert!(s.contains("rows in="), "{s}");
        assert!(s.contains("time="), "{s}");
        assert!(s.contains("result:"), "{s}");
    }

    #[test]
    fn all_strategies_match_legacy_oracle_on_examples() {
        let db = db();
        let sources = [
            "emp",
            "select #1 > 100 (emp)",
            "emp when {insert into emp (select #1 > 100 (emp))}",
            "emp when {delete from emp (select #0 = 1 (emp))}",
        ];
        for src in sources {
            let q = db.prepare(src).unwrap();
            for strat in [
                Strategy::Auto,
                Strategy::Lazy,
                Strategy::Hql1,
                Strategy::Hql2,
                Strategy::Delta,
            ] {
                let new = db.execute(&q, strat).unwrap();
                let old = db.execute_legacy(&q, strat).unwrap();
                assert_eq!(new, old, "{src} under {strat:?}");
            }
        }
    }

    #[test]
    fn strategy_parses_its_display_names() {
        for s in [
            Strategy::Auto,
            Strategy::Lazy,
            Strategy::Hql1,
            Strategy::Hql2,
            Strategy::Delta,
        ] {
            assert_eq!(s.to_string().parse::<Strategy>().unwrap(), s);
            assert_eq!(s.to_string().to_uppercase().parse::<Strategy>().unwrap(), s);
        }
        assert!(matches!(
            "eager".parse::<Strategy>(),
            Err(EngineError::UnknownName(_))
        ));
    }

    #[test]
    fn index_lifecycle_and_errors() {
        let mut db = db();
        assert!(db.create_index("emp", 0).unwrap());
        assert!(!db.create_index("emp", 0).unwrap()); // idempotent
        assert_eq!(db.indexed_columns("emp"), vec![0]);
        // Queries are unchanged by the physical access path, across all
        // strategies.
        let q = "(select #0 = 2 (emp) join dept on #0 = #2) \
                 when {insert into emp (row(9, 900))}";
        let expected = db.query_with(q, Strategy::Lazy).unwrap();
        for s in [
            Strategy::Auto,
            Strategy::Hql1,
            Strategy::Hql2,
            Strategy::Delta,
        ] {
            assert_eq!(db.query_with(q, s).unwrap(), expected, "strategy {s}");
        }
        assert!(db.drop_index("emp", 0).unwrap());
        assert!(!db.drop_index("emp", 0).unwrap());
        // Unknown relation / out-of-range column are errors both ways.
        assert!(matches!(
            db.create_index("nope", 0),
            Err(EngineError::Storage(_))
        ));
        assert!(matches!(
            db.create_index("emp", 2),
            Err(EngineError::Storage(_))
        ));
        assert!(matches!(
            db.drop_index("nope", 0),
            Err(EngineError::Storage(_))
        ));
        assert!(matches!(
            db.drop_index("emp", 2),
            Err(EngineError::Storage(_))
        ));
    }

    #[test]
    fn define_preserves_index_declarations() {
        let mut db = db();
        db.create_index("emp", 1).unwrap();
        db.define("extra", 1).unwrap();
        assert_eq!(db.indexed_columns("emp"), vec![1]);
    }

    #[test]
    fn delta_strategy_errors_without_mod_enf() {
        let db = db();
        let q = "emp when {select #1 > 100 (emp) / emp}";
        assert!(matches!(
            db.query_with(q, Strategy::Delta),
            Err(EngineError::Enf(_))
        ));
        // But Auto handles it fine.
        assert!(db.query_with(q, Strategy::Auto).is_ok());
    }
}
