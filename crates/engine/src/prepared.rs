//! Prepared hypothetical states — Example 2.2's "families of hypothetical
//! queries" as a first-class API.
//!
//! When an application will ask *many* queries against one hypothetical
//! state, the state's composed substitution should be derived once and —
//! eagerly — materialized once, then reused (Example 2.2(a/b)). A
//! [`PreparedState`] holds both artifacts:
//!
//! * the reduced substitution `ρ = red(η)` (valid in **every** database
//!   state — "this substitution remains valid even if the underlying
//!   database state is changed");
//! * optionally, its xsub-value materialization in a *specific* state,
//!   which becomes stale if that state changes.

use hypoquery_storage::Relation;

use hypoquery_algebra::typing::check_state_expr;
use hypoquery_algebra::{ExplicitSubst, Query, StateExpr};
use hypoquery_core::{lazy_state, sub_query, RewriteTrace};
use hypoquery_eval::{filter1, materialize_subst, XsubValue};
use hypoquery_parser::{parse_query_named, parse_state_expr_named};

use crate::database::{Database, Strategy};
use crate::error::EngineError;

/// A hypothetical state prepared for repeated querying.
#[derive(Clone, Debug)]
pub struct PreparedState {
    /// The original state expression (for display/explain).
    eta: StateExpr,
    /// `red(η)`: the composed, pure substitution.
    rho: ExplicitSubst,
    /// Materialized xsub-value, if [`PreparedState::materialize`] ran.
    xsub: Option<XsubValue>,
}

impl PreparedState {
    /// Prepare a state expression: type-check and reduce it to its
    /// composed substitution. No data is touched yet.
    pub fn new(db: &Database, eta: StateExpr) -> Result<PreparedState, EngineError> {
        check_state_expr(&eta, db.catalog())?;
        let rho = lazy_state(&eta, &mut RewriteTrace::new());
        Ok(PreparedState {
            eta,
            rho,
            xsub: None,
        })
    }

    /// Prepare from surface syntax.
    pub fn parse(db: &Database, src: &str) -> Result<PreparedState, EngineError> {
        let eta = parse_state_expr_named(src, db.catalog())?;
        PreparedState::new(db, eta)
    }

    /// The original state expression.
    pub fn state_expr(&self) -> &StateExpr {
        &self.eta
    }

    /// The composed substitution `red(η)`.
    pub fn substitution(&self) -> &ExplicitSubst {
        &self.rho
    }

    /// Eagerly materialize the substitution in the database's current
    /// state (Example 2.2's "(partially) materialized, and used to filter
    /// evaluation"). Re-run after the database changes — the cache is
    /// a snapshot.
    pub fn materialize(&mut self, db: &Database) -> Result<(), EngineError> {
        self.xsub = Some(materialize_subst(&self.rho, db.state())?);
        Ok(())
    }

    /// Whether a materialization snapshot is held.
    pub fn is_materialized(&self) -> bool {
        self.xsub.is_some()
    }

    /// Drop the materialization snapshot (e.g. after a real update).
    pub fn invalidate(&mut self) {
        self.xsub = None;
    }

    /// Run one family member against this hypothetical state.
    ///
    /// If materialized, evaluation is filtered through the cached
    /// xsub-value (eager reuse); otherwise the substitution is applied
    /// lazily (`sub` + conventional evaluation).
    pub fn query(&self, db: &Database, q: &Query) -> Result<Relation, EngineError> {
        match &self.xsub {
            Some(e) => Ok(filter1(q, e, db.state())?),
            None => {
                let substituted = if q.is_pure() {
                    sub_query(q, &self.rho).expect("pure query under pure substitution")
                } else {
                    // Hypothetical family members: wrap and let the
                    // planner handle the nesting.
                    return db.execute(
                        &q.clone().when(StateExpr::subst(self.rho.clone())),
                        Strategy::Auto,
                    );
                };
                db.execute(&substituted, Strategy::Auto)
            }
        }
    }

    /// Surface-syntax variant of [`PreparedState::query`].
    pub fn query_src(&self, db: &Database, src: &str) -> Result<Relation, EngineError> {
        let q = parse_query_named(src, db.catalog())?;
        self.query(db, &q)
    }

    /// Run a whole family of queries against this hypothetical state,
    /// fanning out across cores (Example 2.2 at scale).
    ///
    /// The prepared substitution — and the materialization snapshot, if
    /// held — is shared read-only by every worker; results are exactly
    /// those of calling [`PreparedState::query`] per member in order.
    pub fn query_batch(
        &self,
        db: &Database,
        family: &[Query],
    ) -> Result<Vec<Relation>, EngineError> {
        hypoquery_eval::try_parallel_map(family, |_, q| self.query(db, q))
    }

    /// Surface-syntax variant of [`PreparedState::query_batch`].
    pub fn query_batch_src(
        &self,
        db: &Database,
        family: &[impl AsRef<str>],
    ) -> Result<Vec<Relation>, EngineError> {
        let queries = family
            .iter()
            .map(|s| Ok(parse_query_named(s.as_ref(), db.catalog())?))
            .collect::<Result<Vec<_>, EngineError>>()?;
        self.query_batch(db, &queries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypoquery_storage::tuple;

    fn db() -> Database {
        let mut db = Database::new();
        db.define_named("emp", ["id", "salary"]).unwrap();
        db.define("bonus", 2).unwrap();
        db.load("emp", [tuple![1, 100], tuple![2, 200], tuple![3, 300]])
            .unwrap();
        db
    }

    fn prepared(db: &Database) -> PreparedState {
        PreparedState::parse(
            db,
            "{delete from emp (select salary < 150 (emp))} \
             # {insert into bonus (project id, salary (emp))}",
        )
        .unwrap()
    }

    #[test]
    fn lazy_and_materialized_agree() {
        let db = db();
        let mut p = prepared(&db);
        let family = ["emp", "bonus", "emp join bonus on #0 = #2"];
        let lazy: Vec<Relation> = family
            .iter()
            .map(|q| p.query_src(&db, q).unwrap())
            .collect();
        p.materialize(&db).unwrap();
        assert!(p.is_materialized());
        for (q, expect) in family.iter().zip(&lazy) {
            assert_eq!(&p.query_src(&db, q).unwrap(), expect, "query {q}");
        }
        // The bonus view sees the post-delete emp (2 rows).
        assert_eq!(lazy[1].len(), 2);
    }

    #[test]
    fn query_batch_matches_sequential() {
        let db = db();
        let mut p = prepared(&db);
        let family = ["emp", "bonus", "emp join bonus on #0 = #2"];
        for materialized in [false, true] {
            if materialized {
                p.materialize(&db).unwrap();
            }
            let seq: Vec<Relation> = family
                .iter()
                .map(|q| p.query_src(&db, q).unwrap())
                .collect();
            let par = p.query_batch_src(&db, &family).unwrap();
            assert_eq!(par, seq, "materialized={materialized}");
        }
    }

    #[test]
    fn substitution_survives_state_changes() {
        let mut db = db();
        let p = prepared(&db);
        let before = p.query_src(&db, "emp").unwrap();
        assert_eq!(before.len(), 2);
        // Change the real state: the *substitution* stays valid and now
        // reflects the new data (the paper's Example 2.2 remark).
        db.execute_update("insert into emp (row(4, 120))").unwrap();
        let after = p.query_src(&db, "emp").unwrap();
        assert_eq!(after.len(), 2); // 120 < 150 is hypothetically deleted
                                    // A surviving insert shows the substitution reads fresh data.
        db.execute_update("insert into emp (row(5, 500))").unwrap();
        let after = p.query_src(&db, "emp").unwrap();
        assert_eq!(after.len(), 3);
        assert_ne!(before, after);
    }

    #[test]
    fn materialization_is_a_snapshot() {
        let mut db = db();
        let mut p = prepared(&db);
        p.materialize(&db).unwrap();
        db.execute_update("insert into emp (row(9, 900))").unwrap();
        // The snapshot does not see the new row...
        assert_eq!(p.query_src(&db, "emp").unwrap().len(), 2);
        // ...until invalidated and re-materialized.
        p.invalidate();
        assert!(!p.is_materialized());
        assert_eq!(p.query_src(&db, "emp").unwrap().len(), 3);
    }

    #[test]
    fn hypothetical_family_members_work() {
        let db = db();
        let p = prepared(&db);
        let out = p
            .query_src(&db, "emp when {insert into emp (row(7, 70))}")
            .unwrap();
        // Inner when applies on top of the prepared state: 70 is inserted
        // after the salary<150 delete, so it survives.
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn type_errors_at_prepare_time() {
        let db = db();
        assert!(PreparedState::parse(&db, "{insert into emp (row(1))}").is_err());
        assert!(PreparedState::parse(&db, "{insert into nosuch (row(1))}").is_err());
    }
}
