//! §6 extensions beyond the paper's core: temporary tables and `when`
//! applied to hypothetical-state expressions.
//!
//! (Conditional updates — another §6 extension — live in the update
//! language itself: `hypoquery_algebra::Update::Cond`, sliced away by
//! `hypoquery_core::slice`. Aborting updates are realized as the engine's
//! constraint-checked `execute_update`.)

use hypoquery_algebra::typing::arity_of;
use hypoquery_algebra::{ExplicitSubst, Query, StateExpr};
use hypoquery_core::{to_enf_state, RewriteTrace};
use hypoquery_parser::parse_query_named;

use crate::database::Database;
use crate::error::EngineError;

/// A set of named temporary tables — views, in effect — each defined by a
/// query over the base schema.
///
/// The definitions form an explicit substitution, and using a temp is the
/// *lazy application* of that substitution: every free occurrence of a
/// temp name in a query is expanded to its defining query, respecting
/// `when`-scope (an enclosing hypothetical that rebinds the name shadows
/// the view, exactly per the `free`/`dom` rules of Figure 2). Expanded
/// views therefore see hypothetical states: `vip when {U}` reads the
/// *post-U* base relations through the view. This is why §6 can claim
/// temporary tables add no expressive power — they are substitutions.
#[derive(Clone, Debug, Default)]
pub struct TempTables {
    defs: ExplicitSubst,
}

/// Expand free occurrences of view names in a query (capture-aware).
fn expand_query(q: &Query, defs: &ExplicitSubst) -> Query {
    if defs.is_empty() {
        return q.clone();
    }
    match q {
        Query::Base(name) => match defs.get(name) {
            Some(def) => def.clone(),
            None => q.clone(),
        },
        Query::When(body, eta) => {
            // Names defined by η are bound inside the body.
            let mut body_defs = defs.clone();
            for name in hypoquery_algebra::scope::dom_state_expr(eta) {
                body_defs = body_defs.without(&name);
            }
            expand_query(body, &body_defs).when(expand_state(eta, defs))
        }
        other => other.clone().map_subqueries(|sub| expand_query(&sub, defs)),
    }
}

/// Expand view names inside a state expression's queries. Update *target*
/// names are left alone: writes always address the underlying declared
/// relation.
fn expand_state(eta: &StateExpr, defs: &ExplicitSubst) -> StateExpr {
    match eta {
        StateExpr::Update(u) => StateExpr::update(expand_update(u, defs)),
        StateExpr::Subst(eps) => StateExpr::subst(ExplicitSubst::new(
            eps.iter()
                .map(|(name, q)| (name.clone(), expand_query(q, defs))),
        )),
        StateExpr::Compose(a, b) => {
            // η₁ defines names that are bound within η₂ (Fig. 2's
            // free(η₁#η₂) rule).
            let mut b_defs = defs.clone();
            for name in hypoquery_algebra::scope::dom_state_expr(a) {
                b_defs = b_defs.without(&name);
            }
            expand_state(a, defs).compose(expand_state(b, &b_defs))
        }
    }
}

fn expand_update(u: &hypoquery_algebra::Update, defs: &ExplicitSubst) -> hypoquery_algebra::Update {
    use hypoquery_algebra::Update;
    match u {
        Update::Insert(r, q) => Update::Insert(r.clone(), expand_query(q, defs)),
        Update::Delete(r, q) => Update::Delete(r.clone(), expand_query(q, defs)),
        Update::Seq(a, b) => {
            // The second update reads names the first may have defined —
            // but definitions here are *writes to base relations*, which
            // shadow the view for subsequent reads.
            let mut b_defs = defs.clone();
            for name in hypoquery_algebra::scope::dom_update(a) {
                b_defs = b_defs.without(&name);
            }
            expand_update(a, defs).then(expand_update(b, &b_defs))
        }
        Update::Cond {
            guard,
            then_u,
            else_u,
        } => Update::cond(
            expand_query(guard, defs),
            expand_update(then_u, defs),
            expand_update(else_u, defs),
        ),
    }
}

impl TempTables {
    /// No temporary tables.
    pub fn new() -> Self {
        TempTables::default()
    }

    /// Define (or redefine) a temporary table.
    ///
    /// The temp's name must be a *declared* relation name in the catalog
    /// (the formal system has one fixed schema Σ; a temp shadows a name,
    /// exactly like a substitution binding). Its defining query may use
    /// previously defined temps, which are expanded at definition time.
    pub fn define(
        &mut self,
        db: &Database,
        name: &str,
        query_src: &str,
    ) -> Result<(), EngineError> {
        let q = parse_query_named(query_src, db.catalog())?;
        // Expand previously defined temps so later definitions may build
        // on earlier ones.
        let q = expand_query(&q, &self.defs);
        let declared = db
            .catalog()
            .arity(&name.into())
            .map_err(|_| EngineError::UnknownName(name.to_string()))?;
        let actual = arity_of(&q, db.catalog())?;
        if actual != declared {
            return Err(EngineError::Type(
                hypoquery_algebra::TypeError::BindingArityMismatch {
                    name: name.into(),
                    expected: declared,
                    found: actual,
                },
            ));
        }
        self.defs.bind(name, q);
        Ok(())
    }

    /// Rewrite a query to see the temporary tables: free occurrences of
    /// temp names are expanded to their defining queries (view expansion —
    /// the lazy application of the defs substitution).
    pub fn apply(&self, q: &Query) -> Query {
        expand_query(q, &self.defs)
    }

    /// Run a query with the temps visible.
    pub fn query(
        &self,
        db: &Database,
        query_src: &str,
        strategy: crate::database::Strategy,
    ) -> Result<hypoquery_storage::Relation, EngineError> {
        let q = parse_query_named(query_src, db.catalog())?;
        db.execute(&self.apply(&q), strategy)
    }
}

/// The `η₁ when η₂` construct the paper defers to [GH97]: *the update η₁,
/// as it would behave in the hypothetical state η₂*, applied to the
/// current state.
///
/// Semantics chosen here: normalize `η₁` to an explicit substitution
/// `{Q₁/R₁, …}` and wrap every bound query in `when η₂`, yielding
/// `{(Q₁ when η₂)/R₁, …}`. The *reads* of η₁ happen in η₂'s world; the
/// *writes* land relative to the current state. This differs from plain
/// composition `η₂ # η₁`, which would keep η₂'s changes in the result —
/// see the unit test below for a separating example.
pub fn state_when(eta1: &StateExpr, eta2: &StateExpr) -> StateExpr {
    let eps = to_enf_state(eta1, &mut RewriteTrace::new());
    let wrapped = ExplicitSubst::new(
        eps.into_bindings()
            .into_iter()
            .map(|(name, q)| (name, q.when(eta2.clone()))),
    );
    StateExpr::subst(wrapped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Strategy;
    use hypoquery_algebra::Update;
    use hypoquery_eval::eval_state;
    use hypoquery_storage::tuple;

    fn db() -> Database {
        let mut db = Database::new();
        db.define("R", 2).unwrap();
        db.define("S", 2).unwrap();
        db.define("hi", 2).unwrap(); // declared name used as a temp
        db.load("R", [tuple![1, 100], tuple![2, 200]]).unwrap();
        db.load("S", [tuple![2, 999]]).unwrap();
        db
    }

    #[test]
    fn temps_are_substitutions() {
        let db = db();
        let mut temps = TempTables::new();
        temps.define(&db, "hi", "select #1 >= 200 (R)").unwrap();
        let out = temps.query(&db, "hi", Strategy::Auto).unwrap();
        assert_eq!(out.len(), 1);
        // Temps can build on temps.
        let mut temps2 = temps.clone();
        temps2.define(&db, "S", "hi union R").unwrap();
        let out = temps2.query(&db, "S", Strategy::Auto).unwrap();
        assert_eq!(out.len(), 2);
        // The base S is shadowed, not modified.
        assert_eq!(db.query("S").unwrap().len(), 1);
    }

    #[test]
    fn temp_errors() {
        let db = db();
        let mut temps = TempTables::new();
        assert!(matches!(
            temps.define(&db, "nosuch", "R"),
            Err(EngineError::UnknownName(_))
        ));
        // Arity mismatch with the declared name.
        assert!(matches!(
            temps.define(&db, "hi", "project 0 (R)"),
            Err(EngineError::Type(_))
        ));
    }

    #[test]
    fn state_when_reads_hypothetically_writes_locally() {
        let db = db();
        // η1 = ins(R, S): reads S. η2 = ins(S, row(7,7)): changes S.
        let e1 = StateExpr::update(Update::insert("R", Query::base("S")));
        let e2 = StateExpr::update(Update::insert("S", Query::singleton(tuple![7, 7])));
        let w = state_when(&e1, &e2);
        let result = eval_state(&w, db.state()).unwrap();
        // R gained S-as-seen-under-η2 (2 rows): total 4.
        assert_eq!(result.get(&"R".into()).unwrap().len(), 4);
        // But S itself is unchanged — unlike composition η₂ # η₁.
        assert_eq!(result.get(&"S".into()).unwrap().len(), 1);
        let composed = eval_state(&e2.compose(e1), db.state()).unwrap();
        assert_eq!(composed.get(&"S".into()).unwrap().len(), 2);
    }
}
