//! What-if branch trees: Example 2.1's "tree of potential updates".
//!
//! Each node of a [`WhatIfTree`] is a named hypothetical state: the state
//! produced by applying all updates on the path from the root to that
//! node. Queries "at" a branch are ordinary hypothetical queries — the
//! path's updates become one composed state expression — and run through
//! the planner like any other, so the whole lazy↔eager spectrum applies to
//! decision-support trees for free.

use std::collections::BTreeMap;

use hypoquery_storage::Relation;

use hypoquery_algebra::typing::check_update;
use hypoquery_algebra::{Query, StateExpr, Update};
use hypoquery_parser::{parse_query_named, parse_update_named};

use crate::database::{Database, Strategy};
use crate::error::EngineError;

/// One branch in the tree.
#[derive(Clone, Debug)]
struct Branch {
    parent: Option<String>,
    update: Update,
}

/// A tree of named hypothetical updates over a database.
#[derive(Clone, Debug, Default)]
pub struct WhatIfTree {
    branches: BTreeMap<String, Branch>,
}

impl WhatIfTree {
    /// An empty tree (the implicit root is the database's real state).
    pub fn new() -> Self {
        WhatIfTree::default()
    }

    /// Add a branch applying `update` on top of `parent` (`None` = the
    /// real state). The update is type-checked against the database.
    pub fn branch(
        &mut self,
        db: &Database,
        name: &str,
        parent: Option<&str>,
        update: &str,
    ) -> Result<(), EngineError> {
        if self.branches.contains_key(name) {
            return Err(EngineError::DuplicateName(name.to_string()));
        }
        if let Some(p) = parent {
            if !self.branches.contains_key(p) {
                return Err(EngineError::UnknownName(p.to_string()));
            }
        }
        let u = parse_update_named(update, db.catalog())?;
        self.branch_update(db, name, parent, u)
    }

    /// AST form of [`WhatIfTree::branch`], for callers that already hold
    /// an [`Update`] (programmatic tree construction, test generators).
    pub fn branch_update(
        &mut self,
        db: &Database,
        name: &str,
        parent: Option<&str>,
        update: Update,
    ) -> Result<(), EngineError> {
        if self.branches.contains_key(name) {
            return Err(EngineError::DuplicateName(name.to_string()));
        }
        if let Some(p) = parent {
            if !self.branches.contains_key(p) {
                return Err(EngineError::UnknownName(p.to_string()));
            }
        }
        check_update(&update, db.catalog())?;
        self.branches.insert(
            name.to_string(),
            Branch {
                parent: parent.map(str::to_string),
                update,
            },
        );
        Ok(())
    }

    /// Names of all branches, in name order.
    pub fn branch_names(&self) -> impl Iterator<Item = &str> {
        self.branches.keys().map(String::as_str)
    }

    /// Whether a branch with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.branches.contains_key(name)
    }

    /// The parent of a branch (`Ok(None)` = rooted at the real state).
    pub fn parent_of(&self, name: &str) -> Result<Option<&str>, EngineError> {
        self.branches
            .get(name)
            .map(|b| b.parent.as_deref())
            .ok_or_else(|| EngineError::UnknownName(name.to_string()))
    }

    /// Remove a branch **and all its descendants** (their hypothetical
    /// states depend on the dropped update). Returns the removed names in
    /// name order.
    pub fn drop_branch(&mut self, name: &str) -> Result<Vec<String>, EngineError> {
        if !self.branches.contains_key(name) {
            return Err(EngineError::UnknownName(name.to_string()));
        }
        let mut doomed: Vec<String> = vec![name.to_string()];
        // Fixpoint sweep: a branch is doomed if its parent is. The
        // BTreeMap has no child index, so repeat until no new names join
        // (trees are small — dozens of branches, not millions).
        loop {
            let before = doomed.len();
            for (n, b) in &self.branches {
                if doomed.iter().any(|d| d == n) {
                    continue;
                }
                if let Some(p) = &b.parent {
                    if doomed.iter().any(|d| d == p) {
                        doomed.push(n.clone());
                    }
                }
            }
            if doomed.len() == before {
                break;
            }
        }
        for n in &doomed {
            self.branches.remove(n);
        }
        doomed.sort();
        Ok(doomed)
    }

    /// The composed state expression for the path from the root to
    /// `branch`: `{U_root} # … # {U_branch}` (root applied first).
    pub fn state_of(&self, branch: &str) -> Result<StateExpr, EngineError> {
        let mut path: Vec<&Update> = Vec::new();
        let mut cur = Some(branch);
        while let Some(name) = cur {
            let b = self
                .branches
                .get(name)
                .ok_or_else(|| EngineError::UnknownName(name.to_string()))?;
            path.push(&b.update);
            cur = b.parent.as_deref();
        }
        // path is leaf→root; compose root-first.
        let mut iter = path.into_iter().rev();
        let first = iter.next().expect("at least the branch itself");
        let mut eta = StateExpr::update(first.clone());
        for u in iter {
            eta = eta.compose(StateExpr::update(u.clone()));
        }
        Ok(eta)
    }

    /// Wrap a query so it evaluates in the named branch's hypothetical
    /// state.
    pub fn at(&self, branch: &str, q: &Query) -> Result<Query, EngineError> {
        Ok(q.clone().when(self.state_of(branch)?))
    }

    /// Run `query_src` in the named branch's state.
    pub fn query_at(
        &self,
        db: &Database,
        branch: &str,
        query_src: &str,
        strategy: Strategy,
    ) -> Result<Relation, EngineError> {
        let q = parse_query_named(query_src, db.catalog())?;
        db.execute(&self.at(branch, &q)?, strategy)
    }

    /// Run `query_src` in **every** branch's state, in parallel, returning
    /// `branch name → result` for the whole tree.
    ///
    /// This is the decision-support fan-out of Example 2.1 done at once:
    /// each branch evaluates against a copy-on-write snapshot sharing the
    /// real state's untouched relations, and independent branches spread
    /// across cores (`hypoquery_eval::exec`). The result for each branch
    /// is identical to [`WhatIfTree::query_at`] on that branch.
    pub fn query_all_branches(
        &self,
        db: &Database,
        query_src: &str,
        strategy: Strategy,
    ) -> Result<BTreeMap<String, Relation>, EngineError> {
        let q = parse_query_named(query_src, db.catalog())?;
        let jobs: Vec<(&str, Query)> = self
            .branches
            .keys()
            .map(|name| Ok((name.as_str(), self.at(name, &q)?)))
            .collect::<Result<_, EngineError>>()?;
        let results = hypoquery_eval::try_parallel_map(&jobs, |_, (_, wrapped)| {
            db.execute(wrapped, strategy)
        })?;
        Ok(jobs
            .iter()
            .map(|(name, _)| name.to_string())
            .zip(results)
            .collect())
    }

    /// Example 2.1's comparison query: the tuples `query_src` returns in
    /// branch `b1` but not in `b2` — `(Q when η₁) − (Q when η₂)`, both
    /// relative to the current state.
    pub fn diff_between(
        &self,
        db: &Database,
        b1: &str,
        b2: &str,
        query_src: &str,
        strategy: Strategy,
    ) -> Result<Relation, EngineError> {
        let q = parse_query_named(query_src, db.catalog())?;
        let q1 = self.at(b1, &q)?;
        let q2 = self.at(b2, &q)?;
        db.execute(&q1.diff(q2), strategy)
    }

    /// Commit a branch: apply its path's updates to the real database
    /// state (through constraint checking) and drop the whole tree, whose
    /// hypothetical states are now stale.
    pub fn commit(self, db: &mut Database, branch: &str) -> Result<(), EngineError> {
        let mut path: Vec<Update> = Vec::new();
        let mut cur = Some(branch.to_string());
        while let Some(name) = cur {
            let b = self
                .branches
                .get(&name)
                .ok_or_else(|| EngineError::UnknownName(name.clone()))?;
            path.push(b.update.clone());
            cur = b.parent.clone();
        }
        for u in path.into_iter().rev() {
            db.apply_update(&u)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypoquery_storage::tuple;

    fn setup() -> (Database, WhatIfTree) {
        let mut db = Database::new();
        db.define("inv", 2).unwrap(); // (item, qty)
        db.load("inv", [tuple![1, 10], tuple![2, 20], tuple![3, 30]])
            .unwrap();
        let mut tree = WhatIfTree::new();
        tree.branch(
            &db,
            "base_plan",
            None,
            "delete from inv (select #1 < 15 (inv))",
        )
        .unwrap();
        tree.branch(
            &db,
            "restock",
            Some("base_plan"),
            "insert into inv (row(4, 40))",
        )
        .unwrap();
        tree.branch(
            &db,
            "clearance",
            Some("base_plan"),
            "delete from inv (select #1 > 25 (inv))",
        )
        .unwrap();
        (db, tree)
    }

    #[test]
    fn queries_at_branches_see_path_updates() {
        let (db, tree) = setup();
        let at = |b: &str| tree.query_at(&db, b, "inv", Strategy::Auto).unwrap().len();
        assert_eq!(at("base_plan"), 2); // item 1 removed
        assert_eq!(at("restock"), 3); // + item 4
        assert_eq!(at("clearance"), 1); // item 3 also removed
                                        // The real state is untouched.
        assert_eq!(db.query("inv").unwrap().len(), 3);
    }

    #[test]
    fn query_all_branches_matches_query_at() {
        let (db, tree) = setup();
        for s in [
            Strategy::Auto,
            Strategy::Lazy,
            Strategy::Hql1,
            Strategy::Hql2,
        ] {
            let all = tree.query_all_branches(&db, "inv", s).unwrap();
            assert_eq!(all.len(), 3);
            for name in tree.branch_names() {
                assert_eq!(
                    all[name],
                    tree.query_at(&db, name, "inv", s).unwrap(),
                    "branch {name}, strategy {s}"
                );
            }
        }
        // The real state is untouched by the fan-out.
        assert_eq!(db.query("inv").unwrap().len(), 3);
    }

    #[test]
    fn diff_between_sibling_branches() {
        let (db, tree) = setup();
        let d = tree
            .diff_between(&db, "restock", "clearance", "inv", Strategy::Auto)
            .unwrap();
        // restock has items {2,3,4}; clearance has {2}: diff = {3,4}.
        assert_eq!(d.len(), 2);
        // Strategies agree.
        for s in [Strategy::Lazy, Strategy::Hql1, Strategy::Hql2] {
            assert_eq!(
                tree.diff_between(&db, "restock", "clearance", "inv", s)
                    .unwrap(),
                d
            );
        }
    }

    #[test]
    fn state_of_composes_root_first() {
        let (db, tree) = setup();
        let eta = tree.state_of("restock").unwrap();
        // Evaluate directly: should equal querying at the branch.
        let q = Query::base("inv").when(eta);
        let via_state = db.execute(&q, Strategy::Lazy).unwrap();
        let via_query = tree
            .query_at(&db, "restock", "inv", Strategy::Lazy)
            .unwrap();
        assert_eq!(via_state, via_query);
    }

    #[test]
    fn branch_validation() {
        let (db, mut tree) = setup();
        assert!(matches!(
            tree.branch(&db, "base_plan", None, "insert into inv (row(9, 9))"),
            Err(EngineError::DuplicateName(_))
        ));
        assert!(matches!(
            tree.branch(&db, "x", Some("missing"), "insert into inv (row(9, 9))"),
            Err(EngineError::UnknownName(_))
        ));
        assert!(tree
            .branch(&db, "bad_arity", None, "insert into inv (row(9))")
            .is_err());
        assert!(matches!(
            tree.query_at(&db, "nope", "inv", Strategy::Auto),
            Err(EngineError::UnknownName(_))
        ));
    }

    #[test]
    fn drop_branch_removes_descendants() {
        let (db, mut tree) = setup();
        tree.branch(&db, "deep", Some("restock"), "insert into inv (row(5, 50))")
            .unwrap();
        assert!(tree.contains("deep"));
        assert_eq!(tree.parent_of("deep").unwrap(), Some("restock"));
        assert_eq!(tree.parent_of("base_plan").unwrap(), None);
        let removed = tree.drop_branch("base_plan").unwrap();
        assert_eq!(removed, ["base_plan", "clearance", "deep", "restock"]);
        assert_eq!(tree.branch_names().count(), 0);
        assert!(matches!(
            tree.drop_branch("base_plan"),
            Err(EngineError::UnknownName(_))
        ));
        assert!(matches!(
            tree.parent_of("nope"),
            Err(EngineError::UnknownName(_))
        ));
    }

    #[test]
    fn drop_leaf_keeps_siblings() {
        let (db, mut tree) = setup();
        let removed = tree.drop_branch("restock").unwrap();
        assert_eq!(removed, ["restock"]);
        assert!(tree.contains("clearance"));
        assert_eq!(
            tree.query_at(&db, "clearance", "inv", Strategy::Auto)
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn commit_applies_path() {
        let (mut db, tree) = setup();
        tree.commit(&mut db, "clearance").unwrap();
        let rows = db.query("inv").unwrap();
        assert_eq!(rows.len(), 1);
        assert!(rows.contains(&tuple![2, 20]));
    }
}
