//! # hypoquery-testkit
//!
//! Shared proptest strategies for the hypoquery workspace: arity-correct
//! random relations, database states, predicates, pure and hypothetical
//! queries, updates, and state expressions over a small fixed universe of
//! relation names.
//!
//! Every strategy keeps value domains small (integers 0..10) so that
//! selections, joins and set operations collide often — random inputs that
//! never produce matches would test nothing.

#![warn(missing_docs)]

use proptest::prelude::*;

use hypoquery_storage::{BagRelation, Catalog, DatabaseState, RelName, Relation, Tuple, Value};

use hypoquery_algebra::{
    AggExpr, CmpOp, ExplicitSubst, Predicate, Query, ScalarExpr, StateExpr, Update,
};

/// The fixed universe random expressions range over.
#[derive(Clone, Debug)]
pub struct Universe {
    /// The catalog (declared names with arities).
    pub catalog: Catalog,
    /// `(name, arity)` pairs, for strategy construction.
    pub names: Vec<(RelName, usize)>,
}

impl Universe {
    /// The standard test universe: three binary relations `R`, `S`, `T`
    /// and two unary relations `U1`, `V`.
    pub fn standard() -> Self {
        let specs: Vec<(RelName, usize)> = vec![
            ("R".into(), 2),
            ("S".into(), 2),
            ("T".into(), 2),
            ("U1".into(), 1),
            ("V".into(), 1),
        ];
        let mut catalog = Catalog::new();
        for (name, arity) in &specs {
            catalog
                .declare_arity(name.clone(), *arity)
                .expect("fresh names");
        }
        Universe {
            catalog,
            names: specs,
        }
    }

    /// Names having the given arity.
    pub fn names_of_arity(&self, arity: usize) -> Vec<RelName> {
        self.names
            .iter()
            .filter(|(_, a)| *a == arity)
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// All distinct arities in the universe.
    pub fn arities(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self.names.iter().map(|(_, a)| *a).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Strategy for scalar values: small integers (collision-friendly), with
/// occasional strings and booleans to exercise the total order.
pub fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        8 => (0i64..10).prop_map(Value::int),
        1 => prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(Value::str),
        1 => any::<bool>().prop_map(Value::bool),
    ]
}

/// Strategy for integer-only values (used where predicates must be able to
/// compare meaningfully).
pub fn arb_int_value() -> impl Strategy<Value = Value> {
    (0i64..10).prop_map(Value::int)
}

/// Strategy for tuples of the given arity (integer fields).
pub fn arb_tuple(arity: usize) -> impl Strategy<Value = Tuple> {
    prop::collection::vec(arb_int_value(), arity).prop_map(Tuple::new)
}

/// Strategy for relations of the given arity with up to `max_rows` rows.
pub fn arb_relation(arity: usize, max_rows: usize) -> impl Strategy<Value = Relation> {
    prop::collection::vec(arb_tuple(arity), 0..=max_rows).prop_map(move |rows| {
        Relation::from_rows(arity, rows).expect("generated rows have uniform arity")
    })
}

/// Strategy for a full database state over the universe, with up to
/// `max_rows` rows per relation.
pub fn arb_db(universe: &Universe, max_rows: usize) -> impl Strategy<Value = DatabaseState> {
    let catalog = universe.catalog.clone();
    let rels: Vec<_> = universe
        .names
        .iter()
        .map(|(name, arity)| (Just(name.clone()), arb_relation(*arity, max_rows)))
        .collect();
    rels.prop_map(move |bindings| {
        let mut db = DatabaseState::new(catalog.clone());
        for (name, rel) in bindings {
            db.set(name, rel).expect("declared names, matching arity");
        }
        db
    })
}

/// Strategy for a bag relation of the given arity: up to `max_rows`
/// distinct tuples, each with multiplicity 1..=`max_mult`.
pub fn arb_bag_relation(
    arity: usize,
    max_rows: usize,
    max_mult: u64,
) -> impl Strategy<Value = BagRelation> {
    prop::collection::vec((arb_tuple(arity), 1..=max_mult), 0..=max_rows).prop_map(move |rows| {
        let mut bag = BagRelation::empty(arity);
        for (t, m) in rows {
            bag.insert(t, m).expect("generated rows have uniform arity");
        }
        bag
    })
}

/// Strategy for scalar terms over `arity` columns.
fn arb_scalar(arity: usize) -> BoxedStrategy<ScalarExpr> {
    if arity == 0 {
        arb_int_value().prop_map(ScalarExpr::Const).boxed()
    } else {
        prop_oneof![
            (0..arity).prop_map(ScalarExpr::Col),
            arb_int_value().prop_map(ScalarExpr::Const),
        ]
        .boxed()
    }
}

/// Strategy for comparison operators.
pub fn arb_cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

/// Strategy for predicates over tuples of the given arity, depth-limited.
pub fn arb_predicate(arity: usize, depth: u32) -> BoxedStrategy<Predicate> {
    let leaf = prop_oneof![
        1 => Just(Predicate::True),
        1 => Just(Predicate::False),
        6 => (arb_scalar(arity), arb_cmp_op(), arb_scalar(arity))
            .prop_map(|(a, op, b)| Predicate::Cmp(a, op, b)),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = arb_predicate(arity, depth - 1);
    prop_oneof![
        4 => leaf,
        1 => (sub.clone(), sub.clone()).prop_map(|(a, b)| a.and(b)),
        1 => (sub.clone(), sub.clone()).prop_map(|(a, b)| a.or(b)),
        1 => sub.prop_map(Predicate::not),
    ]
    .boxed()
}

/// Strategy for **pure** RA queries of the given arity over the universe.
pub fn arb_pure_query(universe: &Universe, arity: usize, depth: u32) -> BoxedStrategy<Query> {
    arb_query_impl(universe, arity, depth, false)
}

/// Strategy for full HQL queries (may contain `when` at any level) of the
/// given arity.
pub fn arb_query(universe: &Universe, arity: usize, depth: u32) -> BoxedStrategy<Query> {
    arb_query_impl(universe, arity, depth, true)
}

fn arb_query_impl(
    universe: &Universe,
    arity: usize,
    depth: u32,
    hypothetical: bool,
) -> BoxedStrategy<Query> {
    let names = universe.names_of_arity(arity);
    let mut leaves: Vec<BoxedStrategy<Query>> = vec![
        arb_tuple(arity).prop_map(Query::singleton).boxed(),
        Just(Query::empty(arity)).boxed(),
    ];
    if !names.is_empty() {
        leaves.push(prop::sample::select(names).prop_map(Query::Base).boxed());
        // Weight base relations higher: they make interesting queries.
        leaves.push(
            prop::sample::select(universe.names_of_arity(arity))
                .prop_map(Query::Base)
                .boxed(),
        );
    }
    let leaf = prop::strategy::Union::new(leaves).boxed();
    if depth == 0 {
        return leaf;
    }

    let sub = arb_query_impl(universe, arity, depth - 1, hypothetical);
    let mut options: Vec<BoxedStrategy<Query>> = vec![
        leaf.clone(),
        leaf,
        (sub.clone(), arb_predicate(arity, 1))
            .prop_map(|(q, p)| q.select(p))
            .boxed(),
        (sub.clone(), sub.clone())
            .prop_map(|(a, b)| a.union(b))
            .boxed(),
        (sub.clone(), sub.clone())
            .prop_map(|(a, b)| a.intersect(b))
            .boxed(),
        (sub.clone(), sub.clone())
            .prop_map(|(a, b)| a.diff(b))
            .boxed(),
    ];
    // Projection from a (possibly) wider input.
    for src_arity in universe.arities() {
        if src_arity >= arity && src_arity > 0 {
            let inner = arb_query_impl(universe, src_arity, depth - 1, hypothetical);
            let cols = prop::collection::vec(0..src_arity, arity);
            options.push((inner, cols).prop_map(|(q, cols)| q.project(cols)).boxed());
        }
    }
    // Product/join splitting the arity.
    for la in 1..arity {
        let ra = arity - la;
        let l = arb_query_impl(universe, la, depth - 1, hypothetical);
        let r = arb_query_impl(universe, ra, depth - 1, hypothetical);
        options.push(
            (l.clone(), r.clone())
                .prop_map(|(a, b)| a.product(b))
                .boxed(),
        );
        options.push(
            (l, r, arb_predicate(arity, 1))
                .prop_map(|(a, b, p)| a.join(b, p))
                .boxed(),
        );
    }
    if hypothetical {
        let body = arb_query_impl(universe, arity, depth - 1, true);
        let eta = arb_state_expr(universe, depth - 1);
        options.push((body, eta).prop_map(|(q, e)| q.when(e)).boxed());
    }
    prop::strategy::Union::new(options).boxed()
}

/// Strategy for updates over the universe, depth-limited. Queries inside
/// updates may be hypothetical when `depth > 0`.
pub fn arb_update(universe: &Universe, depth: u32) -> BoxedStrategy<Update> {
    let atomic = {
        let choices: Vec<BoxedStrategy<Update>> = universe
            .names
            .iter()
            .map(|(name, arity)| {
                let n = name.clone();
                let q = arb_query_impl(universe, *arity, depth.min(1), depth > 0);
                (Just(n), q, any::<bool>())
                    .prop_map(|(n, q, ins)| {
                        if ins {
                            Update::insert(n, q)
                        } else {
                            Update::delete(n, q)
                        }
                    })
                    .boxed()
            })
            .collect();
        prop::strategy::Union::new(choices).boxed()
    };
    if depth == 0 {
        return atomic;
    }
    let sub = arb_update(universe, depth - 1);
    let guard = arb_query_impl(universe, 1, 1, false);
    prop_oneof![
        3 => atomic,
        1 => (sub.clone(), sub.clone()).prop_map(|(a, b)| a.then(b)),
        1 => (guard, sub.clone(), sub).prop_map(|(g, a, b)| Update::cond(g, a, b)),
    ]
    .boxed()
}

/// Strategy for atomic-sequence updates (mod-ENF shape): `A₁; …; Aₙ` with
/// each `Aᵢ` an atomic insert/delete over pure queries.
pub fn arb_atomic_update_seq(universe: &Universe, max_len: usize) -> BoxedStrategy<Update> {
    let atomic = {
        let choices: Vec<BoxedStrategy<Update>> = universe
            .names
            .iter()
            .map(|(name, arity)| {
                let n = name.clone();
                let q = arb_pure_query(universe, *arity, 1);
                (Just(n), q, any::<bool>())
                    .prop_map(|(n, q, ins)| {
                        if ins {
                            Update::insert(n, q)
                        } else {
                            Update::delete(n, q)
                        }
                    })
                    .boxed()
            })
            .collect();
        prop::strategy::Union::new(choices).boxed()
    };
    prop::collection::vec(atomic, 1..=max_len)
        .prop_map(Update::seq)
        .boxed()
}

/// Strategy for explicit substitutions with arity-correct bindings
/// (bindings may contain `when` when `depth > 0`).
pub fn arb_subst(universe: &Universe, depth: u32) -> BoxedStrategy<ExplicitSubst> {
    subst_impl(universe, depth, depth > 0)
}

/// Strategy for pure-binding explicit substitutions (abstract
/// substitutions over Σ(RA), §3.2).
pub fn arb_pure_subst(universe: &Universe, depth: u32) -> BoxedStrategy<ExplicitSubst> {
    subst_impl(universe, depth, false)
}

fn subst_impl(universe: &Universe, depth: u32, hypothetical: bool) -> BoxedStrategy<ExplicitSubst> {
    let per_name: Vec<BoxedStrategy<Option<(RelName, Query)>>> = universe
        .names
        .iter()
        .map(|(name, arity)| {
            let n = name.clone();
            let q = arb_query_impl(universe, *arity, depth, hypothetical);
            prop_oneof![
                2 => Just(None),
                1 => q.prop_map(move |q| Some((n.clone(), q))),
            ]
            .boxed()
        })
        .collect();
    per_name
        .prop_map(|bindings| ExplicitSubst::new(bindings.into_iter().flatten()))
        .boxed()
}

/// Strategy for hypothetical-state expressions, depth-limited.
pub fn arb_state_expr(universe: &Universe, depth: u32) -> BoxedStrategy<StateExpr> {
    let leaf = prop_oneof![
        arb_update(universe, depth.min(1)).prop_map(StateExpr::update),
        arb_subst(universe, depth.min(1)).prop_map(StateExpr::subst),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = arb_state_expr(universe, depth - 1);
    prop_oneof![
        3 => leaf,
        1 => (sub.clone(), sub).prop_map(|(a, b)| a.compose(b)),
    ]
    .boxed()
}

/// Strategy for aggregate expressions over the given input arity.
pub fn arb_agg(arity: usize) -> BoxedStrategy<AggExpr> {
    if arity == 0 {
        Just(AggExpr::Count).boxed()
    } else {
        prop_oneof![
            Just(AggExpr::Count),
            (0..arity).prop_map(AggExpr::Sum),
            (0..arity).prop_map(AggExpr::Min),
            (0..arity).prop_map(AggExpr::Max),
        ]
        .boxed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypoquery_algebra::typing::{arity_of, check_state_expr, check_update};

    proptest! {
        #[test]
        fn generated_queries_are_well_typed(
            q in arb_query(&Universe::standard(), 2, 3)
        ) {
            let u = Universe::standard();
            prop_assert_eq!(arity_of(&q, &u.catalog), Ok(2));
        }

        #[test]
        fn generated_pure_queries_are_pure(
            q in arb_pure_query(&Universe::standard(), 1, 3)
        ) {
            prop_assert!(q.is_pure());
            let u = Universe::standard();
            prop_assert_eq!(arity_of(&q, &u.catalog), Ok(1));
        }

        #[test]
        fn generated_updates_are_well_typed(
            up in arb_update(&Universe::standard(), 2)
        ) {
            let u = Universe::standard();
            prop_assert!(check_update(&up, &u.catalog).is_ok());
        }

        #[test]
        fn generated_state_exprs_are_well_typed(
            eta in arb_state_expr(&Universe::standard(), 2)
        ) {
            let u = Universe::standard();
            prop_assert!(check_state_expr(&eta, &u.catalog).is_ok());
        }

        #[test]
        fn atomic_sequences_are_atomic(
            up in arb_atomic_update_seq(&Universe::standard(), 4)
        ) {
            prop_assert!(up.is_atomic_sequence());
        }

        #[test]
        fn pure_substs_are_pure(
            s in arb_pure_subst(&Universe::standard(), 2)
        ) {
            prop_assert!(!s.contains_when());
        }

        #[test]
        fn generated_db_respects_catalog(
            db in arb_db(&Universe::standard(), 6)
        ) {
            for (name, arity) in Universe::standard().names {
                let rel = db.get(&name).unwrap();
                prop_assert_eq!(rel.arity(), arity);
                prop_assert!(rel.len() <= 6);
            }
        }
    }
}
