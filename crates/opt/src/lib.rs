//! # hypoquery-opt
//!
//! The conventional optimizer substrate plus the strategy planner:
//!
//! * [`implication`] — sound partial implication/unsatisfiability for
//!   comparison predicates (powers the paper's "algebraic simplification"
//!   steps);
//! * [`rewrite`] — a normalizing relational-algebra rewriter (the
//!   "conventional techniques" the lazy strategy hands off to);
//! * [`stats`] — cardinality statistics and a unit-cost model;
//! * [`planner`] — picks lazy / eager-xsub / eager-delta / hybrid per
//!   query, the spectrum §5 of the paper describes.

#![warn(missing_docs)]

pub mod implication;
pub mod lower;
pub mod planner;
pub mod reduce;
pub mod rewrite;
pub mod stats;

pub use implication::{pred_implies, pred_unsat};
pub use lower::{lower_plan, lower_query};
pub use planner::{plan, Plan, PlannedStrategy};
pub use reduce::reduce_optimized;
pub use rewrite::{optimize, RaTrace};
pub use stats::{estimate_cost, estimate_rows, Statistics};
