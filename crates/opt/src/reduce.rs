//! Interleaved reduction + algebraic simplification.
//!
//! Example 2.4 shows that the purely lazy equivalent of a hypothetical
//! query can be exponentially larger than the query itself — and that
//! "relational algebra rewriting can help" (2.4(b)): if simplification
//! runs *during* reduction, an `∅` discovered in a binding short-circuits
//! the remaining substitutions before they can blow up.
//!
//! [`reduce_optimized`] is `hypoquery_core::fully_lazy` with the RA
//! optimizer invoked on every binding before it is substituted, and on
//! every intermediate result after substitution. Where plain reduction of
//! Example 2.4(b)'s query touches `2^j` nodes before the empty binding at
//! level `j` is discovered, this version collapses at the level where the
//! emptiness becomes syntactically visible — polynomial for small `j`
//! (bench E4 measures both).

use hypoquery_storage::Catalog;

use hypoquery_algebra::scope::free_query;
use hypoquery_algebra::{ExplicitSubst, Query};
use hypoquery_core::{lazy_state, sub_query, RewriteTrace};

use crate::rewrite::{optimize, RaTrace};

/// Reduce an HQL query to pure RA with algebraic simplification applied at
/// every reduction step. Returns the simplified pure query and the
/// combined RA trace.
pub fn reduce_optimized(q: &Query, catalog: &Catalog) -> (Query, RaTrace) {
    let mut ra_trace = RaTrace::default();
    let mut when_trace = RewriteTrace::new();
    let out = go(q, catalog, &mut ra_trace, &mut when_trace);
    (out, ra_trace)
}

fn go(q: &Query, catalog: &Catalog, ra: &mut RaTrace, wt: &mut RewriteTrace) -> Query {
    match q {
        Query::When(inner, eta) => {
            let body = go(inner, catalog, ra, wt);
            if body.is_pure() {
                // Optimize + binding-remove the substitution first: an ∅
                // binding never gets expanded into the body.
                let rho = lazy_state(eta, wt);
                let free = free_query(&body);
                let mut restricted = ExplicitSubst::empty();
                for (name, bq) in rho.iter() {
                    if free.contains(name) {
                        let (opt_bq, t) = optimize(bq, catalog);
                        merge_trace(ra, t);
                        restricted.bind(name.clone(), opt_bq);
                    }
                }
                let substituted = if restricted.is_empty() {
                    body
                } else {
                    sub_query(&body, &restricted).expect("reduced bodies and bindings are pure")
                };
                let (out, t) = optimize(&substituted, catalog);
                merge_trace(ra, t);
                out
            } else {
                // Should not happen (go returns pure), but stay total.
                body.when((**eta).clone())
            }
        }
        other => {
            let rebuilt = other
                .clone()
                .map_subqueries(|sub| go(&sub, catalog, ra, wt));
            let (out, t) = optimize(&rebuilt, catalog);
            merge_trace(ra, t);
            out
        }
    }
}

fn merge_trace(into: &mut RaTrace, from: RaTrace) {
    for (rule, n) in from.counts {
        for _ in 0..n {
            into.record(rule);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypoquery_algebra::StateExpr;
    use hypoquery_core::red_query;
    use hypoquery_storage::RelName;

    /// Build Example 2.4's query: depth-n nest of
    /// `(… (R0 when {E1(R1)/R0}) … when {En(Rn)/R_{n-1}})` with
    /// `E_i(R_i) = R_i × R_i`, except `E_j(R_j) = R_j − R_j`.
    ///
    /// Arities: `R_i` has arity `2^(n-i)` (each product doubles).
    pub fn example_2_4_query(n: usize, empty_level: Option<usize>) -> (Query, Catalog) {
        let mut catalog = Catalog::new();
        for i in 0..=n {
            let arity = 1usize << (n - i);
            catalog.declare_arity(rel(i), arity).unwrap();
        }
        let mut q = Query::base(rel(0));
        for lvl in 1..=n {
            let prod = Query::base(rel(lvl)).product(Query::base(rel(lvl)));
            let e = if empty_level == Some(lvl) {
                // A difference of equal queries, at the arity the binding
                // needs (the paper writes `R_j − R_j` with arities
                // "inferred from the context").
                prod.clone().diff(prod)
            } else {
                prod
            };
            q = q.when(StateExpr::subst(ExplicitSubst::single(rel(lvl - 1), e)));
        }
        (q, catalog)
    }

    fn rel(i: usize) -> RelName {
        RelName::new(format!("R{i}"))
    }

    #[test]
    fn example_2_4a_blowup_is_real() {
        // Plain reduction: exponential output for the all-products query.
        let (q, _) = example_2_4_query(8, None);
        assert!(q.node_count() < 100, "input is linear in n");
        let reduced = red_query(&q).unwrap();
        assert!(
            reduced.node_count() > (1 << 8),
            "fully lazy output should be exponential, got {}",
            reduced.node_count()
        );
    }

    #[test]
    fn example_2_4b_rescue_with_early_empty() {
        // With E_1 = R_1 − R_1, interleaved simplification finds ∅
        // immediately and the result is ∅ with tiny intermediate sizes.
        let (q, catalog) = example_2_4_query(10, Some(1));
        let (out, _) = reduce_optimized(&q, &catalog);
        assert_eq!(out, Query::empty(1 << 10));
    }

    #[test]
    fn example_2_4b_rescue_with_late_empty() {
        // ∅ at the outermost level: the body blew up below it, but the
        // final substitution of ∅ collapses everything; the answer is
        // still syntactically ∅.
        let (q, catalog) = example_2_4_query(6, Some(6));
        let (out, _) = reduce_optimized(&q, &catalog);
        assert_eq!(out, Query::empty(1 << 6));
    }

    #[test]
    fn agrees_with_plain_reduction_semantically() {
        use hypoquery_eval::eval_pure;
        use hypoquery_storage::{tuple, DatabaseState};

        let (q, catalog) = example_2_4_query(3, Some(2));
        let mut db = DatabaseState::new(catalog.clone());
        db.insert_row("R3", tuple![1]).unwrap();
        db.insert_rows("R2", [tuple![1, 2]]).unwrap();
        let (opt, _) = reduce_optimized(&q, &catalog);
        let plain = red_query(&q).unwrap();
        assert_eq!(
            eval_pure(&opt, &db).unwrap(),
            eval_pure(&plain, &db).unwrap()
        );
    }
}
