//! The conventional relational-algebra equational theory, as a
//! normalizing rewriter.
//!
//! The paper's lazy strategy ends with "then evaluate Q′ using conventional
//! techniques" — this module is those techniques. It is also what makes the
//! lazy derivations of Examples 2.1(b) and 2.4(b) *finish*: after `red`,
//! algebraic simplification must discover that the residual query is empty
//! without touching data.
//!
//! Rules implemented (all standard; soundness property-tested in
//! `tests/ra_rewrites.rs`):
//!
//! * select: merge cascades, constant-fold, drop `σ_true`, kill
//!   unsatisfiable selections, prune implied conjuncts;
//! * empties: propagate `∅` through every operator;
//! * idempotence / absorption: `X ∪ X ≡ X`, `X ∩ X ≡ X`, `X − X ≡ ∅`,
//!   `X − σp(X) ≡ σ¬p(X)`, `σp(X) − X ≡ ∅`, `X ∩ σp(X) ≡ σp(X)`,
//!   `X ∪ σp(X) ≡ X`;
//! * products: `σp(X × Y) ≡ X ⋈p Y`, join-condition merging
//!   `σp(X ⋈q Y) ≡ X ⋈_{q∧p} Y`;
//! * projections: cascade merging, projection of singletons;
//! * singletons: `σp({t})` decided at rewrite time;
//! * canonical operand order for `∪`/`∩` (so syntactic equality finds
//!   `X − X` after reordering).
//!
//! `when` nodes are treated as opaque: the rewriter descends into their
//! bodies and bindings, but never moves anything across the scope boundary
//! (that is EQUIV_when's job, in `hypoquery-core`).

use hypoquery_algebra::{Predicate, Query, StateExpr};
use hypoquery_storage::Catalog;

use crate::implication::{conjoin, conjuncts, fold_pred, pred_unsat, prune_conjuncts};

/// How many times each named rule fired during a rewrite.
#[derive(Clone, Debug, Default)]
pub struct RaTrace {
    /// `(rule name, redex count)` pairs in first-fired order.
    pub counts: Vec<(&'static str, usize)>,
}

impl RaTrace {
    /// Record one firing of `rule`.
    pub fn record(&mut self, rule: &'static str) {
        match self.counts.iter_mut().find(|(r, _)| *r == rule) {
            Some((_, n)) => *n += 1,
            None => self.counts.push((rule, 1)),
        }
    }

    /// Total number of rule firings.
    pub fn total(&self) -> usize {
        self.counts.iter().map(|(_, n)| n).sum()
    }

    /// Firings of a specific rule.
    pub fn count(&self, rule: &str) -> usize {
        self.counts
            .iter()
            .find(|(r, _)| *r == rule)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }
}

/// Normalize a query with the RA equational theory. Works on full HQL
/// queries (descending into `when` bodies and substitution bindings) but
/// never crosses a `when` scope.
///
/// The catalog is needed to give the correct arity to `∅` nodes produced
/// by emptiness rules.
pub fn optimize(q: &Query, catalog: &Catalog) -> (Query, RaTrace) {
    let mut trace = RaTrace::default();
    let mut current = q.clone();
    // Global fixpoint with a safety cap; each pass is a bottom-up rewrite.
    for _ in 0..32 {
        let next = rewrite_node(&current, catalog, &mut trace);
        if next == current {
            break;
        }
        current = next;
    }
    (current, trace)
}

/// Arity of a query assuming it is well-typed (used to type `∅` nodes).
fn arity_of(q: &Query, catalog: &Catalog) -> usize {
    hypoquery_algebra::typing::arity_of(q, catalog).expect("optimizer inputs are type-checked")
}

fn rewrite_node(q: &Query, catalog: &Catalog, trace: &mut RaTrace) -> Query {
    // Bottom-up: rewrite children first...
    let node = match q.clone() {
        Query::When(body, eta) => {
            let body = rewrite_node(&body, catalog, trace);
            let eta = match *eta {
                StateExpr::Subst(eps) => StateExpr::Subst(
                    eps.into_bindings()
                        .into_iter()
                        .map(|(n, bq)| (n, rewrite_node(&bq, catalog, trace)))
                        .collect(),
                ),
                other => other,
            };
            body.when(eta)
        }
        other => other.map_subqueries(|sub| rewrite_node(&sub, catalog, trace)),
    };
    // ...then apply local rules at this node to a fixpoint.
    let mut current = node;
    loop {
        match apply_local(&current, catalog, trace) {
            Some(next) => current = next,
            None => return current,
        }
    }
}

/// Try one local rule at the root; `Some(rewritten)` if any fired.
fn apply_local(q: &Query, catalog: &Catalog, trace: &mut RaTrace) -> Option<Query> {
    match q {
        // ---- selections -------------------------------------------------
        Query::Select(inner, p) => {
            let folded = fold_pred(p);
            if folded != *p {
                trace.record("fold-predicate");
                return Some((**inner).clone().select(folded));
            }
            if *p == Predicate::True {
                trace.record("drop-select-true");
                return Some((**inner).clone());
            }
            if pred_unsat(p) {
                trace.record("select-unsat");
                return Some(Query::empty(arity_of(q, catalog)));
            }
            let pruned = prune_conjuncts(p);
            if pruned != *p {
                trace.record("prune-conjuncts");
                return Some((**inner).clone().select(pruned));
            }
            match &**inner {
                Query::Select(inner2, p2) => {
                    trace.record("merge-selects");
                    let mut parts = conjuncts(p2);
                    parts.extend(conjuncts(p));
                    Some((**inner2).clone().select(conjoin(parts)))
                }
                Query::Empty { .. } => {
                    trace.record("select-empty");
                    Some((**inner).clone())
                }
                Query::Singleton(t) => {
                    trace.record("select-singleton");
                    if p.eval(t) {
                        Some((**inner).clone())
                    } else {
                        Some(Query::empty(t.arity()))
                    }
                }
                Query::Union(a, b) => {
                    trace.record("push-select-union");
                    Some(
                        (**a)
                            .clone()
                            .select(p.clone())
                            .union((**b).clone().select(p.clone())),
                    )
                }
                Query::Product(a, b) => {
                    trace.record("product-to-join");
                    Some((**a).clone().join((**b).clone(), p.clone()))
                }
                Query::Join(a, b, jp) => {
                    trace.record("merge-select-into-join");
                    let mut parts = conjuncts(jp);
                    parts.extend(conjuncts(p));
                    Some((**a).clone().join((**b).clone(), conjoin(parts)))
                }
                _ => None,
            }
        }

        // ---- projections -----------------------------------------------
        Query::Project(inner, cols) => match &**inner {
            Query::Empty { .. } => {
                trace.record("project-empty");
                Some(Query::empty(cols.len()))
            }
            Query::Singleton(t) => {
                trace.record("project-singleton");
                Some(Query::singleton(t.project(cols)))
            }
            Query::Project(inner2, cols2) => {
                trace.record("merge-projects");
                let merged: Vec<usize> = cols.iter().map(|&c| cols2[c]).collect();
                Some((**inner2).clone().project(merged))
            }
            _ => {
                // Identity projection: π over all columns in order.
                let a = arity_of(inner, catalog);
                if cols.len() == a && cols.iter().enumerate().all(|(i, &c)| i == c) {
                    trace.record("drop-identity-project");
                    Some((**inner).clone())
                } else {
                    None
                }
            }
        },

        // ---- union / intersection / difference --------------------------
        Query::Union(a, b) => {
            if let Query::Empty { .. } = **a {
                trace.record("union-empty");
                return Some((**b).clone());
            }
            if let Query::Empty { .. } = **b {
                trace.record("union-empty");
                return Some((**a).clone());
            }
            if a == b {
                trace.record("union-idempotent");
                return Some((**a).clone());
            }
            // X ∪ σp(X) ≡ X
            if let Query::Select(x, _) = &**b {
                if x == a {
                    trace.record("union-absorb-select");
                    return Some((**a).clone());
                }
            }
            if let Query::Select(x, _) = &**a {
                if x == b {
                    trace.record("union-absorb-select");
                    return Some((**b).clone());
                }
            }
            // Canonical operand order (∪ is commutative).
            if a > b {
                trace.record("order-union");
                return Some((**b).clone().union((**a).clone()));
            }
            None
        }
        Query::Intersect(a, b) => {
            if matches!(**a, Query::Empty { .. }) || matches!(**b, Query::Empty { .. }) {
                trace.record("intersect-empty");
                return Some(Query::empty(arity_of(q, catalog)));
            }
            if a == b {
                trace.record("intersect-idempotent");
                return Some((**a).clone());
            }
            // X ∩ σp(X) ≡ σp(X)
            if let Query::Select(x, _) = &**b {
                if x == a {
                    trace.record("intersect-absorb-select");
                    return Some((**b).clone());
                }
            }
            if let Query::Select(x, _) = &**a {
                if x == b {
                    trace.record("intersect-absorb-select");
                    return Some((**a).clone());
                }
            }
            if a > b {
                trace.record("order-intersect");
                return Some((**b).clone().intersect((**a).clone()));
            }
            None
        }
        Query::Diff(a, b) => {
            if let Query::Empty { .. } = **b {
                trace.record("diff-empty-rhs");
                return Some((**a).clone());
            }
            if let Query::Empty { .. } = **a {
                trace.record("diff-empty-lhs");
                return Some((**a).clone());
            }
            if a == b {
                trace.record("diff-self");
                return Some(Query::empty(arity_of(q, catalog)));
            }
            // X − σp(X) ≡ σ¬p(X)
            if let Query::Select(x, p) = &**b {
                if x == a {
                    trace.record("diff-select-negate");
                    return Some((**a).clone().select(p.negated()));
                }
            }
            // σp(X) − X ≡ ∅
            if let Query::Select(x, _) = &**a {
                if x == b {
                    trace.record("diff-select-subset");
                    return Some(Query::empty(arity_of(q, catalog)));
                }
            }
            None
        }

        // ---- product / join ----------------------------------------------
        Query::Product(a, b) => {
            if matches!(**a, Query::Empty { .. }) || matches!(**b, Query::Empty { .. }) {
                trace.record("product-empty");
                return Some(Query::empty(arity_of(q, catalog)));
            }
            None
        }
        Query::Join(a, b, p) => {
            if matches!(**a, Query::Empty { .. }) || matches!(**b, Query::Empty { .. }) {
                trace.record("join-empty");
                return Some(Query::empty(arity_of(q, catalog)));
            }
            if pred_unsat(p) {
                trace.record("join-unsat");
                return Some(Query::empty(arity_of(q, catalog)));
            }
            let folded = fold_pred(p);
            if folded != *p {
                trace.record("fold-predicate");
                return Some((**a).clone().join((**b).clone(), folded));
            }
            let pruned = prune_conjuncts(p);
            if pruned != *p {
                trace.record("prune-conjuncts");
                return Some((**a).clone().join((**b).clone(), pruned));
            }
            // Push side-local conjuncts below the join: they filter one
            // operand before the build/probe instead of every joined pair
            // after it.
            let left_arity = arity_of(a, catalog);
            let mut left_only = Vec::new();
            let mut right_only = Vec::new();
            let mut cross = Vec::new();
            for c in conjuncts(p) {
                match (c.min_col(), c.max_col()) {
                    (_, Some(max)) if max < left_arity => left_only.push(c),
                    (Some(min), _) if min >= left_arity => right_only.push(c.unshift(left_arity)),
                    (None, None) => cross.push(c), // no columns: keep put
                    _ => cross.push(c),
                }
            }
            if !left_only.is_empty() || !right_only.is_empty() {
                trace.record("push-select-into-join-operand");
                let mut left = (**a).clone();
                if !left_only.is_empty() {
                    left = left.select(conjoin(left_only));
                }
                let mut right = (**b).clone();
                if !right_only.is_empty() {
                    right = right.select(conjoin(right_only));
                }
                return Some(left.join(right, conjoin(cross)));
            }
            None
        }

        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypoquery_algebra::CmpOp;
    use hypoquery_storage::tuple;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.declare_arity("R", 2).unwrap();
        c.declare_arity("S", 2).unwrap();
        c
    }

    fn sel(col: usize, op: CmpOp, v: i64, q: Query) -> Query {
        q.select(Predicate::col_cmp(col, op, v))
    }

    #[test]
    fn diff_select_negation() {
        // S − σ_{A<60}(S) → σ_{A≥60}(S)   (the Example 2.1(b) step)
        let q = Query::base("S").diff(sel(0, CmpOp::Lt, 60, Query::base("S")));
        let (out, trace) = optimize(&q, &catalog());
        assert_eq!(out, sel(0, CmpOp::Ge, 60, Query::base("S")));
        assert_eq!(trace.count("diff-select-negate"), 1);
    }

    #[test]
    fn implied_select_cascade_collapses() {
        // σ_{A>30}(σ_{A≥60}(S)) → σ_{A≥60}(S)
        let q = sel(0, CmpOp::Gt, 30, sel(0, CmpOp::Ge, 60, Query::base("S")));
        let (out, _) = optimize(&q, &catalog());
        assert_eq!(out, sel(0, CmpOp::Ge, 60, Query::base("S")));
    }

    #[test]
    fn example_2_1b_full_derivation() {
        // (R ∪ σ_{A>30}(S − σ_{A<60}(S))) ⋈ (S − σ_{A<60}(S))
        //   minus the same thing  →  ∅, with no data access.
        let s_minus = Query::base("S").diff(sel(0, CmpOp::Lt, 60, Query::base("S")));
        let branch = Query::base("R")
            .union(sel(0, CmpOp::Gt, 30, s_minus.clone()))
            .join(s_minus, Predicate::col_col(0, CmpOp::Eq, 2));
        let q = branch.clone().diff(branch);
        let (out, _) = optimize(&q, &catalog());
        assert_eq!(out, Query::empty(4));
    }

    #[test]
    fn example_2_1b_branch_simplifies_to_paper_form() {
        // The single branch should simplify to
        // (R ∪ σ_{A≥60}(S)) ⋈ σ_{A≥60}(S).
        let s_minus = Query::base("S").diff(sel(0, CmpOp::Lt, 60, Query::base("S")));
        let branch = Query::base("R")
            .union(sel(0, CmpOp::Gt, 30, s_minus.clone()))
            .join(s_minus, Predicate::col_col(0, CmpOp::Eq, 2));
        let (out, _) = optimize(&branch, &catalog());
        let expected = Query::base("R")
            .union(sel(0, CmpOp::Ge, 60, Query::base("S")))
            .join(
                sel(0, CmpOp::Ge, 60, Query::base("S")),
                Predicate::col_col(0, CmpOp::Eq, 2),
            );
        assert_eq!(out, expected);
    }

    #[test]
    fn unsat_select_becomes_empty() {
        let q = sel(0, CmpOp::Ge, 60, sel(0, CmpOp::Lt, 60, Query::base("S")));
        let (out, _) = optimize(&q, &catalog());
        assert_eq!(out, Query::empty(2));
        // And the emptiness propagates through joins.
        let j = q2_join(q);
        let (out, _) = optimize(&j, &catalog());
        assert_eq!(out, Query::empty(4));
    }

    fn q2_join(q: Query) -> Query {
        Query::base("R").join(q, Predicate::True)
    }

    #[test]
    fn union_intersect_canonical_order_and_idempotence() {
        let q = Query::base("S").union(Query::base("R"));
        let (out, _) = optimize(&q, &catalog());
        assert_eq!(out, Query::base("R").union(Query::base("S")));

        let q = Query::base("S").union(Query::base("S"));
        let (out, _) = optimize(&q, &catalog());
        assert_eq!(out, Query::base("S"));

        let q = Query::base("S").intersect(sel(0, CmpOp::Gt, 1, Query::base("S")));
        let (out, _) = optimize(&q, &catalog());
        assert_eq!(out, sel(0, CmpOp::Gt, 1, Query::base("S")));
    }

    #[test]
    fn product_select_becomes_join() {
        let q = Query::base("R")
            .product(Query::base("S"))
            .select(Predicate::col_col(0, CmpOp::Eq, 2));
        let (out, trace) = optimize(&q, &catalog());
        assert_eq!(
            out,
            Query::base("R").join(Query::base("S"), Predicate::col_col(0, CmpOp::Eq, 2))
        );
        assert_eq!(trace.count("product-to-join"), 1);
    }

    #[test]
    fn projection_rules() {
        let q = Query::base("R").project([1, 0]).project([1]);
        let (out, _) = optimize(&q, &catalog());
        assert_eq!(out, Query::base("R").project([0]));

        let q = Query::base("R").project([0, 1]);
        let (out, _) = optimize(&q, &catalog());
        assert_eq!(out, Query::base("R"));

        let q = Query::singleton(tuple![1, 2]).project([1]);
        let (out, _) = optimize(&q, &catalog());
        assert_eq!(out, Query::singleton(tuple![2]));
    }

    #[test]
    fn select_singleton_decided_statically() {
        let q = sel(0, CmpOp::Gt, 5, Query::singleton(tuple![7, 0]));
        let (out, _) = optimize(&q, &catalog());
        assert_eq!(out, Query::singleton(tuple![7, 0]));
        let q = sel(0, CmpOp::Gt, 5, Query::singleton(tuple![3, 0]));
        let (out, _) = optimize(&q, &catalog());
        assert_eq!(out, Query::empty(2));
    }

    #[test]
    fn optimizer_descends_into_when() {
        use hypoquery_algebra::{ExplicitSubst, StateExpr};
        let binding = Query::base("S").diff(Query::base("S"));
        let q = sel(0, CmpOp::Gt, 1, Query::base("R"))
            .when(StateExpr::subst(ExplicitSubst::single("R", binding)));
        let (out, _) = optimize(&q, &catalog());
        match out {
            Query::When(body, eta) => {
                assert_eq!(*body, sel(0, CmpOp::Gt, 1, Query::base("R")));
                let eps = eta.as_subst().unwrap();
                assert_eq!(eps.get(&"R".into()), Some(&Query::empty(2)));
            }
            other => panic!("expected when, got {other}"),
        }
    }

    #[test]
    fn trace_accumulates() {
        let q = Query::base("S").diff(sel(0, CmpOp::Lt, 60, Query::base("S")));
        let (_, trace) = optimize(&q, &catalog());
        assert!(trace.total() >= 1);
        assert_eq!(trace.count("nonexistent-rule"), 0);
    }
}

#[cfg(test)]
mod pushdown_tests {
    use super::*;
    use hypoquery_algebra::CmpOp;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.declare_arity("R", 2).unwrap();
        c.declare_arity("S", 2).unwrap();
        c
    }

    #[test]
    fn side_local_conjuncts_push_below_join() {
        // σ merged into the join, then split: #1<5 is left-only, #3>7 is
        // right-only (rebased to #1), #0=#2 stays as the join condition.
        let p = Predicate::col_col(0, CmpOp::Eq, 2)
            .and(Predicate::col_cmp(1, CmpOp::Lt, 5))
            .and(Predicate::col_cmp(3, CmpOp::Gt, 7));
        let q = Query::base("R").join(Query::base("S"), p);
        let (out, trace) = optimize(&q, &catalog());
        let expected = Query::base("R")
            .select(Predicate::col_cmp(1, CmpOp::Lt, 5))
            .join(
                Query::base("S").select(Predicate::col_cmp(1, CmpOp::Gt, 7)),
                Predicate::col_col(0, CmpOp::Eq, 2),
            );
        assert_eq!(out, expected);
        assert_eq!(trace.count("push-select-into-join-operand"), 1);
    }

    #[test]
    fn select_above_join_lands_in_operands() {
        // σ_{#1<5}(R ⋈ S) — merge-into-join then pushdown to the left
        // operand.
        let q = Query::base("R")
            .join(Query::base("S"), Predicate::col_col(0, CmpOp::Eq, 2))
            .select(Predicate::col_cmp(1, CmpOp::Lt, 5));
        let (out, _) = optimize(&q, &catalog());
        let expected = Query::base("R")
            .select(Predicate::col_cmp(1, CmpOp::Lt, 5))
            .join(Query::base("S"), Predicate::col_col(0, CmpOp::Eq, 2));
        assert_eq!(out, expected);
    }

    #[test]
    fn pure_cross_conjuncts_stay() {
        let q = Query::base("R").join(Query::base("S"), Predicate::col_col(1, CmpOp::Lt, 2));
        let (out, trace) = optimize(&q, &catalog());
        assert_eq!(out, q);
        assert_eq!(trace.count("push-select-into-join-operand"), 0);
    }
}
