//! The strategy planner: choosing a point on the eager↔lazy spectrum.
//!
//! §5 frames the choice of an equivalent ENF query as "the choice of how
//! eager or lazy the evaluation" is. The planner builds up to four
//! candidates and picks the cheapest under the cost model of
//! [`crate::stats`]:
//!
//! * **Lazy** — `fully_lazy` reduction + RA optimization; evaluate the pure
//!   result conventionally. Wins when hypothetical relations are referenced
//!   rarely, or when rewriting proves the result (near-)empty — Ex. 2.1(b).
//! * **EagerXsub** — normalize to ENF, materialize substitutions, filter
//!   (Algorithm HQL-2). Wins when affected names occur many times in the
//!   query — Ex. 2.1(c) — because the cost model charges lazy for every
//!   inlined copy of a binding and eager only once.
//! * **EagerDelta** — normalize to mod-ENF and run Algorithm HQL-3. Wins
//!   when the updates touch a small fraction of the data — §5.5.
//! * **Hybrid** — per-`when` greedy mix: reduce a `when` lazily where that
//!   is estimated cheaper, keep it for materialization where not —
//!   Ex. 2.1(c)'s mixed strategy.

use std::fmt;

use hypoquery_storage::Catalog;

use hypoquery_algebra::Query;
use hypoquery_core::{
    fully_lazy, is_mod_enf, simplify_enf, to_enf_query, to_mod_enf, RewriteTrace,
};

use crate::rewrite::{optimize, RaTrace};
use crate::stats::{estimate_cost, Statistics};

/// Which evaluation strategy a plan uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PlannedStrategy {
    /// Reduce to pure RA and evaluate conventionally.
    Lazy,
    /// ENF + xsub materialization (Algorithm HQL-2).
    EagerXsub,
    /// mod-ENF + delta values (Algorithm HQL-3).
    EagerDelta,
    /// Partially reduced ENF: some `when`s inlined, others materialized
    /// (executed by Algorithm HQL-2).
    Hybrid,
}

impl fmt::Display for PlannedStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PlannedStrategy::Lazy => "lazy",
            PlannedStrategy::EagerXsub => "eager-xsub",
            PlannedStrategy::EagerDelta => "eager-delta",
            PlannedStrategy::Hybrid => "hybrid",
        };
        write!(f, "{s}")
    }
}

/// A prepared execution plan.
#[derive(Clone, Debug)]
pub struct Plan {
    /// The chosen strategy.
    pub strategy: PlannedStrategy,
    /// The query to execute, already in the shape the strategy expects
    /// (pure for Lazy; ENF for EagerXsub/Hybrid; mod-ENF for EagerDelta).
    pub query: Query,
    /// The estimated cost of the chosen plan.
    pub est_cost: f64,
    /// Every candidate considered, with its estimated cost (for EXPLAIN).
    pub candidates: Vec<(PlannedStrategy, f64)>,
    /// EQUIV_when rewrite trace accumulated while preparing the plan.
    pub when_trace: RewriteTrace,
    /// RA rewrite trace of the chosen plan's optimization.
    pub ra_trace: RaTrace,
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "strategy: {} (est. cost {:.1})",
            self.strategy, self.est_cost
        )?;
        for (s, c) in &self.candidates {
            writeln!(f, "  candidate {s}: est. cost {c:.1}")?;
        }
        // The Fig. 1 rewrite path: EQUIV_when steps aggregated per rule
        // (in first-use order), then RA rewrite counts.
        if !self.when_trace.steps.is_empty() {
            let mut by_rule: Vec<(&'static str, usize)> = Vec::new();
            for step in &self.when_trace.steps {
                let name = step.rule.name();
                match by_rule.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, c)) => *c += 1,
                    None => by_rule.push((name, 1)),
                }
            }
            writeln!(
                f,
                "EQUIV_when rewrites: {} step(s)",
                self.when_trace.steps.len()
            )?;
            for (name, c) in by_rule {
                writeln!(f, "  {name} \u{d7} {c}")?;
            }
        }
        if self.ra_trace.total() > 0 {
            writeln!(f, "RA rewrites: {} step(s)", self.ra_trace.total())?;
            for (name, c) in &self.ra_trace.counts {
                writeln!(f, "  {name} \u{d7} {c}")?;
            }
        }
        write!(f, "plan: {}", self.query)
    }
}

/// Plan a query against the given statistics.
pub fn plan(q: &Query, catalog: &Catalog, stats: &Statistics) -> Plan {
    let mut when_trace = RewriteTrace::new();

    // Candidate: lazy.
    let lazy_raw = fully_lazy(q, &mut when_trace);
    let (lazy_q, lazy_ra) = optimize(&lazy_raw, catalog);
    let cost_lazy = estimate_cost(&lazy_q, stats);

    if q.is_pure() {
        return Plan {
            strategy: PlannedStrategy::Lazy,
            query: lazy_q,
            est_cost: cost_lazy,
            candidates: vec![(PlannedStrategy::Lazy, cost_lazy)],
            when_trace,
            ra_trace: lazy_ra,
        };
    }

    let mut candidates = vec![(PlannedStrategy::Lazy, cost_lazy)];

    // Candidate: eager with xsub-values (HQL-2).
    let enf = simplify_enf(&to_enf_query(q, &mut when_trace), &mut when_trace);
    let (enf_q, enf_ra) = optimize(&enf, catalog);
    let cost_xsub = estimate_cost(&enf_q, stats);
    candidates.push((PlannedStrategy::EagerXsub, cost_xsub));

    // Candidate: eager with deltas (HQL-3), when mod-ENF exists. The RA
    // optimizer descends into `when` bodies without disturbing the
    // mod-ENF shape.
    let delta_candidate = to_mod_enf(q)
        .ok()
        .map(|m| optimize(&m, catalog).0)
        .filter(is_mod_enf)
        .map(|m| {
            let cost = estimate_cost(&m, stats);
            (m, cost)
        });
    if let Some((_, c)) = &delta_candidate {
        candidates.push((PlannedStrategy::EagerDelta, *c));
    }

    // Candidate: hybrid (greedy per-when), only when the query nests whens.
    let hybrid = hybrid_candidate(&enf_q, catalog, stats, &mut when_trace);
    let hybrid = hybrid.filter(|h| *h != enf_q && *h != lazy_q);
    let hybrid_scored = hybrid.map(|h| {
        let c = estimate_cost(&h, stats);
        (h, c)
    });
    if let Some((_, c)) = &hybrid_scored {
        candidates.push((PlannedStrategy::Hybrid, *c));
    }

    // Pick the cheapest; ties prefer the earlier candidate (lazy first —
    // it needs no materialization machinery).
    let best = candidates
        .iter()
        .cloned()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("at least the lazy candidate exists");

    let (query, ra_trace) = match best.0 {
        PlannedStrategy::Lazy => (lazy_q, lazy_ra),
        PlannedStrategy::EagerXsub => (enf_q, enf_ra),
        PlannedStrategy::EagerDelta => {
            let (m, _) = delta_candidate.expect("candidate recorded above");
            (m, RaTrace::default())
        }
        PlannedStrategy::Hybrid => {
            let (h, _) = hybrid_scored.expect("candidate recorded above");
            (h, RaTrace::default())
        }
    };

    Plan {
        strategy: best.0,
        query,
        est_cost: best.1,
        candidates,
        when_trace,
        ra_trace,
    }
}

/// Greedy hybrid: walk the ENF query; at each `when`, inline it lazily if
/// the reduced form is estimated cheaper than keeping it for
/// materialization. Returns `None` when the query has no `when` at all.
fn hybrid_candidate(
    enf_q: &Query,
    catalog: &Catalog,
    stats: &Statistics,
    trace: &mut RewriteTrace,
) -> Option<Query> {
    if enf_q.is_pure() {
        return None;
    }
    Some(hybridize(enf_q, catalog, stats, trace))
}

fn hybridize(q: &Query, catalog: &Catalog, stats: &Statistics, trace: &mut RewriteTrace) -> Query {
    let rebuilt = match q.clone() {
        Query::When(body, eta) => {
            let body = hybridize(&body, catalog, stats, trace);
            body.when(*eta)
        }
        other => other.map_subqueries(|sub| hybridize(&sub, catalog, stats, trace)),
    };
    if let Query::When(_, _) = &rebuilt {
        let eager_cost = estimate_cost(&rebuilt, stats);
        let lazy_form = fully_lazy(&rebuilt, trace);
        let (lazy_form, _) = optimize(&lazy_form, catalog);
        let lazy_cost = estimate_cost(&lazy_form, stats);
        if lazy_cost <= eager_cost {
            return lazy_form;
        }
    }
    rebuilt
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypoquery_algebra::{CmpOp, Predicate, StateExpr, Update};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.declare_arity("R", 2).unwrap();
        c.declare_arity("S", 2).unwrap();
        c
    }

    fn stats(r: f64, s: f64) -> Statistics {
        Statistics::from_cards([("R".into(), r), ("S".into(), s)])
    }

    fn hypo_query(occurrences: usize) -> Query {
        // Body references R `occurrences` times via self-join chains that
        // no rewrite rule collapses, under ins(R, σ(S)).
        let mut body = Query::base("R");
        for _ in 1..occurrences {
            body = body
                .join(Query::base("R"), Predicate::col_col(0, CmpOp::Eq, 2))
                .project([0, 3]);
        }
        body.when(StateExpr::update(Update::insert(
            "R",
            Query::base("S").select(Predicate::col_cmp(0, CmpOp::Gt, 30)),
        )))
    }

    #[test]
    fn pure_queries_plan_lazy() {
        let q = Query::base("R").union(Query::base("S"));
        let p = plan(&q, &catalog(), &stats(100.0, 100.0));
        assert_eq!(p.strategy, PlannedStrategy::Lazy);
        assert!(p.query.is_pure());
        assert_eq!(p.candidates.len(), 1);
    }

    #[test]
    fn single_occurrence_prefers_lazy_or_delta() {
        let p = plan(&hypo_query(1), &catalog(), &stats(1000.0, 1000.0));
        // One occurrence: materializing R ∪ σ(S) buys nothing.
        assert_ne!(p.strategy, PlannedStrategy::EagerXsub);
    }

    #[test]
    fn many_occurrences_prefer_eager() {
        let p = plan(&hypo_query(12), &catalog(), &stats(1000.0, 1000.0));
        assert!(
            matches!(
                p.strategy,
                PlannedStrategy::EagerXsub | PlannedStrategy::EagerDelta
            ),
            "expected eager for 12 occurrences, got {} \n{p}",
            p.strategy
        );
        // Both eager candidates were costed.
        assert!(p.candidates.len() >= 3);
    }

    #[test]
    fn plan_display_lists_candidates() {
        let p = plan(&hypo_query(3), &catalog(), &stats(100.0, 100.0));
        let s = p.to_string();
        assert!(s.contains("strategy:"));
        assert!(s.contains("candidate"));
    }

    #[test]
    fn plan_display_renders_rewrite_traces() {
        let p = plan(&hypo_query(3), &catalog(), &stats(100.0, 100.0));
        let s = p.to_string();
        // Normalizing a hypothetical query always takes EQUIV_when steps;
        // each recorded rule shows up with its step count.
        assert!(!p.when_trace.steps.is_empty());
        assert!(
            s.contains("EQUIV_when rewrites:"),
            "missing when trace:\n{s}"
        );
        let first_rule = p.when_trace.steps[0].rule.name();
        assert!(s.contains(first_rule), "missing rule `{first_rule}`:\n{s}");
        if p.ra_trace.total() > 0 {
            assert!(s.contains("RA rewrites:"), "missing RA trace:\n{s}");
        }
    }

    #[test]
    fn planned_query_shape_matches_strategy() {
        let p = plan(&hypo_query(12), &catalog(), &stats(1000.0, 1000.0));
        match p.strategy {
            PlannedStrategy::Lazy => assert!(p.query.is_pure()),
            PlannedStrategy::EagerXsub | PlannedStrategy::Hybrid => {
                assert!(hypoquery_core::is_enf_query(&p.query))
            }
            PlannedStrategy::EagerDelta => assert!(is_mod_enf(&p.query)),
        }
    }
}
