//! Decision procedures for comparison predicates over integer constants.
//!
//! The paper's derivations lean on "algebraic simplification" steps such as
//!
//! ```text
//! S − σ_{A<60}(S)        ≡ σ_{A≥60}(S)          (difference → negation)
//! σ_{A>30}(σ_{A≥60}(S))  ≡ σ_{A≥60}(S)          (implied conjunct)
//! σ_{A≥60}(S) ∩ σ_{A<60}(S) ≡ ∅                 (unsatisfiable)
//! ```
//!
//! This module provides the sound (and deliberately partial) reasoning that
//! powers them: implication and unsatisfiability for atoms of the shape
//! `col op integer-constant` and their conjunctions. Anything outside that
//! fragment conservatively answers "don't know" (`false`), which simply
//! disables the rewrite.

use hypoquery_algebra::{CmpOp, Predicate, ScalarExpr};
use hypoquery_storage::Value;

/// An atom `col op c` over an integer constant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Atom {
    /// Column position.
    pub col: usize,
    /// Comparison operator.
    pub op: CmpOp,
    /// Integer constant.
    pub value: i64,
}

impl Atom {
    /// Extract an atom from a predicate, if it has the right shape
    /// (including the flipped form `c op col`).
    pub fn from_pred(p: &Predicate) -> Option<Atom> {
        match p {
            Predicate::Cmp(ScalarExpr::Col(col), op, ScalarExpr::Const(Value::Int(v))) => {
                Some(Atom {
                    col: *col,
                    op: *op,
                    value: *v,
                })
            }
            Predicate::Cmp(ScalarExpr::Const(Value::Int(v)), op, ScalarExpr::Col(col)) => {
                Some(Atom {
                    col: *col,
                    op: op.flip(),
                    value: *v,
                })
            }
            _ => None,
        }
    }

    /// The solution set of this atom as an integer interval with an
    /// optional excluded point: `[lo, hi] \ {exclude}` (bounds in `i128` to
    /// avoid overflow at the `i64` extremes).
    fn solution(&self) -> IntSet {
        let c = self.value as i128;
        match self.op {
            CmpOp::Eq => IntSet {
                lo: c,
                hi: c,
                exclude: None,
            },
            CmpOp::Ne => IntSet {
                lo: i128::MIN,
                hi: i128::MAX,
                exclude: Some(c),
            },
            CmpOp::Lt => IntSet {
                lo: i128::MIN,
                hi: c - 1,
                exclude: None,
            },
            CmpOp::Le => IntSet {
                lo: i128::MIN,
                hi: c,
                exclude: None,
            },
            CmpOp::Gt => IntSet {
                lo: c + 1,
                hi: i128::MAX,
                exclude: None,
            },
            CmpOp::Ge => IntSet {
                lo: c,
                hi: i128::MAX,
                exclude: None,
            },
        }
    }
}

/// `[lo, hi] \ {exclude}` over the integers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct IntSet {
    lo: i128,
    hi: i128,
    exclude: Option<i128>,
}

impl IntSet {
    fn is_empty(&self) -> bool {
        self.lo > self.hi || (self.lo == self.hi && self.exclude == Some(self.lo))
    }

    /// Whether `self ⊆ other`.
    fn subset_of(&self, other: &IntSet) -> bool {
        if self.is_empty() {
            return true;
        }
        if !(other.lo <= self.lo && self.hi <= other.hi) {
            return false;
        }
        match other.exclude {
            None => true,
            Some(e) => {
                // e must not be a member of self.
                e < self.lo || e > self.hi || self.exclude == Some(e)
            }
        }
    }

    fn intersect(&self, other: &IntSet) -> Option<IntSet> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        // At most one excluded point can be represented; if both sets
        // exclude different in-range points, give up (report None =
        // unknown).
        let ex: Vec<i128> = [self.exclude, other.exclude]
            .into_iter()
            .flatten()
            .filter(|e| *e >= lo && *e <= hi)
            .collect();
        match ex.as_slice() {
            [] => Some(IntSet {
                lo,
                hi,
                exclude: None,
            }),
            [e] => Some(IntSet {
                lo,
                hi,
                exclude: Some(*e),
            }),
            [a, b] if a == b => Some(IntSet {
                lo,
                hi,
                exclude: Some(*a),
            }),
            _ => None,
        }
    }
}

/// Whether atom `a` implies atom `b` (same column required).
pub fn atom_implies(a: &Atom, b: &Atom) -> bool {
    a.col == b.col && a.solution().subset_of(&b.solution())
}

/// Collect the conjuncts of a predicate (flattening nested `And`s).
pub fn conjuncts(p: &Predicate) -> Vec<Predicate> {
    match p {
        Predicate::And(a, b) => {
            let mut out = conjuncts(a);
            out.extend(conjuncts(b));
            out
        }
        Predicate::True => vec![],
        other => vec![other.clone()],
    }
}

/// Rebuild a conjunction from conjuncts.
pub fn conjoin(mut parts: Vec<Predicate>) -> Predicate {
    match parts.len() {
        0 => Predicate::True,
        _ => {
            let first = parts.remove(0);
            parts.into_iter().fold(first, Predicate::and)
        }
    }
}

/// Sound, partial implication test: does `p` imply `q` in every tuple?
///
/// Handles: syntactic equality, `q = True`, `p = False`, and the
/// atom-conjunction fragment (every conjunct of `q` must be implied by some
/// conjunct of `p`, or be a repeated conjunct of `p`). Returns `false` on
/// anything it cannot decide.
pub fn pred_implies(p: &Predicate, q: &Predicate) -> bool {
    if p == q || *q == Predicate::True || *p == Predicate::False {
        return true;
    }
    if pred_unsat(p) {
        return true;
    }
    let q_parts = conjuncts(q);
    let p_parts = conjuncts(p);
    q_parts.iter().all(|qc| {
        p_parts.iter().any(|pc| {
            pc == qc
                || match (Atom::from_pred(pc), Atom::from_pred(qc)) {
                    (Some(a), Some(b)) => atom_implies(&a, &b),
                    _ => false,
                }
        })
    })
}

/// Sound, partial unsatisfiability test.
///
/// Detects `False`, conjunctions whose per-column interval intersection is
/// empty, and disjunctions of unsatisfiable branches.
pub fn pred_unsat(p: &Predicate) -> bool {
    match p {
        Predicate::False => true,
        Predicate::Or(a, b) => pred_unsat(a) && pred_unsat(b),
        _ => {
            let parts = conjuncts(p);
            if parts.contains(&Predicate::False) {
                return true;
            }
            if parts.iter().any(pred_contains_unsat_or) {
                return false; // give up on nested disjunctions here
            }
            // Intersect atoms per column.
            let mut per_col: std::collections::BTreeMap<usize, IntSet> = Default::default();
            for part in &parts {
                if let Some(atom) = Atom::from_pred(part) {
                    let s = atom.solution();
                    match per_col.get(&atom.col) {
                        None => {
                            per_col.insert(atom.col, s);
                        }
                        Some(prev) => match prev.intersect(&s) {
                            Some(merged) => {
                                per_col.insert(atom.col, merged);
                            }
                            None => return false, // unknown
                        },
                    }
                }
            }
            per_col.values().any(IntSet::is_empty)
        }
    }
}

fn pred_contains_unsat_or(p: &Predicate) -> bool {
    matches!(p, Predicate::Or(_, _) | Predicate::Not(_))
}

/// Drop conjuncts of `p` implied by the remaining ones (redundant-conjunct
/// pruning — the step that turns `A>30 ∧ A≥60` into `A≥60`).
pub fn prune_conjuncts(p: &Predicate) -> Predicate {
    let parts = conjuncts(p);
    if parts.len() <= 1 {
        return p.clone();
    }
    let mut kept: Vec<Predicate> = Vec::new();
    for cand in parts {
        // Skip cand if an already-kept conjunct implies it (including the
        // equal-conjunct case, where the first occurrence wins).
        if kept.iter().any(|k| conj_implies(k, &cand)) {
            continue;
        }
        // Drop kept conjuncts that cand strictly subsumes.
        kept.retain(|k| !conj_implies(&cand, k));
        kept.push(cand);
    }
    conjoin(kept)
}

fn conj_implies(a: &Predicate, b: &Predicate) -> bool {
    a == b
        || match (Atom::from_pred(a), Atom::from_pred(b)) {
            (Some(a), Some(b)) => atom_implies(&a, &b),
            _ => false,
        }
}

/// Constant-fold a predicate: evaluate const-vs-const comparisons,
/// eliminate `True`/`False` in connectives, push double negations.
pub fn fold_pred(p: &Predicate) -> Predicate {
    match p {
        Predicate::Cmp(ScalarExpr::Const(a), op, ScalarExpr::Const(b)) => {
            if op.apply(a, b) {
                Predicate::True
            } else {
                Predicate::False
            }
        }
        Predicate::And(a, b) => match (fold_pred(a), fold_pred(b)) {
            (Predicate::False, _) | (_, Predicate::False) => Predicate::False,
            (Predicate::True, x) | (x, Predicate::True) => x,
            (x, y) => x.and(y),
        },
        Predicate::Or(a, b) => match (fold_pred(a), fold_pred(b)) {
            (Predicate::True, _) | (_, Predicate::True) => Predicate::True,
            (Predicate::False, x) | (x, Predicate::False) => x,
            (x, y) => x.or(y),
        },
        Predicate::Not(a) => fold_pred(&a.negated()),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(col: usize, op: CmpOp, v: i64) -> Predicate {
        Predicate::col_cmp(col, op, v)
    }

    #[test]
    fn paper_implication_ge60_implies_gt30() {
        let a = Atom::from_pred(&atom(0, CmpOp::Ge, 60)).unwrap();
        let b = Atom::from_pred(&atom(0, CmpOp::Gt, 30)).unwrap();
        assert!(atom_implies(&a, &b));
        assert!(!atom_implies(&b, &a));
    }

    #[test]
    fn implication_table() {
        use CmpOp::*;
        let cases = [
            ((Eq, 5), (Le, 5), true),
            ((Eq, 5), (Lt, 5), false),
            ((Eq, 5), (Ne, 6), true),
            ((Eq, 5), (Ne, 5), false),
            ((Gt, 10), (Ge, 10), true),
            ((Ge, 10), (Gt, 10), false),
            ((Gt, 10), (Ge, 11), true),
            ((Lt, 0), (Le, 0), true),
            ((Lt, 0), (Ne, 0), true),
            ((Le, 4), (Lt, 5), true),
            ((Ne, 3), (Ne, 3), true),
            ((Ne, 3), (Le, 9), false),
        ];
        for ((op1, v1), (op2, v2), expect) in cases {
            let a = Atom {
                col: 0,
                op: op1,
                value: v1,
            };
            let b = Atom {
                col: 0,
                op: op2,
                value: v2,
            };
            assert_eq!(atom_implies(&a, &b), expect, "{op1:?} {v1} => {op2:?} {v2}");
        }
    }

    #[test]
    fn different_columns_never_imply() {
        let a = Atom {
            col: 0,
            op: CmpOp::Eq,
            value: 1,
        };
        let b = Atom {
            col: 1,
            op: CmpOp::Ge,
            value: 0,
        };
        assert!(!atom_implies(&a, &b));
    }

    #[test]
    fn flipped_atoms_are_normalized() {
        // 60 <= col0 is col0 >= 60.
        let p = Predicate::Cmp(
            ScalarExpr::Const(Value::int(60)),
            CmpOp::Le,
            ScalarExpr::Col(0),
        );
        let a = Atom::from_pred(&p).unwrap();
        assert_eq!(a.op, CmpOp::Ge);
        assert_eq!(a.value, 60);
    }

    #[test]
    fn paper_unsat_ge60_and_lt60() {
        let p = atom(0, CmpOp::Ge, 60).and(atom(0, CmpOp::Lt, 60));
        assert!(pred_unsat(&p));
        let q = atom(0, CmpOp::Ge, 60).and(atom(0, CmpOp::Le, 60));
        assert!(!pred_unsat(&q)); // exactly 60 satisfies it
        let r = atom(0, CmpOp::Eq, 5).and(atom(0, CmpOp::Ne, 5));
        assert!(pred_unsat(&r));
        // Different columns don't clash.
        let s = atom(0, CmpOp::Ge, 60).and(atom(1, CmpOp::Lt, 60));
        assert!(!pred_unsat(&s));
    }

    #[test]
    fn unsat_is_conservative_on_unknown_shapes() {
        let p = Predicate::col_col(0, CmpOp::Lt, 0); // actually unsat, but col-col
        assert!(!pred_unsat(&p)); // conservative "don't know"
        assert!(pred_unsat(&Predicate::False));
        assert!(pred_unsat(&Predicate::False.or(Predicate::False)));
        assert!(!pred_unsat(&Predicate::False.or(Predicate::True)));
    }

    #[test]
    fn pred_implies_conjunction_fragment() {
        let p = atom(0, CmpOp::Ge, 60).and(atom(1, CmpOp::Eq, 3));
        let q = atom(0, CmpOp::Gt, 30);
        assert!(pred_implies(&p, &q));
        assert!(pred_implies(&p, &Predicate::True));
        assert!(pred_implies(&Predicate::False, &q));
        assert!(!pred_implies(&q, &p));
    }

    #[test]
    fn prune_removes_implied_conjunct() {
        // A>30 ∧ A≥60 → A≥60 (the Example 2.1(b) simplification).
        let p = atom(0, CmpOp::Gt, 30).and(atom(0, CmpOp::Ge, 60));
        assert_eq!(prune_conjuncts(&p), atom(0, CmpOp::Ge, 60));
        // Order-independent.
        let p = atom(0, CmpOp::Ge, 60).and(atom(0, CmpOp::Gt, 30));
        assert_eq!(prune_conjuncts(&p), atom(0, CmpOp::Ge, 60));
        // Non-overlapping conjuncts are kept.
        let p = atom(0, CmpOp::Ge, 60).and(atom(1, CmpOp::Lt, 5));
        assert_eq!(prune_conjuncts(&p), p);
    }

    #[test]
    fn prune_keeps_one_of_equal_conjuncts() {
        let a = atom(0, CmpOp::Ge, 60);
        let p = a.clone().and(a.clone());
        assert_eq!(prune_conjuncts(&p), a);
    }

    #[test]
    fn fold_pred_constants() {
        let p = Predicate::Cmp(
            ScalarExpr::Const(Value::int(3)),
            CmpOp::Lt,
            ScalarExpr::Const(Value::int(5)),
        );
        assert_eq!(fold_pred(&p), Predicate::True);
        let q = fold_pred(&p.clone().and(atom(0, CmpOp::Eq, 1)));
        assert_eq!(q, atom(0, CmpOp::Eq, 1));
        assert_eq!(
            fold_pred(&Predicate::True.or(atom(0, CmpOp::Eq, 1))),
            Predicate::True
        );
        assert_eq!(
            fold_pred(&atom(0, CmpOp::Lt, 60).not()),
            atom(0, CmpOp::Ge, 60)
        );
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let a = Atom {
            col: 0,
            op: CmpOp::Gt,
            value: i64::MAX,
        };
        let b = Atom {
            col: 0,
            op: CmpOp::Lt,
            value: i64::MIN,
        };
        // x > i64::MAX has solutions in i128 space (we model mathematical
        // integers), so it is not unsat per se; just check no panic and
        // sane subset behavior.
        assert!(!atom_implies(&a, &b));
        assert!(atom_implies(
            &a,
            &Atom {
                col: 0,
                op: CmpOp::Ge,
                value: i64::MAX
            }
        ));
    }
}
