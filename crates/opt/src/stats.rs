//! Cardinality statistics and a simple cost model.
//!
//! The paper leaves "techniques for estimating the cost of execution plans
//! involving xsub-values and delta values" as future work (§6); what the
//! planner needs today is a coarse, monotone estimator good enough to
//! choose between lazy, eager-xsub and eager-delta shapes. We use textbook
//! selectivity constants over exact base cardinalities.

use std::collections::{BTreeMap, BTreeSet};

use hypoquery_storage::{distinct_count, DatabaseState, RelName};

use hypoquery_algebra::scope::dom_state_expr;
use hypoquery_algebra::{CmpOp, Predicate, Query, ScalarExpr, StateExpr, Update};

/// Selectivity assumed for equality predicates.
pub const SEL_EQ: f64 = 0.1;
/// Selectivity assumed for range predicates.
pub const SEL_RANGE: f64 = 0.33;
/// Selectivity assumed for inequality (`<>`) predicates.
pub const SEL_NE: f64 = 0.9;
/// Matching fraction assumed for join predicates beyond the equi-core.
pub const SEL_JOIN: f64 = 0.1;

/// Base-relation statistics, snapshotted from a state: exact
/// cardinalities, declared arities, per-column distinct counts, and which
/// columns carry a declared secondary index.
#[derive(Clone, Debug, Default)]
pub struct Statistics {
    cards: BTreeMap<RelName, f64>,
    arities: BTreeMap<RelName, usize>,
    distincts: BTreeMap<(RelName, usize), f64>,
    indexed: BTreeMap<RelName, BTreeSet<usize>>,
}

impl Statistics {
    /// Snapshot statistics from a database state. Distinct counts are
    /// memoized per storage pointer (`hypoquery_storage::distinct_count`),
    /// so repeated snapshots of unchanged relations cost one pass total.
    pub fn of(db: &DatabaseState) -> Self {
        let mut cards = BTreeMap::new();
        let mut arities = BTreeMap::new();
        let mut distincts = BTreeMap::new();
        for (name, schema) in db.catalog().iter() {
            arities.insert(name.clone(), schema.arity);
            if let Ok(rel) = db.get(name) {
                cards.insert(name.clone(), rel.len() as f64);
                if !rel.is_empty() {
                    for col in 0..schema.arity {
                        distincts.insert((name.clone(), col), distinct_count(&rel, col) as f64);
                    }
                }
            }
        }
        let mut indexed: BTreeMap<RelName, BTreeSet<usize>> = BTreeMap::new();
        for (name, col) in db.index_decls() {
            indexed.entry(name.clone()).or_default().insert(col);
        }
        Statistics {
            cards,
            arities,
            distincts,
            indexed,
        }
    }

    /// Build from explicit `(name, cardinality)` pairs.
    pub fn from_cards(cards: impl IntoIterator<Item = (RelName, f64)>) -> Self {
        Statistics {
            cards: cards.into_iter().collect(),
            ..Statistics::default()
        }
    }

    /// Cardinality of a base relation (0 if unknown). Sanitized: a
    /// non-finite or negative stored value (possible with hand-built
    /// [`Statistics::from_cards`]) reads as 0.
    pub fn card(&self, name: &RelName) -> f64 {
        let c = self.cards.get(name).copied().unwrap_or(0.0);
        if c.is_finite() {
            c.max(0.0)
        } else {
            0.0
        }
    }

    /// Declared arity of a base relation, if known.
    pub fn arity(&self, name: &RelName) -> Option<usize> {
        self.arities.get(name).copied()
    }

    /// Distinct values in a base column, if measured.
    pub fn distinct(&self, name: &RelName, col: usize) -> Option<f64> {
        self.distincts.get(&(name.clone(), col)).copied()
    }

    /// Whether a secondary index is declared on `name.col`.
    pub fn has_index(&self, name: &RelName, col: usize) -> bool {
        self.indexed.get(name).is_some_and(|s| s.contains(&col))
    }

    /// Builder: record an arity (for hand-built test statistics).
    pub fn with_arity(mut self, name: impl Into<RelName>, arity: usize) -> Self {
        self.arities.insert(name.into(), arity);
        self
    }

    /// Builder: record a distinct count (for hand-built test statistics).
    pub fn with_distinct(mut self, name: impl Into<RelName>, col: usize, n: f64) -> Self {
        self.distincts.insert((name.into(), col), n);
        self
    }

    /// Builder: record an index declaration (for hand-built test
    /// statistics).
    pub fn with_index(mut self, name: impl Into<RelName>, col: usize) -> Self {
        self.indexed.entry(name.into()).or_default().insert(col);
        self
    }
}

/// Estimated selectivity of a predicate over a *known base relation*:
/// point equalities `#c = const` use the measured distinct count of the
/// column (`1/V(R,c)`, the textbook uniform estimate) when available,
/// falling back to the flat [`SEL_EQ`] constant otherwise. With `base`
/// `None` this is exactly [`selectivity`].
pub fn selectivity_over(p: &Predicate, base: Option<&RelName>, stats: &Statistics) -> f64 {
    clamp01(match p {
        Predicate::And(a, b) => selectivity_over(a, base, stats) * selectivity_over(b, base, stats),
        Predicate::Or(a, b) => {
            let (sa, sb) = (
                selectivity_over(a, base, stats),
                selectivity_over(b, base, stats),
            );
            (sa + sb - sa * sb).min(1.0)
        }
        Predicate::Not(a) => 1.0 - selectivity_over(a, base, stats),
        Predicate::Cmp(ScalarExpr::Col(c), CmpOp::Eq, ScalarExpr::Const(_))
        | Predicate::Cmp(ScalarExpr::Const(_), CmpOp::Eq, ScalarExpr::Col(c)) => base
            .and_then(|n| stats.distinct(n, *c))
            .map(|d| (1.0 / d.max(1.0)).min(1.0))
            .unwrap_or(SEL_EQ),
        other => selectivity(other),
    })
}

/// Estimated selectivity of a predicate.
pub fn selectivity(p: &Predicate) -> f64 {
    clamp01(match p {
        Predicate::True => 1.0,
        Predicate::False => 0.0,
        Predicate::Cmp(_, CmpOp::Eq, _) => SEL_EQ,
        Predicate::Cmp(_, CmpOp::Ne, _) => SEL_NE,
        Predicate::Cmp(_, _, _) => SEL_RANGE,
        Predicate::And(a, b) => selectivity(a) * selectivity(b),
        Predicate::Or(a, b) => {
            let (sa, sb) = (selectivity(a), selectivity(b));
            (sa + sb - sa * sb).min(1.0)
        }
        Predicate::Not(a) => 1.0 - selectivity(a),
    })
}

/// Clamp a selectivity into `[0, 1]`; non-finite values (conceivable
/// only with degenerate injected statistics) read as 1 — "no filtering
/// knowledge", the conservative choice.
fn clamp01(s: f64) -> f64 {
    if s.is_finite() {
        s.clamp(0.0, 1.0)
    } else {
        1.0
    }
}

/// Final guard for row estimates: never negative, never NaN (reads as
/// 0 — an estimate derived from nothing), `+∞` capped to `f64::MAX` so
/// downstream arithmetic stays ordered under `total_cmp`.
fn sanitize_rows(r: f64) -> f64 {
    if r.is_nan() {
        0.0
    } else if r == f64::INFINITY {
        f64::MAX
    } else {
        r.max(0.0)
    }
}

/// Final guard for cost estimates: never negative; NaN/`+∞` read as
/// `f64::MAX` so an un-costable candidate loses every comparison
/// instead of winning it by NaN ordering.
fn sanitize_cost(c: f64) -> f64 {
    if !c.is_finite() {
        f64::MAX
    } else {
        c.max(0.0)
    }
}

/// Estimated output cardinality of a query.
///
/// `when` bodies are estimated as if the hypothetical update left
/// cardinalities unchanged, except that names bound by the state
/// expression are re-estimated from the binding/update shape — coarse, but
/// monotone in the base sizes, which is all the planner relies on.
pub fn estimate_rows(q: &Query, stats: &Statistics) -> f64 {
    sanitize_rows(match q {
        Query::Base(name) => stats.card(name),
        Query::Singleton(_) => 1.0,
        Query::Empty { .. } => 0.0,
        Query::Select(inner, p) => {
            let base = match &**inner {
                Query::Base(name) => Some(name),
                _ => None,
            };
            estimate_rows(inner, stats) * selectivity_over(p, base, stats)
        }
        Query::Project(inner, _) => estimate_rows(inner, stats),
        Query::Union(a, b) => estimate_rows(a, stats) + estimate_rows(b, stats),
        Query::Intersect(a, b) => estimate_rows(a, stats).min(estimate_rows(b, stats)),
        Query::Diff(a, _) => estimate_rows(a, stats),
        Query::Product(a, b) => estimate_rows(a, stats) * estimate_rows(b, stats),
        Query::Join(a, b, p) => {
            let (l, r) = (estimate_rows(a, stats), estimate_rows(b, stats));
            // Equi-joins get the textbook foreign-key estimate
            // max(|L|, |R|); pure theta-joins fall back to a selectivity
            // fraction of the cross product.
            let has_equi = crate::implication::conjuncts(p).iter().any(|c| {
                matches!(
                    c,
                    Predicate::Cmp(
                        hypoquery_algebra::ScalarExpr::Col(_),
                        CmpOp::Eq,
                        hypoquery_algebra::ScalarExpr::Col(_)
                    )
                )
            });
            if has_equi {
                l.max(r)
            } else {
                l * r * selectivity(p).max(SEL_JOIN / 10.0)
            }
        }
        Query::When(inner, eta) => {
            let adjusted = adjust_stats_for_state(eta, stats);
            estimate_rows(inner, &adjusted)
        }
        Query::Aggregate {
            input, group_by, ..
        } => {
            let n = estimate_rows(input, stats);
            if group_by.is_empty() {
                n.min(1.0)
            } else {
                // Assume grouping reduces to ~sqrt of the input.
                n.sqrt().max(1.0).min(n)
            }
        }
    })
}

/// Re-estimate base cardinalities under a hypothetical state expression.
pub fn adjust_stats_for_state(eta: &StateExpr, stats: &Statistics) -> Statistics {
    let mut out = stats.clone();
    match eta {
        StateExpr::Update(u) => adjust_for_update(u, &mut out),
        StateExpr::Subst(eps) => {
            for (name, bq) in eps.iter() {
                let est = estimate_rows(bq, stats);
                out.cards.insert(name.clone(), est);
            }
        }
        StateExpr::Compose(a, b) => {
            out = adjust_stats_for_state(a, &out);
            out = adjust_stats_for_state(b, &out);
        }
    }
    out
}

fn adjust_for_update(u: &Update, stats: &mut Statistics) {
    match u {
        Update::Insert(name, q) => {
            let added = estimate_rows(q, stats);
            let cur = stats.card(name);
            stats.cards.insert(name.clone(), cur + added);
        }
        Update::Delete(name, q) => {
            let removed = estimate_rows(q, stats);
            let cur = stats.card(name);
            stats.cards.insert(name.clone(), (cur - removed).max(0.0));
        }
        Update::Seq(a, b) => {
            adjust_for_update(a, stats);
            adjust_for_update(b, stats);
        }
        Update::Cond { then_u, .. } => {
            // Assume the then-branch; good enough for sizing.
            adjust_for_update(then_u, stats);
        }
    }
}

/// Columns constrained to a constant by the top-level conjunction of `p`.
fn point_eq_cols(p: &Predicate) -> Vec<usize> {
    match p {
        Predicate::And(a, b) => {
            let mut cols = point_eq_cols(a);
            cols.extend(point_eq_cols(b));
            cols
        }
        Predicate::Cmp(ScalarExpr::Col(c), CmpOp::Eq, ScalarExpr::Const(_))
        | Predicate::Cmp(ScalarExpr::Const(_), CmpOp::Eq, ScalarExpr::Col(c)) => vec![*c],
        _ => Vec::new(),
    }
}

/// Cross-operand equality pairs `(left_col, right_col)` in a join
/// predicate, with the right column rebased. Mirrors the executor's
/// equi-core extraction (`hypoquery-eval::join::split_equi_pairs`).
fn cross_equi_pairs(p: &Predicate, left_arity: usize) -> Vec<(usize, usize)> {
    match p {
        Predicate::And(a, b) => {
            let mut pairs = cross_equi_pairs(a, left_arity);
            pairs.extend(cross_equi_pairs(b, left_arity));
            pairs
        }
        Predicate::Cmp(ScalarExpr::Col(x), CmpOp::Eq, ScalarExpr::Col(y)) => {
            let (lo, hi) = if x < y { (*x, *y) } else { (*y, *x) };
            if lo < left_arity && hi >= left_arity {
                vec![(lo, hi - left_arity)]
            } else {
                Vec::new()
            }
        }
        _ => Vec::new(),
    }
}

/// Output arity of a query, when derivable from the statistics' declared
/// arities (needed to rebase join-predicate columns).
fn query_arity(q: &Query, stats: &Statistics) -> Option<usize> {
    match q {
        Query::Base(name) => stats.arity(name),
        Query::Singleton(t) => Some(t.arity()),
        Query::Empty { arity } => Some(*arity),
        Query::Select(inner, _) | Query::When(inner, _) => query_arity(inner, stats),
        Query::Project(_, cols) => Some(cols.len()),
        Query::Union(a, _) | Query::Intersect(a, _) | Query::Diff(a, _) => query_arity(a, stats),
        Query::Product(a, b) | Query::Join(a, b, _) => {
            Some(query_arity(a, stats)? + query_arity(b, stats)?)
        }
        Query::Aggregate { group_by, aggs, .. } => Some(group_by.len() + aggs.len()),
    }
}

/// Estimated evaluation *cost* of a pure query: total tuples flowing
/// through all operators (a unit-cost-per-tuple model). Declared secondary
/// indexes change the access path: a point-equality select over an indexed
/// base costs its output (a probe), and an equi-join whose base operand is
/// indexed on the full equi-core skips the hash build and iterates only
/// the other side. Without index declarations the model is unchanged.
pub fn estimate_cost(q: &Query, stats: &Statistics) -> f64 {
    sanitize_cost(match q {
        Query::Base(name) => stats.card(name),
        Query::Singleton(_) | Query::Empty { .. } => 1.0,
        Query::Select(inner, p) => {
            if let Query::Base(name) = &**inner {
                if point_eq_cols(p).iter().any(|c| stats.has_index(name, *c)) {
                    // Index probe: pay for the matching rows only.
                    return sanitize_cost(estimate_rows(q, stats).max(1.0));
                }
            }
            estimate_cost(inner, stats) + estimate_rows(inner, stats)
        }
        Query::Project(inner, _) => estimate_cost(inner, stats) + estimate_rows(inner, stats),
        Query::Union(a, b) | Query::Intersect(a, b) | Query::Diff(a, b) => {
            estimate_cost(a, stats)
                + estimate_cost(b, stats)
                + estimate_rows(a, stats)
                + estimate_rows(b, stats)
        }
        Query::Product(a, b) => {
            estimate_cost(a, stats)
                + estimate_cost(b, stats)
                + estimate_rows(a, stats) * estimate_rows(b, stats)
        }
        Query::Join(a, b, p) => {
            let (ca, cb) = (estimate_cost(a, stats), estimate_cost(b, stats));
            let (ra, rb) = (estimate_rows(a, stats), estimate_rows(b, stats));
            let out = estimate_rows(q, stats);
            if let Some(left_arity) = query_arity(a, stats) {
                let pairs = cross_equi_pairs(p, left_arity);
                if !pairs.is_empty() {
                    let left_ok = matches!(&**a, Query::Base(n)
                        if pairs.iter().all(|&(lc, _)| stats.has_index(n, lc)));
                    let right_ok = matches!(&**b, Query::Base(n)
                        if pairs.iter().all(|&(_, rc)| stats.has_index(n, rc)));
                    if left_ok || right_ok {
                        // Indexed build side: no hash build, iterate only
                        // the probe side (the executor picks the cheaper
                        // one when both are available).
                        let probe = match (left_ok, right_ok) {
                            (true, true) => ra.min(rb),
                            (true, false) => rb,
                            _ => ra,
                        };
                        return sanitize_cost(ca + cb + probe + out);
                    }
                }
            }
            // Hash join: build + probe + output.
            ca + cb + ra + rb + out
        }
        Query::When(inner, eta) => {
            // Lazy view of a when: cost of the body under adjusted stats
            // plus the cost of the state's bindings once.
            let adjusted = adjust_stats_for_state(eta, stats);
            estimate_cost(inner, &adjusted) + state_materialization_cost(eta, stats)
        }
        Query::Aggregate { input, .. } => estimate_cost(input, stats) + estimate_rows(input, stats),
    })
}

/// Estimated cost of materializing a state expression (the eager
/// strategy's up-front payment): evaluating every binding/update query.
pub fn state_materialization_cost(eta: &StateExpr, stats: &Statistics) -> f64 {
    match eta {
        StateExpr::Update(u) => update_cost(u, stats),
        StateExpr::Subst(eps) => eps
            .iter()
            .map(|(_, bq)| estimate_cost(bq, stats) + estimate_rows(bq, stats))
            .sum(),
        StateExpr::Compose(a, b) => {
            state_materialization_cost(a, stats)
                + state_materialization_cost(b, &adjust_stats_for_state(a, stats))
        }
    }
}

fn update_cost(u: &Update, stats: &Statistics) -> f64 {
    match u {
        Update::Insert(_, q) | Update::Delete(_, q) => {
            estimate_cost(q, stats) + estimate_rows(q, stats)
        }
        Update::Seq(a, b) => {
            let mut s = stats.clone();
            adjust_for_update(a, &mut s);
            update_cost(a, stats) + update_cost(b, &s)
        }
        Update::Cond {
            guard,
            then_u,
            else_u,
        } => {
            estimate_cost(guard, stats) + update_cost(then_u, stats).max(update_cost(else_u, stats))
        }
    }
}

/// Count occurrences of any of the given names as base references in a
/// query — the Example 2.1(c) heuristic signal: many occurrences of
/// affected relations favor eager materialization.
pub fn count_occurrences(q: &Query, names: &std::collections::BTreeSet<RelName>) -> usize {
    match q {
        Query::Base(name) => usize::from(names.contains(name)),
        Query::Singleton(_) | Query::Empty { .. } => 0,
        Query::Select(inner, _) | Query::Project(inner, _) => count_occurrences(inner, names),
        Query::Union(a, b)
        | Query::Intersect(a, b)
        | Query::Product(a, b)
        | Query::Join(a, b, _)
        | Query::Diff(a, b) => count_occurrences(a, names) + count_occurrences(b, names),
        Query::When(inner, eta) => {
            // Occurrences under an inner when that rebinds the name do not
            // read the outer hypothetical state.
            let inner_dom = dom_state_expr(eta);
            let visible: std::collections::BTreeSet<RelName> =
                names.difference(&inner_dom).cloned().collect();
            count_occurrences(inner, &visible)
        }
        Query::Aggregate { input, .. } => count_occurrences(input, names),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypoquery_algebra::{ExplicitSubst, Predicate};
    use hypoquery_storage::{tuple, Catalog};

    fn stats() -> Statistics {
        Statistics::from_cards([("R".into(), 1000.0), ("S".into(), 100.0)])
    }

    #[test]
    fn snapshot_from_state() {
        let mut cat = Catalog::new();
        cat.declare_arity("R", 2).unwrap();
        let mut db = DatabaseState::new(cat);
        db.insert_rows("R", [tuple![1, 7], tuple![2, 7], tuple![2, 8]])
            .unwrap();
        db.declare_index("R", 0).unwrap();
        let s = Statistics::of(&db);
        assert_eq!(s.card(&"R".into()), 3.0);
        assert_eq!(s.card(&"Z".into()), 0.0);
        assert_eq!(s.arity(&"R".into()), Some(2));
        // Per-column distinct counts come from the data.
        assert_eq!(s.distinct(&"R".into(), 0), Some(2.0));
        assert_eq!(s.distinct(&"R".into(), 1), Some(2.0));
        assert_eq!(s.distinct(&"Z".into(), 0), None);
        // Index declarations are visible.
        assert!(s.has_index(&"R".into(), 0));
        assert!(!s.has_index(&"R".into(), 1));
    }

    #[test]
    fn distinct_counts_refine_equality_selectivity() {
        // 1000-row R whose column 0 has 500 distinct values: a point
        // select matches ~2 rows, not the flat 10%.
        let st = Statistics::from_cards([("R".into(), 1000.0)]).with_distinct("R", 0, 500.0);
        let q = Query::base("R").select(Predicate::col_cmp(0, CmpOp::Eq, 7));
        assert!((estimate_rows(&q, &st) - 2.0).abs() < 1e-9);
        // Unknown column falls back to SEL_EQ.
        let q1 = Query::base("R").select(Predicate::col_cmp(1, CmpOp::Eq, 7));
        assert!((estimate_rows(&q1, &st) - 1000.0 * SEL_EQ).abs() < 1e-9);
        // Non-base inputs keep the flat constant.
        let q2 = Query::base("R")
            .union(Query::base("R"))
            .select(Predicate::col_cmp(0, CmpOp::Eq, 7));
        assert!((estimate_rows(&q2, &st) - 2000.0 * SEL_EQ).abs() < 1e-9);
    }

    #[test]
    fn index_makes_point_select_cheap() {
        let plain = Statistics::from_cards([("R".into(), 1000.0)]).with_arity("R", 2);
        let indexed = plain.clone().with_index("R", 0);
        let q = Query::base("R").select(Predicate::col_cmp(0, CmpOp::Eq, 7));
        let scan_cost = estimate_cost(&q, &plain);
        let probe_cost = estimate_cost(&q, &indexed);
        assert!(probe_cost < scan_cost);
        // A range select can't use the index; cost is unchanged.
        let r = Query::base("R").select(Predicate::col_cmp(0, CmpOp::Lt, 7));
        assert_eq!(estimate_cost(&r, &plain), estimate_cost(&r, &indexed));
    }

    #[test]
    fn index_makes_equi_join_cheaper() {
        let plain = Statistics::from_cards([("R".into(), 1000.0), ("S".into(), 100.0)])
            .with_arity("R", 2)
            .with_arity("S", 2);
        let indexed = plain.clone().with_index("S", 0);
        let q = Query::base("R").join(Query::base("S"), Predicate::col_col(0, CmpOp::Eq, 2));
        assert!(estimate_cost(&q, &indexed) < estimate_cost(&q, &plain));
        // An index on a non-equi column changes nothing.
        let off = plain.clone().with_index("S", 1);
        assert_eq!(estimate_cost(&q, &off), estimate_cost(&q, &plain));
    }

    #[test]
    fn selectivity_shapes() {
        let eq = Predicate::col_cmp(0, CmpOp::Eq, 1);
        let range = Predicate::col_cmp(0, CmpOp::Lt, 1);
        assert!(selectivity(&eq) < selectivity(&range));
        assert!(selectivity(&eq.clone().and(range.clone())) < selectivity(&eq));
        assert!(selectivity(&eq.clone().or(range.clone())) > selectivity(&eq));
        assert_eq!(selectivity(&Predicate::True), 1.0);
        assert_eq!(selectivity(&Predicate::False), 0.0);
    }

    #[test]
    fn row_estimates_are_monotone_in_base_size() {
        let st = stats();
        let q = Query::base("R").select(Predicate::col_cmp(0, CmpOp::Lt, 5));
        let est = estimate_rows(&q, &st);
        assert!(est > 0.0 && est < 1000.0);
        let bigger = Statistics::from_cards([("R".into(), 10_000.0), ("S".into(), 100.0)]);
        assert!(estimate_rows(&q, &bigger) > est);
    }

    #[test]
    fn when_adjusts_cardinalities() {
        let st = stats();
        // R when {S/R}: R now looks like S (100 rows).
        let eps = ExplicitSubst::single("R", Query::base("S"));
        let q = Query::base("R").when(StateExpr::subst(eps));
        assert_eq!(estimate_rows(&q, &st), 100.0);
        // Insert grows the estimate.
        let q = Query::base("R").when(StateExpr::update(Update::insert("R", Query::base("S"))));
        assert_eq!(estimate_rows(&q, &st), 1100.0);
    }

    #[test]
    fn cost_grows_with_plan_size() {
        let st = stats();
        let scan = Query::base("R");
        let join = Query::base("R").join(Query::base("S"), Predicate::col_col(0, CmpOp::Eq, 2));
        assert!(estimate_cost(&join, &st) > estimate_cost(&scan, &st));
    }

    #[test]
    fn occurrence_counting_respects_shadowing() {
        let names: std::collections::BTreeSet<RelName> = [RelName::new("R")].into();
        let q = Query::base("R")
            .union(Query::base("R"))
            .join(Query::base("S"), Predicate::True);
        assert_eq!(count_occurrences(&q, &names), 2);
        // An inner when that rebinds R shadows the outer hypothetical.
        let inner = Query::base("R").when(StateExpr::subst(ExplicitSubst::single(
            "R",
            Query::base("S"),
        )));
        let q = Query::base("R").union(inner);
        assert_eq!(count_occurrences(&q, &names), 1);
    }

    #[test]
    fn materialization_cost_of_composition_accumulates() {
        let st = stats();
        let e1 = StateExpr::update(Update::insert("R", Query::base("S")));
        let e2 = StateExpr::update(Update::delete("S", Query::base("S")));
        let c = state_materialization_cost(&e1.clone().compose(e2.clone()), &st);
        assert!(c >= state_materialization_cost(&e1, &st));
        assert!(c >= state_materialization_cost(&e2, &st));
    }

    /// A handful of query shapes that exercise every cost-model branch.
    fn probe_queries() -> Vec<Query> {
        let point = Query::base("R").select(Predicate::col_cmp(0, CmpOp::Eq, 1));
        let join = Query::base("R").join(Query::base("S"), Predicate::col_col(0, CmpOp::Eq, 2));
        let noteq = Query::base("R").select(
            Predicate::col_cmp(0, CmpOp::Eq, 1)
                .or(Predicate::col_cmp(1, CmpOp::Lt, 5))
                .not(),
        );
        let agg = Query::base("R").aggregate(vec![0], vec![hypoquery_algebra::AggExpr::Count]);
        let when = Query::base("R").when(StateExpr::update(Update::delete(
            "R",
            Query::base("R").select(Predicate::col_cmp(0, CmpOp::Gt, 3)),
        )));
        vec![point, join, noteq, agg, when, Query::base("Missing")]
    }

    #[test]
    fn zero_row_statistics_yield_finite_nonnegative_estimates() {
        let st = Statistics::from_cards([("R".into(), 0.0), ("S".into(), 0.0)]);
        for q in probe_queries() {
            let rows = estimate_rows(&q, &st);
            let cost = estimate_cost(&q, &st);
            assert!(rows.is_finite() && rows >= 0.0, "rows for {q}: {rows}");
            assert!(cost.is_finite() && cost >= 0.0, "cost for {q}: {cost}");
        }
    }

    #[test]
    fn missing_relation_statistics_yield_finite_nonnegative_estimates() {
        let st = Statistics::default();
        for q in probe_queries() {
            let rows = estimate_rows(&q, &st);
            let cost = estimate_cost(&q, &st);
            assert!(rows.is_finite() && rows >= 0.0, "rows for {q}: {rows}");
            assert!(cost.is_finite() && cost >= 0.0, "cost for {q}: {cost}");
        }
    }

    #[test]
    fn degenerate_injected_cards_are_sanitized() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -42.0] {
            let st = Statistics::from_cards([("R".into(), bad), ("S".into(), 10.0)]);
            assert!(st.card(&"R".into()) >= 0.0 && st.card(&"R".into()).is_finite());
            for q in probe_queries() {
                let rows = estimate_rows(&q, &st);
                let cost = estimate_cost(&q, &st);
                assert!(rows.is_finite() && rows >= 0.0, "rows for {q}: {rows}");
                assert!(cost.is_finite() && cost >= 0.0, "cost for {q}: {cost}");
            }
        }
    }

    #[test]
    fn selectivities_stay_in_unit_interval() {
        let preds = [
            Predicate::True.not(),
            Predicate::col_cmp(0, CmpOp::Ne, 1)
                .or(Predicate::col_cmp(1, CmpOp::Ne, 2))
                .not(),
            Predicate::col_cmp(0, CmpOp::Eq, 1).and(Predicate::col_cmp(1, CmpOp::Eq, 2)),
        ];
        let st = Statistics::default().with_distinct("R", 0, 0.0);
        for p in &preds {
            let s = selectivity(p);
            assert!((0.0..=1.0).contains(&s), "{p}: {s}");
            let s = selectivity_over(p, Some(&"R".into()), &st);
            assert!((0.0..=1.0).contains(&s), "{p} over R: {s}");
        }
    }
}
