//! Cardinality statistics and a simple cost model.
//!
//! The paper leaves "techniques for estimating the cost of execution plans
//! involving xsub-values and delta values" as future work (§6); what the
//! planner needs today is a coarse, monotone estimator good enough to
//! choose between lazy, eager-xsub and eager-delta shapes. We use textbook
//! selectivity constants over exact base cardinalities.

use std::collections::BTreeMap;

use hypoquery_storage::{DatabaseState, RelName};

use hypoquery_algebra::scope::dom_state_expr;
use hypoquery_algebra::{CmpOp, Predicate, Query, StateExpr, Update};

/// Selectivity assumed for equality predicates.
pub const SEL_EQ: f64 = 0.1;
/// Selectivity assumed for range predicates.
pub const SEL_RANGE: f64 = 0.33;
/// Selectivity assumed for inequality (`<>`) predicates.
pub const SEL_NE: f64 = 0.9;
/// Matching fraction assumed for join predicates beyond the equi-core.
pub const SEL_JOIN: f64 = 0.1;

/// Exact base-relation cardinalities, snapshotted from a state.
#[derive(Clone, Debug, Default)]
pub struct Statistics {
    cards: BTreeMap<RelName, f64>,
}

impl Statistics {
    /// Snapshot cardinalities from a database state.
    pub fn of(db: &DatabaseState) -> Self {
        let mut cards = BTreeMap::new();
        for (name, schema) in db.catalog().iter() {
            let _ = schema;
            if let Ok(rel) = db.get(name) {
                cards.insert(name.clone(), rel.len() as f64);
            }
        }
        Statistics { cards }
    }

    /// Build from explicit `(name, cardinality)` pairs.
    pub fn from_cards(cards: impl IntoIterator<Item = (RelName, f64)>) -> Self {
        Statistics {
            cards: cards.into_iter().collect(),
        }
    }

    /// Cardinality of a base relation (0 if unknown).
    pub fn card(&self, name: &RelName) -> f64 {
        self.cards.get(name).copied().unwrap_or(0.0)
    }
}

/// Estimated selectivity of a predicate.
pub fn selectivity(p: &Predicate) -> f64 {
    match p {
        Predicate::True => 1.0,
        Predicate::False => 0.0,
        Predicate::Cmp(_, CmpOp::Eq, _) => SEL_EQ,
        Predicate::Cmp(_, CmpOp::Ne, _) => SEL_NE,
        Predicate::Cmp(_, _, _) => SEL_RANGE,
        Predicate::And(a, b) => selectivity(a) * selectivity(b),
        Predicate::Or(a, b) => {
            let (sa, sb) = (selectivity(a), selectivity(b));
            (sa + sb - sa * sb).min(1.0)
        }
        Predicate::Not(a) => 1.0 - selectivity(a),
    }
}

/// Estimated output cardinality of a query.
///
/// `when` bodies are estimated as if the hypothetical update left
/// cardinalities unchanged, except that names bound by the state
/// expression are re-estimated from the binding/update shape — coarse, but
/// monotone in the base sizes, which is all the planner relies on.
pub fn estimate_rows(q: &Query, stats: &Statistics) -> f64 {
    match q {
        Query::Base(name) => stats.card(name),
        Query::Singleton(_) => 1.0,
        Query::Empty { .. } => 0.0,
        Query::Select(inner, p) => estimate_rows(inner, stats) * selectivity(p),
        Query::Project(inner, _) => estimate_rows(inner, stats),
        Query::Union(a, b) => estimate_rows(a, stats) + estimate_rows(b, stats),
        Query::Intersect(a, b) => estimate_rows(a, stats).min(estimate_rows(b, stats)),
        Query::Diff(a, _) => estimate_rows(a, stats),
        Query::Product(a, b) => estimate_rows(a, stats) * estimate_rows(b, stats),
        Query::Join(a, b, p) => {
            let (l, r) = (estimate_rows(a, stats), estimate_rows(b, stats));
            // Equi-joins get the textbook foreign-key estimate
            // max(|L|, |R|); pure theta-joins fall back to a selectivity
            // fraction of the cross product.
            let has_equi = crate::implication::conjuncts(p).iter().any(|c| {
                matches!(
                    c,
                    Predicate::Cmp(
                        hypoquery_algebra::ScalarExpr::Col(_),
                        CmpOp::Eq,
                        hypoquery_algebra::ScalarExpr::Col(_)
                    )
                )
            });
            if has_equi {
                l.max(r)
            } else {
                l * r * selectivity(p).max(SEL_JOIN / 10.0)
            }
        }
        Query::When(inner, eta) => {
            let adjusted = adjust_stats_for_state(eta, stats);
            estimate_rows(inner, &adjusted)
        }
        Query::Aggregate {
            input, group_by, ..
        } => {
            let n = estimate_rows(input, stats);
            if group_by.is_empty() {
                n.min(1.0)
            } else {
                // Assume grouping reduces to ~sqrt of the input.
                n.sqrt().max(1.0).min(n)
            }
        }
    }
}

/// Re-estimate base cardinalities under a hypothetical state expression.
pub fn adjust_stats_for_state(eta: &StateExpr, stats: &Statistics) -> Statistics {
    let mut out = stats.clone();
    match eta {
        StateExpr::Update(u) => adjust_for_update(u, &mut out),
        StateExpr::Subst(eps) => {
            for (name, bq) in eps.iter() {
                let est = estimate_rows(bq, stats);
                out.cards.insert(name.clone(), est);
            }
        }
        StateExpr::Compose(a, b) => {
            out = adjust_stats_for_state(a, &out);
            out = adjust_stats_for_state(b, &out);
        }
    }
    out
}

fn adjust_for_update(u: &Update, stats: &mut Statistics) {
    match u {
        Update::Insert(name, q) => {
            let added = estimate_rows(q, stats);
            let cur = stats.card(name);
            stats.cards.insert(name.clone(), cur + added);
        }
        Update::Delete(name, q) => {
            let removed = estimate_rows(q, stats);
            let cur = stats.card(name);
            stats.cards.insert(name.clone(), (cur - removed).max(0.0));
        }
        Update::Seq(a, b) => {
            adjust_for_update(a, stats);
            adjust_for_update(b, stats);
        }
        Update::Cond { then_u, .. } => {
            // Assume the then-branch; good enough for sizing.
            adjust_for_update(then_u, stats);
        }
    }
}

/// Estimated evaluation *cost* of a pure query: total tuples flowing
/// through all operators (a unit-cost-per-tuple model).
pub fn estimate_cost(q: &Query, stats: &Statistics) -> f64 {
    match q {
        Query::Base(name) => stats.card(name),
        Query::Singleton(_) | Query::Empty { .. } => 1.0,
        Query::Select(inner, _) | Query::Project(inner, _) => {
            estimate_cost(inner, stats) + estimate_rows(inner, stats)
        }
        Query::Union(a, b) | Query::Intersect(a, b) | Query::Diff(a, b) => {
            estimate_cost(a, stats)
                + estimate_cost(b, stats)
                + estimate_rows(a, stats)
                + estimate_rows(b, stats)
        }
        Query::Product(a, b) => {
            estimate_cost(a, stats)
                + estimate_cost(b, stats)
                + estimate_rows(a, stats) * estimate_rows(b, stats)
        }
        Query::Join(a, b, _) => {
            // Hash join: build + probe + output.
            estimate_cost(a, stats)
                + estimate_cost(b, stats)
                + estimate_rows(a, stats)
                + estimate_rows(b, stats)
                + estimate_rows(q, stats)
        }
        Query::When(inner, eta) => {
            // Lazy view of a when: cost of the body under adjusted stats
            // plus the cost of the state's bindings once.
            let adjusted = adjust_stats_for_state(eta, stats);
            estimate_cost(inner, &adjusted) + state_materialization_cost(eta, stats)
        }
        Query::Aggregate { input, .. } => estimate_cost(input, stats) + estimate_rows(input, stats),
    }
}

/// Estimated cost of materializing a state expression (the eager
/// strategy's up-front payment): evaluating every binding/update query.
pub fn state_materialization_cost(eta: &StateExpr, stats: &Statistics) -> f64 {
    match eta {
        StateExpr::Update(u) => update_cost(u, stats),
        StateExpr::Subst(eps) => eps
            .iter()
            .map(|(_, bq)| estimate_cost(bq, stats) + estimate_rows(bq, stats))
            .sum(),
        StateExpr::Compose(a, b) => {
            state_materialization_cost(a, stats)
                + state_materialization_cost(b, &adjust_stats_for_state(a, stats))
        }
    }
}

fn update_cost(u: &Update, stats: &Statistics) -> f64 {
    match u {
        Update::Insert(_, q) | Update::Delete(_, q) => {
            estimate_cost(q, stats) + estimate_rows(q, stats)
        }
        Update::Seq(a, b) => {
            let mut s = stats.clone();
            adjust_for_update(a, &mut s);
            update_cost(a, stats) + update_cost(b, &s)
        }
        Update::Cond {
            guard,
            then_u,
            else_u,
        } => {
            estimate_cost(guard, stats) + update_cost(then_u, stats).max(update_cost(else_u, stats))
        }
    }
}

/// Count occurrences of any of the given names as base references in a
/// query — the Example 2.1(c) heuristic signal: many occurrences of
/// affected relations favor eager materialization.
pub fn count_occurrences(q: &Query, names: &std::collections::BTreeSet<RelName>) -> usize {
    match q {
        Query::Base(name) => usize::from(names.contains(name)),
        Query::Singleton(_) | Query::Empty { .. } => 0,
        Query::Select(inner, _) | Query::Project(inner, _) => count_occurrences(inner, names),
        Query::Union(a, b)
        | Query::Intersect(a, b)
        | Query::Product(a, b)
        | Query::Join(a, b, _)
        | Query::Diff(a, b) => count_occurrences(a, names) + count_occurrences(b, names),
        Query::When(inner, eta) => {
            // Occurrences under an inner when that rebinds the name do not
            // read the outer hypothetical state.
            let inner_dom = dom_state_expr(eta);
            let visible: std::collections::BTreeSet<RelName> =
                names.difference(&inner_dom).cloned().collect();
            count_occurrences(inner, &visible)
        }
        Query::Aggregate { input, .. } => count_occurrences(input, names),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypoquery_algebra::{ExplicitSubst, Predicate};
    use hypoquery_storage::{tuple, Catalog};

    fn stats() -> Statistics {
        Statistics::from_cards([("R".into(), 1000.0), ("S".into(), 100.0)])
    }

    #[test]
    fn snapshot_from_state() {
        let mut cat = Catalog::new();
        cat.declare_arity("R", 1).unwrap();
        let mut db = DatabaseState::new(cat);
        db.insert_rows("R", [tuple![1], tuple![2]]).unwrap();
        let s = Statistics::of(&db);
        assert_eq!(s.card(&"R".into()), 2.0);
        assert_eq!(s.card(&"Z".into()), 0.0);
    }

    #[test]
    fn selectivity_shapes() {
        let eq = Predicate::col_cmp(0, CmpOp::Eq, 1);
        let range = Predicate::col_cmp(0, CmpOp::Lt, 1);
        assert!(selectivity(&eq) < selectivity(&range));
        assert!(selectivity(&eq.clone().and(range.clone())) < selectivity(&eq));
        assert!(selectivity(&eq.clone().or(range.clone())) > selectivity(&eq));
        assert_eq!(selectivity(&Predicate::True), 1.0);
        assert_eq!(selectivity(&Predicate::False), 0.0);
    }

    #[test]
    fn row_estimates_are_monotone_in_base_size() {
        let st = stats();
        let q = Query::base("R").select(Predicate::col_cmp(0, CmpOp::Lt, 5));
        let est = estimate_rows(&q, &st);
        assert!(est > 0.0 && est < 1000.0);
        let bigger = Statistics::from_cards([("R".into(), 10_000.0), ("S".into(), 100.0)]);
        assert!(estimate_rows(&q, &bigger) > est);
    }

    #[test]
    fn when_adjusts_cardinalities() {
        let st = stats();
        // R when {S/R}: R now looks like S (100 rows).
        let eps = ExplicitSubst::single("R", Query::base("S"));
        let q = Query::base("R").when(StateExpr::subst(eps));
        assert_eq!(estimate_rows(&q, &st), 100.0);
        // Insert grows the estimate.
        let q = Query::base("R").when(StateExpr::update(Update::insert("R", Query::base("S"))));
        assert_eq!(estimate_rows(&q, &st), 1100.0);
    }

    #[test]
    fn cost_grows_with_plan_size() {
        let st = stats();
        let scan = Query::base("R");
        let join = Query::base("R").join(Query::base("S"), Predicate::col_col(0, CmpOp::Eq, 2));
        assert!(estimate_cost(&join, &st) > estimate_cost(&scan, &st));
    }

    #[test]
    fn occurrence_counting_respects_shadowing() {
        let names: std::collections::BTreeSet<RelName> = [RelName::new("R")].into();
        let q = Query::base("R")
            .union(Query::base("R"))
            .join(Query::base("S"), Predicate::True);
        assert_eq!(count_occurrences(&q, &names), 2);
        // An inner when that rebinds R shadows the outer hypothetical.
        let inner = Query::base("R").when(StateExpr::subst(ExplicitSubst::single(
            "R",
            Query::base("S"),
        )));
        let q = Query::base("R").union(inner);
        assert_eq!(count_occurrences(&q, &names), 1);
    }

    #[test]
    fn materialization_cost_of_composition_accumulates() {
        let st = stats();
        let e1 = StateExpr::update(Update::insert("R", Query::base("S")));
        let e2 = StateExpr::update(Update::delete("S", Query::base("S")));
        let c = state_materialization_cost(&e1.clone().compose(e2.clone()), &st);
        assert!(c >= state_materialization_cost(&e1, &st));
        assert!(c >= state_materialization_cost(&e2, &st));
    }
}
