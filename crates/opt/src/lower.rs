//! Lowering: logical queries → executable [`PhysPlan`]s.
//!
//! This is the bridge between the planner's strategy choice and the
//! pipelined executor of [`hypoquery_eval::physical`]. Each
//! [`PlannedStrategy`](crate::planner::PlannedStrategy) prepares the
//! query into a different *shape* — pure RA for lazy, ENF (`when ε`
//! only) for eager-xsub/hybrid, mod-ENF (`when {U}` with atomic-update
//! sequences) for eager-delta — but the lowering is shape-agnostic: it
//! walks whatever it is given and emits the one physical operator set,
//! turning `when ε` into [`PhysOp::XsubRebind`] and `when {U}` into
//! [`PhysOp::DeltaApply`]. HQL-1 and HQL-2 therefore lower to
//! *identical* plans: their difference (node-at-a-time vs. clustered
//! traversal) is interpreter bookkeeping with no physical counterpart.
//!
//! # Access-path selection
//!
//! The lowering reuses the same gates the legacy evaluators applied at
//! runtime, but applies them *statically*:
//!
//! * a `Select` directly over a base scan becomes an
//!   [`PhysOp::IndexProbe`] when the predicate carries a point-equality
//!   conjunct ([`point_eq_conjuncts`]) on a declared indexed column and
//!   the scanned name is provably unrebound (see below);
//! * a `Join` side that is an unrebound base scan with declared indexes
//!   on all its equi columns becomes the probed side of an
//!   [`PhysOp::IndexJoin`]; with both sides qualifying the *larger*
//!   (estimated) side is indexed, leaving the smaller to stream — the
//!   same policy as [`hypoquery_eval::access::prepare_join_index`];
//! * otherwise joins hash-build the smaller (estimated) side, mirroring
//!   the cost model's probe/scan decisions in
//!   [`crate::stats::estimate_cost`].
//!
//! **Shadow analysis.** A base name may only use a stored index if, at
//! runtime, the scan resolves to the stored base relation. During
//! lowering we track the set of names bound by each enclosing
//! `XsubRebind`/`DeltaApply` wrapper; a name in neither set is
//! *guaranteed* unrebound in every execution (wrappers only ever add
//! their statically-known domains to the environment), so gating on
//! these sets is sound — the static analogue of the `e.get(name)`
//! checks inside `filter1`/`eval_filter_d`.
//!
//! Duplicate semantics: streamed segments may carry duplicates (set
//! semantics are restored at pipeline breakers); where a duplicate
//! stream would multiply join work, the lowering inserts an explicit
//! [`PhysOp::Dedup`].

use hypoquery_storage::Catalog;

use hypoquery_algebra::scope::NameSet;
use hypoquery_algebra::{Query, StateExpr, Update};

use hypoquery_eval::access::point_eq_conjuncts;
use hypoquery_eval::join::split_equi_pairs;
use hypoquery_eval::physical::{DeltaAtom, PhysNode, PhysOp, PhysPlan, Side};
use hypoquery_eval::EvalError;

use crate::planner::Plan;
use crate::stats::{estimate_rows, Statistics};

/// Lower a planned query to a physical plan. The plan's query is
/// already in the shape its strategy prepared (pure / ENF / mod-ENF);
/// the lowering handles all of them uniformly.
pub fn lower_plan(p: &Plan, catalog: &Catalog, stats: &Statistics) -> Result<PhysPlan, EvalError> {
    lower_query(&p.query, catalog, stats)
}

/// Lower any normalized query (pure, ENF, or mod-ENF — `when` bodies
/// must be explicit substitutions or atomic-update sequences) to a
/// physical plan.
pub fn lower_query(
    q: &Query,
    catalog: &Catalog,
    stats: &Statistics,
) -> Result<PhysPlan, EvalError> {
    let lw = Lowerer { catalog, stats };
    let root = lw.lower(q, &Shadow::default())?;
    Ok(PhysPlan::new(root))
}

/// Names that an enclosing hypothetical wrapper may rebind at runtime.
#[derive(Clone, Default)]
struct Shadow {
    xsub: NameSet,
    delta: NameSet,
}

impl Shadow {
    fn unshadowed(&self, name: &hypoquery_storage::RelName) -> bool {
        !self.xsub.contains(name) && !self.delta.contains(name)
    }
}

struct Lowerer<'a> {
    catalog: &'a Catalog,
    stats: &'a Statistics,
}

impl Lowerer<'_> {
    fn lower(&self, q: &Query, sh: &Shadow) -> Result<PhysNode, EvalError> {
        match q {
            Query::Base(name) => {
                let arity = self.catalog.arity(name)?;
                Ok(PhysNode::new(arity, PhysOp::Scan { name: name.clone() }))
            }
            Query::Singleton(t) => Ok(PhysNode::new(
                t.arity(),
                PhysOp::Const {
                    rel: hypoquery_storage::Relation::singleton(t.clone()),
                },
            )),
            Query::Empty { arity } => Ok(PhysNode::new(
                *arity,
                PhysOp::Const {
                    rel: hypoquery_storage::Relation::empty(*arity),
                },
            )),
            Query::Select(inner, p) => {
                // Index probe: point-equality over a declared index of an
                // unrebound base scan (the static form of
                // `eval::access::indexed_select`'s runtime gate).
                if let Query::Base(name) = inner.as_ref() {
                    if sh.unshadowed(name) {
                        if let Some((col, value)) = point_eq_conjuncts(p)
                            .into_iter()
                            .find(|(c, _)| self.stats.has_index(name, *c))
                        {
                            let arity = self.catalog.arity(name)?;
                            return Ok(PhysNode::new(
                                arity,
                                PhysOp::IndexProbe {
                                    name: name.clone(),
                                    col,
                                    value,
                                    pred: p.clone(),
                                },
                            ));
                        }
                    }
                }
                let input = self.lower(inner, sh)?;
                Ok(PhysNode::new(
                    input.arity,
                    PhysOp::Filter {
                        input: Box::new(input),
                        pred: p.clone(),
                    },
                ))
            }
            Query::Project(inner, cols) => {
                let input = self.lower(inner, sh)?;
                if let Some(&bad) = cols.iter().find(|&&c| c >= input.arity) {
                    return Err(EvalError::UnsupportedShape(format!(
                        "projection column #{bad} out of range for arity {}",
                        input.arity
                    )));
                }
                Ok(PhysNode::new(
                    cols.len(),
                    PhysOp::Project {
                        input: Box::new(input),
                        cols: cols.clone(),
                    },
                ))
            }
            Query::Union(a, b) => {
                self.lower_setop(a, b, sh, |l, r| PhysOp::Union { left: l, right: r })
            }
            Query::Intersect(a, b) => {
                self.lower_setop(a, b, sh, |l, r| PhysOp::Intersect { left: l, right: r })
            }
            Query::Diff(a, b) => {
                self.lower_setop(a, b, sh, |l, r| PhysOp::Diff { left: l, right: r })
            }
            Query::Product(a, b) => self.lower_join(a, b, None, sh),
            Query::Join(a, b, p) => self.lower_join(a, b, Some(p), sh),
            Query::When(body, eta) => self.lower_when(body, eta, sh),
            Query::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let input = self.lower(input, sh)?;
                Ok(PhysNode::new(
                    group_by.len() + aggs.len(),
                    PhysOp::Aggregate {
                        input: Box::new(input),
                        group_by: group_by.clone(),
                        aggs: aggs.clone(),
                    },
                ))
            }
        }
    }

    fn lower_setop(
        &self,
        a: &Query,
        b: &Query,
        sh: &Shadow,
        make: impl FnOnce(Box<PhysNode>, Box<PhysNode>) -> PhysOp,
    ) -> Result<PhysNode, EvalError> {
        let l = self.lower(a, sh)?;
        let r = self.lower(b, sh)?;
        if l.arity != r.arity {
            return Err(EvalError::UnsupportedShape(format!(
                "set operation over mismatched arities {} and {}",
                l.arity, r.arity
            )));
        }
        let arity = l.arity;
        Ok(PhysNode::new(arity, make(Box::new(l), Box::new(r))))
    }

    /// Lower a join (`pred = None` for a plain product): pick index
    /// nested-loop when an unrebound indexed base scan qualifies, else a
    /// hash join building the smaller estimated side.
    fn lower_join(
        &self,
        a: &Query,
        b: &Query,
        pred: Option<&hypoquery_algebra::Predicate>,
        sh: &Shadow,
    ) -> Result<PhysNode, EvalError> {
        let l = self.lower(a, sh)?;
        let r = self.lower(b, sh)?;
        let arity = l.arity + r.arity;
        let (pairs, residual) = match pred {
            Some(p) => split_equi_pairs(p, l.arity),
            None => (Vec::new(), Vec::new()),
        };
        let est_l = estimate_rows(a, self.stats);
        let est_r = estimate_rows(b, self.stats);

        if !pairs.is_empty() {
            // A side qualifies for an index nested-loop when it is an
            // unrebound base scan with every equi column declared.
            let qualifies = |q: &Query, cols: &[usize]| -> bool {
                match q {
                    Query::Base(name) => {
                        sh.unshadowed(name) && cols.iter().all(|&c| self.stats.has_index(name, c))
                    }
                    _ => false,
                }
            };
            let left_cols: Vec<usize> = pairs.iter().map(|p| p.left).collect();
            let right_cols: Vec<usize> = pairs.iter().map(|p| p.right).collect();
            let left_ok = qualifies(a, &left_cols);
            let right_ok = qualifies(b, &right_cols);
            // With both sides indexed, probe the larger (same policy as
            // `prepare_join_index`): only the smaller side streams.
            let index_left = left_ok && (!right_ok || est_l >= est_r);
            if index_left || right_ok {
                let (rel, index_cols, probe_cols, probe, probe_side) = if index_left {
                    let Query::Base(name) = a else { unreachable!() };
                    (name.clone(), left_cols, right_cols, r, Side::Right)
                } else {
                    let Query::Base(name) = b else { unreachable!() };
                    (name.clone(), right_cols, left_cols, l, Side::Left)
                };
                return Ok(PhysNode::new(
                    arity,
                    PhysOp::IndexJoin {
                        probe: Box::new(dedup_if_dup_stream(probe)),
                        probe_side,
                        rel,
                        index_cols,
                        probe_cols,
                        residual,
                    },
                ));
            }
        }

        // Hash join / nested loop: materialize the smaller estimated
        // side (ties keep the legacy build-on-right default).
        let build = if est_l < est_r {
            Side::Left
        } else {
            Side::Right
        };
        Ok(PhysNode::new(
            arity,
            PhysOp::HashJoin {
                left: Box::new(dedup_if_dup_stream(l)),
                right: Box::new(dedup_if_dup_stream(r)),
                pairs,
                residual,
                build,
            },
        ))
    }

    fn lower_when(
        &self,
        body: &Query,
        eta: &StateExpr,
        sh: &Shadow,
    ) -> Result<PhysNode, EvalError> {
        match eta {
            StateExpr::Subst(eps) => {
                // Bindings are evaluated under the *current* environment
                // (filter1's rule), so they lower under the current
                // shadow; only the body sees the new names.
                let mut bindings = Vec::with_capacity(eps.len());
                for (name, q) in eps.iter() {
                    bindings.push((name.clone(), self.lower(q, sh)?));
                }
                let mut inner = sh.clone();
                inner.xsub.extend(eps.names().cloned());
                let body = self.lower(body, &inner)?;
                Ok(PhysNode::new(
                    body.arity,
                    PhysOp::XsubRebind {
                        bindings,
                        body: Box::new(body),
                    },
                ))
            }
            StateExpr::Update(u) if u.is_atomic_sequence() => {
                let mut atoms = Vec::new();
                let mut inner = sh.clone();
                for atom in u.flatten() {
                    let (name, src, insert) = match atom {
                        Update::Insert(name, q) => (name, q, true),
                        Update::Delete(name, q) => (name, q, false),
                        _ => unreachable!("flatten() of an atomic sequence yields atoms"),
                    };
                    // The atom's source sees the deltas of *earlier*
                    // atoms (filter3's Seq rule), so lower it under the
                    // shadow accumulated so far, then extend.
                    let input = self.lower(src, &inner)?;
                    inner.delta.insert(name.clone());
                    atoms.push(DeltaAtom {
                        name: name.clone(),
                        insert,
                        input,
                    });
                }
                let body = self.lower(body, &inner)?;
                Ok(PhysNode::new(
                    body.arity,
                    PhysOp::DeltaApply {
                        atoms,
                        body: Box::new(body),
                    },
                ))
            }
            _ => Err(EvalError::UnsupportedShape(format!(
                "cannot lower `when {eta}`: normalize to ENF (explicit substitution) \
                 or mod-ENF (atomic-update sequence) first"
            ))),
        }
    }
}

/// Wrap `node` in a [`PhysOp::Dedup`] when its output stream may carry
/// duplicates that would multiply downstream join work.
fn dedup_if_dup_stream(node: PhysNode) -> PhysNode {
    match node.op {
        PhysOp::Project { .. } | PhysOp::Union { .. } => {
            let arity = node.arity;
            PhysNode::new(
                arity,
                PhysOp::Dedup {
                    input: Box::new(node),
                },
            )
        }
        _ => node,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypoquery_algebra::{CmpOp, Predicate};
    use hypoquery_eval::eval_query;
    use hypoquery_storage::{tuple, DatabaseState};

    fn db() -> DatabaseState {
        let mut cat = Catalog::new();
        cat.declare_arity("R", 2).unwrap();
        cat.declare_arity("S", 2).unwrap();
        let mut db = DatabaseState::new(cat);
        db.insert_rows("R", [tuple![1, 10], tuple![2, 20], tuple![3, 30]])
            .unwrap();
        db.insert_rows("S", [tuple![2, 200], tuple![3, 300]])
            .unwrap();
        db
    }

    fn lower_in(db: &DatabaseState, q: &Query) -> PhysPlan {
        lower_query(q, db.catalog(), &Statistics::of(db)).unwrap()
    }

    #[test]
    fn point_select_lowers_to_index_probe_when_declared() {
        let mut db = db();
        let q = Query::base("R").select(Predicate::col_cmp(0, CmpOp::Eq, 2));
        let plan = lower_in(&db, &q);
        assert!(matches!(plan.root.op, PhysOp::Filter { .. }));

        db.declare_index("R", 0).unwrap();
        let plan = lower_in(&db, &q);
        assert!(matches!(plan.root.op, PhysOp::IndexProbe { .. }));
        let out = plan.execute(&db).unwrap();
        assert_eq!(out, eval_query(&q, &db).unwrap());
    }

    #[test]
    fn shadowed_scan_never_probes_an_index() {
        let mut db = db();
        db.declare_index("R", 0).unwrap();
        // R is rebound by the substitution, so σ over it must not touch
        // the stored index.
        let sel = Query::base("R").select(Predicate::col_cmp(0, CmpOp::Eq, 2));
        let q = sel
            .clone()
            .when(StateExpr::subst(hypoquery_algebra::ExplicitSubst::single(
                "R",
                Query::base("S"),
            )));
        let plan = lower_in(&db, &q);
        let PhysOp::XsubRebind { body, .. } = &plan.root.op else {
            panic!("expected XsubRebind root, got {:?}", plan.root.op);
        };
        assert!(matches!(body.op, PhysOp::Filter { .. }));
        // The unshadowed S *binding* under the same plan may still probe.
        let out = plan.execute(&db).unwrap();
        assert_eq!(out, eval_query(&q, &db).unwrap());
    }

    #[test]
    fn join_uses_declared_index_side() {
        let mut db = db();
        db.declare_index("S", 0).unwrap();
        let q = Query::base("R").join(Query::base("S"), Predicate::col_col(0, CmpOp::Eq, 2));
        let plan = lower_in(&db, &q);
        let PhysOp::IndexJoin {
            probe_side, rel, ..
        } = &plan.root.op
        else {
            panic!("expected IndexJoin, got {:?}", plan.root.op);
        };
        assert_eq!(*probe_side, Side::Left);
        assert_eq!(rel.as_str(), "S");
        let out = plan.execute(&db).unwrap();
        assert_eq!(out, eval_query(&q, &db).unwrap());
    }

    #[test]
    fn when_update_lowers_to_delta_apply() {
        let db = db();
        let q = Query::base("R")
            .union(Query::base("S"))
            .when(StateExpr::update(Update::insert(
                "R",
                Query::base("S").select(Predicate::col_cmp(0, CmpOp::Gt, 2)),
            )));
        let plan = lower_in(&db, &q);
        assert!(matches!(plan.root.op, PhysOp::DeltaApply { .. }));
        let out = plan.execute(&db).unwrap();
        assert_eq!(out, eval_query(&q, &db).unwrap());
    }

    #[test]
    fn composition_is_rejected() {
        let db = db();
        let eta = StateExpr::update(Update::insert("R", Query::base("S")))
            .compose(StateExpr::update(Update::delete("S", Query::base("S"))));
        let q = Query::base("R").when(eta);
        assert!(matches!(
            lower_query(&q, db.catalog(), &Statistics::of(&db)),
            Err(EvalError::UnsupportedShape(_))
        ));
    }

    #[test]
    fn projected_join_side_gets_dedup() {
        let db = db();
        let q = Query::base("R").project(vec![0]).product(Query::base("S"));
        let plan = lower_in(&db, &q);
        let PhysOp::HashJoin { left, .. } = &plan.root.op else {
            panic!("expected HashJoin, got {:?}", plan.root.op);
        };
        assert!(matches!(left.op, PhysOp::Dedup { .. }));
        let out = plan.execute(&db).unwrap();
        assert_eq!(out, eval_query(&q, &db).unwrap());
    }
}
