//! Soundness of the RA rewriter, the implication engine, and the planner:
//! every transformation must preserve the direct semantics; every plan the
//! planner emits must compute the same relation as the original query.

use proptest::prelude::*;

use hypoquery_core::is_mod_enf;
use hypoquery_eval::{algorithm_hql2, algorithm_hql3, eval_pure, eval_query};
use hypoquery_opt::implication::{pred_implies, pred_unsat};
use hypoquery_opt::{optimize, plan, PlannedStrategy, Statistics};
use hypoquery_testkit::{arb_db, arb_predicate, arb_pure_query, arb_query, arb_tuple, Universe};

fn universe() -> Universe {
    Universe::standard()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The RA rewriter preserves semantics on pure queries.
    #[test]
    fn optimize_preserves_semantics_pure(
        q in arb_pure_query(&universe(), 2, 4),
        db in arb_db(&universe(), 6),
    ) {
        let u = universe();
        let (opt, _) = optimize(&q, &u.catalog);
        prop_assert_eq!(
            eval_pure(&opt, &db).unwrap(),
            eval_pure(&q, &db).unwrap(),
            "optimized {} != original {}", opt, q
        );
    }

    /// ...and on full HQL queries (descending into when bodies/bindings).
    #[test]
    fn optimize_preserves_semantics_hql(
        q in arb_query(&universe(), 2, 3),
        db in arb_db(&universe(), 5),
    ) {
        let u = universe();
        let (opt, _) = optimize(&q, &u.catalog);
        prop_assert_eq!(
            eval_query(&opt, &db).unwrap(),
            eval_query(&q, &db).unwrap()
        );
    }

    /// Claimed implications hold pointwise on random tuples.
    #[test]
    fn pred_implies_is_sound(
        p in arb_predicate(2, 2),
        q in arb_predicate(2, 2),
        t in arb_tuple(2),
    ) {
        if pred_implies(&p, &q) && p.eval(&t) {
            prop_assert!(q.eval(&t), "{} claimed to imply {} but fails on {}", p, q, t);
        }
    }

    /// Claimed unsatisfiability holds pointwise.
    #[test]
    fn pred_unsat_is_sound(
        p in arb_predicate(2, 2),
        t in arb_tuple(2),
    ) {
        if pred_unsat(&p) {
            prop_assert!(!p.eval(&t), "{} claimed unsat but holds on {}", p, t);
        }
    }

    /// Every plan the planner chooses computes the right answer when
    /// executed by its matching engine.
    #[test]
    fn plans_execute_correctly(
        q in arb_query(&universe(), 2, 3),
        db in arb_db(&universe(), 5),
    ) {
        let u = universe();
        let stats = Statistics::of(&db);
        let p = plan(&q, &u.catalog, &stats);
        let expected = eval_query(&q, &db).unwrap();
        let got = match p.strategy {
            PlannedStrategy::Lazy => eval_pure(&p.query, &db).unwrap(),
            PlannedStrategy::EagerXsub | PlannedStrategy::Hybrid => {
                algorithm_hql2(&p.query, &db).unwrap()
            }
            PlannedStrategy::EagerDelta => {
                prop_assert!(is_mod_enf(&p.query));
                algorithm_hql3(&p.query, &db).unwrap()
            }
        };
        prop_assert_eq!(got, expected, "strategy {} on {}", p.strategy, q);
    }

    /// The optimizer is idempotent: a second pass changes nothing.
    #[test]
    fn optimize_is_idempotent(
        q in arb_pure_query(&universe(), 2, 3),
    ) {
        let u = universe();
        let (once, _) = optimize(&q, &u.catalog);
        let (twice, trace) = optimize(&once, &u.catalog);
        prop_assert_eq!(&once, &twice);
        prop_assert_eq!(trace.total(), 0, "second pass fired rules on {}", once);
    }
}
