//! The HQL query AST: relational algebra extended with `when` (RA_hyp).
//!
//! §3.1 gives the relational algebra grammar; §4.1 extends it with
//! `Q when η` at any nesting level. Two deliberate additions beyond the
//! paper's grammar, both flagged in DESIGN.md:
//!
//! * [`Query::Empty`] — the paper freely writes `∅` as a query value in its
//!   derivations (Examples 2.1(b), 2.4(b)); making it a node lets the
//!   rewrite engine *produce* it.
//! * [`Query::Aggregate`] — §6 says the framework "extends to query languages
//!   that include bags and aggregation"; we carry grouped aggregation over
//!   set semantics so the `when`-distribution rules can be exercised on it.

use std::fmt;

use hypoquery_storage::{RelName, Tuple};

use crate::predicate::Predicate;
use crate::state_expr::StateExpr;

/// An aggregate expression over a group of tuples (§6 extension).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum AggExpr {
    /// Number of tuples in the group.
    Count,
    /// Sum of an integer column.
    Sum(usize),
    /// Minimum of a column (by value order).
    Min(usize),
    /// Maximum of a column (by value order).
    Max(usize),
}

impl AggExpr {
    /// Column referenced, if any.
    pub fn col(&self) -> Option<usize> {
        match self {
            AggExpr::Count => None,
            AggExpr::Sum(c) | AggExpr::Min(c) | AggExpr::Max(c) => Some(*c),
        }
    }
}

/// An HQL query (the paper's RA_hyp).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Query {
    /// Base relation `R`.
    Base(RelName),
    /// Singleton set `{t}`.
    Singleton(Tuple),
    /// The empty relation of a given arity (`∅`).
    Empty {
        /// Arity of the (empty) result.
        arity: usize,
    },
    /// Selection `σ_p(Q)`.
    Select(Box<Query>, Predicate),
    /// Projection `π_cols(Q)` (positions; may reorder/duplicate).
    Project(Box<Query>, Vec<usize>),
    /// Union `Q ∪ Q`.
    Union(Box<Query>, Box<Query>),
    /// Intersection `Q ∩ Q`.
    Intersect(Box<Query>, Box<Query>),
    /// Cartesian product `Q × Q`.
    Product(Box<Query>, Box<Query>),
    /// Theta-join `Q ⋈_p Q` (predicate over the concatenated tuple).
    Join(Box<Query>, Box<Query>, Predicate),
    /// Difference `Q − Q`.
    Diff(Box<Query>, Box<Query>),
    /// Hypothetical query `Q when η` (§4.1).
    When(Box<Query>, Box<StateExpr>),
    /// Grouped aggregation (§6 extension). Output tuple =
    /// group-by columns followed by one value per aggregate.
    Aggregate {
        /// Input query.
        input: Box<Query>,
        /// Grouping column positions.
        group_by: Vec<usize>,
        /// Aggregates computed per group.
        aggs: Vec<AggExpr>,
    },
}

impl Query {
    /// Base relation reference.
    pub fn base(name: impl Into<RelName>) -> Query {
        Query::Base(name.into())
    }

    /// Singleton `{t}`.
    pub fn singleton(t: Tuple) -> Query {
        Query::Singleton(t)
    }

    /// Empty relation of the given arity.
    pub fn empty(arity: usize) -> Query {
        Query::Empty { arity }
    }

    /// `σ_p(self)`.
    pub fn select(self, p: Predicate) -> Query {
        Query::Select(Box::new(self), p)
    }

    /// `π_cols(self)`.
    pub fn project(self, cols: impl Into<Vec<usize>>) -> Query {
        Query::Project(Box::new(self), cols.into())
    }

    /// `self ∪ other`.
    pub fn union(self, other: Query) -> Query {
        Query::Union(Box::new(self), Box::new(other))
    }

    /// `self ∩ other`.
    pub fn intersect(self, other: Query) -> Query {
        Query::Intersect(Box::new(self), Box::new(other))
    }

    /// `self × other`.
    pub fn product(self, other: Query) -> Query {
        Query::Product(Box::new(self), Box::new(other))
    }

    /// `self ⋈_p other`.
    pub fn join(self, other: Query, p: Predicate) -> Query {
        Query::Join(Box::new(self), Box::new(other), p)
    }

    /// `self − other`.
    pub fn diff(self, other: Query) -> Query {
        Query::Diff(Box::new(self), Box::new(other))
    }

    /// `self when η`.
    pub fn when(self, eta: impl Into<StateExpr>) -> Query {
        Query::When(Box::new(self), Box::new(eta.into()))
    }

    /// Grouped aggregation over `self`.
    pub fn aggregate(
        self,
        group_by: impl Into<Vec<usize>>,
        aggs: impl Into<Vec<AggExpr>>,
    ) -> Query {
        Query::Aggregate {
            input: Box::new(self),
            group_by: group_by.into(),
            aggs: aggs.into(),
        }
    }

    /// Whether this query is pure relational algebra — i.e. contains no
    /// `when` anywhere (the paper's RA ⊂ RA_hyp). The reduction function
    /// `red` of §4.3 always returns a pure query (Theorem 4.1).
    pub fn is_pure(&self) -> bool {
        !self.contains_when()
    }

    /// Whether a `when` occurs anywhere in this query.
    pub fn contains_when(&self) -> bool {
        match self {
            Query::Base(_) | Query::Singleton(_) | Query::Empty { .. } => false,
            Query::Select(q, _) | Query::Project(q, _) => q.contains_when(),
            Query::Union(a, b)
            | Query::Intersect(a, b)
            | Query::Product(a, b)
            | Query::Join(a, b, _)
            | Query::Diff(a, b) => a.contains_when() || b.contains_when(),
            Query::When(_, _) => true,
            Query::Aggregate { input, .. } => input.contains_when(),
        }
    }

    /// Number of AST nodes (queries, state expressions, updates). Used to
    /// measure the exponential blow-up of Example 2.4.
    pub fn node_count(&self) -> usize {
        match self {
            Query::Base(_) | Query::Singleton(_) | Query::Empty { .. } => 1,
            Query::Select(q, _) | Query::Project(q, _) => 1 + q.node_count(),
            Query::Union(a, b)
            | Query::Intersect(a, b)
            | Query::Product(a, b)
            | Query::Join(a, b, _)
            | Query::Diff(a, b) => 1 + a.node_count() + b.node_count(),
            Query::When(q, eta) => 1 + q.node_count() + eta.node_count(),
            Query::Aggregate { input, .. } => 1 + input.node_count(),
        }
    }

    /// Rebuild this node with subqueries transformed by `f`. One level only;
    /// does **not** descend into state expressions (rewrites that cross the
    /// `when` scope boundary must go through the EQUIV_when rules).
    pub fn map_subqueries(self, mut f: impl FnMut(Query) -> Query) -> Query {
        match self {
            q @ (Query::Base(_) | Query::Singleton(_) | Query::Empty { .. }) => q,
            Query::Select(q, p) => f(*q).select(p),
            Query::Project(q, cols) => f(*q).project(cols),
            Query::Union(a, b) => f(*a).union(f(*b)),
            Query::Intersect(a, b) => f(*a).intersect(f(*b)),
            Query::Product(a, b) => f(*a).product(f(*b)),
            Query::Join(a, b, p) => f(*a).join(f(*b), p),
            Query::Diff(a, b) => f(*a).diff(f(*b)),
            Query::When(q, eta) => f(*q).when(*eta),
            Query::Aggregate {
                input,
                group_by,
                aggs,
            } => f(*input).aggregate(group_by, aggs),
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Base(name) => write!(f, "{name}"),
            Query::Singleton(t) => write!(f, "{{{t}}}"),
            Query::Empty { arity } => write!(f, "∅/{arity}"),
            Query::Select(q, p) => write!(f, "σ[{p}]({q})"),
            Query::Project(q, cols) => {
                write!(f, "π[")?;
                for (i, c) in cols.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, "]({q})")
            }
            Query::Union(a, b) => write!(f, "({a} ∪ {b})"),
            Query::Intersect(a, b) => write!(f, "({a} ∩ {b})"),
            Query::Product(a, b) => write!(f, "({a} × {b})"),
            Query::Join(a, b, p) => write!(f, "({a} ⋈[{p}] {b})"),
            Query::Diff(a, b) => write!(f, "({a} − {b})"),
            Query::When(q, eta) => write!(f, "({q} when {eta})"),
            Query::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                write!(f, "γ[")?;
                for (i, c) in group_by.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ";")?;
                for (i, a) in aggs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    match a {
                        AggExpr::Count => write!(f, "count")?,
                        AggExpr::Sum(c) => write!(f, "sum({c})")?,
                        AggExpr::Min(c) => write!(f, "min({c})")?,
                        AggExpr::Max(c) => write!(f, "max({c})")?,
                    }
                }
                write!(f, "]({input})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use crate::state_expr::StateExpr;
    use crate::update::Update;
    use hypoquery_storage::tuple;

    fn sel60() -> Predicate {
        Predicate::col_cmp(0, CmpOp::Ge, 60)
    }

    #[test]
    fn builders_compose() {
        let q = Query::base("R")
            .select(sel60())
            .union(Query::base("S"))
            .project([0]);
        assert_eq!(q.to_string(), "π[0]((σ[#0 >= 60](R) ∪ S))");
    }

    #[test]
    fn purity_detection() {
        let pure = Query::base("R").join(Query::base("S"), Predicate::True);
        assert!(pure.is_pure());
        let hyp = pure
            .clone()
            .when(StateExpr::update(Update::insert("R", Query::base("S"))));
        assert!(!hyp.is_pure());
        assert!(hyp.contains_when());
        // when nested under an operator is still detected
        let nested = Query::base("T").union(hyp);
        assert!(!nested.is_pure());
    }

    #[test]
    fn node_count_counts_structure() {
        let q = Query::base("R").select(sel60());
        assert_eq!(q.node_count(), 2);
        let q2 = q.clone().union(q);
        assert_eq!(q2.node_count(), 5);
    }

    #[test]
    fn map_subqueries_is_one_level() {
        let q = Query::base("R").union(Query::base("S"));
        let swapped = q.map_subqueries(|_| Query::base("T"));
        assert_eq!(swapped, Query::base("T").union(Query::base("T")));
    }

    #[test]
    fn display_of_special_nodes() {
        assert_eq!(Query::empty(2).to_string(), "∅/2");
        assert_eq!(Query::singleton(tuple![1, 2]).to_string(), "{(1, 2)}");
        let agg = Query::base("R").aggregate([0], [AggExpr::Count, AggExpr::Sum(1)]);
        assert_eq!(agg.to_string(), "γ[0;count,sum(1)](R)");
    }
}
