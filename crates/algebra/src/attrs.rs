//! Attribute-name inference.
//!
//! The paper's formal language addresses columns by position; real schemas
//! have attribute names. This module infers the (possibly anonymous)
//! output attribute names of every operator, so that the surface parser
//! can resolve `salary >= 200` to `#1 >= 200` against the input of the
//! enclosing `select`/`join`, and so the engine can print column headers.
//!
//! An output column is `None` (anonymous) when no unambiguous name exists:
//! computed aggregates are named (`count`, `sum_1`, …); duplicated names
//! after a product/join stay present (resolution then requires the
//! *first* occurrence, or a positional reference).

use hypoquery_storage::Catalog;

use crate::query::{AggExpr, Query};
use crate::typing::{arity_of, TypeError};

/// The inferred output attribute names of a query, one entry per column
/// (`None` = anonymous).
pub fn attrs_of(q: &Query, catalog: &Catalog) -> Result<Vec<Option<String>>, TypeError> {
    match q {
        Query::Base(name) => {
            let schema = catalog
                .schema(name)
                .ok_or_else(|| TypeError::UnknownRelation(name.clone()))?;
            Ok(match &schema.attrs {
                Some(attrs) => attrs.iter().cloned().map(Some).collect(),
                None => vec![None; schema.arity],
            })
        }
        Query::Singleton(t) => Ok(vec![None; t.arity()]),
        Query::Empty { arity } => Ok(vec![None; *arity]),
        Query::Select(inner, _) => attrs_of(inner, catalog),
        Query::Project(inner, cols) => {
            let input = attrs_of(inner, catalog)?;
            cols.iter()
                .map(|&c| {
                    input.get(c).cloned().ok_or(TypeError::ColumnOutOfRange {
                        col: c,
                        arity: input.len(),
                    })
                })
                .collect()
        }
        Query::Union(a, b) | Query::Intersect(a, b) | Query::Diff(a, b) => {
            // Take the left side's names where both sides agree or the
            // right is anonymous.
            let left = attrs_of(a, catalog)?;
            let right = attrs_of(b, catalog)?;
            if left.len() != right.len() {
                // arity check will report properly
                arity_of(q, catalog)?;
            }
            Ok(left
                .into_iter()
                .zip(right)
                .map(|(l, r)| match (l, r) {
                    (Some(l), Some(r)) if l == r => Some(l),
                    (Some(l), None) => Some(l),
                    (None, Some(r)) => Some(r),
                    _ => None,
                })
                .collect())
        }
        Query::Product(a, b) | Query::Join(a, b, _) => {
            let mut out = attrs_of(a, catalog)?;
            out.extend(attrs_of(b, catalog)?);
            Ok(out)
        }
        Query::When(inner, _) => attrs_of(inner, catalog),
        Query::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let in_attrs = attrs_of(input, catalog)?;
            let mut out: Vec<Option<String>> = group_by
                .iter()
                .map(|&c| in_attrs.get(c).cloned().flatten())
                .collect();
            for agg in aggs {
                out.push(Some(agg_name(agg, &in_attrs)));
            }
            Ok(out)
        }
    }
}

fn agg_name(agg: &AggExpr, input: &[Option<String>]) -> String {
    let col_name = |c: usize| -> String {
        input
            .get(c)
            .cloned()
            .flatten()
            .unwrap_or_else(|| c.to_string())
    };
    match agg {
        AggExpr::Count => "count".to_string(),
        AggExpr::Sum(c) => format!("sum_{}", col_name(*c)),
        AggExpr::Min(c) => format!("min_{}", col_name(*c)),
        AggExpr::Max(c) => format!("max_{}", col_name(*c)),
    }
}

/// Resolve an attribute name to a column position within inferred
/// attributes. Returns the **first** matching column.
pub fn position_of(attrs: &[Option<String>], name: &str) -> Option<usize> {
    attrs.iter().position(|a| a.as_deref() == Some(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CmpOp, Predicate};
    use hypoquery_storage::RelSchema;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.declare("emp", RelSchema::named(["id", "salary"]))
            .unwrap();
        c.declare("dept", RelSchema::named(["emp_id", "dept_id"]))
            .unwrap();
        c.declare_arity("anon", 2).unwrap();
        c
    }

    #[test]
    fn base_and_positional() {
        let c = catalog();
        assert_eq!(
            attrs_of(&Query::base("emp"), &c).unwrap(),
            vec![Some("id".into()), Some("salary".into())]
        );
        assert_eq!(
            attrs_of(&Query::base("anon"), &c).unwrap(),
            vec![None, None]
        );
        assert!(attrs_of(&Query::base("nope"), &c).is_err());
    }

    #[test]
    fn select_preserves_project_picks() {
        let c = catalog();
        let q = Query::base("emp")
            .select(Predicate::col_cmp(1, CmpOp::Gt, 0))
            .project([1]);
        assert_eq!(attrs_of(&q, &c).unwrap(), vec![Some("salary".into())]);
    }

    #[test]
    fn join_concatenates() {
        let c = catalog();
        let q = Query::base("emp").join(Query::base("dept"), Predicate::True);
        assert_eq!(
            attrs_of(&q, &c).unwrap(),
            vec![
                Some("id".into()),
                Some("salary".into()),
                Some("emp_id".into()),
                Some("dept_id".into())
            ]
        );
    }

    #[test]
    fn union_merges_names() {
        let c = catalog();
        let q = Query::base("emp").union(Query::base("anon"));
        assert_eq!(
            attrs_of(&q, &c).unwrap(),
            vec![Some("id".into()), Some("salary".into())]
        );
        let q = Query::base("emp").union(Query::base("dept"));
        assert_eq!(attrs_of(&q, &c).unwrap(), vec![None, None]);
    }

    #[test]
    fn aggregate_names() {
        let c = catalog();
        let q = Query::base("emp").aggregate([0], [AggExpr::Count, AggExpr::Sum(1)]);
        assert_eq!(
            attrs_of(&q, &c).unwrap(),
            vec![
                Some("id".into()),
                Some("count".into()),
                Some("sum_salary".into())
            ]
        );
    }

    #[test]
    fn when_is_transparent() {
        let c = catalog();
        let q = Query::base("emp").when(crate::state_expr::StateExpr::subst(
            crate::state_expr::ExplicitSubst::empty(),
        ));
        assert_eq!(
            attrs_of(&q, &c).unwrap(),
            vec![Some("id".into()), Some("salary".into())]
        );
    }

    #[test]
    fn position_lookup_is_first_match() {
        let attrs = vec![Some("a".into()), Some("b".into()), Some("a".into())];
        assert_eq!(position_of(&attrs, "a"), Some(0));
        assert_eq!(position_of(&attrs, "b"), Some(1));
        assert_eq!(position_of(&attrs, "z"), None);
    }
}
