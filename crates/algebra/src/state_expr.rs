//! Hypothetical-state expressions `η` and explicit substitutions `ε` (§4.1).
//!
//! ```text
//! η ::= ε            explicit substitution
//!     | {U}          hypothetical state reached by U
//!     | η # η        composition
//!
//! ε ::= {Q₁/S₁, …, Qⱼ/Sⱼ}   (j ≥ 0, Sᵢ distinct, Qᵢ ∈ RA_hyp)
//! ```
//!
//! An explicit substitution's bindings may themselves contain `when` — the
//! bound queries are full HQL queries. Bindings are kept sorted by relation
//! name, which makes structural equality of substitutions independent of
//! the order bindings were written in.

use std::fmt;

use hypoquery_storage::RelName;

use crate::query::Query;
use crate::update::Update;

/// An explicit substitution `{Q₁/S₁, …, Qⱼ/Sⱼ}`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ExplicitSubst {
    /// Bindings sorted by relation name; names are distinct.
    bindings: Vec<(RelName, Query)>,
}

impl ExplicitSubst {
    /// The empty substitution `{}`.
    pub fn empty() -> Self {
        ExplicitSubst::default()
    }

    /// Build from bindings. Later bindings for the same name replace
    /// earlier ones (names must be distinct in the formal syntax; this
    /// constructor normalizes instead of erroring).
    pub fn new(bindings: impl IntoIterator<Item = (RelName, Query)>) -> Self {
        let mut s = ExplicitSubst::empty();
        for (name, q) in bindings {
            s.bind(name, q);
        }
        s
    }

    /// Single binding `{q/name}`.
    pub fn single(name: impl Into<RelName>, q: Query) -> Self {
        ExplicitSubst {
            bindings: vec![(name.into(), q)],
        }
    }

    /// Add or replace the binding for `name`.
    pub fn bind(&mut self, name: impl Into<RelName>, q: Query) {
        let name = name.into();
        match self.bindings.binary_search_by(|(n, _)| n.cmp(&name)) {
            Ok(i) => self.bindings[i].1 = q,
            Err(i) => self.bindings.insert(i, (name, q)),
        }
    }

    /// The query bound to `name`, if any.
    pub fn get(&self, name: &RelName) -> Option<&Query> {
        self.bindings
            .binary_search_by(|(n, _)| n.cmp(name))
            .ok()
            .map(|i| &self.bindings[i].1)
    }

    /// `ε₋R`: this substitution with the binding for `name` (if any)
    /// removed — the binding-removal operation of Example 2.3 and the
    /// substitution-simplification rules of Figure 1.
    pub fn without(&self, name: &RelName) -> ExplicitSubst {
        ExplicitSubst {
            bindings: self
                .bindings
                .iter()
                .filter(|(n, _)| n != name)
                .cloned()
                .collect(),
        }
    }

    /// Whether there are no bindings.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Iterate bindings in name order as `(name, query)`.
    pub fn iter(&self) -> impl Iterator<Item = (&RelName, &Query)> {
        self.bindings.iter().map(|(n, q)| (n, q))
    }

    /// The domain `dom(ε)`: names with a binding, in order.
    pub fn names(&self) -> impl Iterator<Item = &RelName> {
        self.bindings.iter().map(|(n, _)| n)
    }

    /// Consume into the binding vector.
    pub fn into_bindings(self) -> Vec<(RelName, Query)> {
        self.bindings
    }

    /// Whether any bound query contains a `when`.
    pub fn contains_when(&self) -> bool {
        self.bindings.iter().any(|(_, q)| q.contains_when())
    }

    /// Node count, for blow-up measurements.
    pub fn node_count(&self) -> usize {
        1 + self
            .bindings
            .iter()
            .map(|(_, q)| q.node_count())
            .sum::<usize>()
    }
}

impl FromIterator<(RelName, Query)> for ExplicitSubst {
    fn from_iter<T: IntoIterator<Item = (RelName, Query)>>(iter: T) -> Self {
        ExplicitSubst::new(iter)
    }
}

impl fmt::Display for ExplicitSubst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (n, q)) in self.bindings.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{q}/{n}")?;
        }
        write!(f, "}}")
    }
}

/// A hypothetical-state expression `η`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum StateExpr {
    /// `{U}` — the hypothetical state reached by executing `U`.
    Update(Update),
    /// An explicit substitution.
    Subst(ExplicitSubst),
    /// `η₁ # η₂` — composition: reach `η₁`'s state, then apply `η₂` in it.
    Compose(Box<StateExpr>, Box<StateExpr>),
}

impl StateExpr {
    /// `{U}`.
    pub fn update(u: Update) -> StateExpr {
        StateExpr::Update(u)
    }

    /// Explicit substitution state.
    pub fn subst(s: ExplicitSubst) -> StateExpr {
        StateExpr::Subst(s)
    }

    /// `self # other`.
    pub fn compose(self, other: StateExpr) -> StateExpr {
        StateExpr::Compose(Box::new(self), Box::new(other))
    }

    /// Whether this expression is already an explicit substitution — the
    /// shape ENF requires of every hypothetical-state expression (§5.2).
    pub fn is_explicit(&self) -> bool {
        matches!(self, StateExpr::Subst(_))
    }

    /// If explicit, borrow the substitution.
    pub fn as_subst(&self) -> Option<&ExplicitSubst> {
        match self {
            StateExpr::Subst(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this is `{U}` with `U` a sequence of atomic inserts/deletes —
    /// the shape mod-ENF requires (§5.5).
    pub fn is_atomic_update(&self) -> bool {
        matches!(self, StateExpr::Update(u) if u.is_atomic_sequence())
    }

    /// Node count, for blow-up measurements.
    pub fn node_count(&self) -> usize {
        match self {
            StateExpr::Update(u) => 1 + u.node_count(),
            StateExpr::Subst(s) => s.node_count(),
            StateExpr::Compose(a, b) => 1 + a.node_count() + b.node_count(),
        }
    }
}

impl From<Update> for StateExpr {
    fn from(u: Update) -> Self {
        StateExpr::Update(u)
    }
}

impl From<ExplicitSubst> for StateExpr {
    fn from(s: ExplicitSubst) -> Self {
        StateExpr::Subst(s)
    }
}

impl fmt::Display for StateExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateExpr::Update(u) => write!(f, "{{{u}}}"),
            StateExpr::Subst(s) => write!(f, "{s}"),
            StateExpr::Compose(a, b) => write!(f, "({a} # {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CmpOp, Predicate};

    fn q() -> Query {
        Query::base("S").select(Predicate::col_cmp(0, CmpOp::Gt, 30))
    }

    #[test]
    fn bindings_sorted_and_distinct() {
        let s = ExplicitSubst::new([
            ("S".into(), Query::base("A")),
            ("R".into(), Query::base("B")),
            ("S".into(), Query::base("C")),
        ]);
        assert_eq!(s.len(), 2);
        let names: Vec<_> = s.names().map(|n| n.as_str().to_string()).collect();
        assert_eq!(names, ["R", "S"]);
        assert_eq!(s.get(&"S".into()), Some(&Query::base("C")));
        assert_eq!(s.get(&"Z".into()), None);
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let a = ExplicitSubst::new([("R".into(), q()), ("S".into(), Query::base("T"))]);
        let b = ExplicitSubst::new([("S".into(), Query::base("T")), ("R".into(), q())]);
        assert_eq!(a, b);
    }

    #[test]
    fn without_removes_binding() {
        let s = ExplicitSubst::new([("R".into(), q()), ("S".into(), Query::base("T"))]);
        let s2 = s.without(&"R".into());
        assert_eq!(s2.len(), 1);
        assert!(s2.get(&"R".into()).is_none());
        // removing an absent name is a no-op
        assert_eq!(s.without(&"Z".into()), s);
    }

    #[test]
    fn display_forms() {
        let s = ExplicitSubst::new([("R".into(), Query::base("R").union(q()))]);
        assert_eq!(s.to_string(), "{(R ∪ σ[#0 > 30](S))/R}");
        let eta = StateExpr::subst(s.clone()).compose(StateExpr::update(Update::delete(
            "S",
            Query::base("S").select(Predicate::col_cmp(0, CmpOp::Lt, 60)),
        )));
        assert_eq!(
            eta.to_string(),
            "({(R ∪ σ[#0 > 30](S))/R} # {del(S, σ[#0 < 60](S))})"
        );
    }

    #[test]
    fn shape_predicates() {
        let atomic = StateExpr::update(Update::insert("R", q()));
        assert!(atomic.is_atomic_update());
        assert!(!atomic.is_explicit());
        let explicit = StateExpr::subst(ExplicitSubst::single("R", q()));
        assert!(explicit.is_explicit());
        assert!(explicit.as_subst().is_some());
        let composed = atomic.clone().compose(explicit);
        assert!(!composed.is_explicit());
        assert!(!composed.is_atomic_update());
    }

    #[test]
    fn contains_when_inside_bindings() {
        let inner = Query::base("R").when(StateExpr::update(Update::insert("R", q())));
        let s = ExplicitSubst::single("T", inner);
        assert!(s.contains_when());
        assert!(!ExplicitSubst::single("T", q()).contains_when());
    }
}
