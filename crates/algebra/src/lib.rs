//! # hypoquery-algebra
//!
//! Abstract syntax for HQL — the Hypothetical Query Language of
//! Griffin & Hull (SIGMOD 1997) — together with its scoping and typing
//! rules.
//!
//! * [`Query`] — relational algebra extended with `when` at any nesting
//!   level (the paper's RA_hyp, §4.1);
//! * [`Update`] — the update language `U` (§3.1), plus the §6 conditional
//!   extension;
//! * [`StateExpr`] / [`ExplicitSubst`] — hypothetical-state expressions `η`
//!   and explicit substitutions `ε` (§4.1);
//! * [`scope`] — the `free`/`dom` functions of Figure 2;
//! * [`typing`] — the "usual" arity typing rules made explicit.
//!
//! The semantics of all of these live in `hypoquery-eval`; the substitution
//! calculus (`sub`, `#`, `slice`, `red`) and the EQUIV_when rewriting system
//! live in `hypoquery-core`.

#![warn(missing_docs)]

pub mod attrs;
pub mod predicate;
pub mod query;
pub mod scope;
pub mod state_expr;
pub mod typing;
pub mod update;

pub use attrs::{attrs_of, position_of};
pub use predicate::{CmpOp, Predicate, ScalarExpr};
pub use query::{AggExpr, Query};
pub use state_expr::{ExplicitSubst, StateExpr};
pub use typing::TypeError;
pub use update::Update;
