//! The scoping functions `free(·)` and `dom(·)` of Figure 2.
//!
//! `free(E)` is the set of relation names occurring free in `E`;
//! `dom(E)` is the set of names *defined* by `E` (for hypothetical-state and
//! update expressions). Together they articulate the scoping rules of
//! `when`: in `Q when η`, occurrences in `Q` of names in `dom(η)` refer to
//! the hypothetical state, not the underlying one — so
//! `free(Q when η) = free(η) ∪ (free(Q) − dom(η))`.

use std::collections::BTreeSet;

use hypoquery_storage::RelName;

use crate::query::Query;
use crate::state_expr::{ExplicitSubst, StateExpr};
use crate::update::Update;

/// A set of relation names.
pub type NameSet = BTreeSet<RelName>;

/// `free(Q)` for a query (Fig. 2).
pub fn free_query(q: &Query) -> NameSet {
    let mut out = NameSet::new();
    collect_free_query(q, &mut out);
    out
}

fn collect_free_query(q: &Query, out: &mut NameSet) {
    match q {
        Query::Base(name) => {
            out.insert(name.clone());
        }
        Query::Singleton(_) | Query::Empty { .. } => {}
        Query::Select(q, _) | Query::Project(q, _) => collect_free_query(q, out),
        Query::Union(a, b)
        | Query::Intersect(a, b)
        | Query::Product(a, b)
        | Query::Join(a, b, _)
        | Query::Diff(a, b) => {
            collect_free_query(a, out);
            collect_free_query(b, out);
        }
        Query::When(q, eta) => {
            // free(Q when η) = free(η) ∪ (free(Q) − dom(η))
            let mut inner = free_query(q);
            for d in dom_state_expr(eta) {
                inner.remove(&d);
            }
            out.extend(inner);
            out.extend(free_state_expr(eta));
        }
        Query::Aggregate { input, .. } => collect_free_query(input, out),
    }
}

/// `free(U)` for an update (Fig. 2, with one correction).
///
/// `ins(R, Q)` / `del(R, Q)` read `R` as well as `Q`'s names: their slice
/// is `{(R ∪ Q)/R}` / `{(R − Q)/R}`, in which `R` occurs free. The
/// conference text's figure prints `free(ins(R, Q)) = free(Q)`, but with
/// that definition the *substitution-simplification* rule of Figure 1
/// (`Q when ε ≡ Q when ε₋R if R ∉ free(Q)`) is unsound — a binding feeding
/// the implicit read would be dropped (our property tests found the
/// counterexample `(S − {t}) when {del(S, {t})}` under `{T/S}`). We
/// therefore define `free` so that it commutes with
/// *convert-to-explicit-substitutions*, which also matches the target
/// occurring free in `slice(U)`.
pub fn free_update(u: &Update) -> NameSet {
    match u {
        Update::Insert(r, q) | Update::Delete(r, q) => {
            let mut out = free_query(q);
            out.insert(r.clone());
            out
        }
        Update::Seq(a, b) => {
            // free((U₁;U₂)) = free(U₁) ∪ (free(U₂) − dom(U₁))
            let mut out = free_update(a);
            let doms = dom_update(a);
            for n in free_update(b) {
                if !doms.contains(&n) {
                    out.insert(n);
                }
            }
            out
        }
        Update::Cond {
            guard,
            then_u,
            else_u,
        } => {
            // Conservative: everything read by the guard or either branch.
            let mut out = free_query(guard);
            out.extend(free_update(then_u));
            out.extend(free_update(else_u));
            out
        }
    }
}

/// `dom(U)` for an update (Fig. 2).
pub fn dom_update(u: &Update) -> NameSet {
    match u {
        Update::Insert(r, _) | Update::Delete(r, _) => [r.clone()].into_iter().collect(),
        Update::Seq(a, b) => {
            let mut out = dom_update(a);
            out.extend(dom_update(b));
            out
        }
        Update::Cond { then_u, else_u, .. } => {
            let mut out = dom_update(then_u);
            out.extend(dom_update(else_u));
            out
        }
    }
}

/// `free(ε)` for an explicit substitution (Fig. 2):
/// the union of the free names of all bound queries.
pub fn free_subst(s: &ExplicitSubst) -> NameSet {
    let mut out = NameSet::new();
    for (_, q) in s.iter() {
        out.extend(free_query(q));
    }
    out
}

/// `dom(ε)` for an explicit substitution: its bound names.
pub fn dom_subst(s: &ExplicitSubst) -> NameSet {
    s.names().cloned().collect()
}

/// `free(η)` for a hypothetical-state expression (Fig. 2).
pub fn free_state_expr(eta: &StateExpr) -> NameSet {
    match eta {
        StateExpr::Update(u) => free_update(u),
        StateExpr::Subst(s) => free_subst(s),
        StateExpr::Compose(a, b) => {
            // free(η₁#η₂) = free(η₁) ∪ (free(η₂) − dom(η₁))
            let mut out = free_state_expr(a);
            let doms = dom_state_expr(a);
            for n in free_state_expr(b) {
                if !doms.contains(&n) {
                    out.insert(n);
                }
            }
            out
        }
    }
}

/// `dom(η)` for a hypothetical-state expression (Fig. 2).
pub fn dom_state_expr(eta: &StateExpr) -> NameSet {
    match eta {
        StateExpr::Update(u) => dom_update(u),
        StateExpr::Subst(s) => dom_subst(s),
        StateExpr::Compose(a, b) => {
            let mut out = dom_state_expr(a);
            out.extend(dom_state_expr(b));
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CmpOp, Predicate};

    fn names(set: &NameSet) -> Vec<&str> {
        set.iter().map(|n| n.as_str()).collect()
    }

    fn sel(q: Query) -> Query {
        q.select(Predicate::col_cmp(0, CmpOp::Gt, 30))
    }

    #[test]
    fn free_of_pure_query_is_all_names() {
        let q = Query::base("R").join(sel(Query::base("S")), Predicate::True);
        assert_eq!(names(&free_query(&q)), ["R", "S"]);
        assert_eq!(
            names(&free_query(&Query::singleton(hypoquery_storage::tuple![1]))),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn dom_and_free_of_updates() {
        // free(ins(R, Q)) = {R} ∪ free(Q): the insert reads R implicitly
        // (its slice is (R ∪ Q)/R). See the free_update doc comment for
        // why the conference text's `free(Q)` is corrected here.
        let u = Update::insert("R", sel(Query::base("S")));
        assert_eq!(names(&free_update(&u)), ["R", "S"]);
        assert_eq!(names(&dom_update(&u)), ["R"]);

        // free((U1;U2)) = free(U1) ∪ (free(U2) − dom(U1))
        let seq = Update::insert("R", Query::base("S")).then(Update::delete(
            "T",
            Query::base("R").union(Query::base("V")),
        ));
        // R is defined by U1, so its occurrence in U2 is not free; T's
        // implicit read survives (T ∉ dom(U1)).
        assert_eq!(names(&free_update(&seq)), ["R", "S", "T", "V"]);
        assert_eq!(names(&dom_update(&seq)), ["R", "T"]);
    }

    #[test]
    fn when_scoping_hides_defined_names() {
        // free(Q when η) = free(η) ∪ (free(Q) − dom(η))
        let eta = StateExpr::update(Update::insert("R", Query::base("S")));
        let q = Query::base("R").union(Query::base("T")).when(eta);
        // R is bound by η for Q's purposes but read by η itself; S is free
        // via η; T is free via Q.
        assert_eq!(names(&free_query(&q)), ["R", "S", "T"]);
    }

    #[test]
    fn subst_scope() {
        let s = ExplicitSubst::new([
            ("R".into(), Query::base("S")),
            ("T".into(), Query::base("R")),
        ]);
        assert_eq!(names(&dom_subst(&s)), ["R", "T"]);
        // free is over the bound queries; both S and R occur there.
        assert_eq!(names(&free_subst(&s)), ["R", "S"]);
    }

    #[test]
    fn compose_scope() {
        // η1 defines R reading S; η2 defines T reading R.
        let e1 = StateExpr::update(Update::insert("R", Query::base("S")));
        let e2 = StateExpr::update(Update::insert("T", Query::base("R")));
        let c = e1.clone().compose(e2.clone());
        assert_eq!(names(&dom_state_expr(&c)), ["R", "T"]);
        // free(η1#η2) = {R,S} ∪ ({T,R} − {R}) = {R,S,T}
        assert_eq!(names(&free_state_expr(&c)), ["R", "S", "T"]);
        // Composed the other way, T is consumed by η2's own dom but R
        // stays free in both readers.
        let c2 = e2.compose(e1);
        assert_eq!(names(&free_state_expr(&c2)), ["R", "S", "T"]);
    }

    #[test]
    fn cond_update_scope_is_conservative() {
        let u = Update::cond(
            Query::base("G"),
            Update::insert("R", Query::base("S")),
            Update::delete("T", Query::base("T")),
        );
        assert_eq!(names(&dom_update(&u)), ["R", "T"]);
        assert_eq!(names(&free_update(&u)), ["G", "R", "S", "T"]);
    }

    #[test]
    fn nested_when_in_binding() {
        // Substitution binding containing a when: free must respect the
        // inner scope.
        let inner = Query::base("R").when(StateExpr::update(Update::insert("R", Query::base("S"))));
        let s = ExplicitSubst::single("T", inner);
        // R is free through the inner update's implicit read.
        assert_eq!(names(&free_subst(&s)), ["R", "S"]);
    }
}
