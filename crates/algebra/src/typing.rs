//! Arity typing for HQL expressions.
//!
//! §3.1: "We assume the usual typing rules concerning the arities of query
//! expressions." This module makes those rules explicit and checkable
//! against a [`Catalog`]. Every public evaluation/rewriting entry point in
//! the workspace expects (and the engine enforces) well-typed inputs.

use std::fmt;

use hypoquery_storage::{Catalog, RelName};

use crate::query::Query;
use crate::state_expr::{ExplicitSubst, StateExpr};
use crate::update::Update;

/// A typing error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TypeError {
    /// A relation name not declared in the catalog.
    UnknownRelation(RelName),
    /// Binary set operator applied to operands of different arities.
    OperandArityMismatch {
        /// Which operator.
        op: &'static str,
        /// Left operand arity.
        left: usize,
        /// Right operand arity.
        right: usize,
    },
    /// A predicate references a column outside the input arity.
    PredicateOutOfRange {
        /// Highest column referenced.
        col: usize,
        /// Input arity.
        arity: usize,
    },
    /// A projection or aggregate references a column outside the input
    /// arity.
    ColumnOutOfRange {
        /// The offending column.
        col: usize,
        /// Input arity.
        arity: usize,
    },
    /// A substitution binding `Q/R` where `arity(Q) ≠ arity(R)`.
    BindingArityMismatch {
        /// Bound relation name.
        name: RelName,
        /// Declared arity of the name.
        expected: usize,
        /// Arity of the bound query.
        found: usize,
    },
    /// An update `ins(R, Q)`/`del(R, Q)` where `arity(Q) ≠ arity(R)`.
    UpdateArityMismatch {
        /// Target relation name.
        name: RelName,
        /// Declared arity of the target.
        expected: usize,
        /// Arity of the update's query.
        found: usize,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnknownRelation(n) => write!(f, "unknown relation {n}"),
            TypeError::OperandArityMismatch { op, left, right } => {
                write!(f, "{op}: operand arities differ ({left} vs {right})")
            }
            TypeError::PredicateOutOfRange { col, arity } => {
                write!(
                    f,
                    "predicate references column {col} but input arity is {arity}"
                )
            }
            TypeError::ColumnOutOfRange { col, arity } => {
                write!(f, "column {col} out of range for arity {arity}")
            }
            TypeError::BindingArityMismatch {
                name,
                expected,
                found,
            } => {
                write!(
                    f,
                    "binding for {name}: expected arity {expected}, query has arity {found}"
                )
            }
            TypeError::UpdateArityMismatch {
                name,
                expected,
                found,
            } => {
                write!(
                    f,
                    "update on {name}: expected arity {expected}, query has arity {found}"
                )
            }
        }
    }
}

impl std::error::Error for TypeError {}

/// Compute and check the arity of a query against a catalog.
pub fn arity_of(q: &Query, catalog: &Catalog) -> Result<usize, TypeError> {
    match q {
        Query::Base(name) => catalog
            .arity(name)
            .map_err(|_| TypeError::UnknownRelation(name.clone())),
        Query::Singleton(t) => Ok(t.arity()),
        Query::Empty { arity } => Ok(*arity),
        Query::Select(inner, p) => {
            let a = arity_of(inner, catalog)?;
            check_predicate(p, a)?;
            Ok(a)
        }
        Query::Project(inner, cols) => {
            let a = arity_of(inner, catalog)?;
            for &c in cols {
                if c >= a {
                    return Err(TypeError::ColumnOutOfRange { col: c, arity: a });
                }
            }
            Ok(cols.len())
        }
        Query::Union(l, r) => same_arity("union", l, r, catalog),
        Query::Intersect(l, r) => same_arity("intersection", l, r, catalog),
        Query::Diff(l, r) => same_arity("difference", l, r, catalog),
        Query::Product(l, r) => Ok(arity_of(l, catalog)? + arity_of(r, catalog)?),
        Query::Join(l, r, p) => {
            let a = arity_of(l, catalog)? + arity_of(r, catalog)?;
            check_predicate(p, a)?;
            Ok(a)
        }
        Query::When(inner, eta) => {
            check_state_expr(eta, catalog)?;
            arity_of(inner, catalog)
        }
        Query::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let a = arity_of(input, catalog)?;
            for &c in group_by {
                if c >= a {
                    return Err(TypeError::ColumnOutOfRange { col: c, arity: a });
                }
            }
            for agg in aggs {
                if let Some(c) = agg.col() {
                    if c >= a {
                        return Err(TypeError::ColumnOutOfRange { col: c, arity: a });
                    }
                }
            }
            Ok(group_by.len() + aggs.len())
        }
    }
}

fn same_arity(
    op: &'static str,
    l: &Query,
    r: &Query,
    catalog: &Catalog,
) -> Result<usize, TypeError> {
    let la = arity_of(l, catalog)?;
    let ra = arity_of(r, catalog)?;
    if la != ra {
        return Err(TypeError::OperandArityMismatch {
            op,
            left: la,
            right: ra,
        });
    }
    Ok(la)
}

fn check_predicate(p: &crate::predicate::Predicate, arity: usize) -> Result<(), TypeError> {
    match p.max_col() {
        Some(c) if c >= arity => Err(TypeError::PredicateOutOfRange { col: c, arity }),
        _ => Ok(()),
    }
}

/// Check an update expression against a catalog.
pub fn check_update(u: &Update, catalog: &Catalog) -> Result<(), TypeError> {
    match u {
        Update::Insert(name, q) | Update::Delete(name, q) => {
            let expected = catalog
                .arity(name)
                .map_err(|_| TypeError::UnknownRelation(name.clone()))?;
            let found = arity_of(q, catalog)?;
            if found != expected {
                return Err(TypeError::UpdateArityMismatch {
                    name: name.clone(),
                    expected,
                    found,
                });
            }
            Ok(())
        }
        Update::Seq(a, b) => {
            check_update(a, catalog)?;
            check_update(b, catalog)
        }
        Update::Cond {
            guard,
            then_u,
            else_u,
        } => {
            arity_of(guard, catalog)?;
            check_update(then_u, catalog)?;
            check_update(else_u, catalog)
        }
    }
}

/// Check an explicit substitution: every binding `Q/R` must have
/// `arity(Q) = arity(R)` (§3.2's well-formedness condition on
/// substitutions).
pub fn check_subst(s: &ExplicitSubst, catalog: &Catalog) -> Result<(), TypeError> {
    for (name, q) in s.iter() {
        let expected = catalog
            .arity(name)
            .map_err(|_| TypeError::UnknownRelation(name.clone()))?;
        let found = arity_of(q, catalog)?;
        if found != expected {
            return Err(TypeError::BindingArityMismatch {
                name: name.clone(),
                expected,
                found,
            });
        }
    }
    Ok(())
}

/// Check a hypothetical-state expression against a catalog.
pub fn check_state_expr(eta: &StateExpr, catalog: &Catalog) -> Result<(), TypeError> {
    match eta {
        StateExpr::Update(u) => check_update(u, catalog),
        StateExpr::Subst(s) => check_subst(s, catalog),
        StateExpr::Compose(a, b) => {
            check_state_expr(a, catalog)?;
            check_state_expr(b, catalog)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CmpOp, Predicate};
    use crate::query::AggExpr;
    use hypoquery_storage::tuple;

    fn cat() -> Catalog {
        let mut c = Catalog::new();
        c.declare_arity("R", 2).unwrap();
        c.declare_arity("S", 2).unwrap();
        c.declare_arity("T", 1).unwrap();
        c
    }

    #[test]
    fn base_and_singleton() {
        let c = cat();
        assert_eq!(arity_of(&Query::base("R"), &c), Ok(2));
        assert_eq!(arity_of(&Query::singleton(tuple![1, 2, 3]), &c), Ok(3));
        assert_eq!(arity_of(&Query::empty(4), &c), Ok(4));
        assert_eq!(
            arity_of(&Query::base("Z"), &c),
            Err(TypeError::UnknownRelation("Z".into()))
        );
    }

    #[test]
    fn select_checks_predicate_range() {
        let c = cat();
        let ok = Query::base("R").select(Predicate::col_cmp(1, CmpOp::Gt, 0));
        assert_eq!(arity_of(&ok, &c), Ok(2));
        let bad = Query::base("R").select(Predicate::col_cmp(2, CmpOp::Gt, 0));
        assert_eq!(
            arity_of(&bad, &c),
            Err(TypeError::PredicateOutOfRange { col: 2, arity: 2 })
        );
    }

    #[test]
    fn project_checks_columns() {
        let c = cat();
        assert_eq!(arity_of(&Query::base("R").project([1, 1, 0]), &c), Ok(3));
        assert_eq!(
            arity_of(&Query::base("R").project([2]), &c),
            Err(TypeError::ColumnOutOfRange { col: 2, arity: 2 })
        );
    }

    #[test]
    fn set_ops_require_same_arity() {
        let c = cat();
        assert_eq!(
            arity_of(&Query::base("R").union(Query::base("S")), &c),
            Ok(2)
        );
        assert!(matches!(
            arity_of(&Query::base("R").union(Query::base("T")), &c),
            Err(TypeError::OperandArityMismatch {
                op: "union",
                left: 2,
                right: 1
            })
        ));
    }

    #[test]
    fn product_and_join_sum_arity() {
        let c = cat();
        assert_eq!(
            arity_of(&Query::base("R").product(Query::base("T")), &c),
            Ok(3)
        );
        let j = Query::base("R").join(Query::base("S"), Predicate::col_col(0, CmpOp::Eq, 2));
        assert_eq!(arity_of(&j, &c), Ok(4));
        let bad = Query::base("R").join(Query::base("S"), Predicate::col_col(0, CmpOp::Eq, 4));
        assert!(matches!(
            arity_of(&bad, &c),
            Err(TypeError::PredicateOutOfRange { .. })
        ));
    }

    #[test]
    fn when_checks_state_expr_and_keeps_arity() {
        let c = cat();
        let eta = StateExpr::update(Update::insert("R", Query::base("S")));
        assert_eq!(arity_of(&Query::base("R").when(eta), &c), Ok(2));
        let bad_eta = StateExpr::update(Update::insert("R", Query::base("T")));
        assert!(matches!(
            arity_of(&Query::base("R").when(bad_eta), &c),
            Err(TypeError::UpdateArityMismatch {
                expected: 2,
                found: 1,
                ..
            })
        ));
    }

    #[test]
    fn subst_bindings_checked() {
        let c = cat();
        let ok = ExplicitSubst::single("R", Query::base("S"));
        assert!(check_subst(&ok, &c).is_ok());
        let bad = ExplicitSubst::single("R", Query::base("T"));
        assert!(matches!(
            check_subst(&bad, &c),
            Err(TypeError::BindingArityMismatch {
                expected: 2,
                found: 1,
                ..
            })
        ));
        let unknown = ExplicitSubst::single("Z", Query::base("T"));
        assert!(matches!(
            check_subst(&unknown, &c),
            Err(TypeError::UnknownRelation(_))
        ));
    }

    #[test]
    fn aggregate_typing() {
        let c = cat();
        let a = Query::base("R").aggregate([0], [AggExpr::Count, AggExpr::Sum(1)]);
        assert_eq!(arity_of(&a, &c), Ok(3));
        let bad = Query::base("R").aggregate([0], [AggExpr::Sum(9)]);
        assert!(matches!(
            arity_of(&bad, &c),
            Err(TypeError::ColumnOutOfRange { col: 9, .. })
        ));
        let bad_group = Query::base("R").aggregate([5], [AggExpr::Count]);
        assert!(matches!(
            arity_of(&bad_group, &c),
            Err(TypeError::ColumnOutOfRange { col: 5, .. })
        ));
    }

    #[test]
    fn cond_update_checked() {
        let c = cat();
        let ok = Update::cond(
            Query::base("T"),
            Update::insert("R", Query::base("S")),
            Update::delete("R", Query::base("R")),
        );
        assert!(check_update(&ok, &c).is_ok());
        let bad = Update::cond(
            Query::base("T"),
            Update::insert("R", Query::base("T")),
            Update::delete("R", Query::base("R")),
        );
        assert!(check_update(&bad, &c).is_err());
    }

    #[test]
    fn compose_checked() {
        let c = cat();
        let e = StateExpr::update(Update::insert("R", Query::base("S"))).compose(StateExpr::subst(
            ExplicitSubst::single("T", Query::empty(1)),
        ));
        assert!(check_state_expr(&e, &c).is_ok());
    }

    #[test]
    fn error_display() {
        let e = TypeError::OperandArityMismatch {
            op: "union",
            left: 1,
            right: 2,
        };
        assert_eq!(e.to_string(), "union: operand arities differ (1 vs 2)");
    }
}
