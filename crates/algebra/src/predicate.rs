//! Selection and join predicates.
//!
//! The paper "omits discussion of the particular syntax for specifying
//! selection and projection conditions" (§3.1); we fix a concrete predicate
//! language: boolean combinations of comparisons between column references
//! (by position, as in the formal language) and constants. This is rich
//! enough for every example in the paper (e.g. `σ_{A>30}`, `σ_{A<60}`,
//! join conditions) and simple enough that the optimizer in `hypoquery-opt`
//! can decide implication between comparisons.

use std::fmt;

use hypoquery_storage::{Tuple, Value};

/// A scalar term inside a predicate: a column of the input tuple or a
/// constant.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ScalarExpr {
    /// Column reference by position (0-based).
    Col(usize),
    /// Constant value.
    Const(Value),
}

impl ScalarExpr {
    /// Evaluate against a tuple. Out-of-range columns return `None`
    /// (arity checking in `typing` prevents this for well-typed queries).
    pub fn eval<'a>(&'a self, t: &'a Tuple) -> Option<&'a Value> {
        match self {
            ScalarExpr::Col(i) => t.get(*i),
            ScalarExpr::Const(v) => Some(v),
        }
    }

    /// Shift column references right by `offset` (used when moving a
    /// predicate over the right operand of a product/join).
    pub fn shift(&self, offset: usize) -> ScalarExpr {
        match self {
            ScalarExpr::Col(i) => ScalarExpr::Col(i + offset),
            c @ ScalarExpr::Const(_) => c.clone(),
        }
    }

    /// The highest column index referenced, if any.
    pub fn max_col(&self) -> Option<usize> {
        match self {
            ScalarExpr::Col(i) => Some(*i),
            ScalarExpr::Const(_) => None,
        }
    }
}

/// Comparison operators.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The operator equivalent to `NOT (a op b)`.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// The operator equivalent to `b op a` (swap sides).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            op => op,
        }
    }

    /// Apply the comparison to two values using the total order on
    /// [`Value`].
    pub fn apply(self, a: &Value, b: &Value) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// A boolean predicate over one tuple.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Predicate {
    /// Always true.
    True,
    /// Always false.
    False,
    /// Comparison between two scalar terms.
    Cmp(ScalarExpr, CmpOp, ScalarExpr),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `col <op> const` — the common shape in the paper's examples
    /// (e.g. `A > 30`).
    pub fn col_cmp(col: usize, op: CmpOp, v: impl Into<Value>) -> Predicate {
        Predicate::Cmp(ScalarExpr::Col(col), op, ScalarExpr::Const(v.into()))
    }

    /// `colA <op> colB` — the common join-condition shape.
    pub fn col_col(a: usize, op: CmpOp, b: usize) -> Predicate {
        Predicate::Cmp(ScalarExpr::Col(a), op, ScalarExpr::Col(b))
    }

    /// Conjunction builder.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction builder.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation builder.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Evaluate against a tuple. Comparisons involving out-of-range columns
    /// evaluate to `false`.
    pub fn eval(&self, t: &Tuple) -> bool {
        match self {
            Predicate::True => true,
            Predicate::False => false,
            Predicate::Cmp(a, op, b) => match (a.eval(t), b.eval(t)) {
                (Some(a), Some(b)) => op.apply(a, b),
                _ => false,
            },
            Predicate::And(a, b) => a.eval(t) && b.eval(t),
            Predicate::Or(a, b) => a.eval(t) || b.eval(t),
            Predicate::Not(a) => !a.eval(t),
        }
    }

    /// Shift every column reference right by `offset`.
    pub fn shift(&self, offset: usize) -> Predicate {
        match self {
            Predicate::True => Predicate::True,
            Predicate::False => Predicate::False,
            Predicate::Cmp(a, op, b) => Predicate::Cmp(a.shift(offset), *op, b.shift(offset)),
            Predicate::And(a, b) => a.shift(offset).and(b.shift(offset)),
            Predicate::Or(a, b) => a.shift(offset).or(b.shift(offset)),
            Predicate::Not(a) => a.shift(offset).not(),
        }
    }

    /// Shift every column reference left by `offset`.
    ///
    /// Panics (in debug) if any referenced column is `< offset`; callers
    /// check [`Predicate::min_col`] first. Used when pushing a
    /// right-operand-only join conjunct down into the right operand.
    pub fn unshift(&self, offset: usize) -> Predicate {
        match self {
            Predicate::True => Predicate::True,
            Predicate::False => Predicate::False,
            Predicate::Cmp(a, op, b) => {
                let un = |s: &ScalarExpr| match s {
                    ScalarExpr::Col(i) => {
                        debug_assert!(*i >= offset, "unshift below zero");
                        ScalarExpr::Col(i - offset)
                    }
                    c @ ScalarExpr::Const(_) => c.clone(),
                };
                Predicate::Cmp(un(a), *op, un(b))
            }
            Predicate::And(a, b) => a.unshift(offset).and(b.unshift(offset)),
            Predicate::Or(a, b) => a.unshift(offset).or(b.unshift(offset)),
            Predicate::Not(a) => a.unshift(offset).not(),
        }
    }

    /// The lowest column index referenced, if any.
    pub fn min_col(&self) -> Option<usize> {
        match self {
            Predicate::True | Predicate::False => None,
            Predicate::Cmp(a, _, b) => match (a.max_col(), b.max_col()) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, y) => x.or(y),
            },
            Predicate::And(a, b) | Predicate::Or(a, b) => match (a.min_col(), b.min_col()) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, y) => x.or(y),
            },
            Predicate::Not(a) => a.min_col(),
        }
    }

    /// The highest column index referenced, if any. Used for arity checking.
    pub fn max_col(&self) -> Option<usize> {
        match self {
            Predicate::True | Predicate::False => None,
            Predicate::Cmp(a, _, b) => a.max_col().max(b.max_col()),
            Predicate::And(a, b) | Predicate::Or(a, b) => a.max_col().max(b.max_col()),
            Predicate::Not(a) => a.max_col(),
        }
    }

    /// Whether every column reference is `< arity`.
    pub fn in_arity(&self, arity: usize) -> bool {
        self.max_col().is_none_or(|m| m < arity)
    }

    /// Logical negation pushed through the structure (negation normal form
    /// step): comparisons flip their operator, `And`/`Or` dualize.
    pub fn negated(&self) -> Predicate {
        match self {
            Predicate::True => Predicate::False,
            Predicate::False => Predicate::True,
            Predicate::Cmp(a, op, b) => Predicate::Cmp(a.clone(), op.negate(), b.clone()),
            Predicate::And(a, b) => a.negated().or(b.negated()),
            Predicate::Or(a, b) => a.negated().and(b.negated()),
            Predicate::Not(a) => (**a).clone(),
        }
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Col(i) => write!(f, "#{i}"),
            ScalarExpr::Const(v) => write!(f, "{v}"),
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "true"),
            Predicate::False => write!(f, "false"),
            Predicate::Cmp(a, op, b) => write!(f, "{a} {op} {b}"),
            Predicate::And(a, b) => write!(f, "({a} and {b})"),
            Predicate::Or(a, b) => write!(f, "({a} or {b})"),
            Predicate::Not(a) => write!(f, "not ({a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypoquery_storage::tuple;

    #[test]
    fn comparisons_evaluate() {
        let t = tuple![10, 20];
        assert!(Predicate::col_cmp(0, CmpOp::Eq, 10).eval(&t));
        assert!(Predicate::col_cmp(1, CmpOp::Gt, 15).eval(&t));
        assert!(!Predicate::col_cmp(1, CmpOp::Lt, 15).eval(&t));
        assert!(Predicate::col_col(0, CmpOp::Lt, 1).eval(&t));
    }

    #[test]
    fn boolean_connectives() {
        let t = tuple![1];
        let p = Predicate::col_cmp(0, CmpOp::Ge, 0).and(Predicate::col_cmp(0, CmpOp::Le, 2));
        assert!(p.eval(&t));
        assert!(!p.clone().not().eval(&t));
        assert!(Predicate::False.or(p).eval(&t));
    }

    #[test]
    fn out_of_range_column_is_false() {
        let t = tuple![1];
        assert!(!Predicate::col_cmp(5, CmpOp::Eq, 1).eval(&t));
        // ... and its negation via Not is true (three-valued logic is NOT
        // modeled; well-typed queries never hit this).
        assert!(Predicate::col_cmp(5, CmpOp::Eq, 1).not().eval(&t));
    }

    #[test]
    fn shift_moves_columns() {
        let p = Predicate::col_col(0, CmpOp::Eq, 1).shift(2);
        assert_eq!(p, Predicate::col_col(2, CmpOp::Eq, 3));
        let t = tuple![9, 9, 5, 5];
        assert!(p.eval(&t));
    }

    #[test]
    fn negate_op_table() {
        assert_eq!(CmpOp::Lt.negate(), CmpOp::Ge);
        assert_eq!(CmpOp::Ge.negate(), CmpOp::Lt);
        assert_eq!(CmpOp::Eq.negate(), CmpOp::Ne);
        assert_eq!(CmpOp::Le.flip(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
    }

    #[test]
    fn negated_is_complement() {
        let t1 = tuple![10];
        let t2 = tuple![70];
        let p = Predicate::col_cmp(0, CmpOp::Lt, 60);
        for t in [&t1, &t2] {
            assert_eq!(p.negated().eval(t), !p.eval(t));
        }
        let q = p.clone().and(Predicate::col_cmp(0, CmpOp::Gt, 0));
        for t in [&t1, &t2] {
            assert_eq!(q.negated().eval(t), !q.eval(t));
        }
    }

    #[test]
    fn unshift_and_min_col() {
        let p = Predicate::col_col(2, CmpOp::Eq, 3).and(Predicate::col_cmp(4, CmpOp::Gt, 1));
        assert_eq!(p.min_col(), Some(2));
        let un = p.unshift(2);
        assert_eq!(
            un,
            Predicate::col_col(0, CmpOp::Eq, 1).and(Predicate::col_cmp(2, CmpOp::Gt, 1))
        );
        // unshift inverts shift.
        assert_eq!(un.shift(2), p);
        // Constants and nullary predicates have no min_col.
        assert_eq!(Predicate::True.min_col(), None);
        assert_eq!(
            Predicate::Cmp(
                ScalarExpr::Const(Value::int(1)),
                CmpOp::Lt,
                ScalarExpr::Const(Value::int(2))
            )
            .min_col(),
            None
        );
    }

    #[test]
    fn max_col_and_arity() {
        let p = Predicate::col_col(1, CmpOp::Eq, 3).and(Predicate::True);
        assert_eq!(p.max_col(), Some(3));
        assert!(p.in_arity(4));
        assert!(!p.in_arity(3));
        assert!(Predicate::True.in_arity(0));
    }

    #[test]
    fn display_forms() {
        let p = Predicate::col_cmp(0, CmpOp::Ge, 60);
        assert_eq!(p.to_string(), "#0 >= 60");
        assert_eq!(
            p.clone().and(Predicate::True).to_string(),
            "(#0 >= 60 and true)"
        );
    }
}
