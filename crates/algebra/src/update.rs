//! The update language `U` (§3.1).
//!
//! ```text
//! U ::= ins(R, Q)   insert the value of Q into R
//!     | del(R, Q)   delete the value of Q from R
//!     | (U ; U)     sequence
//! ```
//!
//! Plus the §6 extension [`Update::Cond`]: a conditional update guarded by
//! the non-emptiness of a query. The paper notes such constructs "don't
//! extend the expressive power of the update language, but … dramatically
//! increase the conciseness"; `hypoquery-core::slice` compiles conditionals
//! away into pure substitutions using 0-ary guard relations, preserving
//! Theorem 3.10.

use std::fmt;

use hypoquery_storage::RelName;

use crate::query::Query;

/// An update expression.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Update {
    /// `ins(R, Q)`: `R ← R ∪ Q`.
    Insert(RelName, Query),
    /// `del(R, Q)`: `R ← R − Q`.
    Delete(RelName, Query),
    /// `(U₁ ; U₂)`: run `U₁`, then `U₂`.
    Seq(Box<Update>, Box<Update>),
    /// §6 extension: if `guard` is non-empty run `then_u`, else `else_u`.
    Cond {
        /// Guard query; tested for non-emptiness.
        guard: Query,
        /// Branch taken when the guard is non-empty.
        then_u: Box<Update>,
        /// Branch taken when the guard is empty.
        else_u: Box<Update>,
    },
}

impl Update {
    /// `ins(R, Q)`.
    pub fn insert(rel: impl Into<RelName>, q: Query) -> Update {
        Update::Insert(rel.into(), q)
    }

    /// `del(R, Q)`.
    pub fn delete(rel: impl Into<RelName>, q: Query) -> Update {
        Update::Delete(rel.into(), q)
    }

    /// `(self ; next)`.
    pub fn then(self, next: Update) -> Update {
        Update::Seq(Box::new(self), Box::new(next))
    }

    /// Fold a non-empty list of updates into a left-nested sequence.
    ///
    /// Panics on an empty list — the grammar has no empty update.
    pub fn seq(updates: impl IntoIterator<Item = Update>) -> Update {
        let mut it = updates.into_iter();
        let first = it.next().expect("Update::seq requires at least one update");
        it.fold(first, Update::then)
    }

    /// Conditional update (§6 extension).
    pub fn cond(guard: Query, then_u: Update, else_u: Update) -> Update {
        Update::Cond {
            guard,
            then_u: Box::new(then_u),
            else_u: Box::new(else_u),
        }
    }

    /// Whether this update is a single atomic insert or delete — the shape
    /// required inside mod-ENF hypothetical updates (§5.5).
    pub fn is_atomic(&self) -> bool {
        matches!(self, Update::Insert(_, _) | Update::Delete(_, _))
    }

    /// Flatten a sequence tree into the list of its leaf updates, in
    /// execution order.
    pub fn flatten(&self) -> Vec<&Update> {
        match self {
            Update::Seq(a, b) => {
                let mut v = a.flatten();
                v.extend(b.flatten());
                v
            }
            u => vec![u],
        }
    }

    /// Whether every leaf of this update is atomic (i.e. the update is a
    /// sequence `A₁; …; Aₙ` of atomic inserts/deletes — mod-ENF shape).
    pub fn is_atomic_sequence(&self) -> bool {
        self.flatten().iter().all(|u| u.is_atomic())
    }

    /// Node count, for blow-up measurements.
    pub fn node_count(&self) -> usize {
        match self {
            Update::Insert(_, q) | Update::Delete(_, q) => 1 + q.node_count(),
            Update::Seq(a, b) => 1 + a.node_count() + b.node_count(),
            Update::Cond {
                guard,
                then_u,
                else_u,
            } => 1 + guard.node_count() + then_u.node_count() + else_u.node_count(),
        }
    }
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Update::Insert(r, q) => write!(f, "ins({r}, {q})"),
            Update::Delete(r, q) => write!(f, "del({r}, {q})"),
            Update::Seq(a, b) => write!(f, "({a}; {b})"),
            Update::Cond {
                guard,
                then_u,
                else_u,
            } => {
                write!(f, "if {guard} then {then_u} else {else_u}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CmpOp, Predicate};

    #[test]
    fn builders_and_display() {
        let u = Update::insert(
            "R",
            Query::base("S").select(Predicate::col_cmp(0, CmpOp::Gt, 30)),
        )
        .then(Update::delete("S", Query::base("S")));
        assert_eq!(u.to_string(), "(ins(R, σ[#0 > 30](S)); del(S, S))");
    }

    #[test]
    fn seq_folds_left() {
        let u = Update::seq([
            Update::insert("A", Query::base("X")),
            Update::insert("B", Query::base("X")),
            Update::insert("C", Query::base("X")),
        ]);
        match &u {
            Update::Seq(ab, c) => {
                assert!(matches!(**ab, Update::Seq(_, _)));
                assert!(matches!(**c, Update::Insert(_, _)));
            }
            _ => panic!("expected sequence"),
        }
        assert_eq!(u.flatten().len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one update")]
    fn empty_seq_panics() {
        Update::seq([]);
    }

    #[test]
    fn atomicity_checks() {
        let a = Update::insert("R", Query::base("S"));
        assert!(a.is_atomic());
        assert!(a.is_atomic_sequence());
        let s = a.clone().then(Update::delete("R", Query::base("S")));
        assert!(!s.is_atomic());
        assert!(s.is_atomic_sequence());
        let c = Update::cond(Query::base("G"), a.clone(), a.clone());
        assert!(!c.is_atomic());
        assert!(!c.is_atomic_sequence());
        let with_cond = a.then(c);
        assert!(!with_cond.is_atomic_sequence());
    }

    #[test]
    fn node_count() {
        let u = Update::insert("R", Query::base("S"));
        assert_eq!(u.node_count(), 2);
        let c = Update::cond(Query::base("G"), u.clone(), u.clone());
        assert_eq!(c.node_count(), 6);
    }
}
