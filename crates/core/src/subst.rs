//! The substitution calculus of §3.2–§3.4.
//!
//! * [`sub_query`] — `sub(Q, ρ)`: apply a substitution to a pure relational
//!   algebra query (the paper defines `sub` on Σ(RA); scope-crossing
//!   rewrites on full HQL go through the EQUIV_when rules instead).
//! * [`compose_pure`] — `ρ₁ # ρ₂` for substitutions with pure bindings
//!   (Lemma 3.2's defining equation).
//! * [`compose_suspended`] — the *compute-composition* rule of Figure 1:
//!   composition at the syntactic level, valid for arbitrary HQL bindings,
//!   where `sub(P, ε₁)` is represented as the suspended `P when ε₁`.
//! * [`slice`] — `slice(U)`: the substitution with the same effect as
//!   update `U` (§3.4), including the §6 conditional-update extension.

use std::fmt;

use hypoquery_storage::Tuple;

use hypoquery_algebra::{ExplicitSubst, Query, StateExpr, Update};

/// Errors from the substitution calculus.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SubstError {
    /// `sub` was applied to a query containing `when`. The paper's `sub` is
    /// defined on pure RA only; reduce with `red` first, or rewrite with
    /// the EQUIV_when rules.
    ImpureQuery(String),
}

impl fmt::Display for SubstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubstError::ImpureQuery(q) => {
                write!(f, "sub(Q, ρ) requires a pure RA query, got: {q}")
            }
        }
    }
}

impl std::error::Error for SubstError {}

/// `sub(Q, ρ)`: replace every occurrence of a name `S ∈ dom(ρ)` in the pure
/// RA query `Q` by `ρ(S)` (§3.2).
///
/// The bindings of `ρ` may be arbitrary HQL queries (they are spliced in
/// verbatim), but `Q` itself must be pure — an `Err` is returned otherwise.
pub fn sub_query(q: &Query, rho: &ExplicitSubst) -> Result<Query, SubstError> {
    match q {
        Query::Base(name) => Ok(match rho.get(name) {
            Some(bound) => bound.clone(),
            None => q.clone(),
        }),
        Query::Singleton(_) | Query::Empty { .. } => Ok(q.clone()),
        Query::Select(inner, p) => Ok(sub_query(inner, rho)?.select(p.clone())),
        Query::Project(inner, cols) => Ok(sub_query(inner, rho)?.project(cols.clone())),
        Query::Union(a, b) => Ok(sub_query(a, rho)?.union(sub_query(b, rho)?)),
        Query::Intersect(a, b) => Ok(sub_query(a, rho)?.intersect(sub_query(b, rho)?)),
        Query::Product(a, b) => Ok(sub_query(a, rho)?.product(sub_query(b, rho)?)),
        Query::Join(a, b, p) => Ok(sub_query(a, rho)?.join(sub_query(b, rho)?, p.clone())),
        Query::Diff(a, b) => Ok(sub_query(a, rho)?.diff(sub_query(b, rho)?)),
        Query::When(_, _) => Err(SubstError::ImpureQuery(q.to_string())),
        Query::Aggregate {
            input,
            group_by,
            aggs,
        } => Ok(sub_query(input, rho)?.aggregate(group_by.clone(), aggs.clone())),
    }
}

/// `ρ₁ # ρ₂` on abstract substitutions (Lemma 3.2):
///
/// ```text
/// dom(ρ₁#ρ₂) = dom(ρ₁) ∪ dom(ρ₂)
/// (ρ₁#ρ₂)(S) = sub(ρ₂(S), ρ₁)   if S ∈ dom(ρ₂)
///            = ρ₁(S)            otherwise
/// ```
///
/// Requires `ρ₂`'s bindings to be pure (they flow through `sub`).
/// Viewed as updates, `ρ₁#ρ₂` means "`ρ₁` first, then `ρ₂`" (Lemma 3.6).
pub fn compose_pure(
    rho1: &ExplicitSubst,
    rho2: &ExplicitSubst,
) -> Result<ExplicitSubst, SubstError> {
    let mut out = ExplicitSubst::empty();
    for (name, q) in rho1.iter() {
        if rho2.get(name).is_none() {
            out.bind(name.clone(), q.clone());
        }
    }
    for (name, q) in rho2.iter() {
        out.bind(name.clone(), sub_query(q, rho1)?);
    }
    Ok(out)
}

/// The *compute-composition* rule of Figure 1: `ε₁ # ε₂` computed
/// syntactically, with `sub(P, ε₁)` left suspended as `P when ε₁`.
///
/// Valid for arbitrary HQL bindings; the price is that the resulting
/// bindings contain `when` (ENF permits this — `when` may occur inside the
/// bound queries of an explicit substitution).
pub fn compose_suspended(eps1: &ExplicitSubst, eps2: &ExplicitSubst) -> ExplicitSubst {
    let mut out = ExplicitSubst::empty();
    for (name, q) in eps1.iter() {
        if eps2.get(name).is_none() {
            out.bind(name.clone(), q.clone());
        }
    }
    for (name, q) in eps2.iter() {
        if eps1.is_empty() {
            out.bind(name.clone(), q.clone());
        } else {
            out.bind(name.clone(), q.clone().when(StateExpr::subst(eps1.clone())));
        }
    }
    out
}

/// `slice(U)`: the substitution with the same effect as `U` (§3.4):
///
/// ```text
/// slice(ins(R, Q)) = {(R ∪ Q)/R}
/// slice(del(R, Q)) = {(R − Q)/R}
/// slice(U₁; U₂)    = slice(U₁) # slice(U₂)
/// ```
///
/// The queries inside `U` must be pure (reduce with `red` first when they
/// are not); the result is then a pure substitution, and Lemma 3.9 /
/// Theorem 3.10 hold: `[[Q when {U}]] = [[sub(Q, slice(U))]]`.
///
/// §6 extension — conditionals: `slice(if G then U₁ else U₂)` binds, for
/// each `R ∈ dom(U₁) ∪ dom(U₂)`,
///
/// ```text
/// R ↦ (slice(U₁)(R) × g) ∪ (slice(U₂)(R) × ({()} − g))    g = π∅(G)
/// ```
///
/// where `g` is the 0-ary projection of the guard: `{()}` when `G` is
/// non-empty and `∅` otherwise. A product with a 0-ary relation is identity
/// or annihilation, so the binding selects the right branch's slice — the
/// conditional never escapes the substitution framework.
pub fn slice(u: &Update) -> Result<ExplicitSubst, SubstError> {
    match u {
        Update::Insert(r, q) => Ok(ExplicitSubst::single(
            r.clone(),
            Query::base(r.clone()).union(q.clone()),
        )),
        Update::Delete(r, q) => Ok(ExplicitSubst::single(
            r.clone(),
            Query::base(r.clone()).diff(q.clone()),
        )),
        Update::Seq(u1, u2) => compose_pure(&slice(u1)?, &slice(u2)?),
        Update::Cond {
            guard,
            then_u,
            else_u,
        } => {
            let s_then = slice(then_u)?;
            let s_else = slice(else_u)?;
            if !guard.is_pure() {
                return Err(SubstError::ImpureQuery(guard.to_string()));
            }
            // g = π∅(guard): the 0-ary guard relation.
            let g = guard.clone().project(Vec::<usize>::new());
            let not_g = Query::singleton(Tuple::empty()).diff(g.clone());
            let mut out = ExplicitSubst::empty();
            let mut names: Vec<_> = s_then.names().cloned().collect();
            names.extend(s_else.names().cloned());
            names.sort();
            names.dedup();
            for name in names {
                let q_then = s_then
                    .get(&name)
                    .cloned()
                    .unwrap_or_else(|| Query::base(name.clone()));
                let q_else = s_else
                    .get(&name)
                    .cloned()
                    .unwrap_or_else(|| Query::base(name.clone()));
                out.bind(
                    name,
                    q_then
                        .product(g.clone())
                        .union(q_else.product(not_g.clone())),
                );
            }
            Ok(out)
        }
    }
}

/// Total variant of [`slice`] for updates whose queries may contain `when`:
/// sequences compose with [`compose_suspended`] instead of [`compose_pure`],
/// so no purity requirement arises. The resulting bindings may contain
/// `when` (with explicit substitutions), which ENF permits.
pub fn slice_hql(u: &Update) -> ExplicitSubst {
    match u {
        Update::Insert(r, q) => {
            ExplicitSubst::single(r.clone(), Query::base(r.clone()).union(q.clone()))
        }
        Update::Delete(r, q) => {
            ExplicitSubst::single(r.clone(), Query::base(r.clone()).diff(q.clone()))
        }
        Update::Seq(u1, u2) => compose_suspended(&slice_hql(u1), &slice_hql(u2)),
        Update::Cond {
            guard,
            then_u,
            else_u,
        } => {
            let s_then = slice_hql(then_u);
            let s_else = slice_hql(else_u);
            let g = guard.clone().project(Vec::<usize>::new());
            let not_g = Query::singleton(Tuple::empty()).diff(g.clone());
            let mut out = ExplicitSubst::empty();
            let mut names: Vec<_> = s_then.names().cloned().collect();
            names.extend(s_else.names().cloned());
            names.sort();
            names.dedup();
            for name in names {
                let q_then = s_then
                    .get(&name)
                    .cloned()
                    .unwrap_or_else(|| Query::base(name.clone()));
                let q_else = s_else
                    .get(&name)
                    .cloned()
                    .unwrap_or_else(|| Query::base(name.clone()));
                out.bind(
                    name,
                    q_then
                        .product(g.clone())
                        .union(q_else.product(not_g.clone())),
                );
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypoquery_algebra::{CmpOp, Predicate};

    fn sigma_p(q: Query) -> Query {
        q.select(Predicate::col_cmp(0, CmpOp::Gt, 0))
    }

    /// Example 3.1: ρ = {(S − R)/R, σp(R)/S}, Q = π₂(R × S) ∪ V.
    /// sub(Q, ρ) = (π₂((S − R) × σp(R))) ∪ V.
    #[test]
    fn example_3_1() {
        let rho = ExplicitSubst::new([
            ("R".into(), Query::base("S").diff(Query::base("R"))),
            ("S".into(), sigma_p(Query::base("R"))),
        ]);
        let q = Query::base("R")
            .product(Query::base("S"))
            .project([2])
            .union(Query::base("V"));
        let expected = Query::base("S")
            .diff(Query::base("R"))
            .product(sigma_p(Query::base("R")))
            .project([2])
            .union(Query::base("V"));
        assert_eq!(sub_query(&q, &rho).unwrap(), expected);
    }

    /// Example 3.3: ρ₁ = {(S−R)/R, σq(R)/S}, ρ₂ = {π(R ⋈ T)/S, σp(S)/V}.
    /// ρ₁#ρ₂ = {(S−R)/R, π((S−R) ⋈ T)/S, σp(σq(R))/V}.
    #[test]
    fn example_3_3() {
        let sigma_q = |q: Query| q.select(Predicate::col_cmp(0, CmpOp::Lt, 9));
        let rho1 = ExplicitSubst::new([
            ("R".into(), Query::base("S").diff(Query::base("R"))),
            ("S".into(), sigma_q(Query::base("R"))),
        ]);
        let join = |a: Query, b: Query| a.join(b, Predicate::col_col(0, CmpOp::Eq, 1));
        let rho2 = ExplicitSubst::new([
            (
                "S".into(),
                join(Query::base("R"), Query::base("T")).project([0]),
            ),
            ("V".into(), sigma_p(Query::base("S"))),
        ]);
        let composed = compose_pure(&rho1, &rho2).unwrap();
        assert_eq!(
            composed.get(&"R".into()),
            Some(&Query::base("S").diff(Query::base("R")))
        );
        assert_eq!(
            composed.get(&"S".into()),
            Some(&join(Query::base("S").diff(Query::base("R")), Query::base("T")).project([0]))
        );
        assert_eq!(
            composed.get(&"V".into()),
            Some(&sigma_p(sigma_q(Query::base("R"))))
        );
    }

    /// Lemma 3.2 (syntactic half): sub(Q, ρ₁#ρ₂) = sub(sub(Q, ρ₂), ρ₁).
    #[test]
    fn lemma_3_2_sub_through_composition() {
        let rho1 = ExplicitSubst::new([
            ("R".into(), Query::base("S").diff(Query::base("R"))),
            ("S".into(), sigma_p(Query::base("R"))),
        ]);
        let rho2 = ExplicitSubst::new([
            ("S".into(), Query::base("R").union(Query::base("T"))),
            ("V".into(), Query::base("S")),
        ]);
        let q = Query::base("R")
            .union(Query::base("S"))
            .union(Query::base("V"));
        let lhs = sub_query(&q, &compose_pure(&rho1, &rho2).unwrap()).unwrap();
        let rhs = sub_query(&sub_query(&q, &rho2).unwrap(), &rho1).unwrap();
        assert_eq!(lhs, rhs);
    }

    /// Lemma 3.2: associativity of #.
    #[test]
    fn lemma_3_2_associativity() {
        let r1 = ExplicitSubst::single("R", Query::base("S"));
        let r2 = ExplicitSubst::single("S", Query::base("R").union(Query::base("T")));
        let r3 = ExplicitSubst::new([
            ("T".into(), Query::base("R")),
            ("R".into(), sigma_p(Query::base("R"))),
        ]);
        let left = compose_pure(&compose_pure(&r1, &r2).unwrap(), &r3).unwrap();
        let right = compose_pure(&r1, &compose_pure(&r2, &r3).unwrap()).unwrap();
        assert_eq!(left, right);
    }

    /// Example 3.8: U = (ins(R, Q₁); del(S, σp(R))).
    /// slice(U) = {(R ∪ Q₁)/R, (S − σp(R ∪ Q₁))/S}.
    #[test]
    fn example_3_8() {
        let q1 = Query::base("Q1");
        let u =
            Update::insert("R", q1.clone()).then(Update::delete("S", sigma_p(Query::base("R"))));
        let s = slice(&u).unwrap();
        assert_eq!(
            s.get(&"R".into()),
            Some(&Query::base("R").union(q1.clone()))
        );
        assert_eq!(
            s.get(&"S".into()),
            Some(&Query::base("S").diff(sigma_p(Query::base("R").union(q1))))
        );
    }

    #[test]
    fn sub_rejects_impure_query() {
        let q = Query::base("R").when(StateExpr::update(Update::insert("R", Query::base("S"))));
        let err = sub_query(&q, &ExplicitSubst::empty()).unwrap_err();
        assert!(matches!(err, SubstError::ImpureQuery(_)));
        assert!(err.to_string().contains("requires a pure RA query"));
    }

    #[test]
    fn compose_suspended_wraps_with_when() {
        let e1 = ExplicitSubst::single("R", Query::base("S"));
        let e2 = ExplicitSubst::new([
            ("S".into(), Query::base("R")),
            ("T".into(), Query::base("T")),
        ]);
        let c = compose_suspended(&e1, &e2);
        // R ∈ dom(ε1) − dom(ε2): copied from ε1.
        assert_eq!(c.get(&"R".into()), Some(&Query::base("S")));
        // S, T ∈ dom(ε2): suspended under when ε1.
        assert_eq!(
            c.get(&"S".into()),
            Some(&Query::base("R").when(StateExpr::subst(e1.clone())))
        );
        assert_eq!(
            c.get(&"T".into()),
            Some(&Query::base("T").when(StateExpr::subst(e1.clone())))
        );
        // Composing with an empty ε1 is the identity on ε2.
        assert_eq!(compose_suspended(&ExplicitSubst::empty(), &e2), e2);
    }

    #[test]
    fn slice_of_cond_builds_guarded_bindings() {
        let u = Update::cond(
            Query::base("G"),
            Update::insert("R", Query::base("S")),
            Update::delete("R", Query::base("S")),
        );
        let s = slice(&u).unwrap();
        let binding = s.get(&"R".into()).unwrap();
        // Shape: ((R ∪ S) × π∅(G)) ∪ ((R − S) × ({()} − π∅(G)))
        let g = Query::base("G").project(Vec::<usize>::new());
        let not_g = Query::singleton(Tuple::empty()).diff(g.clone());
        let expected = Query::base("R")
            .union(Query::base("S"))
            .product(g)
            .union(Query::base("R").diff(Query::base("S")).product(not_g));
        assert_eq!(binding, &expected);
    }

    #[test]
    fn slice_of_cond_with_impure_guard_errors() {
        let impure =
            Query::base("G").when(StateExpr::update(Update::insert("G", Query::base("S"))));
        let u = Update::cond(
            impure,
            Update::insert("R", Query::base("S")),
            Update::delete("R", Query::base("S")),
        );
        assert!(slice(&u).is_err());
    }
}
