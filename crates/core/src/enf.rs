//! Collapsed ENF syntax trees (§5.2, §5.4) and modified ENF (§5.5).
//!
//! * [`collapse`] — the `collapse` operator of §5.4: maximal pure-RA regions
//!   of an ENF syntax tree are folded into a single node labeled by an RA
//!   query over placeholder names, so that `filter2`/Algorithm HQL-2 can
//!   hand each region to a clustered, conventional evaluator instead of
//!   interpreting one algebra node at a time.
//! * [`to_mod_enf`] / [`is_mod_enf`] — modified ENF: every hypothetical
//!   update has the form `{A₁; …; Aₙ}` with each `Aᵢ` an atomic insert or
//!   delete, the shape Algorithm HQL-3's delta construction consumes.

use std::fmt;

use hypoquery_storage::RelName;

use hypoquery_algebra::{Query, StateExpr, Update};

use crate::equiv::is_enf_query;

/// Errors from normal-form operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EnfError {
    /// The input query is not in ENF (contains `#` or `{U}`).
    NotEnf(String),
    /// The query cannot be put in modified ENF (e.g. it contains an
    /// explicit substitution or a conditional update, which have no atomic
    /// insert/delete sequence form in general).
    NotModEnf(String),
}

impl fmt::Display for EnfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnfError::NotEnf(s) => write!(f, "query is not in ENF: {s}"),
            EnfError::NotModEnf(s) => write!(f, "query has no modified-ENF form: {s}"),
        }
    }
}

impl std::error::Error for EnfError {}

/// Prefix used for the fresh placeholder names `S₁, …, Sₘ` that stand for
/// `when`-subtrees inside a collapsed RA region. The surface parser rejects
/// `$`, so placeholders can never collide with user relation names.
pub const PLACEHOLDER_PREFIX: &str = "$";

/// Make the `i`-th placeholder name.
pub fn placeholder(i: usize) -> RelName {
    RelName::new(format!("{PLACEHOLDER_PREFIX}{i}"))
}

/// A collapsed ENF syntax tree (§5.4).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CollapsedTree {
    /// A node labeled by a relation name.
    Leaf(RelName),
    /// A `when` node: `child when {bindings}`.
    When {
        /// The query under the `when`.
        child: Box<CollapsedTree>,
        /// The explicit substitution, with collapsed bound queries.
        bindings: Vec<(RelName, CollapsedTree)>,
    },
    /// A collapsed pure-RA region `Q[S₁, …, Sₘ, R₁, …, Rₖ]`.
    Ra {
        /// The region's RA query; references placeholder names
        /// (`$0`, `$1`, …) where `when`-subtrees sat, and real base names
        /// elsewhere.
        template: Query,
        /// The collapsed `when`-subtrees, in placeholder order: child `i`
        /// provides the value of `$i`.
        when_children: Vec<CollapsedTree>,
        /// The distinct real base names `R₁, …, Rₖ` referenced by the
        /// template.
        leaf_names: Vec<RelName>,
    },
}

impl CollapsedTree {
    /// Total number of nodes (for tests and plan display).
    pub fn node_count(&self) -> usize {
        match self {
            CollapsedTree::Leaf(_) => 1,
            CollapsedTree::When { child, bindings } => {
                1 + child.node_count() + bindings.iter().map(|(_, t)| t.node_count()).sum::<usize>()
            }
            CollapsedTree::Ra { when_children, .. } => {
                1 + when_children
                    .iter()
                    .map(CollapsedTree::node_count)
                    .sum::<usize>()
            }
        }
    }
}

impl fmt::Display for CollapsedTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollapsedTree::Leaf(name) => write!(f, "{name}"),
            CollapsedTree::When { child, bindings } => {
                write!(f, "({child} when {{")?;
                for (i, (name, t)) in bindings.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}/{name}")?;
                }
                write!(f, "}})")
            }
            CollapsedTree::Ra {
                template,
                when_children,
                ..
            } => {
                write!(f, "{template}")?;
                if !when_children.is_empty() {
                    write!(f, " where")?;
                    for (i, c) in when_children.iter().enumerate() {
                        write!(f, " ${i} = [{c}]")?;
                    }
                }
                Ok(())
            }
        }
    }
}

/// The `collapse` operator (§5.4) on an ENF query.
///
/// Returns `Err` if the query is not in ENF — run
/// [`crate::equiv::to_enf_query`] first.
pub fn collapse(q: &Query) -> Result<CollapsedTree, EnfError> {
    if !is_enf_query(q) {
        return Err(EnfError::NotEnf(q.to_string()));
    }
    Ok(collapse_enf(q))
}

fn collapse_enf(q: &Query) -> CollapsedTree {
    match q {
        Query::Base(name) => CollapsedTree::Leaf(name.clone()),
        Query::When(body, eta) => {
            let eps = eta
                .as_subst()
                .expect("ENF guarantees explicit substitutions");
            CollapsedTree::When {
                child: Box::new(collapse_enf(body)),
                bindings: eps
                    .iter()
                    .map(|(name, bq)| (name.clone(), collapse_enf(bq)))
                    .collect(),
            }
        }
        _ => {
            // RA-operator root: gather the maximal pure region below it.
            let mut when_children = Vec::new();
            let mut leaf_names = Vec::new();
            let template = gather_region(q, &mut when_children, &mut leaf_names);
            CollapsedTree::Ra {
                template,
                when_children,
                leaf_names,
            }
        }
    }
}

/// Walk down through RA operators, replacing `when`-subtrees by fresh
/// placeholder names and collecting real leaf names.
fn gather_region(
    q: &Query,
    when_children: &mut Vec<CollapsedTree>,
    leaf_names: &mut Vec<RelName>,
) -> Query {
    match q {
        Query::Base(name) => {
            if !leaf_names.contains(name) {
                leaf_names.push(name.clone());
            }
            q.clone()
        }
        Query::Singleton(_) | Query::Empty { .. } => q.clone(),
        Query::When(_, _) => {
            let ph = placeholder(when_children.len());
            when_children.push(collapse_enf(q));
            Query::Base(ph)
        }
        other => other
            .clone()
            .map_subqueries(|sub| gather_region(&sub, when_children, leaf_names)),
    }
}

// ---------------------------------------------------------------------------
// Modified ENF (§5.5)
// ---------------------------------------------------------------------------

/// Whether every hypothetical-state expression in `q` is `{A₁; …; Aₙ}` with
/// atomic `Aᵢ`, recursively including the updates' queries.
pub fn is_mod_enf(q: &Query) -> bool {
    match q {
        Query::Base(_) | Query::Singleton(_) | Query::Empty { .. } => true,
        Query::Select(inner, _) | Query::Project(inner, _) => is_mod_enf(inner),
        Query::Union(a, b)
        | Query::Intersect(a, b)
        | Query::Product(a, b)
        | Query::Join(a, b, _)
        | Query::Diff(a, b) => is_mod_enf(a) && is_mod_enf(b),
        Query::When(body, eta) => is_mod_enf(body) && state_is_mod_enf(eta),
        Query::Aggregate { input, .. } => is_mod_enf(input),
    }
}

fn state_is_mod_enf(eta: &StateExpr) -> bool {
    match eta {
        StateExpr::Update(u) => {
            u.is_atomic_sequence()
                && u.flatten().iter().all(|a| match a {
                    Update::Insert(_, q) | Update::Delete(_, q) => is_mod_enf(q),
                    _ => false,
                })
        }
        _ => false,
    }
}

/// Normalize a query to modified ENF, if possible.
///
/// Compositions of updates become update sequences
/// (`{U₁} # {U₂} ≡ {U₁; U₂}`); explicit substitutions and conditional
/// updates have no atomic form and yield [`EnfError::NotModEnf`] — the
/// planner falls back to Algorithm HQL-2 for those queries.
pub fn to_mod_enf(q: &Query) -> Result<Query, EnfError> {
    match q.clone() {
        Query::When(body, eta) => {
            let body = to_mod_enf(&body)?;
            let u = state_to_atomic_update(&eta)?;
            Ok(body.when(StateExpr::update(u)))
        }
        other => {
            // Recurse; propagate errors out of map_subqueries via a cell.
            let mut err = None;
            let out = other.map_subqueries(|sub| match to_mod_enf(&sub) {
                Ok(t) => t,
                Err(e) => {
                    err = Some(e);
                    sub
                }
            });
            match err {
                Some(e) => Err(e),
                None => Ok(out),
            }
        }
    }
}

fn state_to_atomic_update(eta: &StateExpr) -> Result<Update, EnfError> {
    match eta {
        StateExpr::Update(u) => update_to_atomic(u),
        StateExpr::Compose(a, b) => {
            // {U₁} # {U₂} ≡ {U₁; U₂}
            Ok(state_to_atomic_update(a)?.then(state_to_atomic_update(b)?))
        }
        StateExpr::Subst(eps) => Err(EnfError::NotModEnf(format!(
            "explicit substitution {eps} has no atomic update form"
        ))),
    }
}

fn update_to_atomic(u: &Update) -> Result<Update, EnfError> {
    match u {
        Update::Insert(r, q) => Ok(Update::Insert(r.clone(), to_mod_enf(q)?)),
        Update::Delete(r, q) => Ok(Update::Delete(r.clone(), to_mod_enf(q)?)),
        Update::Seq(a, b) => Ok(update_to_atomic(a)?.then(update_to_atomic(b)?)),
        Update::Cond { .. } => Err(EnfError::NotModEnf(format!(
            "conditional update {u} has no atomic update form"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::{to_enf_query, RewriteTrace};
    use hypoquery_algebra::{CmpOp, ExplicitSubst, Predicate};

    fn eps1() -> ExplicitSubst {
        ExplicitSubst::single("R", Query::base("R").union(Query::base("S")))
    }

    fn eps2() -> ExplicitSubst {
        ExplicitSubst::single(
            "S",
            Query::base("S").select(Predicate::col_cmp(0, CmpOp::Gt, 1)),
        )
    }

    /// Example 5.2: Q = (Q1 when ε1) ⋈ (R ⋈ σ(Q2 when ε2)).
    /// collapse(T) has root `$0 ⋈ (R ⋈ σ($1))` with three children:
    /// Q1 when ε1, Q2 when ε2, and leaf R.
    #[test]
    fn example_5_2_structure() {
        let q1 = Query::base("Q1");
        let q2 = Query::base("Q2");
        let p = Predicate::True;
        let q = q1.clone().when(StateExpr::subst(eps1())).join(
            Query::base("R").join(
                q2.clone()
                    .when(StateExpr::subst(eps2()))
                    .select(Predicate::col_cmp(0, CmpOp::Gt, 0)),
                p.clone(),
            ),
            p.clone(),
        );
        let t = collapse(&q).unwrap();
        match &t {
            CollapsedTree::Ra {
                template,
                when_children,
                leaf_names,
            } => {
                assert_eq!(when_children.len(), 2);
                assert_eq!(leaf_names, &vec![RelName::new("R")]);
                // Template references $0, $1 and R.
                let expected = Query::base(placeholder(0)).join(
                    Query::base("R").join(
                        Query::base(placeholder(1)).select(Predicate::col_cmp(0, CmpOp::Gt, 0)),
                        p.clone(),
                    ),
                    p.clone(),
                );
                assert_eq!(template, &expected);
                // First child is Q1 when ε1.
                match &when_children[0] {
                    CollapsedTree::When { child, bindings } => {
                        assert_eq!(**child, CollapsedTree::Leaf("Q1".into()));
                        assert_eq!(bindings.len(), 1);
                    }
                    other => panic!("expected when child, got {other}"),
                }
            }
            other => panic!("expected Ra root, got {other}"),
        }
    }

    #[test]
    fn collapse_requires_enf() {
        let q = Query::base("R").when(StateExpr::update(Update::insert("R", Query::base("S"))));
        assert!(matches!(collapse(&q), Err(EnfError::NotEnf(_))));
        let mut trace = RewriteTrace::new();
        let enf = to_enf_query(&q, &mut trace);
        assert!(collapse(&enf).is_ok());
    }

    #[test]
    fn collapse_of_leaf_and_when() {
        assert_eq!(
            collapse(&Query::base("R")).unwrap(),
            CollapsedTree::Leaf("R".into())
        );
        let q = Query::base("R").when(StateExpr::subst(eps1()));
        match collapse(&q).unwrap() {
            CollapsedTree::When { child, bindings } => {
                assert_eq!(*child, CollapsedTree::Leaf("R".into()));
                assert_eq!(bindings.len(), 1);
                // The binding's query is itself a collapsed Ra region.
                assert!(matches!(bindings[0].1, CollapsedTree::Ra { .. }));
            }
            other => panic!("expected when root, got {other}"),
        }
    }

    #[test]
    fn leaf_names_are_deduplicated() {
        let q = Query::base("R")
            .union(Query::base("R"))
            .union(Query::base("S"));
        match collapse(&q).unwrap() {
            CollapsedTree::Ra {
                leaf_names,
                when_children,
                ..
            } => {
                assert_eq!(leaf_names, vec![RelName::new("R"), RelName::new("S")]);
                assert!(when_children.is_empty());
            }
            other => panic!("expected Ra, got {other}"),
        }
    }

    #[test]
    fn mod_enf_detection_and_conversion() {
        let atomic = StateExpr::update(
            Update::insert("R", Query::base("S")).then(Update::delete("S", Query::base("S"))),
        );
        let q = Query::base("R").when(atomic);
        assert!(is_mod_enf(&q));
        assert_eq!(to_mod_enf(&q).unwrap(), q);

        // Composition of {U}s becomes one sequence.
        let comp = StateExpr::update(Update::insert("R", Query::base("S")))
            .compose(StateExpr::update(Update::delete("S", Query::base("S"))));
        let q2 = Query::base("R").when(comp);
        assert!(!is_mod_enf(&q2));
        let m = to_mod_enf(&q2).unwrap();
        assert!(is_mod_enf(&m));

        // Explicit substitution: no mod-ENF form.
        let q3 = Query::base("R").when(StateExpr::subst(eps1()));
        assert!(matches!(to_mod_enf(&q3), Err(EnfError::NotModEnf(_))));

        // Conditional: no mod-ENF form.
        let q4 = Query::base("R").when(StateExpr::update(Update::cond(
            Query::base("G"),
            Update::insert("R", Query::base("S")),
            Update::delete("R", Query::base("S")),
        )));
        assert!(matches!(to_mod_enf(&q4), Err(EnfError::NotModEnf(_))));
    }

    #[test]
    fn nested_when_inside_update_query_is_mod_enf() {
        let inner = Query::base("S").when(StateExpr::update(Update::insert("S", Query::base("T"))));
        let q = Query::base("R").when(StateExpr::update(Update::insert("R", inner)));
        assert!(is_mod_enf(&q));
    }

    #[test]
    fn display_forms() {
        let q = Query::base("R")
            .union(Query::base("S"))
            .when(StateExpr::subst(eps2()));
        let t = collapse(&q).unwrap();
        let s = t.to_string();
        assert!(s.contains("when"), "display: {s}");
        assert!(EnfError::NotEnf("x".into())
            .to_string()
            .contains("not in ENF"));
    }
}
