//! The reduction function `red` of §4.3 — the fully *lazy* strategy.
//!
//! `red` maps any HQL query to an equivalent pure relational-algebra query,
//! and any hypothetical-state expression to an equivalent abstract
//! substitution:
//!
//! ```text
//! red({…, Qⱼ/Sⱼ, …}) = {…, red(Qⱼ)/Sⱼ, …}
//! red({U})           = slice(U)
//! red(η₁ # η₂)       = red(η₁) # red(η₂)
//!
//! red(R)             = R
//! red({t})           = {t}
//! red(u-op(Q))       = u-op(red(Q))
//! red(Q₁ b-op Q₂)    = red(Q₁) b-op red(Q₂)
//! red(Q when η)      = sub(red(Q), red(η))
//! ```
//!
//! Theorem 4.1: `red(Q)` is pure, `[[Q]] = [[red(Q)]]`, and
//! `[[η]](DB) = apply(DB, red(η))` — verified by property tests in
//! `hypoquery-eval`.

use hypoquery_algebra::{ExplicitSubst, Query, StateExpr, Update};

use crate::subst::{compose_pure, slice, sub_query, SubstError};

/// `red(Q)`: reduce an HQL query to an equivalent pure RA query.
pub fn red_query(q: &Query) -> Result<Query, SubstError> {
    match q {
        Query::Base(_) | Query::Singleton(_) | Query::Empty { .. } => Ok(q.clone()),
        Query::Select(inner, p) => Ok(red_query(inner)?.select(p.clone())),
        Query::Project(inner, cols) => Ok(red_query(inner)?.project(cols.clone())),
        Query::Union(a, b) => Ok(red_query(a)?.union(red_query(b)?)),
        Query::Intersect(a, b) => Ok(red_query(a)?.intersect(red_query(b)?)),
        Query::Product(a, b) => Ok(red_query(a)?.product(red_query(b)?)),
        Query::Join(a, b, p) => Ok(red_query(a)?.join(red_query(b)?, p.clone())),
        Query::Diff(a, b) => Ok(red_query(a)?.diff(red_query(b)?)),
        Query::When(inner, eta) => {
            let reduced = red_query(inner)?;
            let rho = red_state(eta)?;
            sub_query(&reduced, &rho)
        }
        Query::Aggregate {
            input,
            group_by,
            aggs,
        } => Ok(red_query(input)?.aggregate(group_by.clone(), aggs.clone())),
    }
}

/// `red(η)`: reduce a hypothetical-state expression to an equivalent
/// abstract substitution (all bindings pure).
pub fn red_state(eta: &StateExpr) -> Result<ExplicitSubst, SubstError> {
    match eta {
        StateExpr::Update(u) => slice(&red_update(u)?),
        StateExpr::Subst(s) => {
            let mut out = ExplicitSubst::empty();
            for (name, q) in s.iter() {
                out.bind(name.clone(), red_query(q)?);
            }
            Ok(out)
        }
        StateExpr::Compose(a, b) => compose_pure(&red_state(a)?, &red_state(b)?),
    }
}

/// Reduce every query inside an update, yielding an update whose queries
/// are pure (so that `slice` applies).
pub fn red_update(u: &Update) -> Result<Update, SubstError> {
    match u {
        Update::Insert(r, q) => Ok(Update::Insert(r.clone(), red_query(q)?)),
        Update::Delete(r, q) => Ok(Update::Delete(r.clone(), red_query(q)?)),
        Update::Seq(a, b) => Ok(red_update(a)?.then(red_update(b)?)),
        Update::Cond {
            guard,
            then_u,
            else_u,
        } => Ok(Update::cond(
            red_query(guard)?,
            red_update(then_u)?,
            red_update(else_u)?,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypoquery_algebra::{CmpOp, Predicate};

    fn sel(col: usize, op: CmpOp, v: i64, q: Query) -> Query {
        q.select(Predicate::col_cmp(col, op, v))
    }

    /// Example 2.1(b), inner step: reducing
    /// `((R ⋈ S) when {ins(R, σ_{A>30}(S))}) when {del(S, σ_{A<60}(S))}`
    /// yields
    /// `(R ∪ σ_{A>30}(S − σ_{A<60}(S))) ⋈ (S − σ_{A<60}(S))`.
    #[test]
    fn example_2_1b_reduction_shape() {
        let join = |a: Query, b: Query| a.join(b, Predicate::col_col(0, CmpOp::Eq, 1));
        let ins = Update::insert("R", sel(0, CmpOp::Gt, 30, Query::base("S")));
        let del = Update::delete("S", sel(0, CmpOp::Lt, 60, Query::base("S")));
        let q = join(Query::base("R"), Query::base("S"))
            .when(StateExpr::update(ins))
            .when(StateExpr::update(del));

        let s_minus = Query::base("S").diff(sel(0, CmpOp::Lt, 60, Query::base("S")));
        let expected = join(
            Query::base("R").union(sel(0, CmpOp::Gt, 30, s_minus.clone())),
            s_minus,
        );
        assert_eq!(red_query(&q).unwrap(), expected);
    }

    /// Theorem 4.1 (syntactic half): red always yields a pure query.
    #[test]
    fn red_output_is_pure() {
        let eta1 = StateExpr::update(Update::insert("R", Query::base("S")));
        let eta2 = StateExpr::subst(ExplicitSubst::single(
            "S",
            Query::base("S").when(eta1.clone()),
        ));
        let q = Query::base("R")
            .union(Query::base("S"))
            .when(eta1.clone().compose(eta2));
        let r = red_query(&q).unwrap();
        assert!(r.is_pure());
    }

    /// Example 3.11: with U from Ex. 3.8 and Q = π(S) ⋈ V,
    /// red(Q when {U}) = π(S − σp(R ∪ Q₁)) ⋈ V.
    #[test]
    fn example_3_11() {
        let sigma_p = |q: Query| sel(0, CmpOp::Gt, 0, q);
        let u = Update::insert("R", Query::base("Q1"))
            .then(Update::delete("S", sigma_p(Query::base("R"))));
        let q = Query::base("S")
            .project([0])
            .join(Query::base("V"), Predicate::True);
        let reduced = red_query(&q.when(StateExpr::update(u))).unwrap();
        let expected = Query::base("S")
            .diff(sigma_p(Query::base("R").union(Query::base("Q1"))))
            .project([0])
            .join(Query::base("V"), Predicate::True);
        assert_eq!(reduced, expected);
    }

    /// red of a composition composes the slices (Ex. 2.2(a) shape):
    /// {ins(R, σ_{A>30}(S))} # {del(S, σ_{A<60}(S))} reduces to
    /// {(R ∪ σ_{A>30}(S))/R, (S − σ_{A<60}(S))/S} — note the *insert* sees
    /// the original S because the insert happens first.
    #[test]
    fn example_2_2a_composition() {
        let e1 = StateExpr::update(Update::insert("R", sel(0, CmpOp::Gt, 30, Query::base("S"))));
        let e2 = StateExpr::update(Update::delete("S", sel(0, CmpOp::Lt, 60, Query::base("S"))));
        let rho = red_state(&e1.compose(e2)).unwrap();
        assert_eq!(
            rho.get(&"R".into()),
            Some(&Query::base("R").union(sel(0, CmpOp::Gt, 30, Query::base("S"))))
        );
        assert_eq!(
            rho.get(&"S".into()),
            Some(&Query::base("S").diff(sel(0, CmpOp::Lt, 60, Query::base("S"))))
        );
    }

    /// Nested when inside a substitution binding reduces away.
    #[test]
    fn nested_when_in_binding_reduces() {
        let inner = Query::base("R").when(StateExpr::update(Update::insert("R", Query::base("T"))));
        let eta = StateExpr::subst(ExplicitSubst::single("S", inner));
        let rho = red_state(&eta).unwrap();
        assert_eq!(
            rho.get(&"S".into()),
            Some(&Query::base("R").union(Query::base("T")))
        );
    }

    /// red is the identity on pure queries.
    #[test]
    fn red_identity_on_pure() {
        let q = Query::base("R")
            .intersect(Query::base("S"))
            .product(Query::singleton(hypoquery_storage::tuple![1]))
            .aggregate([0], [hypoquery_algebra::AggExpr::Count]);
        assert_eq!(red_query(&q).unwrap(), q);
    }
}
