//! The EQUIV_when equational theory (Figure 1) as a traced rewriting system.
//!
//! Every rule of Figure 1 is exposed as a standalone `rule_*` function that
//! either fires at the root of the given expression (returning the rewritten
//! form) or returns `None`. Soundness of each rule is property-tested in
//! `hypoquery-eval` against the direct semantics.
//!
//! On top of the individual rules, [`to_enf_query`] normalizes a query to
//! Evaluable Normal Form (§5.2): no composition `#` and no `{U}` remain —
//! every hypothetical-state expression is an explicit substitution. The
//! choice of *which* equivalent ENF query to evaluate is the choice of how
//! eager or lazy to be; normalization here is the minimal (most eager-
//! friendly) one that leaves `when`s in place.

use std::fmt;

use hypoquery_algebra::scope::{dom_state_expr, free_query, free_state_expr};
use hypoquery_algebra::{ExplicitSubst, Query, StateExpr, Update};

use crate::subst::{compose_suspended, slice_hql};

/// Names of the EQUIV_when rules (Figure 1), used in rewrite traces.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Rule {
    /// `R when ε ≡ Q` if `Q/R ∈ ε`.
    WhenBaseBound,
    /// `R when ε ≡ R` if `R` has no binding in `ε`.
    WhenBaseUnbound,
    /// `{t} when η ≡ {t}`.
    WhenSingleton,
    /// `∅ when η ≡ ∅` (extension: Empty is our explicit ∅ node).
    WhenEmpty,
    /// `(u-op(Q)) when η ≡ u-op(Q when η)`.
    PushWhenUnary,
    /// `(Q₁ b-op Q₂) when η ≡ (Q₁ when η) b-op (Q₂ when η)`.
    PushWhenBinary,
    /// `{ins(R, Q)} ≡ {(R ∪ Q)/R}`.
    ConvertInsert,
    /// `{del(R, Q)} ≡ {(R − Q)/R}`.
    ConvertDelete,
    /// `{(U₁; U₂)} ≡ {U₁} # {U₂}`.
    ConvertSeq,
    /// §6 extension: `{if G then U₁ else U₂}` to guarded bindings.
    ConvertCond,
    /// `(Q when η₁) when η₂ ≡ Q when (η₂ # η₁)`.
    ReplaceNestedWhen,
    /// `(η₁ # η₂) # η₃ ≡ η₁ # (η₂ # η₃)`.
    ComposeAssoc,
    /// `ε₁ # ε₂` computed into a single explicit substitution.
    ComputeComposition,
    /// `Q when ε ≡ Q when ε₋R` if `R ∉ free(Q)`.
    DropUnusedBinding,
    /// `Q when ε ≡ Q when ε₋R` if `(R/R) ∈ ε`.
    DropIdentityBinding,
    /// `Q when {} ≡ Q`.
    DropEmptySubst,
    /// `(Q when η₁) when η₂ ≡ (Q when η₂) when η₁` under disjointness.
    CommuteHypotheticals,
    /// Macro-step: exhaustive application of the push-when and when-base
    /// rules, i.e. `sub(Q, ε)` performed in one go (used by the lazy
    /// strategy's trace; one entry stands for a whole family of Figure 1
    /// firings).
    ApplySubstitution,
}

impl Rule {
    /// Human-readable rule name, as used in `EXPLAIN` output.
    pub fn name(self) -> &'static str {
        match self {
            Rule::WhenBaseBound => "when-base (bound)",
            Rule::WhenBaseUnbound => "when-base (unbound)",
            Rule::WhenSingleton => "when-singleton",
            Rule::WhenEmpty => "when-empty",
            Rule::PushWhenUnary => "push-when-unary",
            Rule::PushWhenBinary => "push-when-binary",
            Rule::ConvertInsert => "convert-insert",
            Rule::ConvertDelete => "convert-delete",
            Rule::ConvertSeq => "convert-seq",
            Rule::ConvertCond => "convert-cond",
            Rule::ReplaceNestedWhen => "replace-nested-when",
            Rule::ComposeAssoc => "compose-assoc",
            Rule::ComputeComposition => "compute-composition",
            Rule::DropUnusedBinding => "drop-unused-binding",
            Rule::DropIdentityBinding => "drop-identity-binding",
            Rule::DropEmptySubst => "drop-empty-subst",
            Rule::CommuteHypotheticals => "commute-hypotheticals",
            Rule::ApplySubstitution => "apply-substitution",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One recorded rewrite step.
#[derive(Clone, Debug)]
pub struct RewriteStep {
    /// Which rule fired.
    pub rule: Rule,
    /// Rendering of the redex (only recorded when the trace is verbose).
    pub detail: Option<String>,
}

/// A record of applied rewrite rules, for `EXPLAIN` and for the paper's
/// step-by-step derivations.
#[derive(Clone, Debug, Default)]
pub struct RewriteTrace {
    /// Steps in application order.
    pub steps: Vec<RewriteStep>,
    /// When true, each step's redex is rendered into `detail` (costly for
    /// large queries; off by default).
    pub verbose: bool,
}

impl RewriteTrace {
    /// An empty, non-verbose trace.
    pub fn new() -> Self {
        RewriteTrace::default()
    }

    /// An empty trace that records each step's redex rendering.
    pub fn verbose() -> Self {
        RewriteTrace {
            steps: Vec::new(),
            verbose: true,
        }
    }

    /// Record a rule firing on `redex`.
    pub fn record(&mut self, rule: Rule, redex: &dyn fmt::Display) {
        let detail = if self.verbose {
            Some(redex.to_string())
        } else {
            None
        };
        self.steps.push(RewriteStep { rule, detail });
    }

    /// How many times `rule` fired.
    pub fn count(&self, rule: Rule) -> usize {
        self.steps.iter().filter(|s| s.rule == rule).count()
    }
}

impl fmt::Display for RewriteTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.steps.iter().enumerate() {
            write!(f, "{:>3}. {}", i + 1, step.rule)?;
            if let Some(d) = &step.detail {
                write!(f, "  ⟨{d}⟩")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Individual rules. Each fires at the root only.
// ---------------------------------------------------------------------------

/// `R when ε ≡ ε(R)` (bound) / `R` (unbound); `{t} when η ≡ {t}`;
/// `∅ when η ≡ ∅`. Fires on `When` whose body is a leaf.
pub fn rule_when_leaf(q: &Query) -> Option<(Query, Rule)> {
    let Query::When(body, eta) = q else {
        return None;
    };
    match (&**body, &**eta) {
        (Query::Singleton(_), _) => Some(((**body).clone(), Rule::WhenSingleton)),
        (Query::Empty { .. }, _) => Some(((**body).clone(), Rule::WhenEmpty)),
        (Query::Base(name), StateExpr::Subst(eps)) => match eps.get(name) {
            Some(bound) => Some((bound.clone(), Rule::WhenBaseBound)),
            None => Some(((**body).clone(), Rule::WhenBaseUnbound)),
        },
        _ => None,
    }
}

/// Push `when` through unary and binary algebra operators
/// (*push-when-into-algebra-expressions*, Fig. 1).
pub fn rule_push_when(q: &Query) -> Option<(Query, Rule)> {
    let Query::When(body, eta) = q else {
        return None;
    };
    let eta = (**eta).clone();
    match (**body).clone() {
        Query::Select(inner, p) => Some((inner.when(eta).select(p), Rule::PushWhenUnary)),
        Query::Project(inner, cols) => Some((inner.when(eta).project(cols), Rule::PushWhenUnary)),
        Query::Aggregate {
            input,
            group_by,
            aggs,
        } => Some((
            input.when(eta).aggregate(group_by, aggs),
            Rule::PushWhenUnary,
        )),
        Query::Union(a, b) => Some((a.when(eta.clone()).union(b.when(eta)), Rule::PushWhenBinary)),
        Query::Intersect(a, b) => Some((
            a.when(eta.clone()).intersect(b.when(eta)),
            Rule::PushWhenBinary,
        )),
        Query::Product(a, b) => Some((
            a.when(eta.clone()).product(b.when(eta)),
            Rule::PushWhenBinary,
        )),
        Query::Join(a, b, p) => Some((
            a.when(eta.clone()).join(b.when(eta), p),
            Rule::PushWhenBinary,
        )),
        Query::Diff(a, b) => Some((a.when(eta.clone()).diff(b.when(eta)), Rule::PushWhenBinary)),
        _ => None,
    }
}

/// *convert-to-explicit-substitutions* (Fig. 1): rewrite a `{U}` state
/// expression one step towards explicit form.
pub fn rule_convert_update(eta: &StateExpr) -> Option<(StateExpr, Rule)> {
    let StateExpr::Update(u) = eta else {
        return None;
    };
    match u {
        Update::Insert(_, _) => Some((StateExpr::subst(slice_hql(u)), Rule::ConvertInsert)),
        Update::Delete(_, _) => Some((StateExpr::subst(slice_hql(u)), Rule::ConvertDelete)),
        Update::Seq(u1, u2) => Some((
            StateExpr::update((**u1).clone()).compose(StateExpr::update((**u2).clone())),
            Rule::ConvertSeq,
        )),
        Update::Cond { .. } => Some((StateExpr::subst(slice_hql(u)), Rule::ConvertCond)),
    }
}

/// `(Q when η₁) when η₂ ≡ Q when (η₂ # η₁)` (*replace-nested-when*).
pub fn rule_replace_nested_when(q: &Query) -> Option<(Query, Rule)> {
    let Query::When(body, eta2) = q else {
        return None;
    };
    let Query::When(inner, eta1) = &**body else {
        return None;
    };
    Some((
        inner
            .clone()
            .when((**eta2).clone().compose((**eta1).clone())),
        Rule::ReplaceNestedWhen,
    ))
}

/// `(η₁ # η₂) # η₃ ≡ η₁ # (η₂ # η₃)` (*associativity*).
pub fn rule_compose_assoc(eta: &StateExpr) -> Option<(StateExpr, Rule)> {
    let StateExpr::Compose(ab, c) = eta else {
        return None;
    };
    let StateExpr::Compose(a, b) = &**ab else {
        return None;
    };
    Some((
        (**a).clone().compose((**b).clone().compose((**c).clone())),
        Rule::ComposeAssoc,
    ))
}

/// `ε₁ # ε₂` computed into one explicit substitution
/// (*compute-composition*, via [`compose_suspended`]).
pub fn rule_compute_composition(eta: &StateExpr) -> Option<(StateExpr, Rule)> {
    let StateExpr::Compose(a, b) = eta else {
        return None;
    };
    let (StateExpr::Subst(e1), StateExpr::Subst(e2)) = (&**a, &**b) else {
        return None;
    };
    Some((
        StateExpr::subst(compose_suspended(e1, e2)),
        Rule::ComputeComposition,
    ))
}

/// *substitution-simplification* (Fig. 1), first applicable of:
/// drop a binding for a name not free in the body; drop an identity
/// binding `R/R`; drop an empty substitution entirely.
pub fn rule_simplify_subst(q: &Query) -> Option<(Query, Rule)> {
    let Query::When(body, eta) = q else {
        return None;
    };
    let StateExpr::Subst(eps) = &**eta else {
        return None;
    };
    if eps.is_empty() {
        return Some(((**body).clone(), Rule::DropEmptySubst));
    }
    let free = free_query(body);
    for (name, bound) in eps.iter() {
        if !free.contains(name) {
            return Some((
                body.clone().when(StateExpr::subst(eps.without(name))),
                Rule::DropUnusedBinding,
            ));
        }
        if *bound == Query::Base(name.clone()) {
            return Some((
                body.clone().when(StateExpr::subst(eps.without(name))),
                Rule::DropIdentityBinding,
            ));
        }
    }
    None
}

/// *commute-hypotheticals* (Fig. 1): `(Q when η₁) when η₂ ≡
/// (Q when η₂) when η₁` when the three disjointness conditions hold:
/// `dom(η₁) ∩ dom(η₂) = dom(η₁) ∩ free(η₂) = dom(η₂) ∩ free(η₁) = ∅`.
pub fn rule_commute_hypotheticals(q: &Query) -> Option<(Query, Rule)> {
    let Query::When(body, eta2) = q else {
        return None;
    };
    let Query::When(inner, eta1) = &**body else {
        return None;
    };
    let d1 = dom_state_expr(eta1);
    let d2 = dom_state_expr(eta2);
    let f1 = free_state_expr(eta1);
    let f2 = free_state_expr(eta2);
    let disjoint = d1.intersection(&d2).next().is_none()
        && d1.intersection(&f2).next().is_none()
        && d2.intersection(&f1).next().is_none();
    if !disjoint {
        return None;
    }
    Some((
        inner.clone().when((**eta2).clone()).when((**eta1).clone()),
        Rule::CommuteHypotheticals,
    ))
}

// ---------------------------------------------------------------------------
// ENF normalization (§5.2)
// ---------------------------------------------------------------------------

/// Whether a state expression is in explicit form, recursively (its
/// bindings' queries must themselves be ENF).
fn state_is_enf(eta: &StateExpr) -> bool {
    match eta {
        StateExpr::Subst(eps) => eps.iter().all(|(_, q)| is_enf_query(q)),
        _ => false,
    }
}

/// Whether a query is in Evaluable Normal Form: no `#`, no `{U}` anywhere.
pub fn is_enf_query(q: &Query) -> bool {
    match q {
        Query::Base(_) | Query::Singleton(_) | Query::Empty { .. } => true,
        Query::Select(inner, _) | Query::Project(inner, _) => is_enf_query(inner),
        Query::Union(a, b)
        | Query::Intersect(a, b)
        | Query::Product(a, b)
        | Query::Join(a, b, _)
        | Query::Diff(a, b) => is_enf_query(a) && is_enf_query(b),
        Query::When(body, eta) => is_enf_query(body) && state_is_enf(eta),
        Query::Aggregate { input, .. } => is_enf_query(input),
    }
}

/// Normalize a state expression to an explicit substitution by exhaustively
/// applying *convert-to-explicit-substitutions*, *associativity* and
/// *compute-composition*, recording each firing in `trace`.
pub fn to_enf_state(eta: &StateExpr, trace: &mut RewriteTrace) -> ExplicitSubst {
    match eta {
        StateExpr::Update(_) => {
            let (next, rule) = rule_convert_update(eta).expect("convert rules are total on {U}");
            trace.record(rule, eta);
            to_enf_state(&next, trace)
        }
        StateExpr::Subst(eps) => {
            let mut out = ExplicitSubst::empty();
            for (name, q) in eps.iter() {
                out.bind(name.clone(), to_enf_query_inner(q, trace));
            }
            out
        }
        StateExpr::Compose(a, b) => {
            let ea = to_enf_state(a, trace);
            let eb = to_enf_state(b, trace);
            trace.record(Rule::ComputeComposition, eta);
            compose_suspended(&ea, &eb)
        }
    }
}

fn to_enf_query_inner(q: &Query, trace: &mut RewriteTrace) -> Query {
    match q.clone() {
        Query::When(body, eta) => {
            let body = to_enf_query_inner(&body, trace);
            let eps = to_enf_state(&eta, trace);
            body.when(StateExpr::subst(eps))
        }
        other => other.map_subqueries(|sub| to_enf_query_inner(&sub, trace)),
    }
}

/// Normalize a query to ENF (§5.2): every hypothetical-state expression in
/// it (including inside substitution bindings) becomes an explicit
/// substitution. `when`s are left in place — this is the eager-friendly
/// normal form; pushing `when`s further (towards lazy) is a separate,
/// planner-driven choice.
pub fn to_enf_query(q: &Query, trace: &mut RewriteTrace) -> Query {
    let out = to_enf_query_inner(q, trace);
    debug_assert!(is_enf_query(&out));
    out
}

/// Simplify every `when` node in an ENF query with
/// *substitution-simplification* until no more bindings can be dropped.
/// This is the binding-removal optimization of Example 2.3.
pub fn simplify_enf(q: &Query, trace: &mut RewriteTrace) -> Query {
    let mut current = q.clone().map_subqueries(|sub| simplify_enf(&sub, trace));
    // At a When node, also simplify inside bindings, then drop bindings.
    if let Query::When(body, eta) = &current {
        if let StateExpr::Subst(eps) = &**eta {
            let mut neweps = ExplicitSubst::empty();
            for (name, bq) in eps.iter() {
                neweps.bind(name.clone(), simplify_enf(bq, trace));
            }
            current = body.clone().when(StateExpr::subst(neweps));
        }
    }
    while let Some((next, rule)) = rule_simplify_subst(&current) {
        trace.record(rule, &current);
        current = next;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypoquery_algebra::{CmpOp, Predicate};
    use hypoquery_storage::tuple;

    fn ins_r() -> StateExpr {
        StateExpr::update(Update::insert(
            "R",
            Query::base("S").select(Predicate::col_cmp(0, CmpOp::Gt, 30)),
        ))
    }

    fn del_s() -> StateExpr {
        StateExpr::update(Update::delete(
            "S",
            Query::base("S").select(Predicate::col_cmp(0, CmpOp::Lt, 60)),
        ))
    }

    #[test]
    fn when_leaf_rules() {
        let eps = ExplicitSubst::single("R", Query::base("S"));
        let bound = Query::base("R").when(StateExpr::subst(eps.clone()));
        let (out, rule) = rule_when_leaf(&bound).unwrap();
        assert_eq!(out, Query::base("S"));
        assert_eq!(rule, Rule::WhenBaseBound);

        let unbound = Query::base("T").when(StateExpr::subst(eps));
        let (out, rule) = rule_when_leaf(&unbound).unwrap();
        assert_eq!(out, Query::base("T"));
        assert_eq!(rule, Rule::WhenBaseUnbound);

        let single = Query::singleton(tuple![1]).when(ins_r());
        let (out, rule) = rule_when_leaf(&single).unwrap();
        assert_eq!(out, Query::singleton(tuple![1]));
        assert_eq!(rule, Rule::WhenSingleton);

        let empty = Query::empty(2).when(ins_r());
        assert_eq!(rule_when_leaf(&empty).unwrap().1, Rule::WhenEmpty);

        // Base under a non-explicit state expr: leaf rule does not fire.
        assert!(rule_when_leaf(&Query::base("R").when(ins_r())).is_none());
    }

    #[test]
    fn push_when_rules() {
        let eta = ins_r();
        let q = Query::base("R").union(Query::base("S")).when(eta.clone());
        let (out, rule) = rule_push_when(&q).unwrap();
        assert_eq!(rule, Rule::PushWhenBinary);
        assert_eq!(
            out,
            Query::base("R")
                .when(eta.clone())
                .union(Query::base("S").when(eta.clone()))
        );

        let q2 = Query::base("R").project([0]).when(eta.clone());
        let (out2, rule2) = rule_push_when(&q2).unwrap();
        assert_eq!(rule2, Rule::PushWhenUnary);
        assert_eq!(out2, Query::base("R").when(eta.clone()).project([0]));

        // Leaf body: push rule does not fire.
        assert!(rule_push_when(&Query::base("R").when(eta)).is_none());
    }

    #[test]
    fn convert_rules() {
        let (out, rule) = rule_convert_update(&ins_r()).unwrap();
        assert_eq!(rule, Rule::ConvertInsert);
        let eps = out.as_subst().unwrap();
        assert!(eps.get(&"R".into()).is_some());

        let seq = StateExpr::update(
            Update::insert("R", Query::base("S")).then(Update::delete("S", Query::base("S"))),
        );
        let (out, rule) = rule_convert_update(&seq).unwrap();
        assert_eq!(rule, Rule::ConvertSeq);
        assert!(matches!(out, StateExpr::Compose(_, _)));
    }

    #[test]
    fn replace_nested_when_order() {
        // (Q when η1) when η2 ≡ Q when (η2 # η1)
        let q = Query::base("R").when(ins_r()).when(del_s());
        let (out, rule) = rule_replace_nested_when(&q).unwrap();
        assert_eq!(rule, Rule::ReplaceNestedWhen);
        match out {
            Query::When(_, eta) => match *eta {
                StateExpr::Compose(a, b) => {
                    assert_eq!(*a, del_s());
                    assert_eq!(*b, ins_r());
                }
                other => panic!("expected composition, got {other}"),
            },
            other => panic!("expected when, got {other}"),
        }
    }

    #[test]
    fn compose_assoc() {
        let e = ins_r().compose(del_s()).compose(ins_r());
        let (out, _) = rule_compose_assoc(&e).unwrap();
        assert_eq!(out, ins_r().compose(del_s().compose(ins_r())));
        assert!(rule_compose_assoc(&out).is_none());
    }

    #[test]
    fn simplify_drops_unused_binding_only() {
        // S is not free in the body, so its binding is droppable; R's
        // binding is used and non-identity, so it must survive.
        let eps = ExplicitSubst::new([
            ("R".into(), Query::base("R").union(Query::base("T"))),
            ("S".into(), Query::base("T")),
        ]);
        let q = Query::base("R").when(StateExpr::subst(eps.clone()));
        let (out, rule) = rule_simplify_subst(&q).unwrap();
        assert_eq!(rule, Rule::DropUnusedBinding);
        assert_eq!(
            out,
            Query::base("R").when(StateExpr::subst(eps.without(&"S".into())))
        );
        // No further simplification applies.
        assert!(rule_simplify_subst(&out).is_none());
    }

    #[test]
    fn simplify_identity_and_empty() {
        let eps = ExplicitSubst::single("R", Query::base("R"));
        let q = Query::base("R").when(StateExpr::subst(eps));
        let (out, rule) = rule_simplify_subst(&q).unwrap();
        assert_eq!(rule, Rule::DropIdentityBinding);
        let (out2, rule2) = rule_simplify_subst(&out).unwrap();
        assert_eq!(rule2, Rule::DropEmptySubst);
        assert_eq!(out2, Query::base("R"));
    }

    #[test]
    fn commute_requires_disjointness() {
        // η1 touches R reading S; η2 touches T reading V → commutable.
        let e1 = StateExpr::update(Update::insert("R", Query::base("S")));
        let e2 = StateExpr::update(Update::insert("T", Query::base("V")));
        let q = Query::base("R")
            .union(Query::base("T"))
            .when(e1.clone())
            .when(e2.clone());
        let (out, rule) = rule_commute_hypotheticals(&q).unwrap();
        assert_eq!(rule, Rule::CommuteHypotheticals);
        assert_eq!(
            out,
            Query::base("R")
                .union(Query::base("T"))
                .when(e2.clone())
                .when(e1.clone())
        );

        // η2 reads R which η1 defines → not commutable.
        let e3 = StateExpr::update(Update::insert("T", Query::base("R")));
        let q2 = Query::base("R").when(e1).when(e3);
        assert!(rule_commute_hypotheticals(&q2).is_none());
    }

    #[test]
    fn enf_normalization() {
        let q = Query::base("R")
            .join(Query::base("S"), Predicate::True)
            .when(ins_r())
            .when(del_s());
        assert!(!is_enf_query(&q));
        let mut trace = RewriteTrace::new();
        let enf = to_enf_query(&q, &mut trace);
        assert!(is_enf_query(&enf));
        assert!(trace.count(Rule::ConvertInsert) >= 1);
        assert!(trace.count(Rule::ConvertDelete) >= 1);
        // The original query is untouched.
        assert!(!is_enf_query(&q));
    }

    #[test]
    fn enf_of_composition_computes_it() {
        let eta = ins_r().compose(del_s());
        let q = Query::base("R").when(eta);
        let mut trace = RewriteTrace::new();
        let enf = to_enf_query(&q, &mut trace);
        assert!(is_enf_query(&enf));
        assert_eq!(trace.count(Rule::ComputeComposition), 1);
        // The resulting single substitution binds both R and S.
        match &enf {
            Query::When(_, eta) => {
                let eps = eta.as_subst().unwrap();
                assert!(eps.get(&"R".into()).is_some());
                assert!(eps.get(&"S".into()).is_some());
            }
            other => panic!("expected when, got {other}"),
        }
    }

    #[test]
    fn trace_display_and_verbose() {
        let mut t = RewriteTrace::verbose();
        t.record(Rule::ConvertInsert, &Query::base("R"));
        assert_eq!(t.steps.len(), 1);
        assert!(t.steps[0].detail.as_deref() == Some("R"));
        let s = t.to_string();
        assert!(s.contains("convert-insert"));
        assert!(s.contains("⟨R⟩"));
    }
}
