//! # hypoquery-core
//!
//! The primary contribution of Griffin & Hull (SIGMOD 1997): the
//! substitution calculus connecting hypothetical states to explicit
//! substitutions, the reduction function underlying the lazy strategy, the
//! EQUIV_when equational theory, and the normal forms the evaluation
//! algorithms consume.
//!
//! * [`subst`] — `sub`, composition `#` (Lemma 3.2), `slice` (§3.4);
//! * [`red`] — the reduction function `red` of §4.3 (Theorems 3.10 / 4.1);
//! * [`lazy`] — `red` as a traced rewrite derivation, with the
//!   binding-removal optimization of Example 2.3;
//! * [`equiv`] — the EQUIV_when rule family of Figure 1 and ENF
//!   normalization (§5.2);
//! * [`enf`] — collapsed syntax trees (§5.4) and modified ENF (§5.5).

#![warn(missing_docs)]

pub mod enf;
pub mod equiv;
pub mod lazy;
pub mod red;
pub mod subst;

pub use enf::{collapse, is_mod_enf, to_mod_enf, CollapsedTree, EnfError};
pub use equiv::{is_enf_query, simplify_enf, to_enf_query, to_enf_state, RewriteTrace, Rule};
pub use lazy::{fully_lazy, lazy_state};
pub use red::{red_query, red_state, red_update};
pub use subst::{compose_pure, compose_suspended, slice, slice_hql, sub_query, SubstError};
