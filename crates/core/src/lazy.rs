//! The fully lazy evaluation strategy, as a *traced* derivation.
//!
//! [`crate::red::red_query`] is the paper's denotational definition of
//! reduction; this module implements the same transformation the way §5
//! frames it — as exhaustive application of EQUIV_when rules — and adds the
//! binding-removal optimization of Example 2.3: before a substitution is
//! applied to a query, bindings for names that are not free in it are
//! dropped (`Q when ε ≡ Q when ε₋R` if `R ∉ free(Q)`), which avoids the
//! useless work Example 2.3 calls out.
//!
//! The output is a pure RA query equal (by Theorem 4.1) to the input's
//! value in every database state, ready for a conventional optimizer and
//! evaluator.

use hypoquery_algebra::scope::free_query;
use hypoquery_algebra::{ExplicitSubst, Query, StateExpr, Update};

use crate::equiv::{RewriteTrace, Rule};
use crate::subst::{compose_pure, slice, sub_query};

/// Reduce an HQL query to pure RA, recording the rules applied.
///
/// Equivalent to [`crate::red::red_query`] plus binding removal; never
/// fails (the internal invariant is that recursively reduced queries are
/// pure, so `sub`/`slice`/`#` always apply).
pub fn fully_lazy(q: &Query, trace: &mut RewriteTrace) -> Query {
    match q {
        Query::Base(_) | Query::Singleton(_) | Query::Empty { .. } => q.clone(),
        Query::Select(inner, p) => fully_lazy(inner, trace).select(p.clone()),
        Query::Project(inner, cols) => fully_lazy(inner, trace).project(cols.clone()),
        Query::Union(a, b) => fully_lazy(a, trace).union(fully_lazy(b, trace)),
        Query::Intersect(a, b) => fully_lazy(a, trace).intersect(fully_lazy(b, trace)),
        Query::Product(a, b) => fully_lazy(a, trace).product(fully_lazy(b, trace)),
        Query::Join(a, b, p) => fully_lazy(a, trace).join(fully_lazy(b, trace), p.clone()),
        Query::Diff(a, b) => fully_lazy(a, trace).diff(fully_lazy(b, trace)),
        Query::When(inner, eta) => {
            let body = fully_lazy(inner, trace);
            let rho = lazy_state(eta, trace);
            // Binding removal (Ex. 2.3): restrict ρ to free(body).
            let free = free_query(&body);
            let mut restricted = ExplicitSubst::empty();
            for (name, bq) in rho.iter() {
                if free.contains(name) {
                    restricted.bind(name.clone(), bq.clone());
                } else {
                    trace.record(Rule::DropUnusedBinding, name);
                }
            }
            if restricted.is_empty() {
                trace.record(Rule::DropEmptySubst, &body);
                return body;
            }
            trace.record(Rule::ApplySubstitution, &restricted);
            sub_query(&body, &restricted).expect("invariant: lazily reduced queries are pure")
        }
        Query::Aggregate {
            input,
            group_by,
            aggs,
        } => fully_lazy(input, trace).aggregate(group_by.clone(), aggs.clone()),
    }
}

/// Reduce a state expression to an abstract (pure-binding) substitution,
/// recording the convert/compose rules applied.
pub fn lazy_state(eta: &StateExpr, trace: &mut RewriteTrace) -> ExplicitSubst {
    match eta {
        StateExpr::Update(u) => {
            let reduced = lazy_update(u, trace);
            slice(&reduced).expect("invariant: lazily reduced updates are pure")
        }
        StateExpr::Subst(eps) => {
            let mut out = ExplicitSubst::empty();
            for (name, q) in eps.iter() {
                out.bind(name.clone(), fully_lazy(q, trace));
            }
            out
        }
        StateExpr::Compose(a, b) => {
            let ra = lazy_state(a, trace);
            let rb = lazy_state(b, trace);
            trace.record(Rule::ComputeComposition, eta);
            compose_pure(&ra, &rb).expect("invariant: reduced substitutions are pure")
        }
    }
}

fn lazy_update(u: &Update, trace: &mut RewriteTrace) -> Update {
    match u {
        Update::Insert(r, q) => {
            trace.record(Rule::ConvertInsert, u);
            Update::Insert(r.clone(), fully_lazy(q, trace))
        }
        Update::Delete(r, q) => {
            trace.record(Rule::ConvertDelete, u);
            Update::Delete(r.clone(), fully_lazy(q, trace))
        }
        Update::Seq(a, b) => {
            trace.record(Rule::ConvertSeq, u);
            lazy_update(a, trace).then(lazy_update(b, trace))
        }
        Update::Cond {
            guard,
            then_u,
            else_u,
        } => {
            trace.record(Rule::ConvertCond, u);
            Update::cond(
                fully_lazy(guard, trace),
                lazy_update(then_u, trace),
                lazy_update(else_u, trace),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::red::red_query;
    use hypoquery_algebra::{CmpOp, Predicate};

    fn sel(col: usize, op: CmpOp, v: i64, q: Query) -> Query {
        q.select(Predicate::col_cmp(col, op, v))
    }

    #[test]
    fn agrees_with_red_when_all_bindings_used() {
        let eta = StateExpr::update(Update::insert("R", sel(0, CmpOp::Gt, 30, Query::base("S"))));
        let q = Query::base("R")
            .join(Query::base("S"), Predicate::True)
            .when(eta);
        let mut trace = RewriteTrace::new();
        assert_eq!(fully_lazy(&q, &mut trace), red_query(&q).unwrap());
        assert!(trace.count(Rule::ApplySubstitution) == 1);
    }

    /// Example 2.3: queries not mentioning S skip the S slice entirely.
    #[test]
    fn binding_removal_avoids_unused_slices() {
        // ins(R, σp(S)); del(S, σq(R)); ins(T, πr(R))
        let u = Update::seq([
            Update::insert("R", sel(0, CmpOp::Gt, 1, Query::base("S"))),
            Update::delete("S", sel(0, CmpOp::Lt, 5, Query::base("R"))),
            Update::insert("T", Query::base("R").project([0])),
        ]);
        // Q does not mention S.
        let q = Query::base("R")
            .union(Query::base("T"))
            .when(StateExpr::update(u));
        let mut trace = RewriteTrace::new();
        let out = fully_lazy(&q, &mut trace);
        assert!(out.is_pure());
        // The S binding was dropped before application (recorded for the
        // planner: an eager strategy would then skip materializing it —
        // that saving is measured by bench E3).
        assert_eq!(trace.count(Rule::DropUnusedBinding), 1);
        // The result does not contain the deletion's σ_{<5} predicate.
        assert!(!out.to_string().contains("< 5"));
        // But the *composed substitution itself* (what an eager strategy
        // would materialize without binding removal) does contain it.
        let rho = lazy_state(
            &match &q {
                Query::When(_, eta) => (**eta).clone(),
                _ => unreachable!(),
            },
            &mut RewriteTrace::new(),
        );
        assert!(rho.get(&"S".into()).unwrap().to_string().contains("< 5"));
        // And the lazy output agrees with red's.
        assert_eq!(out, red_query(&q).unwrap());
    }

    #[test]
    fn empty_substitution_is_dropped() {
        // η touches only T, the query only reads R: everything drops.
        let eta = StateExpr::update(Update::insert("T", Query::base("R")));
        let q = Query::base("R").when(eta);
        let mut trace = RewriteTrace::new();
        let out = fully_lazy(&q, &mut trace);
        assert_eq!(out, Query::base("R"));
        assert_eq!(trace.count(Rule::DropEmptySubst), 1);
    }

    #[test]
    fn reduces_conditional_updates() {
        let u = Update::cond(
            Query::base("G"),
            Update::insert("R", Query::base("S")),
            Update::delete("R", Query::base("S")),
        );
        let q = Query::base("R").when(StateExpr::update(u));
        let mut trace = RewriteTrace::new();
        let out = fully_lazy(&q, &mut trace);
        assert!(out.is_pure());
        assert_eq!(trace.count(Rule::ConvertCond), 1);
        assert_eq!(out, red_query(&q).unwrap());
    }
}
