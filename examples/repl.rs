//! An interactive HQL shell.
//!
//! Run with: `cargo run --example repl`, then type commands:
//!
//! ```text
//! define emp id,salary
//! load emp (1, 100) (2, 200)
//! query select salary >= 200 (emp)
//! query emp when {insert into emp (row(3, 300))}
//! strategy lazy
//! explain emp when {delete from emp (emp)}
//! update insert into emp (row(4, 400))
//! constraint cap select #1 > 1000 (emp)
//! schema
//! quit
//! ```
//!
//! Also works non-interactively: `echo "..." | cargo run --example repl`.

use std::io::{self, BufRead, Write};

use hypoquery::storage::{Tuple, Value};
use hypoquery::{Database, Strategy};

fn parse_rows(rest: &str) -> Result<Vec<Tuple>, String> {
    // Rows look like (1, "a", true) (2, "b", false).
    let mut rows = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in rest.chars() {
        match c {
            '(' => {
                if depth == 0 {
                    cur.clear();
                } else {
                    cur.push(c);
                }
                depth += 1;
            }
            ')' => {
                depth = depth.checked_sub(1).ok_or("unbalanced parentheses")?;
                if depth == 0 {
                    let vals: Result<Vec<Value>, String> = cur
                        .split(',')
                        .map(|f| {
                            let f = f.trim();
                            if let Ok(v) = f.parse::<i64>() {
                                Ok(Value::int(v))
                            } else if f == "true" || f == "false" {
                                Ok(Value::bool(f == "true"))
                            } else if f.starts_with('"') && f.ends_with('"') && f.len() >= 2 {
                                Ok(Value::str(&f[1..f.len() - 1]))
                            } else {
                                Err(format!("bad literal {f:?}"))
                            }
                        })
                        .collect();
                    rows.push(Tuple::new(vals?));
                } else {
                    cur.push(c);
                }
            }
            _ => {
                if depth > 0 {
                    cur.push(c);
                }
            }
        }
    }
    if depth != 0 {
        return Err("unbalanced parentheses".into());
    }
    Ok(rows)
}

fn run_command(db: &mut Database, strategy: &mut Strategy, line: &str) -> Result<String, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with("--") {
        return Ok(String::new());
    }
    let (cmd, rest) = match line.split_once(char::is_whitespace) {
        Some((c, r)) => (c, r.trim()),
        None => (line, ""),
    };
    match cmd {
        "define" => {
            // `define emp 2` (positional) or `define emp id,salary` (named).
            let (name, spec) = rest
                .split_once(char::is_whitespace)
                .ok_or("usage: define <name> <arity | attr,attr,...>")?;
            let spec = spec.trim();
            if let Ok(arity) = spec.parse::<usize>() {
                db.define(name.trim(), arity).map_err(|e| e.to_string())?;
                Ok(format!("defined {name}/{arity}"))
            } else {
                let attrs: Vec<&str> = spec.split(',').map(str::trim).collect();
                let n = attrs.len();
                db.define_named(name.trim(), attrs).map_err(|e| e.to_string())?;
                Ok(format!("defined {name}/{n} ({spec})"))
            }
        }
        "load" => {
            let (name, rows_src) = rest
                .split_once(char::is_whitespace)
                .ok_or("usage: load <name> (v, ...) (v, ...)")?;
            let rows = parse_rows(rows_src)?;
            let n = rows.len();
            db.load(name.trim(), rows).map_err(|e| e.to_string())?;
            Ok(format!("loaded {n} row(s) into {name}"))
        }
        "query" => {
            let out = db.query_with(rest, *strategy).map_err(|e| e.to_string())?;
            Ok(format!("{out}  ({} row(s))", out.len()))
        }
        "update" => {
            db.execute_update(rest).map_err(|e| e.to_string())?;
            Ok("ok".into())
        }
        "constraint" => {
            let (name, q) = rest
                .split_once(char::is_whitespace)
                .ok_or("usage: constraint <name> <violation query>")?;
            db.add_constraint(name.trim(), q).map_err(|e| e.to_string())?;
            Ok(format!("constraint {name} registered"))
        }
        "explain" => db.explain(rest).map_err(|e| e.to_string()),
        "strategy" => {
            *strategy = match rest {
                "auto" => Strategy::Auto,
                "lazy" => Strategy::Lazy,
                "hql1" => Strategy::Hql1,
                "hql2" => Strategy::Hql2,
                "delta" => Strategy::Delta,
                other => return Err(format!("unknown strategy {other:?}")),
            };
            Ok(format!("strategy set to {strategy}"))
        }
        "save" => {
            std::fs::write(rest, db.dump()).map_err(|e| e.to_string())?;
            Ok(format!("saved to {rest}"))
        }
        "open" => {
            let text = std::fs::read_to_string(rest).map_err(|e| e.to_string())?;
            *db = Database::restore(&text).map_err(|e| e.to_string())?;
            Ok(format!("loaded {rest}"))
        }
        "table" => db.query_table(rest).map_err(|e| e.to_string()),
        "schema" => {
            let mut out = String::new();
            for (name, schema) in db.catalog().iter() {
                out.push_str(&format!("{name}/{}\n", schema.arity));
            }
            Ok(out.trim_end().to_string())
        }
        "quit" | "exit" => Err("__quit__".into()),
        other => Err(format!(
            "unknown command {other:?} (try define/load/query/table/update/constraint/explain/strategy/schema/save/open/quit)"
        )),
    }
}

fn main() {
    let mut db = Database::new();
    let mut strategy = Strategy::Auto;
    let stdin = io::stdin();
    let interactive = atty_stdin();
    if interactive {
        println!("hypoquery shell — `query <q>`, `quit` to exit");
    }
    let mut lock = stdin.lock();
    let mut line = String::new();
    loop {
        if interactive {
            print!("hql> ");
            let _ = io::stdout().flush();
        }
        line.clear();
        match lock.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        match run_command(&mut db, &mut strategy, &line) {
            Ok(msg) => {
                if !msg.is_empty() {
                    println!("{msg}");
                }
            }
            Err(e) if e == "__quit__" => break,
            Err(e) => println!("error: {e}"),
        }
    }
}

/// Crude stdin-tty check without extra dependencies: honor an env override
/// and default to non-interactive (script) behavior when piped.
fn atty_stdin() -> bool {
    std::env::var("HQL_INTERACTIVE").is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_session() {
        let mut db = Database::new();
        let mut s = Strategy::Auto;
        let script = [
            "define emp 2",
            "load emp (1, 100) (2, 200)",
            "query select #1 >= 200 (emp)",
            "strategy lazy",
            "query emp when {insert into emp (row(3, 300))}",
        ];
        for cmd in script {
            run_command(&mut db, &mut s, cmd).unwrap();
        }
        assert_eq!(db.query("emp").unwrap().len(), 2);
    }

    #[test]
    fn row_parsing() {
        let rows = parse_rows("(1, \"a\", true) (2, \"b\", false)").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].arity(), 3);
        assert!(parse_rows("(1, 2").is_err());
        assert!(parse_rows("(nope)").is_err());
    }
}
