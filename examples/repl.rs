//! An interactive HQL shell — now a thin front on
//! [`hypoquery_client::repl`], the same command loop the
//! `hypoquery-cli` binary uses.
//!
//! Run with: `cargo run --example repl`. If a `hypoquery-serve` is
//! listening on the default port the shell attaches to it; otherwise it
//! falls back to an in-process session over a private database, so the
//! example keeps working standalone:
//!
//! ```text
//! define emp id,salary
//! load emp (1, 100) (2, 200)
//! query select salary >= 200 (emp)
//! query emp when {insert into emp (row(3, 300))}
//! branch raise update emp set ... -- any HQL update
//! switch raise
//! table emp
//! strategy lazy
//! explain emp when {delete from emp (emp)}
//! quit
//! ```
//!
//! Also works non-interactively: `echo "..." | cargo run --example repl`.
//! Set `HQL_INTERACTIVE=1` for a `hql>` prompt, `HQL_ADDR=host:port` to
//! pick a server, or `HQL_LOCAL=1` to skip the server probe.

use std::io;

use hypoquery_client::repl::{Backend, Repl};
use hypoquery_server::proto::DEFAULT_PORT;

fn main() {
    let addr = std::env::var("HQL_ADDR").unwrap_or_else(|_| format!("127.0.0.1:{DEFAULT_PORT}"));
    let backend = if std::env::var("HQL_LOCAL").is_ok() {
        Backend::local()
    } else {
        let (backend, remote) = Backend::connect_or_local(&addr);
        if remote {
            println!("connected to {addr}");
        }
        backend
    };
    if !backend.is_remote() {
        println!("hypoquery shell (in-process) — `help` for commands, `quit` to exit");
    }

    let prompt = std::env::var("HQL_INTERACTIVE").is_ok();
    let stdin = io::stdin();
    let mut input = stdin.lock();
    let mut output = io::stdout();
    if let Err(e) = Repl::new(backend).run(&mut input, &mut output, prompt) {
        eprintln!("i/o error: {e}");
    }
}
