//! Decision support with a tree of hypothetical updates — the scenario of
//! the paper's Example 2.1.
//!
//! A retailer plans next quarter's inventory. Each node of the what-if
//! tree is a candidate plan built on its parent; queries compare plans
//! *without ever mutating the database*, and the winning plan is finally
//! committed.
//!
//! Run with: `cargo run --example decision_support`

use hypoquery::storage::tuple;
use hypoquery::{Database, Strategy, WhatIfTree};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // stock: (item, qty); orders: (item, qty_ordered)
    let mut db = Database::new();
    db.define("stock", 2)?;
    db.define("orders", 2)?;
    db.load(
        "stock",
        [
            tuple![1, 50],
            tuple![2, 5],
            tuple![3, 80],
            tuple![4, 2],
            tuple![5, 120],
        ],
    )?;
    db.load("orders", [tuple![1, 30], tuple![2, 10], tuple![4, 8]])?;

    // The root plan (η₃ in Example 2.1): drop discontinued low-stock items.
    let mut tree = WhatIfTree::new();
    tree.branch(
        &db,
        "cleanup",
        None,
        "delete from stock (select #1 < 5 (stock))",
    )?;

    // Two competing extensions (η₁ and η₂): restock aggressively, or run a
    // clearance on slow movers.
    tree.branch(
        &db,
        "restock",
        Some("cleanup"),
        "insert into stock (row(2, 100)); insert into stock (row(6, 60))",
    )?;
    tree.branch(
        &db,
        "clearance",
        Some("cleanup"),
        "delete from stock (select #1 > 100 (stock))",
    )?;

    // Which order lines would be satisfiable (stock qty ≥ ordered qty)
    // under each plan?
    let fulfillable = "project 0, 3 (orders join stock on #0 = #2 and #3 >= #1)";
    for plan in ["cleanup", "restock", "clearance"] {
        let rows = tree.query_at(&db, plan, fulfillable, Strategy::Auto)?;
        println!("plan {plan:<10} fulfills {} order(s): {rows}", rows.len());
    }

    // The Example 2.1 comparison query: what does `restock` fulfill that
    // `clearance` does not?  ((Q when η₁) − (Q when η₂)) when η₃ in the
    // paper; the tree composes the shared prefix for us.
    let gained = tree.diff_between(&db, "restock", "clearance", fulfillable, Strategy::Auto)?;
    println!("\nrestock fulfills but clearance does not: {gained}");

    // Every strategy agrees (the paper's Propositions 5.1-5.4 in action).
    for strategy in [Strategy::Lazy, Strategy::Hql1, Strategy::Hql2] {
        assert_eq!(
            tree.diff_between(&db, "restock", "clearance", fulfillable, strategy)?,
            gained
        );
    }

    // Nothing has touched the real data so far.
    assert_eq!(db.query("stock")?.len(), 5);

    // Commit the winner; its whole path (cleanup, then restock) is applied.
    tree.commit(&mut db, "restock")?;
    println!(
        "\ncommitted `restock`; stock is now: {}",
        db.query("stock")?
    );
    Ok(())
}
