//! A versioned analyst workspace: named schemas, buffered transactions
//! with savepoints, a prepared hypothetical state reused across a family
//! of queries (Example 2.2 as an API), and dump/restore persistence.
//!
//! Run with: `cargo run --example versioned_workspace`

use hypoquery::storage::tuple;
use hypoquery::{Database, PreparedState, Transaction};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Named schemas: queries below use attribute names, not positions.
    let mut db = Database::new();
    db.define_named("trades", ["id", "amount"])?;
    db.define_named("limits", ["trader", "cap"])?;
    db.load(
        "trades",
        [
            tuple![1, 500],
            tuple![2, 1200],
            tuple![3, 80],
            tuple![4, 2500],
        ],
    )?;
    db.load("limits", [tuple![1, 1000], tuple![2, 3000]])?;
    db.add_constraint("positive_amounts", "select amount < 0 (trades)")?;

    println!("{}", db.query_table("select amount >= 1000 (trades)")?);

    // --- A buffered transaction with savepoints ------------------------
    let mut tx = Transaction::begin();
    tx.update(&db, "insert into trades (row(5, 700))")?;
    tx.savepoint("after_booking")?;
    tx.update(&db, "delete from trades (select amount < 100 (trades))")?;

    // Reads inside the transaction see pending writes — hypothetically.
    println!(
        "inside tx:  {} trades (real state still has {})",
        tx.query(&db, "trades")?.len(),
        db.query("trades")?.len()
    );

    // Second thoughts about the cleanup: roll back to the savepoint.
    tx.rollback_to("after_booking")?;
    println!("rolled back to savepoint; {} pending update(s)", tx.len());
    tx.commit(&mut db)?;
    println!("committed:  {} trades\n", db.query("trades")?.len());

    // --- A prepared hypothetical state, queried many times -------------
    // "What if we cancelled all large trades?" — derive the composed
    // substitution once, materialize once, run a family of analyses.
    let mut whatif =
        PreparedState::parse(&db, "{delete from trades (select amount > 1000 (trades))}")?;
    whatif.materialize(&db)?;
    for q in [
        "aggregate [; count, sum amount] (trades)",
        "select amount >= 500 (trades)",
        "trades join limits on id = trader",
    ] {
        println!("what-if {q:<44} -> {}", whatif.query_src(&db, q)?);
    }

    // --- Persistence -----------------------------------------------------
    let path = std::env::temp_dir().join("hypoquery_workspace.hqldump");
    std::fs::write(&path, db.dump())?;
    let restored = Database::restore(&std::fs::read_to_string(&path)?)?;
    assert_eq!(restored.query("trades")?, db.query("trades")?);
    // Named columns survive the round-trip.
    assert_eq!(
        restored.query("select amount >= 1000 (trades)")?,
        db.query("select amount >= 1000 (trades)")?
    );
    println!("\nsaved and restored from {}", path.display());
    Ok(())
}
