//! Quickstart: hypothetical queries in five minutes.
//!
//! Run with: `cargo run --example quickstart`

use hypoquery::storage::tuple;
use hypoquery::{Database, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Define a schema and load data. Columns are positional: emp is
    //    (id, salary), dept is (emp_id, dept_id).
    let mut db = Database::new();
    db.define("emp", 2)?;
    db.define("dept", 2)?;
    db.load(
        "emp",
        [
            tuple![1, 100],
            tuple![2, 200],
            tuple![3, 300],
            tuple![4, 400],
        ],
    )?;
    db.load("dept", [tuple![1, 10], tuple![2, 10], tuple![3, 20]])?;

    // 2. Ordinary queries use a compact algebraic syntax.
    let high = db.query("select #1 >= 300 (emp)")?;
    println!("high earners today:            {high}");

    // 3. A hypothetical query: what would the join look like *if* we gave
    //    employee 4 a department and fired everyone earning < 150 —
    //    without changing anything?
    let q = "(emp join dept on #0 = #2) \
             when {insert into dept (row(4, 20)); \
                   delete from emp (select #1 < 150 (emp))}";
    let hypothetical = db.query(q)?;
    println!("join under the proposed plan:  {hypothetical}");
    println!("emp is untouched:              {}", db.query("emp")?);

    // 4. The same query can be evaluated anywhere on the paper's
    //    lazy↔eager spectrum — the answer never changes, only the plan.
    for strategy in [
        Strategy::Lazy,
        Strategy::Hql1,
        Strategy::Hql2,
        Strategy::Delta,
    ] {
        let out = db.query_with(q, strategy)?;
        assert_eq!(out, hypothetical);
        println!("strategy {strategy:<5} agrees ({} rows)", out.len());
    }

    // 5. EXPLAIN shows what the planner chose and why.
    println!("\nEXPLAIN:\n{}", db.explain(q)?);

    // 6. Hypothetical states can also be explicit substitutions — "pretend
    //    emp is just its top earners".
    let out = db.query("dept when {select #1 >= 200 (emp) / dept}")?;
    println!("dept replaced by a view of emp: {out}");

    Ok(())
}
