//! Integrity maintenance via hypothetical queries.
//!
//! The introduction lists integrity maintenance among the applications
//! that "involve hypothetical database states": before applying an update,
//! evaluate each constraint's violation query `when {U}` — i.e. in the
//! state the update *would* produce — and abort if anything comes back.
//! This is also the weakest-precondition connection of the related-work
//! section: `violations when {U}` *is* the precondition check.
//!
//! Run with: `cargo run --example integrity_maintenance`

use hypoquery::storage::tuple;
use hypoquery::{Database, EngineError};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // accounts: (id, balance); transfers: (from, to)
    let mut db = Database::new();
    db.define("accounts", 2)?;
    db.define("transfers", 2)?;
    db.load("accounts", [tuple![1, 500], tuple![2, 300], tuple![3, 50]])?;

    // Constraint 1: no negative balances.
    db.add_constraint("non_negative", "select #1 < 0 (accounts)")?;
    // Constraint 2: referential integrity — every transfer endpoint must
    // be an account id (two one-sided checks).
    db.add_constraint(
        "transfer_from_exists",
        "project 0, 1 (transfers) except project 0, 1 \
         (transfers join accounts on #0 = #2)",
    )?;
    db.add_constraint(
        "transfer_to_exists",
        "project 0, 1 (transfers) except project 0, 1 \
         (transfers join accounts on #1 = #2)",
    )?;

    // A legal update sails through.
    db.execute_update("insert into transfers (row(1, 2))")?;
    println!("ok:      recorded transfer 1→2");

    // An update that would break referential integrity is rejected
    // *before* touching the state — the check ran hypothetically.
    match db.execute_update("insert into transfers (row(1, 99))") {
        Err(EngineError::ConstraintViolation {
            constraint,
            violations,
        }) => {
            println!("aborted: transfer to unknown account (constraint `{constraint}`, {violations} violation(s))");
        }
        other => panic!("expected violation, got {other:?}"),
    }

    // A compound update can be fine even when its prefix is not: drain an
    // account but also create the destination first. The constraint is
    // checked against the *final* hypothetical state.
    db.execute_update("insert into accounts (row(99, 0)); insert into transfers (row(2, 99))")?;
    println!("ok:      account 99 created and transfer recorded in one update");

    // Balance updates: debiting 100 from account 3 (balance 50) aborts...
    match db.execute_update("delete from accounts (row(3, 50)); insert into accounts (row(3, -50))")
    {
        Err(EngineError::ConstraintViolation { constraint, .. }) => {
            println!("aborted: overdraft on account 3 (constraint `{constraint}`)");
        }
        other => panic!("expected violation, got {other:?}"),
    }
    // ...and the state is exactly as before the attempt.
    assert!(db
        .query("select #0 = 3 (accounts)")?
        .contains(&tuple![3, 50]));

    // Conditional updates (a §6 extension) express the guarded version
    // inside the update language itself: only debit if covered.
    db.execute_update(
        "if select #0 = 3 and #1 >= 100 (accounts) \
         then delete from accounts (row(3, 50)); insert into accounts (row(3, -50)) \
         else insert into transfers (row(3, 3)) end",
    )?;
    println!("ok:      guarded debit fell through to the else-branch");
    println!("\nfinal accounts:  {}", db.query("accounts")?);
    println!("final transfers: {}", db.query("transfers")?);
    Ok(())
}
