//! Active database rules over hypothetical future states.
//!
//! The introduction cites "active databases (where rules may access the
//! deltas and potential future states specified by proposed updates)".
//! This example implements a tiny ECA (event-condition-action) engine on
//! top of `hypoquery`: each rule's *condition* is a query evaluated in the
//! hypothetical state `when {U}` of the proposed update, and its *action*
//! extends the update. The fixpoint update is then applied once.
//!
//! Run with: `cargo run --example active_rules`

use hypoquery::algebra::{Query, StateExpr, Update};
use hypoquery::parser::{parse_query, parse_update};
use hypoquery::storage::tuple;
use hypoquery::{Database, Strategy};

/// An active rule: if `condition` is non-empty in the proposed future
/// state, append `action` to the update.
struct Rule {
    name: &'static str,
    condition: Query,
    action: Update,
}

/// Extend `proposed` with every triggered rule action, to a fixpoint.
fn react(db: &Database, mut proposed: Update, rules: &[Rule]) -> Update {
    // A rule fires at most once here (simple semantics; enough to show
    // hypothetical-state access).
    let mut fired = vec![false; rules.len()];
    loop {
        let mut changed = false;
        for (i, rule) in rules.iter().enumerate() {
            if fired[i] {
                continue;
            }
            // Condition checked in the *potential future state* — a
            // hypothetical query, never a real update.
            let probe = rule
                .condition
                .clone()
                .when(StateExpr::update(proposed.clone()));
            let hits = db
                .execute(&probe, Strategy::Auto)
                .expect("rule conditions are well-typed");
            if !hits.is_empty() {
                println!(
                    "rule `{}` fires ({} matching row(s)) — extending the update",
                    rule.name,
                    hits.len()
                );
                proposed = proposed.then(rule.action.clone());
                fired[i] = true;
                changed = true;
            }
        }
        if !changed {
            return proposed;
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // parts: (part, qty); reorders: (part, amount); alerts: (part)
    let mut db = Database::new();
    db.define("parts", 2)?;
    db.define("reorders", 2)?;
    db.define("alerts", 1)?;
    db.load("parts", [tuple![1, 12], tuple![2, 40], tuple![3, 7]])?;

    let rules = vec![
        // If any part would drop below 10 units, schedule a reorder.
        Rule {
            name: "low_stock_reorder",
            condition: parse_query(
                "project 0 (select #1 < 10 (parts)) except project 0 (reorders)",
            )?,
            action: parse_update(
                "insert into reorders (project 0 (select #1 < 10 (parts)) times row(25))",
            )?,
        },
        // If anything gets reordered, raise an alert for it.
        Rule {
            name: "reorder_alert",
            condition: parse_query("project 0 (reorders) except alerts")?,
            action: parse_update("insert into alerts (project 0 (reorders))")?,
        },
    ];

    // A shipment consumes stock: part 1 drops by 8 (12 → 4).
    let proposed = parse_update("delete from parts (row(1, 12)); insert into parts (row(1, 4))")?;

    println!("proposed update: {proposed}\n");
    let full = react(&db, proposed, &rules);
    println!("\nfinal update after rules: {full}\n");

    // Nothing has happened yet — all reasoning was hypothetical.
    assert!(db.query("reorders")?.is_empty());
    assert!(db.query("alerts")?.is_empty());

    // Apply the extended update once.
    db.apply_update(&full)?;
    println!("parts:    {}", db.query("parts")?);
    println!("reorders: {}", db.query("reorders")?);
    println!("alerts:   {}", db.query("alerts")?);

    // The cascade happened: part 1 and the already-low part 3 were
    // reordered and alerted.
    assert_eq!(db.query("reorders")?.len(), 2);
    assert_eq!(db.query("alerts")?.len(), 2);
    Ok(())
}
